//! Minimum-weight perfect matching on weighted bigraphs.
//!
//! The SLD computation of Sec. III-F forms a complete bipartite graph whose
//! nodes are the (ε-padded) tokens of the two tokenized strings and whose
//! edge weights are token-level Levenshtein distances, then solves the
//! assignment problem. This crate provides:
//!
//! * [`hungarian`] — the exact `O(n³)` Hungarian algorithm (shortest
//!   augmenting paths with potentials), the paper's exact verifier;
//! * [`greedy`] — the *greedy-token-aligning* approximation of Sec. III-G5:
//!   repeatedly commit the globally lightest remaining edge;
//! * [`exhaustive`] — brute-force over all permutations, exposed for
//!   property tests and tiny instances (`n ≤ 10`).
//!
//! All solvers take a square [`SquareMatrix`] of `u64` costs; callers pad
//! rectangular instances (the SLD layer pads with empty tokens, whose edge
//! weight to a token `z` is `|z|`).

pub mod matrix;

pub use matrix::SquareMatrix;

/// A perfect matching: `assignment[row] = column`, plus its total cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// Total weight of the selected edges.
    pub cost: u64,
    /// `assignment[i]` is the column matched to row `i`; always a
    /// permutation of `0..n`.
    pub assignment: Vec<usize>,
}

/// Exact minimum-cost perfect matching via the Hungarian algorithm
/// (Jonker–Volgenant style shortest augmenting paths), `O(n³)`.
///
/// # Examples
///
/// ```
/// use tsj_assignment::{hungarian, SquareMatrix};
/// let m = SquareMatrix::from_rows(&[
///     vec![4, 1, 3],
///     vec![2, 0, 5],
///     vec![3, 2, 2],
/// ]);
/// let sol = hungarian(&m);
/// assert_eq!(sol.cost, 5); // 1 + 2 + 2
/// ```
///
/// # Panics
///
/// Panics if any cost exceeds `u64::MAX / 4` (headroom for potential
/// arithmetic; SLD costs are token lengths, far below this).
pub fn hungarian(m: &SquareMatrix) -> Matching {
    let n = m.n();
    if n == 0 {
        return Matching {
            cost: 0,
            assignment: vec![],
        };
    }
    assert!(
        m.iter().all(|c| c <= u64::MAX / 4),
        "costs too large for potential arithmetic"
    );
    const INF: i64 = i64::MAX / 2;

    // 1-indexed potentials over rows (u) and columns (v); p[j] is the row
    // matched to column j (0 = unmatched sentinel row).
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = m.get(i0 - 1, j - 1) as i64 - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the recorded path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let cost = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| m.get(i, j))
        .sum();
    Matching { cost, assignment }
}

/// Greedy-token-aligning (Sec. III-G5): select the globally minimum-weight
/// edge, remove both endpoints, repeat.
///
/// Runs in `O(n² log n)` (sorting the n² edges) — the paper's
/// `T(xᵗ)·T(yᵗ)·log(T(xᵗ)·T(yᵗ))` term. The result is a valid perfect
/// matching whose cost is an *upper bound* on the optimum, which keeps the
/// approximation on the false-negative side (precision stays 1.0).
///
/// Ties are broken by `(cost, row, column)` so the approximation is
/// deterministic across runs and platforms.
pub fn greedy(m: &SquareMatrix) -> Matching {
    let n = m.n();
    let mut edges: Vec<(u64, u32, u32)> = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            edges.push((m.get(i, j), i as u32, j as u32));
        }
    }
    edges.sort_unstable();
    let mut row_used = vec![false; n];
    let mut col_used = vec![false; n];
    let mut assignment = vec![usize::MAX; n];
    let mut cost = 0u64;
    let mut matched = 0usize;
    for (w, i, j) in edges {
        let (i, j) = (i as usize, j as usize);
        if row_used[i] || col_used[j] {
            continue;
        }
        row_used[i] = true;
        col_used[j] = true;
        assignment[i] = j;
        cost += w;
        matched += 1;
        if matched == n {
            break;
        }
    }
    Matching { cost, assignment }
}

/// Brute-force minimum over all `n!` permutations. Exposed for tests and
/// tiny instances.
///
/// # Panics
///
/// Panics for `n > 10` (10! ≈ 3.6M permutations is the practical ceiling).
pub fn exhaustive(m: &SquareMatrix) -> Matching {
    let n = m.n();
    assert!(n <= 10, "exhaustive matching is for n ≤ 10 (got {n})");
    if n == 0 {
        return Matching {
            cost: 0,
            assignment: vec![],
        };
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best_cost = u64::MAX;
    let mut best: Vec<usize> = perm.clone();
    permute(&mut perm, 0, &mut |p| {
        let c: u64 = p.iter().enumerate().map(|(i, &j)| m.get(i, j)).sum();
        if c < best_cost {
            best_cost = c;
            best.copy_from_slice(p);
        }
    });
    Matching {
        cost: best_cost,
        assignment: best,
    }
}

fn permute(p: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == p.len() {
        visit(p);
        return;
    }
    for i in k..p.len() {
        p.swap(k, i);
        permute(p, k + 1, visit);
        p.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_instance() {
        let m = SquareMatrix::zeros(0);
        assert_eq!(hungarian(&m).cost, 0);
        assert_eq!(greedy(&m).cost, 0);
        assert_eq!(exhaustive(&m).cost, 0);
    }

    #[test]
    fn singleton() {
        let m = SquareMatrix::from_rows(&[vec![7]]);
        let h = hungarian(&m);
        assert_eq!(h.cost, 7);
        assert_eq!(h.assignment, vec![0]);
    }

    #[test]
    fn classic_3x3() {
        let m = SquareMatrix::from_rows(&[vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]]);
        assert_eq!(hungarian(&m).cost, 5);
        assert_eq!(exhaustive(&m).cost, 5);
    }

    #[test]
    fn greedy_can_be_suboptimal_but_valid() {
        // Greedy takes the 0 edge (0,0), forcing 10+10; optimal is 1+1+0.
        let m = SquareMatrix::from_rows(&[vec![0, 1, 10], vec![1, 10, 10], vec![10, 10, 0]]);
        let h = hungarian(&m);
        let g = greedy(&m);
        assert_eq!(h.cost, 2);
        assert!(g.cost >= h.cost);
        assert_permutation(&g.assignment);
    }

    #[test]
    fn hungarian_matches_exhaustive_on_fixed_cases() {
        let cases = [
            vec![vec![1, 2], vec![3, 4]],
            vec![vec![5, 5], vec![5, 5]],
            vec![
                vec![9, 2, 7, 8],
                vec![6, 4, 3, 7],
                vec![5, 8, 1, 8],
                vec![7, 6, 9, 4],
            ],
        ];
        for rows in cases {
            let m = SquareMatrix::from_rows(&rows);
            assert_eq!(hungarian(&m).cost, exhaustive(&m).cost, "{rows:?}");
        }
    }

    #[test]
    fn assignments_are_permutations() {
        let m = SquareMatrix::from_rows(&[
            vec![3, 1, 4, 1],
            vec![5, 9, 2, 6],
            vec![5, 3, 5, 8],
            vec![9, 7, 9, 3],
        ]);
        assert_permutation(&hungarian(&m).assignment);
        assert_permutation(&greedy(&m).assignment);
        assert_permutation(&exhaustive(&m).assignment);
    }

    #[test]
    fn deterministic_greedy_tie_breaking() {
        let m = SquareMatrix::from_rows(&[vec![1, 1], vec![1, 1]]);
        let g1 = greedy(&m);
        let g2 = greedy(&m);
        assert_eq!(g1.assignment, g2.assignment);
        assert_eq!(g1.assignment, vec![0, 1]); // row-major tie order
    }

    fn assert_permutation(a: &[usize]) {
        let mut seen = vec![false; a.len()];
        for &j in a {
            assert!(j < a.len() && !seen[j], "not a permutation: {a:?}");
            seen[j] = true;
        }
    }
}
