//! Dense square cost matrices for the assignment solvers.

/// A dense `n × n` matrix of `u64` costs in row-major order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<u64>,
}

impl SquareMatrix {
    /// An all-zero `n × n` matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0; n * n],
        }
    }

    /// Builds from a cost function.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> u64) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Self { n, data }
    }

    /// Builds from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not form a square matrix.
    pub fn from_rows(rows: &[Vec<u64>]) -> Self {
        let n = rows.len();
        assert!(
            rows.iter().all(|r| r.len() == n),
            "rows must form a square matrix"
        );
        let mut data = Vec::with_capacity(n * n);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self { n, data }
    }

    /// Side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cost at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u64 {
        debug_assert!(row < self.n && col < self.n);
        self.data[row * self.n + col]
    }

    /// Sets the cost at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: u64) {
        debug_assert!(row < self.n && col < self.n);
        self.data[row * self.n + col] = value;
    }

    /// Iterates over all costs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.data.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = SquareMatrix::zeros(2);
        m.set(0, 1, 5);
        assert_eq!(m.get(0, 1), 5);
        assert_eq!(m.get(1, 0), 0);
        assert_eq!(m.n(), 2);

        let f = SquareMatrix::from_fn(3, |i, j| (i * 10 + j) as u64);
        assert_eq!(f.get(2, 1), 21);

        let r = SquareMatrix::from_rows(&[vec![1, 2], vec![3, 4]]);
        assert_eq!(r.get(1, 1), 4);
        assert_eq!(r.iter().sum::<u64>(), 10);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_ragged_rows() {
        let _ = SquareMatrix::from_rows(&[vec![1], vec![2, 3]]);
    }
}
