//! Property tests for the assignment solvers.

use proptest::prelude::*;
use tsj_assignment::{exhaustive, greedy, hungarian, SquareMatrix};

fn small_matrix() -> impl Strategy<Value = SquareMatrix> {
    (1usize..=6).prop_flat_map(|n| {
        proptest::collection::vec(0u64..50, n * n)
            .prop_map(move |data| SquareMatrix::from_fn(n, |i, j| data[i * n + j]))
    })
}

fn is_permutation(a: &[usize]) -> bool {
    let mut seen = vec![false; a.len()];
    a.iter().all(|&j| {
        if j >= a.len() || seen[j] {
            false
        } else {
            seen[j] = true;
            true
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The Hungarian algorithm is exactly optimal (cross-check vs brute force).
    #[test]
    fn hungarian_is_optimal(m in small_matrix()) {
        let h = hungarian(&m);
        let e = exhaustive(&m);
        prop_assert_eq!(h.cost, e.cost);
        prop_assert!(is_permutation(&h.assignment));
        // The reported cost is consistent with the reported assignment.
        let recomputed: u64 = h.assignment.iter().enumerate().map(|(i, &j)| m.get(i, j)).sum();
        prop_assert_eq!(recomputed, h.cost);
    }

    /// Greedy is a valid matching that never beats the optimum — this is
    /// what makes greedy-token-aligning a pure false-negative approximation
    /// (Sec. V-B2: precision stays 1.0).
    #[test]
    fn greedy_upper_bounds_optimum(m in small_matrix()) {
        let h = hungarian(&m);
        let g = greedy(&m);
        prop_assert!(g.cost >= h.cost);
        prop_assert!(is_permutation(&g.assignment));
        let recomputed: u64 = g.assignment.iter().enumerate().map(|(i, &j)| m.get(i, j)).sum();
        prop_assert_eq!(recomputed, g.cost);
    }

    /// Uniform matrices: every matching has the same cost, so greedy is
    /// optimal and the cost equals n times the uniform value.
    #[test]
    fn uniform_matrices(n in 1usize..6, c in 0u64..20) {
        let m = SquareMatrix::from_fn(n, |_, _| c);
        prop_assert_eq!(hungarian(&m).cost, n as u64 * c);
        prop_assert_eq!(greedy(&m).cost, n as u64 * c);
    }

    /// Adding a constant to every cost raises the optimum by n·constant
    /// (potentials invariance sanity check).
    #[test]
    fn constant_shift_invariance(m in small_matrix(), shift in 0u64..10) {
        let n = m.n();
        let shifted = SquareMatrix::from_fn(n, |i, j| m.get(i, j) + shift);
        prop_assert_eq!(hungarian(&shifted).cost, hungarian(&m).cost + n as u64 * shift);
    }

    /// A permutation matrix with zeros on a known permutation and large
    /// costs elsewhere must recover exactly that permutation.
    #[test]
    fn recovers_planted_permutation(n in 1usize..7, seed in 0u64..1000) {
        // Derive a permutation from the seed via a simple LCG shuffle.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (s >> 33) as usize % (i + 1));
        }
        let m = SquareMatrix::from_fn(n, |i, j| if perm[i] == j { 0 } else { 100 });
        let h = hungarian(&m);
        prop_assert_eq!(h.cost, 0);
        prop_assert_eq!(h.assignment, perm);
    }
}
