//! Component-level benchmarks: segmenting, the token NLD joins, and the
//! candidate filters.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsj_datagen::{generate_names, NameGenConfig};
use tsj_mapreduce::Cluster;
use tsj_passjoin::{even_partitions, nld_self_join_serial, substring_window, MassJoin};

fn distinct_tokens(n_names: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let names = generate_names(n_names, &mut rng, &NameGenConfig::default());
    let mut tokens: Vec<String> = names
        .iter()
        .flat_map(|n| n.split_whitespace().map(str::to_owned))
        .collect();
    tokens.sort_unstable();
    tokens.dedup();
    tokens
}

fn bench_segments(c: &mut Criterion) {
    let mut g = c.benchmark_group("segments");
    g.bench_function("even_partitions/len12_parts3", |b| {
        b.iter(|| even_partitions(black_box(12), black_box(3)))
    });
    g.bench_function("substring_window", |b| {
        b.iter(|| substring_window(black_box(10), black_box(12), 1, 4, 4, 2))
    });
    g.finish();
}

fn bench_token_joins(c: &mut Criterion) {
    let tokens = distinct_tokens(4000, 99);
    let mut g = c.benchmark_group("token_joins");
    g.sample_size(10);
    g.bench_function(format!("serial_nld_join/{}_tokens", tokens.len()), |b| {
        b.iter(|| nld_self_join_serial(black_box(&tokens), 0.15))
    });
    let cluster = Cluster::with_machines(64);
    g.bench_function(format!("massjoin/{}_tokens", tokens.len()), |b| {
        b.iter(|| {
            MassJoin::new(&cluster, 0.15)
                .nld_self_join(black_box(&tokens))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_filters(c: &mut Criterion) {
    use tsj_setdist::{nsld_lower_bound_from_total_lens, sld_lower_bound_sorted_lens};
    let mut g = c.benchmark_group("filters");
    g.bench_function("length_filter", |b| {
        b.iter(|| nsld_lower_bound_from_total_lens(black_box(13), black_box(17)))
    });
    let xl = [1u32, 5, 6];
    let yl = [4u32, 6, 7];
    g.bench_function("histogram_filter", |b| {
        b.iter(|| sld_lower_bound_sorted_lens(black_box(&xl), black_box(&yl)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_segments, bench_token_joins, bench_filters
}
criterion_main!(benches);
