//! Micro-benchmarks of the distance kernels (the per-pair costs that
//! Sec. III-F's complexity analysis is about).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tsj_assignment::{greedy, hungarian, SquareMatrix};
use tsj_setdist::{nsld, nsld_greedy, nsld_within, Aligning};
use tsj_strdist::{jaro_winkler, levenshtein, levenshtein_within, nld, nld_within};

fn bench_levenshtein(c: &mut Criterion) {
    let mut g = c.benchmark_group("levenshtein");
    g.bench_function("ld/short_names", |b| {
        b.iter(|| levenshtein(black_box("thomson"), black_box("thompson")))
    });
    g.bench_function("ld/long_tokens", |b| {
        b.iter(|| {
            levenshtein(
                black_box("krishnamurthy-venkatesan"),
                black_box("krishnamoorthy-venkatesen"),
            )
        })
    });
    g.bench_function("ld_within/hit_k1", |b| {
        b.iter(|| levenshtein_within(black_box("thomson"), black_box("thompson"), 1))
    });
    g.bench_function("ld_within/miss_k1", |b| {
        b.iter(|| levenshtein_within(black_box("barakxyz"), black_box("obamapqr"), 1))
    });
    g.finish();
}

fn bench_nld(c: &mut Criterion) {
    let mut g = c.benchmark_group("nld");
    g.bench_function("nld/full", |b| {
        b.iter(|| nld(black_box("jonathan"), black_box("jonathon")))
    });
    g.bench_function("nld_within/t0.1", |b| {
        b.iter(|| nld_within(black_box("jonathan"), black_box("jonathon"), 0.1))
    });
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| jaro_winkler(black_box("martha"), black_box("marhta")))
    });
    g.finish();
}

fn bench_setwise(c: &mut Criterion) {
    let x3 = ["barak", "hussein", "obama"];
    let y3 = ["burak", "husein", "obamma"];
    let x5 = ["maria", "del", "carmen", "garcia", "lopez"];
    let y5 = ["mariah", "del", "carmen", "garcia", "lopes"];
    let mut g = c.benchmark_group("nsld");
    g.bench_function("nsld/hungarian_k3", |b| {
        b.iter(|| nsld(black_box(&x3), black_box(&y3)))
    });
    g.bench_function("nsld/greedy_k3", |b| {
        b.iter(|| nsld_greedy(black_box(&x3), black_box(&y3)))
    });
    g.bench_function("nsld/hungarian_k5", |b| {
        b.iter(|| nsld(black_box(&x5), black_box(&y5)))
    });
    g.bench_function("nsld/greedy_k5", |b| {
        b.iter(|| nsld_greedy(black_box(&x5), black_box(&y5)))
    });
    g.bench_function("nsld_within/prune_path", |b| {
        // Length filter rejects before any LD work.
        b.iter(|| {
            nsld_within(
                black_box(&["a"]),
                black_box(&["abcdefgh", "ijklmnop"]),
                0.1,
                Aligning::Hungarian,
            )
        })
    });
    g.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("assignment");
    for n in [4usize, 8, 16] {
        let m = SquareMatrix::from_fn(n, |i, j| ((i * 31 + j * 17) % 23) as u64);
        g.bench_function(format!("hungarian/{n}x{n}"), |b| {
            b.iter(|| hungarian(black_box(&m)))
        });
        g.bench_function(format!("greedy/{n}x{n}"), |b| {
            b.iter(|| greedy(black_box(&m)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_levenshtein, bench_nld, bench_setwise, bench_assignment
}
criterion_main!(benches);
