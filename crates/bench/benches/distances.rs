//! Micro-benchmarks of the distance kernels (the per-pair costs that
//! Sec. III-F's complexity analysis is about).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tsj_assignment::{greedy, hungarian, SquareMatrix};
use tsj_setdist::{nsld, nsld_greedy, nsld_within, Aligning};
use tsj_strdist::{
    jaro_winkler, levenshtein, levenshtein_within, levenshtein_within_slices_banded, nld,
    nld_within,
};

fn bench_levenshtein(c: &mut Criterion) {
    let mut g = c.benchmark_group("levenshtein");
    g.bench_function("ld/short_names", |b| {
        b.iter(|| levenshtein(black_box("thomson"), black_box("thompson")))
    });
    g.bench_function("ld/long_tokens", |b| {
        b.iter(|| {
            levenshtein(
                black_box("krishnamurthy-venkatesan"),
                black_box("krishnamoorthy-venkatesen"),
            )
        })
    });
    g.bench_function("ld_within/hit_k1", |b| {
        b.iter(|| levenshtein_within(black_box("thomson"), black_box("thompson"), 1))
    });
    g.bench_function("ld_within/miss_k1", |b| {
        b.iter(|| levenshtein_within(black_box("barakxyz"), black_box("obamapqr"), 1))
    });
    g.finish();
}

/// A deterministic pseudo-random ASCII string over `[a-z]`.
fn ascii_string(len: usize, seed: u64) -> String {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (b'a' + (state % 26) as u8) as char
        })
        .collect()
}

/// Applies `edits` scattered single-character substitutions to `s`.
fn mutate(s: &str, edits: usize) -> String {
    let mut bytes = s.as_bytes().to_vec();
    let n = bytes.len();
    for e in 0..edits {
        let pos = (e * n) / edits.max(1) + n / (2 * edits.max(1));
        let pos = pos.min(n - 1);
        bytes[pos] = if bytes[pos] == b'z' {
            b'a'
        } else {
            bytes[pos] + 1
        };
    }
    String::from_utf8(bytes).unwrap()
}

/// The verification hot path head-to-head: `levenshtein_within` (which
/// dispatches to the bit-parallel Myers kernels) against the scalar
/// banded DP it replaced, on ASCII verification-shaped workloads —
/// pattern lengths 16–64, thresholds ≤ 8, both accepting pairs (distance
/// just inside `k`) and rejecting pairs (well outside).
fn bench_myers_vs_banded(c: &mut Criterion) {
    let mut g = c.benchmark_group("ld_within_impls");
    for len in [16usize, 32, 64] {
        for k in [1usize, 4, 8] {
            let a = ascii_string(len, len as u64 * 31 + k as u64);
            let hit = mutate(&a, k.min(len / 4).max(1));
            let miss = ascii_string(len, 0xDEAD_0000 + len as u64);
            for (case, b_str) in [("hit", &hit), ("miss", &miss)] {
                g.bench_function(format!("myers/len{len}_k{k}_{case}"), |b| {
                    b.iter(|| levenshtein_within(black_box(&a), black_box(b_str), k))
                });
                g.bench_function(format!("banded/len{len}_k{k}_{case}"), |b| {
                    b.iter(|| {
                        levenshtein_within_slices_banded(
                            black_box(a.as_bytes()),
                            black_box(b_str.as_bytes()),
                            k,
                        )
                    })
                });
            }
        }
    }
    // Beyond one word: the chained-block kernel vs the band.
    let a = ascii_string(256, 7);
    let hit = mutate(&a, 4);
    g.bench_function("myers/len256_k8_hit", |b| {
        b.iter(|| levenshtein_within(black_box(&a), black_box(&hit), 8))
    });
    g.bench_function("banded/len256_k8_hit", |b| {
        b.iter(|| {
            levenshtein_within_slices_banded(black_box(a.as_bytes()), black_box(hit.as_bytes()), 8)
        })
    });
    g.finish();
}

fn bench_nld(c: &mut Criterion) {
    let mut g = c.benchmark_group("nld");
    g.bench_function("nld/full", |b| {
        b.iter(|| nld(black_box("jonathan"), black_box("jonathon")))
    });
    g.bench_function("nld_within/t0.1", |b| {
        b.iter(|| nld_within(black_box("jonathan"), black_box("jonathon"), 0.1))
    });
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| jaro_winkler(black_box("martha"), black_box("marhta")))
    });
    g.finish();
}

fn bench_setwise(c: &mut Criterion) {
    let x3 = ["barak", "hussein", "obama"];
    let y3 = ["burak", "husein", "obamma"];
    let x5 = ["maria", "del", "carmen", "garcia", "lopez"];
    let y5 = ["mariah", "del", "carmen", "garcia", "lopes"];
    let mut g = c.benchmark_group("nsld");
    g.bench_function("nsld/hungarian_k3", |b| {
        b.iter(|| nsld(black_box(&x3), black_box(&y3)))
    });
    g.bench_function("nsld/greedy_k3", |b| {
        b.iter(|| nsld_greedy(black_box(&x3), black_box(&y3)))
    });
    g.bench_function("nsld/hungarian_k5", |b| {
        b.iter(|| nsld(black_box(&x5), black_box(&y5)))
    });
    g.bench_function("nsld/greedy_k5", |b| {
        b.iter(|| nsld_greedy(black_box(&x5), black_box(&y5)))
    });
    g.bench_function("nsld_within/prune_path", |b| {
        // Length filter rejects before any LD work.
        b.iter(|| {
            nsld_within(
                black_box(&["a"]),
                black_box(&["abcdefgh", "ijklmnop"]),
                0.1,
                Aligning::Hungarian,
            )
        })
    });
    g.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("assignment");
    for n in [4usize, 8, 16] {
        let m = SquareMatrix::from_fn(n, |i, j| ((i * 31 + j * 17) % 23) as u64);
        g.bench_function(format!("hungarian/{n}x{n}"), |b| {
            b.iter(|| hungarian(black_box(&m)))
        });
        g.bench_function(format!("greedy/{n}x{n}"), |b| {
            b.iter(|| greedy(black_box(&m)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_levenshtein, bench_myers_vs_banded, bench_nld, bench_setwise, bench_assignment
}
criterion_main!(benches);
