//! End-to-end pipeline benchmarks: the TSJ schemes, the HMJ baseline, and
//! the brute-force reference, all on the same workload (real wall time of
//! the local execution, complementing the simulated-cluster figures).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tsj::{brute_force_self_join, ApproximationScheme, DedupStrategy, TsjConfig, TsjJoiner};
use tsj_datagen::workload;
use tsj_mapreduce::Cluster;
use tsj_metricjoin::{HmjConfig, HmjJoiner};
use tsj_tokenize::{Corpus, NameTokenizer};

fn bench_joins(c: &mut Criterion) {
    let w = workload(1500, 0.3, 7);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let cluster = Cluster::with_machines(64);

    let mut g = c.benchmark_group("join_1500");
    g.sample_size(10);
    for scheme in [
        ApproximationScheme::FuzzyTokenMatching,
        ApproximationScheme::GreedyTokenAligning,
        ApproximationScheme::ExactTokenMatching,
    ] {
        g.bench_function(format!("tsj/{}", scheme.name()), |b| {
            b.iter(|| {
                TsjJoiner::new(&cluster)
                    .self_join(
                        black_box(&corpus),
                        &TsjConfig {
                            threshold: 0.1,
                            max_token_frequency: Some(100),
                            scheme,
                            ..TsjConfig::default()
                        },
                    )
                    .unwrap()
            })
        });
    }
    for dedup in [DedupStrategy::OneString, DedupStrategy::BothStrings] {
        g.bench_function(format!("tsj/dedup_{dedup:?}"), |b| {
            b.iter(|| {
                TsjJoiner::new(&cluster)
                    .self_join(
                        black_box(&corpus),
                        &TsjConfig {
                            threshold: 0.1,
                            max_token_frequency: Some(100),
                            dedup,
                            ..TsjConfig::default()
                        },
                    )
                    .unwrap()
            })
        });
    }
    g.bench_function("hmj", |b| {
        b.iter(|| {
            HmjJoiner::new(
                &cluster,
                HmjConfig {
                    num_centroids: 32,
                    max_partition_size: 256,
                    ..HmjConfig::default()
                },
            )
            .self_join(black_box(&corpus), 0.1)
            .unwrap()
        })
    });
    g.bench_function("brute_force", |b| {
        b.iter(|| brute_force_self_join(black_box(&corpus), 0.1, 8))
    });
    g.finish();
}

/// Ablation D4: filters on vs off — wall time of the verification stage.
fn bench_filter_ablation(c: &mut Criterion) {
    let w = workload(1500, 0.3, 11);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let cluster = Cluster::with_machines(64);
    let mut g = c.benchmark_group("ablation_filters");
    g.sample_size(10);
    for (name, length, histogram) in [
        ("both_filters", true, true),
        ("length_only", true, false),
        ("histogram_only", false, true),
        ("no_filters", false, false),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                TsjJoiner::new(&cluster)
                    .self_join(
                        black_box(&corpus),
                        &TsjConfig {
                            threshold: 0.15,
                            max_token_frequency: Some(100),
                            length_filter: length,
                            histogram_filter: histogram,
                            ..TsjConfig::default()
                        },
                    )
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_joins, bench_filter_ablation
}
criterion_main!(benches);
