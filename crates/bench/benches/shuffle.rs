//! Shuffle-path benchmarks: the collect-then-partition pass the runtime
//! used to do (reconstructed here) vs emit-time partitioning, and a full
//! counting job with and without a map-side combiner.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_mapreduce::{
    fingerprint64, Cluster, ClusterConfig, CostModel, Count, Emitter, FxBuildHasher, OutputSink,
    PartitionedBuffer,
};

const PARTITIONS: usize = 64;

/// A skewed key stream (Zipf-ish over ~2k distinct keys): the shape of
/// `tsj.token_stats` traffic, where a few tokens dominate.
fn skewed_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r: f64 = rng.gen();
            // Cubing biases draws toward low key ids (hot keys).
            (2048.0 * r.powf(3.0)) as u64
        })
        .collect()
}

/// The runtime's pre-refactor shuffle: mappers append to one flat `Vec`,
/// then a single serial pass hashes every record into a partition map.
fn collect_then_partition(keys: &[u64]) -> HashMap<usize, Vec<(u64, u64, u64)>, FxBuildHasher> {
    let flat: Vec<(u64, u64)> = keys.iter().map(|&k| (k, 1u64)).collect();
    let mut partitions: HashMap<usize, Vec<(u64, u64, u64)>, FxBuildHasher> = HashMap::default();
    for (k, v) in flat {
        let h = fingerprint64(&k);
        partitions
            .entry((h % PARTITIONS as u64) as usize)
            .or_default()
            .push((h, k, v));
    }
    partitions
}

/// The refactored shuffle: records are routed at emit time; no serial pass.
fn emit_time_partition(keys: &[u64]) -> PartitionedBuffer<u64, u64> {
    let mut buf: PartitionedBuffer<u64, u64> = PartitionedBuffer::new(PARTITIONS);
    for &k in keys {
        buf.emit(k, 1);
    }
    buf
}

fn bench_partitioning(c: &mut Criterion) {
    let keys = skewed_keys(200_000, 42);
    let mut g = c.benchmark_group("shuffle_partitioning");
    g.sample_size(20);
    g.bench_function("collect_then_partition/200k", |b| {
        b.iter(|| collect_then_partition(black_box(&keys)))
    });
    g.bench_function("emit_time_partition/200k", |b| {
        b.iter(|| emit_time_partition(black_box(&keys)))
    });
    g.finish();
}

fn bench_cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        machines: PARTITIONS,
        threads: 0,
        partitions: 0,
        cost: CostModel::default(),
    })
}

/// End-to-end counting job (the `tsj.token_stats` shape): uncombined, one
/// shuffled record per occurrence; combined, one per distinct key per map
/// task. The assert pins the equivalence the combiner contract promises.
fn bench_counting_job(c: &mut Criterion) {
    let keys = skewed_keys(200_000, 7);
    let cluster = bench_cluster();
    let mut g = c.benchmark_group("count_job");
    g.sample_size(10);
    g.bench_function("uncombined/200k", |b| {
        b.iter(|| {
            cluster
                .run(
                    "bench.count.uncombined",
                    black_box(&keys),
                    |&k, e: &mut Emitter<u64, u64>| e.emit(k, 1),
                    |&k, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                        out.emit((k, vs.iter().sum()));
                    },
                )
                .unwrap()
        })
    });
    g.bench_function("combined/200k", |b| {
        b.iter(|| {
            cluster
                .run_combined(
                    "bench.count.combined",
                    black_box(&keys),
                    |&k, e: &mut Emitter<u64, u64>| e.emit(k, 1),
                    &Count,
                    |&k, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                        out.emit((k, vs.iter().sum()));
                    },
                )
                .unwrap()
        })
    });
    g.finish();

    // Sanity outside the timed loops: identical output, smaller shuffle.
    let plain = cluster
        .run(
            "check.uncombined",
            &keys,
            |&k, e: &mut Emitter<u64, u64>| e.emit(k, 1),
            |&k, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((k, vs.iter().sum()));
            },
        )
        .unwrap();
    let combined = cluster
        .run_combined(
            "check.combined",
            &keys,
            |&k, e: &mut Emitter<u64, u64>| e.emit(k, 1),
            &Count,
            |&k, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((k, vs.iter().sum()));
            },
        )
        .unwrap();
    let sort = |mut v: Vec<(u64, u64)>| {
        v.sort_unstable();
        v
    };
    assert_eq!(sort(plain.output), sort(combined.output));
    assert!(
        combined.stats.shuffle_records < plain.stats.shuffle_records,
        "combiner must shrink the shuffle: {} vs {}",
        combined.stats.shuffle_records,
        plain.stats.shuffle_records
    );
    assert!(
        combined.stats.sim_total_secs < plain.stats.sim_total_secs,
        "post-combine shuffle charging must lower the simulated cluster time"
    );
    println!(
        "count_job shuffle volume: uncombined {} records, combined {} records ({:.1}x saving)",
        plain.stats.shuffle_records,
        combined.stats.shuffle_records,
        plain.stats.shuffle_records as f64 / combined.stats.shuffle_records.max(1) as f64,
    );
    println!(
        "count_job simulated cluster time: uncombined {:.3}s, combined {:.3}s \
         (local wall time can go the other way: map-side combining spends CPU \
         to save shuffle volume, and the in-memory shuffle is free)",
        plain.stats.sim_total_secs, combined.stats.sim_total_secs,
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_partitioning, bench_counting_job
}
criterion_main!(benches);
