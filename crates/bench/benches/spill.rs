//! Memory-bounded shuffle benchmarks: the same counting job run with an
//! unbounded shuffle vs memory-bounded mappers (periodic combine + spill
//! to disk + external sort-merge reduce), at two spill thresholds.
//!
//! The point being measured: bounding mapper memory costs real wall-clock
//! (sorting, serialization, disk I/O) and simulated spill time, but output
//! is identical and per-mapper memory stays capped — the trade a 1 GB-RAM
//! production worker (paper Sec. V) makes on every large job.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_mapreduce::{Cluster, Count, Emitter, JobResult, OutputSink, ShuffleConfig};

/// A skewed key stream (Zipf-ish over ~64k distinct keys): hot keys for
/// the combiner to fold, but a key space wide enough that a map task's
/// post-combine buffer still exceeds the spill thresholds — the regime
/// the memory bound exists for.
fn skewed_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r: f64 = rng.gen();
            (65_536.0 * r.powf(3.0)) as u64
        })
        .collect()
}

fn count_job(cluster: &Cluster, keys: &[u64], name: &str) -> JobResult<(u64, u64)> {
    cluster
        .run_combined(
            name,
            keys,
            |&k, e: &mut Emitter<u64, u64>| e.emit(k, 1),
            &Count,
            |&k, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((k, vs.iter().sum()));
            },
        )
        .unwrap()
}

fn bench_spill_job(c: &mut Criterion) {
    let keys = skewed_keys(200_000, 11);
    let unbounded = Cluster::with_machines(64).with_shuffle_config(ShuffleConfig::unbounded());
    // ~3.1k records per map task: 2048 = a couple of spills per task,
    // 256 = constant spill pressure.
    let bounded =
        Cluster::with_machines(64).with_shuffle_config(ShuffleConfig::bounded(1024, 2048));
    let tiny = Cluster::with_machines(64).with_shuffle_config(ShuffleConfig::bounded(128, 256));

    let mut g = c.benchmark_group("spill_count_job");
    g.sample_size(10);
    g.bench_function("unbounded/200k", |b| {
        b.iter(|| count_job(&unbounded, black_box(&keys), "bench.spill.unbounded"))
    });
    g.bench_function("bounded2048/200k", |b| {
        b.iter(|| count_job(&bounded, black_box(&keys), "bench.spill.bounded"))
    });
    g.bench_function("bounded256/200k", |b| {
        b.iter(|| count_job(&tiny, black_box(&keys), "bench.spill.tiny"))
    });
    g.finish();

    // Sanity + report outside the timed loops: identical output, bounded
    // memory, spilled volume charged.
    let sort = |mut v: Vec<(u64, u64)>| {
        v.sort_unstable();
        v
    };
    let plain = count_job(&unbounded, &keys, "check.unbounded");
    for (cluster, threshold) in [(&bounded, 2048u64), (&tiny, 256)] {
        let spilled = count_job(cluster, &keys, "check.bounded");
        assert_eq!(sort(plain.output.clone()), sort(spilled.output));
        assert!(
            spilled.stats.spilled_records > 0,
            "threshold {threshold} never spilled"
        );
        assert!(spilled.stats.peak_buffered_records <= threshold);
        assert!(spilled.stats.spill_secs > 0.0);
        println!(
            "threshold {threshold}: spilled {} of {} shuffled records ({} KiB), \
             peak mapper buffer {} records, sim {:+.4}s vs unbounded",
            spilled.stats.spilled_records,
            spilled.stats.shuffle_records,
            spilled.stats.spill_bytes / 1024,
            spilled.stats.peak_buffered_records,
            spilled.stats.sim_total_secs - plain.stats.sim_total_secs,
        );
    }
    assert_eq!(plain.stats.spilled_records, 0);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_spill_job
}
criterion_main!(benches);
