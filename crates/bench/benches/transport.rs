//! Shuffle-transport benchmarks: the same counting job run over the
//! in-process segment handoff vs the multi-process file exchange vs the
//! remote network shuffle, with and without mapper spill pressure.
//!
//! The point being measured: the exchanges serialize every post-combine
//! record through the `Spill` wire codec into per-partition run files and
//! stream them back in the reduce merge — real wall-clock (encode, I/O,
//! for `remote` a loopback socket round trip per ranged read, decode)
//! and simulated transport time, for byte-identical output. This is the
//! local stand-in for what a worker NIC would charge on a genuine
//! cluster.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_mapreduce::{
    Cluster, Count, Emitter, FaultConfig, JobResult, OutputSink, ShuffleConfig, Transport,
};

/// A skewed key stream (Zipf-ish over ~64k distinct keys), the same
/// workload shape as `benches/spill.rs` so the two reports compare.
fn skewed_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r: f64 = rng.gen();
            (65_536.0 * r.powf(3.0)) as u64
        })
        .collect()
}

fn count_job(cluster: &Cluster, keys: &[u64], name: &str) -> JobResult<(u64, u64)> {
    cluster
        .run_combined(
            name,
            keys,
            |&k, e: &mut Emitter<u64, u64>| e.emit(k, 1),
            &Count,
            |&k, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((k, vs.iter().sum()));
            },
        )
        .unwrap()
}

fn bench_transport_job(c: &mut Criterion) {
    let keys = skewed_keys(200_000, 11);
    let in_proc = Cluster::with_machines(64).with_shuffle_config(ShuffleConfig::unbounded());
    let multi = Cluster::with_machines(64)
        .with_shuffle_config(ShuffleConfig::unbounded().with_transport(Transport::MultiProcess));
    let multi_spilling = Cluster::with_machines(64).with_shuffle_config(
        ShuffleConfig::bounded(1024, 2048).with_transport(Transport::MultiProcess),
    );
    let remote = Cluster::with_machines(64)
        .with_shuffle_config(ShuffleConfig::unbounded().with_transport(Transport::Remote));

    let mut g = c.benchmark_group("transport_count_job");
    g.sample_size(10);
    g.bench_function("in-process/200k", |b| {
        b.iter(|| count_job(&in_proc, black_box(&keys), "bench.transport.inprocess"))
    });
    g.bench_function("multi-process/200k", |b| {
        b.iter(|| count_job(&multi, black_box(&keys), "bench.transport.multiprocess"))
    });
    g.bench_function("multi-process+spill2048/200k", |b| {
        b.iter(|| {
            count_job(
                &multi_spilling,
                black_box(&keys),
                "bench.transport.spilling",
            )
        })
    });
    g.bench_function("remote/200k", |b| {
        b.iter(|| count_job(&remote, black_box(&keys), "bench.transport.remote"))
    });
    g.finish();

    // Sanity + report outside the timed loops: identical output, bytes
    // accounted and charged.
    let sort = |mut v: Vec<(u64, u64)>| {
        v.sort_unstable();
        v
    };
    let plain = count_job(&in_proc, &keys, "check.inprocess");
    assert_eq!(plain.stats.transport_bytes, 0);
    for (cluster, label) in [
        (&multi, "unbounded"),
        (&multi_spilling, "spill2048"),
        (&remote, "unbounded"),
    ] {
        let exchanged = count_job(cluster, &keys, "check.exchange");
        assert_eq!(sort(plain.output.clone()), sort(exchanged.output));
        assert!(exchanged.stats.transport_bytes > 0);
        assert!(exchanged.stats.transport_secs > 0.0);
        // v2 framing pin: a (u64, u64) record frames as 1 B length +
        // 1 B fingerprint delta + 16 B payload = 18 B/record (the v1
        // fixed frame cost 28). Regressing past 20 means the compact
        // framing broke. The remote exchange ships the identical run
        // bytes, so the same pin covers it.
        let b_per_rec =
            exchanged.stats.transport_bytes as f64 / exchanged.stats.shuffle_records.max(1) as f64;
        assert!(
            b_per_rec < 20.0,
            "{label}: exchange cost {b_per_rec:.1} B/record exceeds the v2 framing budget"
        );
        println!(
            "{} ({label}): {} KiB exchanged for {} shuffled records \
             ({:.1} B/record), sim {:+.4}s vs in-process{}",
            exchanged.stats.transport,
            exchanged.stats.transport_bytes / 1024,
            exchanged.stats.shuffle_records,
            b_per_rec,
            exchanged.stats.sim_total_secs - plain.stats.sim_total_secs,
            if exchanged.stats.fetch_requests > 0 {
                format!(
                    ", {} fetch rpcs / {} retries",
                    exchanged.stats.fetch_requests, exchanged.stats.fetch_retries
                )
            } else {
                String::new()
            },
        );
    }

    // The fault-injected remote run: every 5th server request dropped
    // and a 200µs stall on the rest. Retries must absorb the faults
    // without changing a byte of output or of exchanged volume.
    let faulted = Cluster::with_machines(64).with_shuffle_config(
        ShuffleConfig::unbounded()
            .with_transport(Transport::Remote)
            .with_net_fault(FaultConfig {
                drop_nth: 5,
                stall_us: 200,
                seed: 3,
            }),
    );
    let clean = count_job(&remote, &keys, "check.remote.clean");
    let shaken = count_job(&faulted, &keys, "check.remote.faulted");
    assert_eq!(sort(clean.output), sort(shaken.output));
    assert_eq!(clean.stats.transport_bytes, shaken.stats.transport_bytes);
    assert!(shaken.stats.fetch_retries > 0);
    println!(
        "remote (drop 1/5 + 200µs stall): {} fetch rpcs, {} retries, \
         output and exchanged volume unchanged",
        shaken.stats.fetch_requests, shaken.stats.fetch_retries,
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_transport_job
}
criterion_main!(benches);
