//! Ablations of the design choices called out in DESIGN.md §5.
//!
//! * **D2** — even-partition vs fixed-width segmenting: distinct chunk
//!   count (index size) over the corpus's token space.
//! * **D3** — the paper's hash-parity key-selection rule vs always-smaller
//!   key: reduce-side load balance of the one-string dedup job.
//! * **D4** — filter contributions: candidate survival through length /
//!   histogram pruning and the verification count with each filter setting.
//! * **D5** — Hungarian vs greedy verification: result deltas on the
//!   survivor set (the runtime side lives in the criterion benches).

use std::collections::HashMap;

use tsj::{pair_set, recall, ApproximationScheme, TsjConfig, TsjJoiner};
use tsj_bench::FigParams;
use tsj_datagen::workload;
use tsj_mapreduce::{fingerprint64, Cluster};
use tsj_passjoin::even_partitions;
use tsj_strdist::segments_for_indexed_len;
use tsj_tokenize::{Corpus, NameTokenizer};

fn main() {
    let mut p = FigParams::from_env();
    p.n = p.n.min(8000); // ablations are about ratios; keep them quick
    let w = workload(p.n, p.ring_fraction, p.seed);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let cluster = p.cluster(p.default_machines);

    ablate_partition_scheme(&corpus, p.default_t);
    ablate_key_rule(&corpus, &cluster, &p);
    ablate_filters(&corpus, &cluster, &p);
    ablate_aligning(&corpus, &cluster, &p);
}

/// D2: chunk-space size under even vs fixed-width partitioning.
fn ablate_partition_scheme(corpus: &Corpus, t: f64) {
    let mut even_chunks: std::collections::HashSet<(u32, u16, u64)> = Default::default();
    let mut fixed_chunks: std::collections::HashSet<(u32, u16, u64)> = Default::default();
    for tok in corpus.token_ids() {
        let text: Vec<char> = corpus.token_text(tok).chars().collect();
        let l = text.len();
        if l == 0 {
            continue;
        }
        let parts = segments_for_indexed_len(l, t).min(l);
        // Even-partition scheme (the paper's choice).
        for (i, (start, len)) in even_partitions(l, parts).into_iter().enumerate() {
            even_chunks.insert((l as u32, i as u16, fingerprint64(&text[start..start + len])));
        }
        // Fixed-width alternative: ⌈l/parts⌉-wide segments, last one ragged.
        let width = l.div_ceil(parts);
        let mut start = 0;
        let mut i = 0u16;
        while start < l {
            let end = (start + width).min(l);
            fixed_chunks.insert((l as u32, i, fingerprint64(&text[start..end])));
            start = end;
            i += 1;
        }
    }
    println!("# ablation D2: segment scheme (chunk-space size, smaller = cheaper shuffle)");
    println!("even-partition\t{}", even_chunks.len());
    println!("fixed-width\t{}", fixed_chunks.len());
}

/// D3: key-side load balance of the one-string grouping rule.
fn ablate_key_rule(corpus: &Corpus, cluster: &Cluster, p: &FigParams) {
    // Generate the candidate pairs once via the real pipeline (fuzzy).
    let out = TsjJoiner::new(cluster)
        .self_join(
            corpus,
            &TsjConfig {
                threshold: p.default_t,
                max_token_frequency: Some(p.default_m),
                ..TsjConfig::default()
            },
        )
        .unwrap();
    // Reconstruct pair keys under both rules from the verified pairs (a
    // proxy for the candidate distribution with identical structure).
    let mut paper_rule: HashMap<u32, u64> = HashMap::new();
    let mut min_rule: HashMap<u32, u64> = HashMap::new();
    for pair in &out.pairs {
        let (a, b) = (pair.a.0, pair.b.0);
        let (ha, hb) = (fingerprint64(&a), fingerprint64(&b));
        let key = if u64::from(ha < hb) == ha.wrapping_add(hb) % 2 {
            a
        } else {
            b
        };
        *paper_rule.entry(key).or_insert(0) += 1;
        *min_rule.entry(a.min(b)).or_insert(0) += 1;
    }
    let max_of = |m: &HashMap<u32, u64>| m.values().copied().max().unwrap_or(0);
    println!(
        "\n# ablation D3: one-string key rule (max candidates on one key, lower = better balance)"
    );
    println!("paper-hash-parity\t{}", max_of(&paper_rule));
    println!("always-smaller-id\t{}", max_of(&min_rule));
}

/// D4: per-filter candidate survival.
fn ablate_filters(corpus: &Corpus, cluster: &Cluster, p: &FigParams) {
    println!("\n# ablation D4: filter survival (distinct candidates -> verified)");
    for (name, length, histogram) in [
        ("both", true, true),
        ("length-only", true, false),
        ("histogram-only", false, true),
        ("none", false, false),
    ] {
        let out = TsjJoiner::new(cluster)
            .self_join(
                corpus,
                &TsjConfig {
                    threshold: p.default_t,
                    max_token_frequency: Some(p.default_m),
                    length_filter: length,
                    histogram_filter: histogram,
                    ..TsjConfig::default()
                },
            )
            .unwrap();
        println!(
            "{name}\tcandidates={}\tpruned_len={}\tpruned_hist={}\tverified={}\tpairs={}",
            out.report.counter("candidates_distinct"),
            out.report.counter("pruned_length"),
            out.report.counter("pruned_histogram"),
            out.report.counter("verified"),
            out.pairs.len(),
        );
    }
}

/// D5: Hungarian vs greedy result deltas.
fn ablate_aligning(corpus: &Corpus, cluster: &Cluster, p: &FigParams) {
    let join = |scheme| {
        TsjJoiner::new(cluster)
            .self_join(
                corpus,
                &TsjConfig {
                    threshold: 0.2, // wide threshold stresses the aligning
                    max_token_frequency: Some(p.default_m),
                    scheme,
                    ..TsjConfig::default()
                },
            )
            .unwrap()
    };
    let fuzzy = join(ApproximationScheme::FuzzyTokenMatching);
    let greedy = join(ApproximationScheme::GreedyTokenAligning);
    println!("\n# ablation D5: aligning (T = 0.2)");
    println!(
        "hungarian\tpairs={}\tsim_secs={:.1}",
        fuzzy.pairs.len(),
        fuzzy.sim_secs()
    );
    println!(
        "greedy\tpairs={}\tsim_secs={:.1}\trecall_vs_hungarian={:.6}\tsubset={}",
        greedy.pairs.len(),
        greedy.sim_secs(),
        recall(&greedy.pairs, &fuzzy.pairs),
        pair_set(&greedy.pairs).is_subset(&pair_set(&fuzzy.pairs)),
    );
}
