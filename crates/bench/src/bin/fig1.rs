//! Regenerates Figure 1 of the paper. See crate docs for env knobs.
fn main() {
    let params = tsj_bench::FigParams::from_env();
    tsj_bench::figures::fig1(&params).print_tsv();
}
