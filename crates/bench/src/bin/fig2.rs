//! Regenerates Figure 2 of the paper. See crate docs for env knobs.
fn main() {
    let params = tsj_bench::FigParams::from_env();
    tsj_bench::figures::fig2(&params).print_tsv();
}
