//! Regenerates Figure 3 of the paper. See crate docs for env knobs.
fn main() {
    let params = tsj_bench::FigParams::from_env();
    tsj_bench::figures::fig3(&params).print_tsv();
}
