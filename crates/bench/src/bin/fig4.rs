//! Regenerates Figure 4 of the paper. See crate docs for env knobs.
fn main() {
    let params = tsj_bench::FigParams::from_env();
    tsj_bench::figures::fig4(&params).print_tsv();
}
