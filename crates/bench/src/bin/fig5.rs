//! Regenerates Figure 5 of the paper. See crate docs for env knobs.
fn main() {
    let params = tsj_bench::FigParams::from_env();
    tsj_bench::figures::fig5(&params).print_tsv();
}
