//! Measures the cross-stage overlap win: real wall-clock of the default
//! figure join under lazy DAG execution vs eager stage-at-a-time
//! execution, per worker thread count (see EXPERIMENTS.md). Env knobs as
//! in the other figure bins (`TSJ_FIG_N`, `TSJ_FIG_SEED`, …).
fn main() {
    let params = tsj_bench::FigParams::from_env();
    tsj_bench::figures::fig_overlap(&params).print_tsv();
}
