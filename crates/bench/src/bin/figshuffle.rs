//! Regenerates the shuffle-volume figure (emitted vs shuffled vs spilled
//! records per threshold `T`). See crate docs for env knobs, plus
//! `TSJ_FIG_SPILL_THRESHOLD` for the memory-bounded series.
fn main() {
    let params = tsj_bench::FigParams::from_env();
    tsj_bench::figures::fig_shuffle(&params).print_tsv();
}
