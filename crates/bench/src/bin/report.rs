//! Prints the per-job pipeline report of one TSJ join (debug/inspection).
use tsj::{ApproximationScheme, DedupStrategy, TsjConfig, TsjJoiner};
use tsj_bench::FigParams;
use tsj_tokenize::{Corpus, NameTokenizer};

fn main() {
    let p = FigParams::from_env();
    let w = tsj_datagen::workload(p.n, p.ring_fraction, p.seed);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    println!("n={} distinct_tokens={}", corpus.len(), corpus.num_tokens());
    let cluster = p.cluster(p.default_machines);
    for scheme in [
        ApproximationScheme::FuzzyTokenMatching,
        ApproximationScheme::ExactTokenMatching,
    ] {
        let out = TsjJoiner::new(&cluster)
            .self_join(
                &corpus,
                &TsjConfig {
                    threshold: p.default_t,
                    max_token_frequency: Some(p.default_m),
                    scheme,
                    dedup: DedupStrategy::OneString,
                    ..TsjConfig::default()
                },
            )
            .unwrap();
        println!(
            "\n=== {} : {} pairs, {:.1} sim secs",
            scheme.name(),
            out.pairs.len(),
            out.sim_secs()
        );
        println!("{}", out.report);
        // The dataset layer's headline number (EXPERIMENTS.md): records
        // crossing the driver boundary, vs what the collect-based
        // chaining (`self_join_collected`) materializes by construction
        // — every job's input + output.
        let collected: u64 = out
            .report
            .jobs()
            .iter()
            .map(|j| j.input_records + j.output_records)
            .sum();
        println!(
            "driver-boundary records: {} chained vs {} collect-based ({:.1}x less)",
            out.report.total_driver_records(),
            collected,
            collected as f64 / out.report.total_driver_records().max(1) as f64
        );
    }
}
