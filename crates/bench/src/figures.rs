//! The per-figure reproduction harnesses.

use tsj::{recall, ApproximationScheme, DedupStrategy, JoinOutput, TsjConfig, TsjJoiner};
use tsj_datagen::{roc_dataset, workload};
use tsj_fuzzyset::{fuzzy_distance, roc_curve, FuzzyMeasure, TokenWeights};
use tsj_metricjoin::{HmjConfig, HmjJoiner};
use tsj_setdist::nsld;
use tsj_tokenize::{Corpus, NameTokenizer, Tokenizer};

use crate::params::FigParams;

/// One data point of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Series name (e.g. `"greedy-token-aligning"`).
    pub series: String,
    /// X coordinate (machines, T, M, or FPR).
    pub x: f64,
    /// Y coordinate (simulated seconds, pair count, or TPR).
    pub y: f64,
}

/// A regenerated figure: rows plus free-form notes (speedups, recalls,
/// AUCs) matching the claims the paper states in prose.
#[derive(Debug, Clone)]
pub struct FigData {
    pub title: String,
    pub xlabel: String,
    pub ylabel: String,
    pub rows: Vec<Row>,
    pub notes: Vec<String>,
}

impl FigData {
    /// Prints the figure as TSV (`series⟨TAB⟩x⟨TAB⟩y`) with `#` headers.
    pub fn print_tsv(&self) {
        use std::io::Write;
        let stdout = std::io::stdout();
        let mut w = stdout.lock();
        writeln!(w, "# {}", self.title).unwrap();
        writeln!(w, "# x = {}, y = {}", self.xlabel, self.ylabel).unwrap();
        writeln!(w, "series\tx\ty").unwrap();
        for r in &self.rows {
            writeln!(w, "{}\t{}\t{}", r.series, r.x, r.y).unwrap();
        }
        for n in &self.notes {
            writeln!(w, "# note: {n}").unwrap();
        }
    }

    /// The y values of one series, ordered by x.
    pub fn series(&self, name: &str) -> Vec<(f64, f64)> {
        let mut v: Vec<(f64, f64)> = self
            .rows
            .iter()
            .filter(|r| r.series == name)
            .map(|r| (r.x, r.y))
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v
    }
}

fn build_corpus(p: &FigParams) -> Corpus {
    let w = workload(p.n, p.ring_fraction, p.seed);
    Corpus::build(&w.strings, &NameTokenizer::default())
}

fn run_join(
    corpus: &Corpus,
    p: &FigParams,
    machines: usize,
    t: f64,
    m: usize,
    scheme: ApproximationScheme,
    dedup: DedupStrategy,
) -> JoinOutput {
    let cluster = p.cluster(machines);
    TsjJoiner::new(&cluster)
        .self_join(
            corpus,
            &TsjConfig {
                threshold: t,
                max_token_frequency: Some(m),
                scheme,
                dedup,
                ..TsjConfig::default()
            },
        )
        .expect("join completes")
}

/// **Fig. 1** — TSJ runtime vs machines, grouping-on-one-string vs
/// grouping-on-both-strings.
///
/// Paper claims: both scale out well (≈3.8× speedup for 10× machines);
/// one-string consistently faster by 13–32%.
pub fn fig1(p: &FigParams) -> FigData {
    let corpus = build_corpus(p);
    let mut rows = Vec::new();
    for &machines in &p.machines_sweep {
        for (dedup, series) in [
            (DedupStrategy::OneString, "grouping-on-one-string"),
            (DedupStrategy::BothStrings, "grouping-on-both-strings"),
        ] {
            let out = run_join(
                &corpus,
                p,
                machines,
                p.default_t,
                p.default_m,
                ApproximationScheme::FuzzyTokenMatching,
                dedup,
            );
            rows.push(Row {
                series: series.into(),
                x: machines as f64,
                y: out.sim_secs(),
            });
        }
    }
    let mut fig = FigData {
        title: "Fig 1: TSJ runtime vs machines and dedup strategy".into(),
        xlabel: "machines".into(),
        ylabel: "simulated seconds".into(),
        rows,
        notes: Vec::new(),
    };
    for series in ["grouping-on-one-string", "grouping-on-both-strings"] {
        let s = fig.series(series);
        if let (Some(first), Some(last)) = (s.first(), s.last()) {
            fig.notes.push(format!(
                "{series}: speedup {:.2}x from {}x machines (paper: 3.8x from 10x)",
                first.1 / last.1,
                (last.0 / first.0) as u64,
            ));
        }
    }
    let one = fig.series("grouping-on-one-string");
    let both = fig.series("grouping-on-both-strings");
    if !one.is_empty() && one.len() == both.len() {
        let gaps: Vec<f64> = one
            .iter()
            .zip(&both)
            .map(|((_, o), (_, b))| (b - o) / b * 100.0)
            .collect();
        fig.notes.push(format!(
            "one-string faster by {:.0}%..{:.0}% (paper: 13%..32%)",
            gaps.iter().copied().fold(f64::INFINITY, f64::min),
            gaps.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ));
    }
    fig
}

const SCHEMES: [ApproximationScheme; 3] = [
    ApproximationScheme::FuzzyTokenMatching,
    ApproximationScheme::GreedyTokenAligning,
    ApproximationScheme::ExactTokenMatching,
];

/// **Fig. 2** — runtime vs `T` for the three token matching/aligning
/// schemes. Paper: greedy saves ≈13% over fuzzy (more at higher T);
/// exact saves ≈60% and is nearly flat in T.
pub fn fig2(p: &FigParams) -> FigData {
    let corpus = build_corpus(p);
    let mut rows = Vec::new();
    for &t in &p.thresholds {
        for scheme in SCHEMES {
            let out = run_join(
                &corpus,
                p,
                p.default_machines,
                t,
                p.default_m,
                scheme,
                DedupStrategy::OneString,
            );
            rows.push(Row {
                series: scheme.name().into(),
                x: t,
                y: out.sim_secs(),
            });
        }
    }
    let mut fig = FigData {
        title: "Fig 2: TSJ runtime vs NSLD threshold T".into(),
        xlabel: "T".into(),
        ylabel: "simulated seconds".into(),
        rows,
        notes: Vec::new(),
    };
    push_saving_notes(&mut fig, "13% (greedy), 60% (exact)");
    fig
}

/// **Fig. 3** — runtime vs `M`. Paper: greedy saves ≈9%, exact ≈33%,
/// both fairly stable across M.
pub fn fig3(p: &FigParams) -> FigData {
    let corpus = build_corpus(p);
    let mut rows = Vec::new();
    for &m in &p.m_values {
        for scheme in SCHEMES {
            let out = run_join(
                &corpus,
                p,
                p.default_machines,
                p.default_t,
                m,
                scheme,
                DedupStrategy::OneString,
            );
            rows.push(Row {
                series: scheme.name().into(),
                x: m as f64,
                y: out.sim_secs(),
            });
        }
    }
    let mut fig = FigData {
        title: "Fig 3: TSJ runtime vs max token frequency M".into(),
        xlabel: "M".into(),
        ylabel: "simulated seconds".into(),
        rows,
        notes: Vec::new(),
    };
    push_saving_notes(&mut fig, "9% (greedy), 33% (exact)");
    fig
}

fn push_saving_notes(fig: &mut FigData, paper: &str) {
    let fuzzy = fig.series("fuzzy-token-matching");
    for name in ["greedy-token-aligning", "exact-token-matching"] {
        let s = fig.series(name);
        if s.len() != fuzzy.len() || s.is_empty() {
            continue;
        }
        let mean_saving: f64 = fuzzy
            .iter()
            .zip(&s)
            .map(|((_, f), (_, a))| (f - a) / f * 100.0)
            .sum::<f64>()
            / s.len() as f64;
        fig.notes.push(format!(
            "{name}: mean runtime saving over fuzzy {mean_saving:.0}% (paper: {paper})"
        ));
    }
}

/// **Fig. 4** — number of discovered pairs vs `T` per scheme, with recall
/// against fuzzy in the notes. Paper: at T = 0.225, greedy recall 0.99993,
/// exact recall 0.86655; both 1.0 at T = 0.025.
pub fn fig4(p: &FigParams) -> FigData {
    let corpus = build_corpus(p);
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for &t in &p.thresholds {
        let mut fuzzy_pairs = None;
        for scheme in SCHEMES {
            let out = run_join(
                &corpus,
                p,
                p.default_machines,
                t,
                p.default_m,
                scheme,
                DedupStrategy::OneString,
            );
            rows.push(Row {
                series: scheme.name().into(),
                x: t,
                y: out.pairs.len() as f64,
            });
            match scheme {
                ApproximationScheme::FuzzyTokenMatching => fuzzy_pairs = Some(out.pairs),
                _ => {
                    let r = recall(&out.pairs, fuzzy_pairs.as_ref().expect("fuzzy ran first"));
                    notes.push(format!("T={t:.3} {}: recall {r:.5}", scheme.name()));
                }
            }
        }
    }
    FigData {
        title: "Fig 4: discovered pairs vs NSLD threshold T".into(),
        xlabel: "T".into(),
        ylabel: "similar pairs".into(),
        rows,
        notes,
    }
}

/// **Fig. 5** — number of discovered pairs vs `M` per scheme. Paper:
/// greedy recall ≈0.999999 across M; exact between 0.974 and 0.985.
pub fn fig5(p: &FigParams) -> FigData {
    let corpus = build_corpus(p);
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for &m in &p.m_values {
        let mut fuzzy_pairs = None;
        for scheme in SCHEMES {
            let out = run_join(
                &corpus,
                p,
                p.default_machines,
                p.default_t,
                m,
                scheme,
                DedupStrategy::OneString,
            );
            rows.push(Row {
                series: scheme.name().into(),
                x: m as f64,
                y: out.pairs.len() as f64,
            });
            match scheme {
                ApproximationScheme::FuzzyTokenMatching => fuzzy_pairs = Some(out.pairs),
                _ => {
                    let r = recall(&out.pairs, fuzzy_pairs.as_ref().expect("fuzzy ran first"));
                    notes.push(format!("M={m} {}: recall {r:.5}", scheme.name()));
                }
            }
        }
    }
    FigData {
        title: "Fig 5: discovered pairs vs max token frequency M".into(),
        xlabel: "M".into(),
        ylabel: "similar pairs".into(),
        rows,
        notes,
    }
}

/// **Fig. 6** — ROC curves of NSLD vs weighted FJaccard / FCosine / FDice
/// on labelled name changes. Paper: NSLD dominates.
pub fn fig6(p: &FigParams) -> FigData {
    let samples = roc_dataset(p.roc_samples, p.seed);
    let corpus = Corpus::build(
        samples
            .iter()
            .flat_map(|s| [s.old.as_str(), s.new.as_str()]),
        &NameTokenizer::default(),
    );
    let weights = TokenWeights::from_corpus(&corpus);
    let tokenizer = NameTokenizer::default();
    let delta = 0.8;

    let mut rows = Vec::new();
    let mut notes = Vec::new();
    type DistFn = Box<dyn Fn(&[String], &[String]) -> f64>;
    let measures: [(&str, DistFn); 4] = [
        ("NSLD", Box::new(|o: &[String], n: &[String]| nsld(o, n))),
        (
            "weighted FJaccard",
            Box::new(move |o, n| fuzzy_distance(o, n, &weights, delta, FuzzyMeasure::Jaccard)),
        ),
        (
            "weighted FCosine",
            Box::new({
                let weights = TokenWeights::from_corpus(&corpus);
                move |o, n| fuzzy_distance(o, n, &weights, delta, FuzzyMeasure::Cosine)
            }),
        ),
        (
            "weighted FDice",
            Box::new({
                let weights = TokenWeights::from_corpus(&corpus);
                move |o, n| fuzzy_distance(o, n, &weights, delta, FuzzyMeasure::Dice)
            }),
        ),
    ];
    let tokenized: Vec<(Vec<String>, Vec<String>, bool)> = samples
        .iter()
        .map(|s| {
            (
                tokenizer.tokenize(&s.old),
                tokenizer.tokenize(&s.new),
                s.fraud,
            )
        })
        .collect();
    for (name, dist) in &measures {
        let scored: Vec<(f64, bool)> = tokenized
            .iter()
            .map(|(o, n, fraud)| (dist(o, n), *fraud))
            .collect();
        let curve = roc_curve(&scored);
        notes.push(format!("{name}: AUC {:.4}", curve.auc()));
        // Downsample the curve for readable TSV output.
        let step = (curve.points.len() / 200).max(1);
        for (i, (fpr, tpr)) in curve.points.iter().enumerate() {
            if i % step == 0 || i + 1 == curve.points.len() {
                rows.push(Row {
                    series: (*name).into(),
                    x: *fpr,
                    y: *tpr,
                });
            }
        }
    }
    FigData {
        title: "Fig 6: ROC of NSLD vs weighted set-based fuzzy measures".into(),
        xlabel: "false positive rate".into(),
        ylabel: "true positive rate".into(),
        rows,
        notes,
    }
}

/// **Shuffle-volume figure** (no paper counterpart; ROADMAP item) — per
/// threshold `T`, the pipeline-total intermediate records at each stage of
/// the paper's cost analysis (Sec. III-A/III-G: "the framework's runtime
/// is dominated by shuffle volume"): pairs emitted by mappers, records
/// actually shuffled after map-side combining, and — for the same join run
/// with memory-bounded mappers — records that travelled via disk spill
/// segments, plus the simulated cost of bounding.
///
/// The gap between `emitted` and `shuffled` is the combiner saving the
/// cost model charges for; `spilled` shows how much of the shuffle a
/// 1 GB-RAM-style worker would push through its local disk. A third run
/// of the same join over the `MultiProcess` transport measures the
/// exchange: its serialized bytes per `T` (the `transport KiB` series and
/// notes — the volume a real cluster's interconnect would carry) and its
/// simulated cost, with output asserted identical to both other runs.
pub fn fig_shuffle(p: &FigParams) -> FigData {
    let corpus = build_corpus(p);
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    // The per-job breakdown note reuses the sweep's run nearest the
    // default operating point instead of paying for an extra join.
    let breakdown_t = p
        .thresholds
        .iter()
        .copied()
        .min_by(|a, b| (a - p.default_t).abs().total_cmp(&(b - p.default_t).abs()))
        .unwrap_or(p.default_t);
    let mut breakdown: Option<JoinOutput> = None;
    for &t in &p.thresholds {
        let unbounded = TsjJoiner::new(&p.cluster(p.default_machines))
            .self_join(
                &corpus,
                &TsjConfig {
                    threshold: t,
                    max_token_frequency: Some(p.default_m),
                    ..TsjConfig::default()
                },
            )
            .expect("unbounded join completes");
        let bounded = TsjJoiner::new(&p.bounded_cluster(p.default_machines))
            .self_join(
                &corpus,
                &TsjConfig {
                    threshold: t,
                    max_token_frequency: Some(p.default_m),
                    ..TsjConfig::default()
                },
            )
            .expect("bounded join completes");
        assert_eq!(
            unbounded.pairs, bounded.pairs,
            "bounded mappers must not change the join result"
        );
        let transported = TsjJoiner::new(&p.multiprocess_cluster(p.default_machines))
            .self_join(
                &corpus,
                &TsjConfig {
                    threshold: t,
                    max_token_frequency: Some(p.default_m),
                    ..TsjConfig::default()
                },
            )
            .expect("multi-process join completes");
        assert_eq!(
            unbounded.pairs, transported.pairs,
            "the shuffle transport must not change the join result"
        );
        for (series, y) in [
            ("emitted", unbounded.report.total_map_output_records()),
            ("shuffled", unbounded.report.total_shuffle_records()),
            (
                "spilled (bounded mappers)",
                bounded.report.total_spilled_records(),
            ),
            (
                "transport KiB (multi-process)",
                transported.report.total_transport_bytes() / 1024,
            ),
        ] {
            rows.push(Row {
                series: series.into(),
                x: t,
                y: y as f64,
            });
        }
        notes.push(format!(
            "T={t:.3}: combiner saves {:.1}% of shuffle volume; bounding mappers at \
             {} records spills {} records ({} KiB) and costs {:+.1}% simulated time",
            100.0
                * (1.0
                    - unbounded.report.total_shuffle_records() as f64
                        / unbounded.report.total_map_output_records().max(1) as f64),
            p.spill_threshold,
            bounded.report.total_spilled_records(),
            bounded.report.total_spill_bytes() / 1024,
            100.0 * (bounded.report.total_sim_secs() / unbounded.report.total_sim_secs() - 1.0),
        ));
        notes.push(format!(
            "T={t:.3}: multi-process exchange moves {} KiB for {} shuffled records \
             ({:.1} B/record) and costs {:+.1}% simulated time over bounded in-process",
            transported.report.total_transport_bytes() / 1024,
            transported.report.total_shuffle_records(),
            transported.report.total_transport_bytes() as f64
                / transported.report.total_shuffle_records().max(1) as f64,
            100.0 * (transported.report.total_sim_secs() / bounded.report.total_sim_secs() - 1.0),
        ));
        if t == breakdown_t {
            breakdown = Some(unbounded);
        }
    }
    // Per-job breakdown near the default operating point (the shape the
    // ROADMAP asks to compare against the paper's cost analysis).
    if let Some(at_default) = &breakdown {
        for j in at_default.report.jobs() {
            notes.push(format!(
                "T={breakdown_t:.3} {}: emitted {}, shuffled {} ({:.1}% saved)",
                j.name,
                j.map_output_records,
                j.shuffle_records,
                100.0 * (1.0 - j.shuffle_records as f64 / j.map_output_records.max(1) as f64),
            ));
        }
    }
    FigData {
        title: "Shuffle volume: emitted vs shuffled vs spilled, per NSLD threshold T".into(),
        xlabel: "T".into(),
        ylabel: "records".into(),
        rows,
        notes,
    }
}

/// **Overlap figure** (EXPERIMENTS.md) — real wall-clock of the default
/// figure join under lazy DAG execution (cross-stage overlap on the
/// shared worker pool) vs eager stage-at-a-time execution, per thread
/// count. Both modes produce byte-identical pairs (asserted); the delta
/// is pure scheduling: an upstream stage's reduce tail no longer idles
/// cores that the downstream map wave could use. Wall-clock is the
/// minimum of three runs per point (the usual best-of-n discipline for
/// wall measurements).
pub fn fig_overlap(p: &FigParams) -> FigData {
    use std::time::Instant;
    use tsj_mapreduce::DatasetMode;

    let corpus = build_corpus(p);
    let cfg = TsjConfig {
        threshold: p.default_t,
        max_token_frequency: Some(p.default_m),
        ..TsjConfig::default()
    };
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let threads_sweep: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| p.threads == 0 || t <= p.threads)
        .collect();
    for &threads in &threads_sweep {
        let mut cluster = p.cluster(p.default_machines);
        let mut cluster_cfg = *cluster.config();
        cluster_cfg.threads = threads;
        cluster = tsj_mapreduce::Cluster::new(cluster_cfg)
            .with_shuffle_config(cluster.shuffle_config().clone());
        let timed = |mode: DatasetMode| {
            let c = cluster.clone().with_dataset_mode(mode);
            let joiner = TsjJoiner::new(&c);
            let mut best = f64::INFINITY;
            let mut out = None;
            for _ in 0..3 {
                let start = Instant::now();
                let run = joiner.self_join(&corpus, &cfg).expect("join completes");
                best = best.min(start.elapsed().as_secs_f64());
                out = Some(run);
            }
            (best, out.expect("three runs happened"))
        };
        let (lazy_secs, lazy) = timed(DatasetMode::Lazy);
        let (eager_secs, eager) = timed(DatasetMode::Eager);
        assert_eq!(
            lazy.pairs, eager.pairs,
            "overlap must not change the join result"
        );
        rows.push(Row {
            series: "lazy (overlapped)".into(),
            x: threads as f64,
            y: lazy_secs,
        });
        rows.push(Row {
            series: "eager (stage barriers)".into(),
            x: threads as f64,
            y: eager_secs,
        });
        notes.push(format!(
            "threads={threads}: lazy {lazy_secs:.3}s vs eager {eager_secs:.3}s \
             ({:+.1}% wall-clock)",
            100.0 * (lazy_secs / eager_secs - 1.0),
        ));
    }
    // ---- Stall-bound series --------------------------------------------
    // The join above is pure compute, so on a single-core host (or a
    // fully load-balanced wave) there is no idle capacity for the
    // scheduler to reclaim and lazy ≈ eager. The regime the DAG exploits
    // is *underutilized* workers: a straggling upstream reduce task —
    // here stalled on modeled remote-storage latency, the dominant tail
    // on real clusters — while finished partitions' downstream work sits
    // behind the stage barrier. This series runs a candidate→verify
    // pipeline over the same corpus: stage A groups postings by token and
    // emits candidate pairs, charging each group a blocking stall of
    // `TSJ_FIG_STALL_US` (default 20 µs) per grouped record; stage B
    // *map-side verifies* every candidate with a real NSLD computation.
    // With `partitions = threads`, token skew makes one reduce task a
    // straggler, and the lazy scheduler verifies finished partitions
    // inside its stall window.
    let stall_us: u64 = std::env::var("TSJ_FIG_STALL_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let string_ids: Vec<u32> = (0..corpus.len() as u32).collect();
    // The two-stage candidate→verify pipeline the remaining series run on
    // a given cluster (the scheduling regime under test lives entirely in
    // the cluster's configuration).
    let run_pipeline = |c: &tsj_mapreduce::Cluster| {
        let corpus = &corpus;
        c.input(&string_ids)
            .map_reduce(
                "overlap.candidates",
                |&s, e: &mut tsj_mapreduce::Emitter<u32, u32>| {
                    for &t in corpus.tokens(tsj_tokenize::StringId(s)) {
                        e.emit(t.0, s);
                    }
                },
                |_t: &u32, mut sids: Vec<u32>, out: &mut tsj_mapreduce::OutputSink<(u32, u32)>| {
                    // Modeled remote read: latency per grouped
                    // posting (a real blocking wait, like a
                    // storage fetch on the paper's cluster).
                    std::thread::sleep(std::time::Duration::from_micros(
                        stall_us * sids.len() as u64,
                    ));
                    sids.sort_unstable();
                    sids.dedup();
                    for i in 0..sids.len().min(24) {
                        for j in i + 1..sids.len().min(24) {
                            out.emit((sids[i], sids[j]));
                        }
                    }
                },
            )
            .unwrap()
            .map_reduce(
                "overlap.map_verify",
                // Map-side verification: real NSLD per candidate.
                |&(a, b): &(u32, u32), e: &mut tsj_mapreduce::Emitter<u8, u8>| {
                    let ta = corpus.token_texts(tsj_tokenize::StringId(a));
                    let tb = corpus.token_texts(tsj_tokenize::StringId(b));
                    if nsld(&ta, &tb) <= p.default_t {
                        e.emit(0, 1);
                    }
                },
                |_k: &u8, vs: Vec<u8>, out: &mut tsj_mapreduce::OutputSink<u64>| {
                    out.emit(vs.len() as u64);
                },
            )
            .unwrap()
            .collect()
            .unwrap()
    };
    for &threads in &threads_sweep {
        if threads < 2 {
            continue; // one worker has no idle capacity to reclaim
        }
        let cluster = tsj_mapreduce::Cluster::new(tsj_mapreduce::ClusterConfig {
            machines: threads,
            threads,
            partitions: threads,
            ..*p.cluster(p.default_machines).config()
        });
        let timed = |mode: DatasetMode| {
            let c = cluster.clone().with_dataset_mode(mode);
            let mut best = f64::INFINITY;
            let mut pairs = 0usize;
            for _ in 0..3 {
                let start = Instant::now();
                let (out, _) = run_pipeline(&c);
                best = best.min(start.elapsed().as_secs_f64());
                pairs = out.iter().map(|&n| n as usize).sum();
            }
            (best, pairs)
        };
        let (lazy_secs, lazy_pairs) = timed(DatasetMode::Lazy);
        let (eager_secs, eager_pairs) = timed(DatasetMode::Eager);
        assert_eq!(lazy_pairs, eager_pairs, "overlap must not change results");
        rows.push(Row {
            series: "stall-bound lazy (overlapped)".into(),
            x: threads as f64,
            y: lazy_secs,
        });
        rows.push(Row {
            series: "stall-bound eager (stage barriers)".into(),
            x: threads as f64,
            y: eager_secs,
        });
        notes.push(format!(
            "stall-bound ({stall_us} µs/record) threads={threads}: lazy {lazy_secs:.3}s vs \
             eager {eager_secs:.3}s ({:+.1}% wall-clock, {lazy_pairs} verified)",
            100.0 * (lazy_secs / eager_secs - 1.0),
        ));
    }
    // ---- Straggler / speculation series --------------------------------
    // A seeded *environmental* straggler: map task 0 of the candidates
    // stage sleeps `TSJ_FIG_STRAGGLE_US` (default 300 ms) on its primary
    // attempt, simulating one slow node. FIFO has no answer — the map
    // wave barrier (and every downstream task behind it) waits out the
    // sleep. The speculative scheduler launches a second copy of the
    // stalled task on an idle worker once it has run `straggle/2`; the
    // copy wins (`speculative_won ≥ 1`, asserted), the barrier releases,
    // and the loser's remaining sleep overlaps the reduce + verify work
    // instead of preceding it. Output is byte-identical either way
    // (asserted). The threshold choice matters on this one-core host: it
    // must exceed the longest *honest* task (speculating a compute-bound
    // verify task steals real CPU from the original — measured +2…9%
    // with a 2 ms threshold) while staying under the straggle it is
    // there to beat.
    {
        use tsj_mapreduce::{SchedulerConfig, SchedulerMode, StraggleInjection};
        let straggle_us: u64 = std::env::var("TSJ_FIG_STRAGGLE_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300_000);
        for &threads in &threads_sweep {
            if threads < 2 {
                continue; // the speculative copy needs an idle worker
            }
            let cluster = tsj_mapreduce::Cluster::new(tsj_mapreduce::ClusterConfig {
                machines: threads,
                threads,
                partitions: threads,
                ..*p.cluster(p.default_machines).config()
            })
            .with_dataset_mode(DatasetMode::Lazy);
            let straggle = Some(StraggleInjection {
                stage: "overlap.candidates".into(),
                micros: straggle_us,
            });
            let timed = |sched: SchedulerConfig| {
                let c = cluster.clone().with_scheduler(sched);
                let mut best = f64::INFINITY;
                let mut last = None;
                for _ in 0..3 {
                    let start = Instant::now();
                    let (out, report) = run_pipeline(&c);
                    best = best.min(start.elapsed().as_secs_f64());
                    last = Some((out.iter().map(|&n| n as usize).sum::<usize>(), report));
                }
                let (pairs, report) = last.expect("three runs happened");
                (best, pairs, report)
            };
            let (fifo_secs, fifo_pairs, _) = timed(SchedulerConfig {
                mode: SchedulerMode::Fifo,
                straggle: straggle.clone(),
                ..SchedulerConfig::default()
            });
            let (spec_secs, spec_pairs, spec_report) = timed(SchedulerConfig {
                mode: SchedulerMode::Speculative,
                speculate_after: std::time::Duration::from_micros(straggle_us / 2),
                straggle: straggle.clone(),
            });
            assert_eq!(
                fifo_pairs, spec_pairs,
                "speculative re-execution must not change the result"
            );
            assert!(
                spec_report.total_speculative_won() >= 1,
                "the speculative copy should beat a {straggle_us} µs straggler"
            );
            rows.push(Row {
                series: "straggler FIFO (no mitigation)".into(),
                x: threads as f64,
                y: fifo_secs,
            });
            rows.push(Row {
                series: "straggler speculative".into(),
                x: threads as f64,
                y: spec_secs,
            });
            notes.push(format!(
                "straggler ({straggle_us} µs on overlap.candidates) threads={threads}: \
                 FIFO {fifo_secs:.3}s vs speculative {spec_secs:.3}s ({:+.1}% wall-clock; \
                 steals={}, speculative launched/won={}/{})",
                100.0 * (spec_secs / fifo_secs - 1.0),
                spec_report.total_steals(),
                spec_report.total_speculative_launched(),
                spec_report.total_speculative_won(),
            ));
        }
    }
    FigData {
        title: "Cross-stage overlap: join wall-clock, lazy vs eager".into(),
        xlabel: "worker threads".into(),
        ylabel: "wall seconds (best of 3)".into(),
        rows,
        notes,
    }
}

/// **Fig. 7** — TSJ vs HMJ runtime vs machines. Paper: HMJ did not finish
/// on 100 machines; TSJ 12–15× faster elsewhere.
pub fn fig7(p: &FigParams) -> FigData {
    // Both systems run on n/2: HMJ's partitioning bill alone is
    // n × machines NSLD evaluations, which makes the *baseline* the
    // wall-clock bottleneck of the whole harness at full n. The comparison
    // stays apples-to-apples (same corpus for both series).
    let p = &FigParams {
        n: (p.n / 2).max(1000),
        ..p.clone()
    };
    let corpus = build_corpus(p);
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for &machines in &p.machines_sweep {
        let tsj_out = run_join(
            &corpus,
            p,
            machines,
            p.default_t,
            p.default_m,
            ApproximationScheme::FuzzyTokenMatching,
            DedupStrategy::OneString,
        );
        rows.push(Row {
            series: "TSJ".into(),
            x: machines as f64,
            y: tsj_out.sim_secs(),
        });

        let cluster = p.cluster(machines);
        // HMJ partition count scales with the cluster (as in ClusterJoin);
        // target partition size shrinks as machines grow. The distance
        // budget mirrors the paper's "did not finish in a reasonable
        // amount of time" protocol at 100 machines.
        let hmj = HmjJoiner::new(
            &cluster,
            HmjConfig {
                num_centroids: machines,
                max_partition_size: (4 * p.n / machines).max(64),
                // Partitioning alone costs n × machines distances; grant
                // that plus a fixed verification allowance. Low machine
                // counts blow the allowance through partition blow-up —
                // the paper's DNF outcome.
                max_distance_computations: Some((p.n * machines) as u64 + 15_000_000),
                ..HmjConfig::default()
            },
        )
        .self_join(&corpus, p.default_t)
        .expect("hmj job runs");
        if hmj.dnf {
            notes.push(format!(
                "HMJ DNF at {machines} machines (distance budget exhausted)"
            ));
        } else {
            rows.push(Row {
                series: "HMJ".into(),
                x: machines as f64,
                y: hmj.sim_secs(),
            });
        }
    }
    let mut fig = FigData {
        title: "Fig 7: TSJ vs HMJ runtime vs machines".into(),
        xlabel: "machines".into(),
        ylabel: "simulated seconds".into(),
        rows,
        notes,
    };
    let tsj = fig.series("TSJ");
    let hmj = fig.series("HMJ");
    let ratios: Vec<String> = hmj
        .iter()
        .map(|(m, h)| {
            let t = tsj
                .iter()
                .find(|(tm, _)| tm == m)
                .map(|(_, t)| *t)
                .unwrap_or(f64::NAN);
            format!("{}x@{m}", (h / t).round())
        })
        .collect();
    fig.notes.push(format!(
        "HMJ/TSJ runtime ratio: {} (paper: 12x..15x, DNF at 100 machines)",
        ratios.join(", ")
    ));
    fig
}
