//! Benchmark harness: regenerates every figure of the paper's evaluation
//! (Sec. V, Figures 1–7) on the synthetic workload substitute.
//!
//! Each `figN` binary prints a TSV with the same series the paper plots,
//! plus notes comparing the measured *shape* against the paper's claims.
//! EXPERIMENTS.md records a full paper-vs-measured comparison.
//!
//! Scale: the paper joins 44.4M names on 1,000 production machines; this
//! harness joins `TSJ_FIG_N` (default 20,000) names locally and reports
//! *simulated cluster seconds* (see `tsj-mapreduce`). The
//! `TSJ_FIG_CPU_SCALE` factor (default 12,000) maps measured local
//! CPU-seconds to simulated machine-seconds, standing in for the dataset
//! ratio and the paper's 0.5-CPU machines; it affects absolute numbers
//! only, never who wins or how curves bend.
//!
//! Environment knobs: `TSJ_FIG_N`, `TSJ_FIG_SEED`, `TSJ_FIG_CPU_SCALE`,
//! `TSJ_FIG_THREADS`.

pub mod figures;
pub mod params;

pub use figures::{FigData, Row};
pub use params::FigParams;
