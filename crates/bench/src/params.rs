//! Harness parameters with environment overrides.

use tsj_mapreduce::{Cluster, ClusterConfig, CostModel, ShuffleConfig, Transport};

/// Parameters shared by the figure harnesses.
#[derive(Debug, Clone)]
pub struct FigParams {
    /// Corpus size (paper: 44,382,766; default here: 20,000).
    pub n: usize,
    /// Workload seed.
    pub seed: u64,
    /// Fraction of strings planted inside fraud rings.
    pub ring_fraction: f64,
    /// Machine counts for Figs. 1 and 7 (paper: 100–1,000).
    pub machines_sweep: Vec<usize>,
    /// NSLD thresholds for Figs. 2 and 4 (paper: 0.025–0.225).
    pub thresholds: Vec<f64>,
    /// Max-frequency values for Figs. 3 and 5 (paper: 100–1,000).
    pub m_values: Vec<usize>,
    /// Default `T` (paper: 0.1).
    pub default_t: f64,
    /// Default `M` operating point. The paper uses 1,000 on 44M strings;
    /// `M` scales with corpus size (the paper footnote tunes it per
    /// region), and the equivalent tail cutoff for a 20k corpus is 100.
    pub default_m: usize,
    /// Default machine count (paper: 1,000).
    pub default_machines: usize,
    /// Measured-CPU → simulated-machine-seconds factor (see crate docs).
    pub cpu_scale: f64,
    /// Real execution threads (0 = all cores).
    pub threads: usize,
    /// ROC sample count for Fig. 6 (paper: 10,000).
    pub roc_samples: usize,
    /// Per-mapper record cap for the shuffle-volume figure's
    /// memory-bounded series (the paper's workers have 1 GB RAM; this
    /// models that bound at harness scale). The combine threshold is half
    /// of it.
    pub spill_threshold: usize,
}

impl Default for FigParams {
    fn default() -> Self {
        Self {
            n: 20_000,
            seed: 0x75_1A11,
            ring_fraction: 0.25,
            machines_sweep: (1..=10).map(|k| k * 100).collect(),
            thresholds: (1..=9).map(|k| k as f64 * 0.025).collect(),
            m_values: (1..=10).map(|k| k * 100).collect(),
            default_t: 0.1,
            default_m: 100,
            default_machines: 1000,
            cpu_scale: 12000.0,
            threads: 0,
            roc_samples: 10_000,
            spill_threshold: 4096,
        }
    }
}

impl FigParams {
    /// Defaults with `TSJ_FIG_*` environment overrides applied.
    pub fn from_env() -> Self {
        let mut p = Self::default();
        if let Some(n) = env_usize("TSJ_FIG_N") {
            p.n = n;
        }
        if let Some(s) = env_u64("TSJ_FIG_SEED") {
            p.seed = s;
        }
        if let Some(c) = env_f64("TSJ_FIG_CPU_SCALE") {
            p.cpu_scale = c;
        }
        if let Some(t) = env_usize("TSJ_FIG_THREADS") {
            p.threads = t;
        }
        if let Some(s) = env_usize("TSJ_FIG_SPILL_THRESHOLD") {
            p.spill_threshold = s.max(2);
        }
        if let Some(m) = env_usize("TSJ_FIG_MACHINES") {
            p.default_machines = m.max(1);
        }
        p
    }

    /// Tiny parameters for smoke tests (seconds, not minutes).
    pub fn smoke() -> Self {
        Self {
            n: 400,
            machines_sweep: vec![8, 64],
            thresholds: vec![0.05, 0.15],
            m_values: vec![50, 400],
            roc_samples: 400,
            spill_threshold: 64,
            // 1000 machines over 400 strings would mean one string per map
            // task — nothing for combiners (or the shuffle figure) to
            // measure. Join *output* is machine-count-invariant, so the
            // other figures' smoke assertions are unaffected.
            default_machines: 64,
            ..Self::default()
        }
    }

    /// Builds the simulated cluster for a machine count.
    pub fn cluster(&self, machines: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            machines,
            threads: self.threads,
            cost: CostModel {
                cpu_scale: self.cpu_scale,
                ..CostModel::default()
            },
            ..ClusterConfig::default()
        })
    }

    /// [`FigParams::cluster`] with memory-bounded mappers: combine at half
    /// the spill threshold, spill at [`FigParams::spill_threshold`].
    pub fn bounded_cluster(&self, machines: usize) -> Cluster {
        self.cluster(machines)
            .with_shuffle_config(ShuffleConfig::bounded(
                (self.spill_threshold / 2).max(1),
                self.spill_threshold,
            ))
    }

    /// [`FigParams::bounded_cluster`] shuffled over the multi-process
    /// file exchange (the shuffle-volume figure's transport series: the
    /// same memory bound, with every post-combine byte serialized between
    /// workers).
    pub fn multiprocess_cluster(&self, machines: usize) -> Cluster {
        self.cluster(machines).with_shuffle_config(
            ShuffleConfig::bounded((self.spill_threshold / 2).max(1), self.spill_threshold)
                .with_transport(Transport::MultiProcess),
        )
    }
}

fn env_usize(k: &str) -> Option<usize> {
    std::env::var(k).ok()?.parse().ok()
}
fn env_u64(k: &str) -> Option<u64> {
    std::env::var(k).ok()?.parse().ok()
}
fn env_f64(k: &str) -> Option<f64> {
    std::env::var(k).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_sweeps() {
        let p = FigParams::default();
        assert_eq!(p.machines_sweep.first(), Some(&100));
        assert_eq!(p.machines_sweep.last(), Some(&1000));
        assert!((p.thresholds[0] - 0.025).abs() < 1e-12);
        assert!((p.thresholds[8] - 0.225).abs() < 1e-12);
        assert_eq!(
            p.m_values,
            vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
        );
        assert_eq!(p.default_t, 0.1);
        assert_eq!(p.default_m, 100);
    }

    #[test]
    fn smoke_params_are_small() {
        let p = FigParams::smoke();
        assert!(p.n <= 1000);
        assert!(p.machines_sweep.len() <= 3);
    }
}
