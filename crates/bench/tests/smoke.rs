//! Smoke tests: every figure harness runs at tiny scale and produces
//! structurally valid output with the qualitative orderings intact.

use tsj_bench::{figures, FigParams};

fn smoke() -> FigParams {
    FigParams::smoke()
}

#[test]
fn fig1_runs_and_one_string_wins() {
    let fig = figures::fig1(&smoke());
    assert!(!fig.rows.is_empty());
    let one = fig.series("grouping-on-one-string");
    let both = fig.series("grouping-on-both-strings");
    assert_eq!(one.len(), both.len());
    // One-string is never slower (the paper's "consistently faster").
    for ((m, o), (_, b)) in one.iter().zip(&both) {
        assert!(o <= b, "one-string slower at {m} machines: {o} vs {b}");
        assert!(*o > 0.0);
    }
    // More machines never increases simulated runtime.
    assert!(one.last().unwrap().1 <= one.first().unwrap().1);
}

#[test]
fn fig2_runs_with_three_series() {
    let fig = figures::fig2(&smoke());
    for s in [
        "fuzzy-token-matching",
        "greedy-token-aligning",
        "exact-token-matching",
    ] {
        assert_eq!(fig.series(s).len(), smoke().thresholds.len(), "{s}");
    }
    // Exact never exceeds fuzzy (it strictly skips work).
    for ((t, f), (_, e)) in fig
        .series("fuzzy-token-matching")
        .iter()
        .zip(fig.series("exact-token-matching").iter())
    {
        assert!(e <= f, "exact slower than fuzzy at T={t}");
    }
}

#[test]
fn fig4_recall_structure() {
    let fig = figures::fig4(&smoke());
    let fuzzy = fig.series("fuzzy-token-matching");
    let greedy = fig.series("greedy-token-aligning");
    let exact = fig.series("exact-token-matching");
    for i in 0..fuzzy.len() {
        assert!(greedy[i].1 <= fuzzy[i].1, "greedy finds more than fuzzy");
        assert!(exact[i].1 <= fuzzy[i].1, "exact finds more than fuzzy");
    }
    // Pair counts grow with T for the complete scheme.
    assert!(fuzzy.last().unwrap().1 >= fuzzy.first().unwrap().1);
}

#[test]
fn fig5_pairs_grow_with_m() {
    let fig = figures::fig5(&smoke());
    let fuzzy = fig.series("fuzzy-token-matching");
    assert!(fuzzy.last().unwrap().1 >= fuzzy.first().unwrap().1);
}

#[test]
fn fig6_nsld_dominates() {
    let fig = figures::fig6(&smoke());
    // Extract AUCs from the notes.
    let auc = |name: &str| -> f64 {
        fig.notes
            .iter()
            .find(|n| n.starts_with(name))
            .and_then(|n| n.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing AUC note for {name}"))
    };
    let nsld = auc("NSLD");
    for m in ["weighted FJaccard", "weighted FCosine", "weighted FDice"] {
        assert!(nsld >= auc(m), "NSLD AUC {nsld} below {m} {}", auc(m));
    }
    assert!(nsld > 0.8, "NSLD AUC implausibly low: {nsld}");
}

#[test]
fn fig7_tsj_beats_hmj() {
    let fig = figures::fig7(&smoke());
    let tsj = fig.series("TSJ");
    let hmj = fig.series("HMJ");
    assert!(!tsj.is_empty());
    // HMJ points may be missing where the join DNF'd (that is itself the
    // paper's Fig. 7 outcome at 100 machines); where both exist, TSJ wins.
    let mut compared = 0;
    for (m, h) in &hmj {
        if let Some((_, t)) = tsj.iter().find(|(tm, _)| tm == m) {
            assert!(h > t, "HMJ faster than TSJ at {m} machines: {h} vs {t}");
            compared += 1;
        }
    }
    assert!(
        compared > 0 || fig.notes.iter().any(|n| n.contains("DNF")),
        "no HMJ data points and no DNF notes"
    );
}

#[test]
fn fig3_runs() {
    let fig = figures::fig3(&smoke());
    assert_eq!(
        fig.series("fuzzy-token-matching").len(),
        smoke().m_values.len()
    );
}

#[test]
fn fig_shuffle_volumes_are_ordered_and_spill_engages() {
    let p = smoke();
    let fig = figures::fig_shuffle(&p);
    let emitted = fig.series("emitted");
    let shuffled = fig.series("shuffled");
    let spilled = fig.series("spilled (bounded mappers)");
    assert_eq!(emitted.len(), p.thresholds.len());
    assert_eq!(shuffled.len(), p.thresholds.len());
    assert_eq!(spilled.len(), p.thresholds.len());
    for i in 0..emitted.len() {
        // Combining can only shrink the shuffle, and only shuffled records
        // can spill.
        assert!(shuffled[i].1 <= emitted[i].1, "shuffled > emitted at {i}");
        assert!(spilled[i].1 <= shuffled[i].1, "spilled > shuffled at {i}");
        // The combiner-enabled jobs must actually engage on this workload…
        assert!(
            shuffled[i].1 < emitted[i].1,
            "combiner never engaged at {i}"
        );
        // …and the smoke spill threshold (64 records) must force spilling.
        assert!(spilled[i].1 > 0.0, "spill path never engaged at {i}");
    }
    // The multi-process run must move real bytes at every threshold.
    let transported = fig.series("transport KiB (multi-process)");
    assert_eq!(transported.len(), p.thresholds.len());
    for (i, (_, kib)) in transported.iter().enumerate() {
        assert!(*kib > 0.0, "exchange moved nothing at {i}");
    }
    // The notes carry per-job savings for the default operating point.
    assert!(fig.notes.iter().any(|n| n.contains("tsj.token_stats")));
}

#[test]
fn figoverlap_runs_and_modes_agree() {
    // The harness itself asserts lazy == eager pairs; here we check the
    // structure: both series present, every point positive.
    let fig = figures::fig_overlap(&smoke());
    let lazy = fig.series("lazy (overlapped)");
    let eager = fig.series("eager (stage barriers)");
    assert_eq!(lazy.len(), eager.len());
    assert!(!lazy.is_empty());
    for (threads, secs) in lazy.iter().chain(&eager) {
        assert!(*secs > 0.0, "non-positive wall-clock at {threads} threads");
    }
    // The straggler series: the harness itself asserts the speculative
    // copy won and the pairs agree; here we check both series rendered
    // and the notes carry the scheduler counters.
    let strag_fifo = fig.series("straggler FIFO (no mitigation)");
    let strag_spec = fig.series("straggler speculative");
    assert_eq!(strag_fifo.len(), strag_spec.len());
    assert!(!strag_fifo.is_empty());
    for (threads, secs) in strag_fifo.iter().chain(&strag_spec) {
        assert!(*secs > 0.0, "non-positive wall-clock at {threads} threads");
    }
    assert!(fig
        .notes
        .iter()
        .any(|n| n.contains("speculative launched/won")));
}
