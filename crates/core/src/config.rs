//! Join configuration: thresholds, approximation schemes, optimizations.

pub use tsj_setdist::Aligning;

/// How candidate pairs are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateGen {
    /// Shared-token *and* similar-token candidates (Sec. III-C + III-D) —
    /// the complete generation strategy.
    #[default]
    SharedAndSimilar,
    /// Shared-token candidates only — the *exact-token-matching*
    /// approximation (Sec. III-G4): skips the expensive token NLD-join,
    /// losing pairs whose only witness is a non-identical similar token.
    SharedOnly,
}

/// The de-duplication strategies of Sec. III-G3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupStrategy {
    /// Key each candidate pair by *one* of its strings, chosen by the
    /// paper's hash-parity balancing rule; the reducer de-duplicates that
    /// string's candidate list with a hash set. Fewer reduce workers
    /// (one per string) → less instantiation overhead, more skew.
    #[default]
    OneString,
    /// Key each candidate pair by the *pair itself*; the shuffler
    /// de-duplicates. One worker per pair → more overhead, better balance.
    BothStrings,
}

/// The three named operating points of the paper's evaluation (Sec. V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApproximationScheme {
    /// Complete candidates + exact Hungarian verification. Produces the
    /// correct join result; the recall baseline for the other two.
    #[default]
    FuzzyTokenMatching,
    /// Complete candidates + greedy token aligning (Sec. III-G5).
    GreedyTokenAligning,
    /// Shared-token candidates only + exact verification (Sec. III-G4).
    ExactTokenMatching,
}

impl ApproximationScheme {
    /// The candidate-generation side of the scheme.
    pub fn candidates(self) -> CandidateGen {
        match self {
            Self::FuzzyTokenMatching | Self::GreedyTokenAligning => CandidateGen::SharedAndSimilar,
            Self::ExactTokenMatching => CandidateGen::SharedOnly,
        }
    }

    /// The verification side of the scheme.
    pub fn aligning(self) -> Aligning {
        match self {
            Self::FuzzyTokenMatching | Self::ExactTokenMatching => Aligning::Hungarian,
            Self::GreedyTokenAligning => Aligning::Greedy,
        }
    }

    /// Stable name used in reports and figure output.
    pub fn name(self) -> &'static str {
        match self {
            Self::FuzzyTokenMatching => "fuzzy-token-matching",
            Self::GreedyTokenAligning => "greedy-token-aligning",
            Self::ExactTokenMatching => "exact-token-matching",
        }
    }
}

/// Full join configuration.
///
/// Defaults mirror the paper's evaluation defaults (Sec. V): `T = 0.1`,
/// `M = 1000`, fuzzy-token-matching, grouping-on-one-string, both filters
/// enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct TsjConfig {
    /// The NSLD join threshold `T`.
    pub threshold: f64,
    /// Drop tokens shared by more than `M` tokenized strings
    /// (Sec. III-G2); `None` disables the filter.
    pub max_token_frequency: Option<usize>,
    /// Candidate generation + verification operating point.
    pub scheme: ApproximationScheme,
    /// Candidate-pair de-duplication strategy.
    pub dedup: DedupStrategy,
    /// Enable the Lemma 6 aggregate-length prune (Sec. III-E1).
    pub length_filter: bool,
    /// Enable the histogram/Lemma 10 SLD lower-bound prune (Sec. III-E2).
    pub histogram_filter: bool,
}

impl Default for TsjConfig {
    fn default() -> Self {
        Self {
            threshold: 0.1,
            max_token_frequency: Some(1000),
            scheme: ApproximationScheme::FuzzyTokenMatching,
            dedup: DedupStrategy::OneString,
            length_filter: true,
            histogram_filter: true,
        }
    }
}

impl TsjConfig {
    /// Validates the configuration, panicking on nonsense values.
    pub(crate) fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.threshold),
            "NSLD threshold must be in [0, 1), got {}",
            self.threshold
        );
        assert!(
            self.threshold < 2.0 / 3.0,
            "thresholds ≥ 2/3 are outside the token-join completeness domain \
             (paper sweeps T ∈ [0.025, 0.225])"
        );
        if let Some(m) = self.max_token_frequency {
            assert!(m >= 1, "M must be ≥ 1 (use None to disable the filter)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_decompose_as_in_the_paper() {
        assert_eq!(
            ApproximationScheme::FuzzyTokenMatching.candidates(),
            CandidateGen::SharedAndSimilar
        );
        assert_eq!(
            ApproximationScheme::FuzzyTokenMatching.aligning(),
            Aligning::Hungarian
        );
        assert_eq!(
            ApproximationScheme::GreedyTokenAligning.aligning(),
            Aligning::Greedy
        );
        assert_eq!(
            ApproximationScheme::ExactTokenMatching.candidates(),
            CandidateGen::SharedOnly
        );
    }

    #[test]
    fn defaults_match_paper_section_v() {
        let c = TsjConfig::default();
        assert_eq!(c.threshold, 0.1);
        assert_eq!(c.max_token_frequency, Some(1000));
        assert_eq!(c.scheme, ApproximationScheme::FuzzyTokenMatching);
        assert_eq!(c.dedup, DedupStrategy::OneString);
        assert!(c.length_filter && c.histogram_filter);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "completeness domain")]
    fn rejects_out_of_domain_threshold() {
        TsjConfig {
            threshold: 0.7,
            ..TsjConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn rejects_negative_threshold() {
        TsjConfig {
            threshold: -0.1,
            ..TsjConfig::default()
        }
        .validate();
    }
}
