//! Join configuration: thresholds, approximation schemes, optimizations.

pub use tsj_setdist::Aligning;

/// How candidate pairs are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateGen {
    /// Shared-token *and* similar-token candidates (Sec. III-C + III-D) —
    /// the complete generation strategy.
    #[default]
    SharedAndSimilar,
    /// Shared-token candidates only — the *exact-token-matching*
    /// approximation (Sec. III-G4): skips the expensive token NLD-join,
    /// losing pairs whose only witness is a non-identical similar token.
    SharedOnly,
}

/// The de-duplication strategies of Sec. III-G3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupStrategy {
    /// Key each candidate pair by *one* of its strings, chosen by the
    /// paper's hash-parity balancing rule; the reducer de-duplicates that
    /// string's candidate list with a hash set. Fewer reduce workers
    /// (one per string) → less instantiation overhead, more skew.
    #[default]
    OneString,
    /// Key each candidate pair by the *pair itself*; the shuffler
    /// de-duplicates. One worker per pair → more overhead, better balance.
    BothStrings,
}

/// The three named operating points of the paper's evaluation (Sec. V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApproximationScheme {
    /// Complete candidates + exact Hungarian verification. Produces the
    /// correct join result; the recall baseline for the other two.
    #[default]
    FuzzyTokenMatching,
    /// Complete candidates + greedy token aligning (Sec. III-G5).
    GreedyTokenAligning,
    /// Shared-token candidates only + exact verification (Sec. III-G4).
    ExactTokenMatching,
}

impl ApproximationScheme {
    /// The candidate-generation side of the scheme.
    pub fn candidates(self) -> CandidateGen {
        match self {
            Self::FuzzyTokenMatching | Self::GreedyTokenAligning => CandidateGen::SharedAndSimilar,
            Self::ExactTokenMatching => CandidateGen::SharedOnly,
        }
    }

    /// The verification side of the scheme.
    pub fn aligning(self) -> Aligning {
        match self {
            Self::FuzzyTokenMatching | Self::ExactTokenMatching => Aligning::Hungarian,
            Self::GreedyTokenAligning => Aligning::Greedy,
        }
    }

    /// Stable name used in reports and figure output.
    pub fn name(self) -> &'static str {
        match self {
            Self::FuzzyTokenMatching => "fuzzy-token-matching",
            Self::GreedyTokenAligning => "greedy-token-aligning",
            Self::ExactTokenMatching => "exact-token-matching",
        }
    }
}

/// Full join configuration.
///
/// Defaults mirror the paper's evaluation defaults (Sec. V): `T = 0.1`,
/// `M = 1000`, fuzzy-token-matching, grouping-on-one-string, both filters
/// enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct TsjConfig {
    /// The NSLD join threshold `T`.
    pub threshold: f64,
    /// Drop tokens shared by more than `M` tokenized strings
    /// (Sec. III-G2); `None` disables the filter.
    pub max_token_frequency: Option<usize>,
    /// Candidate generation + verification operating point.
    pub scheme: ApproximationScheme,
    /// Candidate-pair de-duplication strategy.
    pub dedup: DedupStrategy,
    /// Enable the Lemma 6 aggregate-length prune (Sec. III-E1).
    pub length_filter: bool,
    /// Enable the histogram/Lemma 10 SLD lower-bound prune (Sec. III-E2).
    pub histogram_filter: bool,
}

impl Default for TsjConfig {
    fn default() -> Self {
        Self {
            threshold: 0.1,
            max_token_frequency: Some(1000),
            scheme: ApproximationScheme::FuzzyTokenMatching,
            dedup: DedupStrategy::OneString,
            length_filter: true,
            histogram_filter: true,
        }
    }
}

/// Why a [`TsjConfig`] is unusable. Surfaced by [`TsjConfig::validate`]
/// and, through [`JoinError::Config`](crate::joiner::JoinError), by
/// [`TsjJoiner::self_join`](crate::joiner::TsjJoiner::self_join) — a bad
/// configuration is an error the caller handles, not a panic at join time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The NSLD threshold is outside `[0, 1)` — NSLD itself is normalized
    /// into that range (Definition 4).
    ThresholdOutOfRange {
        /// The offending threshold.
        threshold: f64,
    },
    /// The threshold is in range but ≥ 2/3, outside the token-join
    /// completeness domain (Lemma 8's cap reaches the token length; the
    /// paper sweeps `T ∈ [0.025, 0.225]`).
    ThresholdOutsideCompleteness {
        /// The offending threshold.
        threshold: f64,
    },
    /// `max_token_frequency` is `Some(0)`, which would drop every token;
    /// use `None` to disable the `M` filter instead.
    ZeroMaxTokenFrequency,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ThresholdOutOfRange { threshold } => {
                write!(f, "NSLD threshold must be in [0, 1), got {threshold}")
            }
            ConfigError::ThresholdOutsideCompleteness { threshold } => write!(
                f,
                "threshold {threshold} is outside the token-join completeness domain \
                 [0, 2/3) (paper sweeps T ∈ [0.025, 0.225])"
            ),
            ConfigError::ZeroMaxTokenFrequency => {
                write!(f, "M must be ≥ 1 (use None to disable the filter)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl TsjConfig {
    /// Validates the configuration, reporting the first problem found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..1.0).contains(&self.threshold) {
            return Err(ConfigError::ThresholdOutOfRange {
                threshold: self.threshold,
            });
        }
        if self.threshold >= 2.0 / 3.0 {
            return Err(ConfigError::ThresholdOutsideCompleteness {
                threshold: self.threshold,
            });
        }
        if self.max_token_frequency == Some(0) {
            return Err(ConfigError::ZeroMaxTokenFrequency);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_decompose_as_in_the_paper() {
        assert_eq!(
            ApproximationScheme::FuzzyTokenMatching.candidates(),
            CandidateGen::SharedAndSimilar
        );
        assert_eq!(
            ApproximationScheme::FuzzyTokenMatching.aligning(),
            Aligning::Hungarian
        );
        assert_eq!(
            ApproximationScheme::GreedyTokenAligning.aligning(),
            Aligning::Greedy
        );
        assert_eq!(
            ApproximationScheme::ExactTokenMatching.candidates(),
            CandidateGen::SharedOnly
        );
    }

    #[test]
    fn defaults_match_paper_section_v() {
        let c = TsjConfig::default();
        assert_eq!(c.threshold, 0.1);
        assert_eq!(c.max_token_frequency, Some(1000));
        assert_eq!(c.scheme, ApproximationScheme::FuzzyTokenMatching);
        assert_eq!(c.dedup, DedupStrategy::OneString);
        assert!(c.length_filter && c.histogram_filter);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn rejects_out_of_domain_threshold() {
        let err = TsjConfig {
            threshold: 0.7,
            ..TsjConfig::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ThresholdOutsideCompleteness { threshold: 0.7 }
        );
        assert!(err.to_string().contains("completeness domain"));
    }

    #[test]
    fn rejects_negative_threshold() {
        let err = TsjConfig {
            threshold: -0.1,
            ..TsjConfig::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::ThresholdOutOfRange { threshold: -0.1 });
        assert!(err.to_string().contains("must be in [0, 1)"));
    }

    #[test]
    fn rejects_nan_threshold_and_zero_m() {
        assert!(matches!(
            TsjConfig {
                threshold: f64::NAN,
                ..TsjConfig::default()
            }
            .validate(),
            Err(ConfigError::ThresholdOutOfRange { .. })
        ));
        assert_eq!(
            TsjConfig {
                max_token_frequency: Some(0),
                ..TsjConfig::default()
            }
            .validate(),
            Err(ConfigError::ZeroMaxTokenFrequency)
        );
        // None disables the filter and is always legal.
        assert_eq!(
            TsjConfig {
                max_token_frequency: None,
                ..TsjConfig::default()
            }
            .validate(),
            Ok(())
        );
    }
}
