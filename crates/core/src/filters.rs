//! Candidate-pair pruning (Sec. III-E): the length filter and the
//! histogram / Lemma 10 SLD lower-bound filter.
//!
//! Both filters are *sound*: a pruned pair provably has `NSLD > T`, so
//! fuzzy-token-matching remains exactly equal to the brute-force join (the
//! property tests in `tests/` check this end to end).

use std::collections::HashMap;

use tsj_mapreduce::FxBuildHasher;
use tsj_setdist::{nsld_from_sld, nsld_lower_bound_from_total_lens, sld_lower_bound_sorted_lens};
use tsj_strdist::ld_exceeds_bound_given_nld_exceeds;
use tsj_tokenize::{Corpus, StringId, TokenId};

/// Exact LDs of every NLD-similar token pair among the join-eligible
/// tokens, keyed by canonical `(min, max)` token-id pair.
///
/// Produced by the MassJoin stage; consumed by the Lemma 10 component of
/// the histogram filter ("for the matched tokens, the character-level edit
/// operations are already computed during the candidate generation phase").
pub type SimilarMap = HashMap<(u32, u32), u32, FxBuildHasher>;

/// Per-join pruning context shared by all verification reducers.
pub struct FilterContext<'a> {
    corpus: &'a Corpus,
    t: f64,
    length_on: bool,
    histogram_on: bool,
    /// Similar-token LDs; `None` when the similar-token stage did not run
    /// (exact-token-matching) — Lemma 10 is then inapplicable and the
    /// filter falls back to pure length bounds.
    similar: Option<&'a SimilarMap>,
    /// `eligible[token]` = token survived the `M` filter. Lemma 10 may only
    /// be applied to pairs of eligible tokens (others were never joined).
    eligible: Option<&'a [bool]>,
}

/// Outcome of filtering, tagged with which filter fired (for counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterVerdict {
    /// The pair survives; verification must run.
    Survives,
    /// Pruned by the Lemma 6 aggregate-length bound.
    PrunedByLength,
    /// Pruned by the SLD lower bound (histogram + matched LDs + Lemma 10).
    PrunedByHistogram,
}

impl<'a> FilterContext<'a> {
    pub fn new(
        corpus: &'a Corpus,
        t: f64,
        length_on: bool,
        histogram_on: bool,
        similar: Option<&'a SimilarMap>,
        eligible: Option<&'a [bool]>,
    ) -> Self {
        Self {
            corpus,
            t,
            length_on,
            histogram_on,
            similar,
            eligible,
        }
    }

    /// Applies the enabled filters to a candidate pair.
    pub fn check(&self, a: StringId, b: StringId) -> FilterVerdict {
        if self.length_on && !self.passes_length(a, b) {
            return FilterVerdict::PrunedByLength;
        }
        if self.histogram_on && !self.passes_histogram(a, b) {
            return FilterVerdict::PrunedByHistogram;
        }
        FilterVerdict::Survives
    }

    /// Lemma 6: prune when the aggregate-length lower bound on NSLD
    /// already exceeds `T` (Sec. III-E1).
    fn passes_length(&self, a: StringId, b: StringId) -> bool {
        let (la, lb) = (self.corpus.total_len(a), self.corpus.total_len(b));
        nsld_lower_bound_from_total_lens(la, lb) <= self.t
    }

    /// Sec. III-E2: a lower bound on `SLD(a, b)` assembled from
    ///
    /// * the sorted token-length histograms (every matching pays at least
    ///   the length difference per aligned pair), and
    /// * a per-token-pair cost matrix refined with the *known* LDs of
    ///   similar tokens and the Lemma 10 bound for provably-dissimilar
    ///   eligible pairs, lower-bounded by its row-minima sum (a sound
    ///   relaxation of the assignment optimum).
    ///
    /// Prunes when `NSLD(lower bound) > T`.
    fn passes_histogram(&self, a: StringId, b: StringId) -> bool {
        let (la, lb) = (self.corpus.total_len(a), self.corpus.total_len(b));
        let budget_check = |sld_lb: u64| nsld_from_sld(sld_lb, la, lb) <= self.t;

        // Component 1: sorted-histogram bound.
        let ha = self.corpus.sorted_token_lens(a);
        let hb = self.corpus.sorted_token_lens(b);
        if !budget_check(sld_lower_bound_sorted_lens(&ha, &hb)) {
            return false;
        }

        // Component 2: Lemma 10-refined row-minima bound (fuzzy mode only).
        if self.similar.is_none() {
            return true;
        }
        let ta = self.corpus.tokens(a);
        let tb = self.corpus.tokens(b);
        let k = ta.len().max(tb.len());
        if k == 0 {
            return true;
        }
        let mut total: u64 = 0;
        for i in 0..k {
            let mut row_min = u64::MAX;
            for j in 0..k {
                let cost = match (ta.get(i), tb.get(j)) {
                    (None, None) => 0,
                    (Some(&x), None) => self.corpus.token_len(x) as u64,
                    (None, Some(&y)) => self.corpus.token_len(y) as u64,
                    (Some(&x), Some(&y)) => self.pair_lower_bound(x, y),
                };
                row_min = row_min.min(cost);
                if row_min == 0 {
                    break;
                }
            }
            total += row_min;
        }
        budget_check(total)
    }

    /// Sound lower bound on `LD(x, y)` for one token pair.
    fn pair_lower_bound(&self, x: TokenId, y: TokenId) -> u64 {
        if x == y {
            return 0;
        }
        let (lx, ly) = (self.corpus.token_len(x), self.corpus.token_len(y));
        let len_diff = lx.abs_diff(ly) as u64;
        let key = if x.0 <= y.0 { (x.0, y.0) } else { (y.0, x.0) };
        if let Some(&ld) = self.similar.and_then(|m| m.get(&key)) {
            // Matched during candidate generation: the LD is known exactly.
            return ld as u64;
        }
        // Not in the similar set. If both tokens were eligible for the
        // token join, the join's completeness proves NLD(x, y) > T, so
        // Lemma 10 applies; otherwise only the length gap is sound.
        let both_eligible = match self.eligible {
            Some(el) => el[x.index()] && el[y.index()],
            None => true,
        };
        if both_eligible {
            let l10 = ld_exceeds_bound_given_nld_exceeds(lx, ly, self.t) as u64 + 1;
            len_diff.max(l10)
        } else {
            len_diff
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_passjoin::nld_self_join_serial;
    use tsj_setdist::nsld;
    use tsj_tokenize::NameTokenizer;

    fn corpus(strings: &[&str]) -> Corpus {
        Corpus::build(strings, &NameTokenizer::default())
    }

    fn similar_map(c: &Corpus, t: f64) -> SimilarMap {
        let tokens: Vec<&str> = c.token_ids().map(|id| c.token_text(id)).collect();
        nld_self_join_serial(&tokens, t)
            .into_iter()
            .map(|p| ((p.a, p.b), p.ld))
            .collect()
    }

    /// The filters never prune a truly similar pair (soundness), across a
    /// grid of thresholds.
    #[test]
    fn filters_are_sound() {
        let strings = [
            "barak obama",
            "barak obamma",
            "burak ubama",
            "chan kalan",
            "chank alan",
            "maria garcia lopez",
            "maria garcia",
            "jon smith",
            "jonathan smyth",
            "wei chen",
        ];
        let c = corpus(&strings);
        for t in [0.05, 0.1, 0.2, 0.3] {
            let sim = similar_map(&c, t);
            let ctx = FilterContext::new(&c, t, true, true, Some(&sim), None);
            for a in c.string_ids() {
                for b in c.string_ids() {
                    if a >= b {
                        continue;
                    }
                    let ta = c.token_texts(a);
                    let tb = c.token_texts(b);
                    if nsld(&ta, &tb) <= t {
                        assert_eq!(
                            ctx.check(a, b),
                            FilterVerdict::Survives,
                            "pruned a true pair: {:?} vs {:?} at t={t}",
                            strings[a.index()],
                            strings[b.index()],
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn length_filter_prunes_gross_mismatches() {
        let c = corpus(&["a b", "abcdefgh ijklmnop qrstuvwx"]);
        let ctx = FilterContext::new(&c, 0.1, true, false, None, None);
        assert_eq!(
            ctx.check(StringId(0), StringId(1)),
            FilterVerdict::PrunedByLength
        );
    }

    #[test]
    fn histogram_filter_prunes_structural_mismatches() {
        // Same aggregate length (so the length filter passes) but token
        // lengths force ≥ 6 edits: {"aaaaaa","bb"} vs {"cccc","dddd"}
        // sorted lens [2,6] vs [4,4] → lb = 2+2 = 4; NSLD lb = 8/20 = 0.4.
        let c = corpus(&["aaaaaa bb", "cccc dddd"]);
        let ctx = FilterContext::new(&c, 0.2, true, true, None, None);
        assert_eq!(
            ctx.check(StringId(0), StringId(1)),
            FilterVerdict::PrunedByHistogram
        );
    }

    #[test]
    fn lemma10_component_tightens_the_bound() {
        // Tokens of identical lengths ⇒ histogram bound is 0, but the
        // tokens are pairwise dissimilar at small t ⇒ Lemma 10 forces a
        // positive bound and prunes.
        let c = corpus(&["abcde fghij", "vwxyz klmno"]);
        let t = 0.1;
        let sim = similar_map(&c, t); // empty: nothing is similar
        assert!(sim.is_empty());
        let plain = FilterContext::new(&c, t, true, true, None, None);
        assert_eq!(
            plain.check(StringId(0), StringId(1)),
            FilterVerdict::Survives
        );
        let refined = FilterContext::new(&c, t, true, true, Some(&sim), None);
        assert_eq!(
            refined.check(StringId(0), StringId(1)),
            FilterVerdict::PrunedByHistogram
        );
    }

    #[test]
    fn known_similar_tokens_keep_the_pair_alive() {
        let c = corpus(&["jonathan smith", "jonathon smith"]);
        // NLD(jonathan, jonathon) = 2/17 ≈ 0.118, so t = 0.12 matches them.
        let t = 0.12;
        let sim = similar_map(&c, t);
        assert!(!sim.is_empty());
        let ctx = FilterContext::new(&c, t, true, true, Some(&sim), None);
        assert_eq!(ctx.check(StringId(0), StringId(1)), FilterVerdict::Survives);
    }

    #[test]
    fn ineligible_tokens_disable_lemma10() {
        // With eligibility all-false, the Lemma 10 refinement must not
        // apply (the pair survives on pure length evidence).
        let c = corpus(&["abcde fghij", "vwxyz klmno"]);
        let t = 0.1;
        let sim = SimilarMap::default();
        let eligible = vec![false; c.num_tokens()];
        let ctx = FilterContext::new(&c, t, true, true, Some(&sim), Some(&eligible));
        assert_eq!(ctx.check(StringId(0), StringId(1)), FilterVerdict::Survives);
    }
}
