//! The TSJ pipeline: generate → filter → verify, staged as MapReduce jobs.
//!
//! | Job | Paper section | Role |
//! |---|---|---|
//! | `tsj.token_stats` | III-G2 | token document frequencies → `M` eligibility |
//! | `tsj.shared_token` | III-C | candidates sharing an eligible token |
//! | `massjoin.*` | III-D | NLD self-join of the eligible token space |
//! | `tsj.expand_similar` | III-D | similar-token pairs × postings → candidates |
//! | `tsj.dedup_verify` | III-E/F/G3 | dedup, filter, final NSLD verification |

use std::collections::HashSet;

use tsj_mapreduce::{
    fingerprint64, Cluster, Count, Dedup, Emitter, FxBuildHasher, JobError, OutputSink, SimReport,
};
use tsj_passjoin::MassJoin;
use tsj_tokenize::{Corpus, StringId, TokenId};

use crate::config::{CandidateGen, DedupStrategy, TsjConfig};
use crate::filters::{FilterContext, FilterVerdict, SimilarMap};
use crate::verify::verify_pair;

/// One verified join result: `a < b` and `NSLD(a, b) ≤ T`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarPair {
    pub a: StringId,
    pub b: StringId,
    /// The verified distance. Under greedy aligning this is the greedy
    /// upper bound (still ≤ T).
    pub nsld: f64,
}

/// The join result: verified pairs plus the full pipeline simulation report.
#[derive(Debug)]
pub struct JoinOutput {
    /// Verified similar pairs, sorted by `(a, b)`.
    pub pairs: Vec<SimilarPair>,
    /// Per-job statistics and simulated runtimes.
    pub report: SimReport,
}

impl JoinOutput {
    /// End-to-end simulated pipeline runtime in seconds — the quantity the
    /// paper's runtime figures plot.
    pub fn sim_secs(&self) -> f64 {
        self.report.total_sim_secs()
    }
}

/// The Tokenized-String Joiner bound to a cluster.
///
/// Every pipeline job inherits the cluster's
/// [`ShuffleConfig`](tsj_mapreduce::ShuffleConfig): with
/// `Cluster::with_shuffle_config(ShuffleConfig::bounded(..))` the whole
/// pipeline runs with memory-bounded mappers (periodic combine, spill to
/// disk, external sort-merge reduce) and produces output byte-identical to
/// the unbounded configuration — property-tested in
/// `tests/spill_equivalence.rs`. `SimReport` then shows the spilled volume
/// per job and the cost model charges its I/O.
///
/// The config's [`Transport`](tsj_mapreduce::Transport) is inherited the
/// same way: under `Transport::MultiProcess` every stage — the TSJ jobs
/// *and* the MassJoin sub-pipeline — exchanges its map output through
/// per-partition sorted-run files instead of the in-process handoff,
/// again byte-identically (property-tested in
/// `tests/transport_equivalence.rs`), with the exchanged bytes surfaced
/// per job in `SimReport` and charged by
/// `CostModel::transport_secs_per_byte`.
#[derive(Debug, Clone)]
pub struct TsjJoiner<'c> {
    cluster: &'c Cluster,
}

impl<'c> TsjJoiner<'c> {
    pub fn new(cluster: &'c Cluster) -> Self {
        Self { cluster }
    }

    /// NSLD self-join of `corpus` under `cfg` (the motivating application:
    /// "the joined sets are one and the same", Sec. II footnote 3).
    pub fn self_join(&self, corpus: &Corpus, cfg: &TsjConfig) -> Result<JoinOutput, JobError> {
        cfg.validate();
        let t = cfg.threshold;
        let mut report = SimReport::new();
        let string_ids: Vec<u32> = (0..corpus.len() as u32).collect();

        // ---- Stage 0: token document frequencies → M eligibility --------
        // Counting job: mappers emit a partial count of 1 per distinct
        // token occurrence and the `Count` combiner folds them map-side,
        // so the shuffle carries one record per (map task, distinct token)
        // instead of one per token *occurrence*.
        let stats = self.cluster.run_combined(
            "tsj.token_stats",
            &string_ids,
            |&s, e: &mut Emitter<u32, u64>| {
                for t in distinct_tokens(corpus, StringId(s)) {
                    e.emit(t.0, 1);
                }
            },
            &Count,
            |&tid, partial_counts: Vec<u64>, out: &mut OutputSink<(u32, u32)>| {
                out.emit((tid, partial_counts.iter().sum::<u64>() as u32));
            },
        )?;
        report.push(stats.stats);
        let mut eligible = vec![false; corpus.num_tokens()];
        let mut dropped_tokens = 0u64;
        for (tid, df) in stats.output {
            if cfg.max_token_frequency.is_none_or(|m| df as usize <= m) {
                eligible[tid as usize] = true;
            } else {
                dropped_tokens += 1;
            }
        }
        let _ = dropped_tokens;

        // ---- Stage 1: shared-token candidates (Sec. III-C) --------------
        // No combiner: `distinct_tokens` already guarantees each (token,
        // string) posting is emitted at most once, and every string lives
        // in exactly one map task, so there are no within-task duplicates
        // for a combiner to fold — it would only add a sort of the
        // highest-volume map output for zero shuffle savings.
        let shared = self.cluster.run(
            "tsj.shared_token",
            &string_ids,
            |&s, e: &mut Emitter<u32, u32>| {
                for t in distinct_tokens(corpus, StringId(s)) {
                    if eligible[t.index()] {
                        e.emit(t.0, s);
                    }
                }
            },
            |_token, mut sids: Vec<u32>, out: &mut OutputSink<(u32, u32)>| {
                // Self-join symmetry optimization: each unordered pair once.
                sids.sort_unstable();
                sids.dedup();
                for i in 0..sids.len() {
                    for j in i + 1..sids.len() {
                        out.emit((sids[i], sids[j]));
                        out.add_counter("shared_token_candidates", 1);
                    }
                }
            },
        )?;
        report.push(shared.stats);
        let mut candidates = shared.output;

        // ---- Stage 2: similar-token candidates (Sec. III-D) -------------
        let similar_map: Option<SimilarMap> = match cfg.scheme.candidates() {
            CandidateGen::SharedOnly => None,
            CandidateGen::SharedAndSimilar => {
                // 2a: NLD self-join of the eligible token space.
                let elig_tokens: Vec<TokenId> =
                    corpus.token_ids().filter(|t| eligible[t.index()]).collect();
                let texts: Vec<&str> = elig_tokens.iter().map(|&t| corpus.token_text(t)).collect();
                let (token_pairs, mass_report) =
                    MassJoin::new(self.cluster, t).nld_self_join(&texts)?;
                report.extend(mass_report);

                let mut map = SimilarMap::default();
                let mut expand_input: Vec<(u32, u32)> = Vec::with_capacity(token_pairs.len());
                for p in &token_pairs {
                    let ta = elig_tokens[p.a as usize];
                    let tb = elig_tokens[p.b as usize];
                    let key = if ta.0 <= tb.0 {
                        (ta.0, tb.0)
                    } else {
                        (tb.0, ta.0)
                    };
                    map.insert(key, p.ld);
                    expand_input.push(key);
                }

                // 2b: expand similar token pairs through the postings.
                // Candidate pairs are keyed on themselves and the reducer
                // only deduplicates, so the `Dedup` combiner ships one
                // record per distinct pair per map task.
                let expanded = self.cluster.run_combined(
                    "tsj.expand_similar",
                    &expand_input,
                    |&(ta, tb), e: &mut Emitter<(u32, u32), ()>| {
                        for &sa in corpus.postings(TokenId(ta)) {
                            for &sb in corpus.postings(TokenId(tb)) {
                                if sa == sb {
                                    continue;
                                }
                                let key = if sa < sb { (sa.0, sb.0) } else { (sb.0, sa.0) };
                                e.emit(key, ());
                                e.add_counter("similar_token_candidates", 1);
                            }
                        }
                    },
                    &Dedup,
                    |&pair, _hits: Vec<()>, out: &mut OutputSink<(u32, u32)>| {
                        out.emit(pair); // within-job dedup
                    },
                )?;
                report.push(expanded.stats);
                candidates.extend(expanded.output);
                Some(map)
            }
        };

        // ---- Stage 3: dedup + filter + verify (Sec. III-E/F/G3) ---------
        let filter = FilterContext::new(
            corpus,
            t,
            cfg.length_filter,
            cfg.histogram_filter,
            similar_map.as_ref(),
            Some(&eligible),
        );
        let aligning = cfg.scheme.aligning();

        let check_and_verify = |a: u32, b: u32, out: &mut OutputSink<SimilarPair>| {
            out.add_counter("candidates_distinct", 1);
            match filter.check(StringId(a), StringId(b)) {
                FilterVerdict::PrunedByLength => {
                    out.add_counter("pruned_length", 1);
                }
                FilterVerdict::PrunedByHistogram => {
                    out.add_counter("pruned_histogram", 1);
                }
                FilterVerdict::Survives => {
                    out.add_counter("verified", 1);
                    // NSLD verification costs far more than a filter
                    // check, and Hungarian costs more than greedy;
                    // declare it so the simulated clock tracks the
                    // actual cost distribution (Sec. III-F complexity).
                    out.add_work(crate::verify::verification_work_units(
                        corpus,
                        StringId(a),
                        StringId(b),
                        aligning,
                    ));
                    if let Some(d) = verify_pair(corpus, StringId(a), StringId(b), t, aligning) {
                        out.emit(SimilarPair {
                            a: StringId(a),
                            b: StringId(b),
                            nsld: d,
                        });
                    }
                }
            }
        };

        // Both dedup strategies deduplicate in the reducer, so the `Dedup`
        // combiner removes repeated candidates before the shuffle — the
        // map-side half of the paper's de-duplication analysis
        // (Sec. III-G3): fewer shuffled records, same instantiated workers.
        let verify_overhead = self.cluster.config().cost.verify_group_overhead_secs;
        let verified = match cfg.dedup {
            DedupStrategy::BothStrings => self.cluster.run_combined_with_group_overhead(
                "tsj.dedup_verify.both_strings",
                verify_overhead,
                &candidates,
                |&pair, e: &mut Emitter<(u32, u32), ()>| e.emit(pair, ()),
                &Dedup,
                |&(a, b), _hits: Vec<()>, out: &mut OutputSink<SimilarPair>| {
                    check_and_verify(a, b, out);
                },
            )?,
            DedupStrategy::OneString => self.cluster.run_combined_with_group_overhead(
                "tsj.dedup_verify.one_string",
                verify_overhead,
                &candidates,
                |&(a, b), e: &mut Emitter<u32, u32>| {
                    let (k, v) = one_string_key(a, b);
                    e.emit(k, v);
                },
                &Dedup,
                |&key, values: Vec<u32>, out: &mut OutputSink<SimilarPair>| {
                    // "The reducer then de-duplicates the reduce value list
                    // using a hash set."
                    let mut seen: HashSet<u32, FxBuildHasher> = HashSet::default();
                    for other in values {
                        if seen.insert(other) {
                            let (a, b) = if key < other {
                                (key, other)
                            } else {
                                (other, key)
                            };
                            check_and_verify(a, b, out);
                        }
                    }
                },
            )?,
        };
        report.push(verified.stats);
        let mut pairs = verified.output;

        // Strings that tokenize to nothing are all mutually at NSLD 0
        // (Definition 4's degenerate case); candidate generation cannot see
        // them (no tokens), so they are joined directly here.
        let empties: Vec<u32> = string_ids
            .iter()
            .copied()
            .filter(|&s| corpus.token_count(StringId(s)) == 0)
            .collect();
        for i in 0..empties.len() {
            for j in i + 1..empties.len() {
                pairs.push(SimilarPair {
                    a: StringId(empties[i]),
                    b: StringId(empties[j]),
                    nsld: 0.0,
                });
            }
        }

        pairs.sort_unstable_by_key(|p| (p.a, p.b));
        Ok(JoinOutput { pairs, report })
    }
}

/// The paper's grouping-on-one-string key-selection rule (Sec. III-G3):
/// `τ` becomes the key iff `int(HASH(τ) < HASH(υ)) == (HASH(τ)+HASH(υ)) % 2`;
/// otherwise `υ` does. The parity term decorrelates the choice from the
/// hash order, balancing key-side load across the pair population.
pub(crate) fn one_string_key(a: u32, b: u32) -> (u32, u32) {
    let ha = fingerprint64(&a);
    let hb = fingerprint64(&b);
    let less = u64::from(ha < hb);
    let parity = ha.wrapping_add(hb) % 2;
    if less == parity {
        (a, b)
    } else {
        (b, a)
    }
}

/// Iterates a string's tokens with within-string duplicates removed
/// (postings semantics: a token names a string once).
fn distinct_tokens<'a>(corpus: &'a Corpus, s: StringId) -> impl Iterator<Item = TokenId> + 'a {
    let tokens = corpus.tokens(s);
    tokens
        .iter()
        .enumerate()
        .filter(move |(i, t)| !tokens[..*i].contains(t))
        .map(|(_, &t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_string_key_is_deterministic_and_keeps_both_ids() {
        for (a, b) in [(1u32, 2u32), (10, 99), (5, 5), (0, 1000)] {
            let (k1, v1) = one_string_key(a, b);
            let (k2, v2) = one_string_key(a, b);
            assert_eq!((k1, v1), (k2, v2));
            let mut ids = [k1, v1];
            ids.sort_unstable();
            let mut expect = [a, b];
            expect.sort_unstable();
            assert_eq!(ids, expect);
        }
    }

    #[test]
    fn one_string_key_balances_key_side() {
        // Over many pairs, each side should be chosen roughly half the time
        // (that is the point of the parity rule).
        let mut first = 0u32;
        let n = 10_000u32;
        for i in 0..n {
            let (k, _) = one_string_key(i, i + n);
            if k == i {
                first += 1;
            }
        }
        let frac = first as f64 / n as f64;
        assert!((0.45..0.55).contains(&frac), "key-side fraction {frac}");
    }
}
