//! The TSJ pipeline: generate → filter → verify, staged as MapReduce jobs.
//!
//! | Job | Paper section | Role |
//! |---|---|---|
//! | `tsj.token_stats` | III-G2 | token document frequencies → `M` eligibility |
//! | `tsj.shared_token` | III-C | candidates sharing an eligible token |
//! | `massjoin.*` | III-D | NLD self-join of the eligible token space |
//! | `tsj.expand_similar` | III-D | similar-token pairs × postings → candidates |
//! | `tsj.dedup_verify` | III-E/F/G3 | dedup, filter, final NSLD verification |
//!
//! # Stage chaining
//!
//! [`TsjJoiner::self_join`] records the stages as a *lazy*
//! [`Dataset`](tsj_mapreduce::Dataset) job graph: the candidate-carrying
//! stages (`tsj.shared_token`, `tsj.expand_similar`, `massjoin.candidates`)
//! keep their output partitioned *inside the runtime* — the shared-token
//! and expand-similar streams are `union`ed and flow into `tsj.dedup_verify`
//! without the candidate set ever materializing in driver memory, so their
//! [`driver_out_records`](tsj_mapreduce::JobStats::driver_out_records) are
//! zero and driver memory no longer scales with the candidate count. The
//! recorded stages execute at the final `collect`, where the DAG scheduler
//! overlaps one stage's reduce wave with the next stage's map wave
//! partition by partition on the shared worker pool (the union is fused
//! feed plumbing, not a stage). Only small stage outputs legitimately
//! cross the driver boundary — and force execution where they do: token
//! document frequencies (to build the `M`-eligibility bitmap) and the
//! similar-token pairs (to build the histogram filter's [`SimilarMap`])
//! collect early, so the report lists jobs in true execution order
//! (token_stats, massjoin.*, then the lazily-run candidate stages and the
//! verifier). [`TsjJoiner::self_join_collected`] is the collect-based form
//! of the same pipeline (every stage a one-stage graph chained through
//! driver `Vec`s), kept as the migration reference and differential
//! baseline (`tests/dataset_equivalence.rs` pins lazy, eager, and
//! collected byte-identical).

use std::collections::HashSet;

use tsj_mapreduce::{
    fingerprint64, Cluster, Count, Dedup, Emitter, FxBuildHasher, JobError, OutputSink, SimReport,
    Spill,
};
use tsj_passjoin::MassJoin;
use tsj_tokenize::{Corpus, StringId, TokenId};

use crate::config::{Aligning, CandidateGen, ConfigError, DedupStrategy, TsjConfig};
use crate::filters::{FilterContext, FilterVerdict, SimilarMap};
use crate::verify::verify_pair;

/// One verified join result: `a < b` and `NSLD(a, b) ≤ T`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarPair {
    pub a: StringId,
    pub b: StringId,
    /// The verified distance. Under greedy aligning this is the greedy
    /// upper bound (still ≤ T).
    pub nsld: f64,
}

/// Join outputs are [`Spill`] so the final `tsj.dedup_verify` stage can
/// keep them runtime-side (and spill them under a bounded shuffle) until
/// the driver collects.
impl Spill for SimilarPair {
    fn spill(&self, out: &mut Vec<u8>) {
        self.a.0.spill(out);
        self.b.0.spill(out);
        self.nsld.spill(out);
    }

    fn restore(buf: &mut &[u8]) -> Option<Self> {
        Some(Self {
            a: StringId(u32::restore(buf)?),
            b: StringId(u32::restore(buf)?),
            nsld: f64::restore(buf)?,
        })
    }
}

/// Why a join failed: the configuration never made sense, or the runtime
/// lost a job. Bad configurations surface as [`JoinError::Config`] from
/// [`TsjJoiner::self_join`] instead of panicking at join time.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinError {
    /// The [`TsjConfig`] failed validation (checked before any job runs).
    Config(ConfigError),
    /// A pipeline job failed in the MapReduce runtime.
    Job(JobError),
}

impl From<ConfigError> for JoinError {
    fn from(e: ConfigError) -> Self {
        JoinError::Config(e)
    }
}

impl From<JobError> for JoinError {
    fn from(e: JobError) -> Self {
        JoinError::Job(e)
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Config(e) => write!(f, "invalid join configuration: {e}"),
            JoinError::Job(e) => write!(f, "pipeline job failed: {e}"),
        }
    }
}

impl std::error::Error for JoinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JoinError::Config(e) => Some(e),
            JoinError::Job(e) => Some(e),
        }
    }
}

/// The join result: verified pairs plus the full pipeline simulation report.
#[derive(Debug)]
pub struct JoinOutput {
    /// Verified similar pairs, sorted by `(a, b)`.
    pub pairs: Vec<SimilarPair>,
    /// Per-job statistics and simulated runtimes.
    pub report: SimReport,
}

impl JoinOutput {
    /// End-to-end simulated pipeline runtime in seconds — the quantity the
    /// paper's runtime figures plot.
    pub fn sim_secs(&self) -> f64 {
        self.report.total_sim_secs()
    }
}

/// The Tokenized-String Joiner bound to a cluster.
///
/// Every pipeline job inherits the cluster's
/// [`ShuffleConfig`](tsj_mapreduce::ShuffleConfig): with
/// `Cluster::with_shuffle_config(ShuffleConfig::bounded(..))` the whole
/// pipeline runs with memory-bounded mappers (periodic combine, spill to
/// disk, external sort-merge reduce) and produces output byte-identical to
/// the unbounded configuration — property-tested in
/// `tests/spill_equivalence.rs`. `SimReport` then shows the spilled volume
/// per job and the cost model charges its I/O.
///
/// The config's [`Transport`](tsj_mapreduce::Transport) is inherited the
/// same way: under `Transport::MultiProcess` every stage — the TSJ jobs
/// *and* the MassJoin sub-pipeline — exchanges its map output through
/// per-partition sorted-run files instead of the in-process handoff,
/// again byte-identically (property-tested in
/// `tests/transport_equivalence.rs`), with the exchanged bytes surfaced
/// per job in `SimReport` and charged by
/// `CostModel::transport_secs_per_byte`.
///
/// With both knobs set, a bounded-shuffle dataset-chained join is
/// memory-bounded end to end: mappers spill, reducers sort-merge, stage
/// outputs stream between jobs as runtime-side sorted runs, and driver
/// memory holds only the corpus, the small driver-crossing stage outputs,
/// and the final result.
#[derive(Debug, Clone)]
pub struct TsjJoiner<'c> {
    cluster: &'c Cluster,
}

impl<'c> TsjJoiner<'c> {
    pub fn new(cluster: &'c Cluster) -> Self {
        Self { cluster }
    }

    /// NSLD self-join of `corpus` under `cfg` (the motivating application:
    /// "the joined sets are one and the same", Sec. II footnote 3), staged
    /// as a dataset job graph — interior candidate streams never
    /// materialize driver-side (see the [module docs](self)).
    pub fn self_join(&self, corpus: &Corpus, cfg: &TsjConfig) -> Result<JoinOutput, JoinError> {
        cfg.validate()?;
        let t = cfg.threshold;
        let mut report = SimReport::new();
        let string_ids: Vec<u32> = (0..corpus.len() as u32).collect();

        // ---- Stage 0: token document frequencies → M eligibility --------
        // Collected immediately: the eligibility bitmap is driver state
        // every later stage closure needs, so this one-stage graph cannot
        // stay lazy past this point.
        let stats = self.cluster.input(&string_ids).map_reduce_combined(
            "tsj.token_stats",
            token_stats_map(corpus),
            &Count,
            token_stats_reduce(),
        )?;
        let (stats_output, mut stats_report) = stats.collect()?;
        let (eligible, dropped_tokens) = apply_m_filter(corpus, cfg, stats_output);
        stats_report.jobs_mut()[0]
            .counters
            .insert("tokens_dropped_by_M", dropped_tokens);
        report.extend(stats_report);

        // ---- Stage 1: shared-token candidates (Sec. III-C) --------------
        // Recorded lazily: the stage executes at the final collect, where
        // its reduce wave overlaps the dedup_verify map wave partition by
        // partition on the shared worker pool.
        let shared = self.cluster.input(&string_ids).map_reduce(
            "tsj.shared_token",
            shared_token_map(corpus, &eligible),
            shared_token_reduce(),
        )?;

        // ---- Stage 2: similar-token candidates (Sec. III-D) -------------
        // Binding order matters: `candidates` (whose plan holds the stage
        // closures) must drop before anything those closures borrow.
        let (similar_map, candidates) = match cfg.scheme.candidates() {
            CandidateGen::SharedOnly => (None, shared),
            CandidateGen::SharedAndSimilar => {
                // 2a: NLD self-join of the eligible token space — itself a
                // lazy two-stage graph (candidates→verify overlap inside);
                // the verified token pairs legitimately cross at its
                // collect (they feed the driver-side SimilarMap the
                // filters need), so it executes here.
                let elig_tokens: Vec<TokenId> =
                    corpus.token_ids().filter(|t| eligible[t.index()]).collect();
                let texts: Vec<&str> = elig_tokens.iter().map(|&t| corpus.token_text(t)).collect();
                let (token_pairs, mass_report) =
                    MassJoin::new(self.cluster, t).nld_self_join(&texts)?;
                report.extend(mass_report);
                let (map, expand_input) = build_similar_map(&elig_tokens, &token_pairs);

                // 2b: expand similar token pairs through the postings,
                // then union with the shared-token stream — both recorded
                // lazily, their partitions flowing into dedup_verify
                // without a barrier (the union is fused feed plumbing).
                let expanded = self.cluster.input_vec(expand_input).map_reduce_combined(
                    "tsj.expand_similar",
                    expand_similar_map(corpus),
                    &Dedup,
                    expand_similar_reduce(),
                )?;
                (Some(map), shared.union(expanded))
            }
        };

        // ---- Stage 3: dedup + filter + verify (Sec. III-E/F/G3) ---------
        let filter = FilterContext::new(
            corpus,
            t,
            cfg.length_filter,
            cfg.histogram_filter,
            similar_map.as_ref(),
            Some(&eligible),
        );
        let aligning = cfg.scheme.aligning();
        let verify_overhead = self.cluster.config().cost.verify_group_overhead_secs;
        let verified = match cfg.dedup {
            DedupStrategy::BothStrings => candidates.map_reduce_combined_with_group_overhead(
                "tsj.dedup_verify.both_strings",
                verify_overhead,
                |&pair, e: &mut Emitter<(u32, u32), ()>| e.emit(pair, ()),
                &Dedup,
                |&(a, b), _hits: Vec<()>, out: &mut OutputSink<SimilarPair>| {
                    check_and_verify(corpus, &filter, aligning, t, a, b, out);
                },
            )?,
            DedupStrategy::OneString => candidates.map_reduce_combined_with_group_overhead(
                "tsj.dedup_verify.one_string",
                verify_overhead,
                |&(a, b), e: &mut Emitter<u32, u32>| {
                    let (k, v) = one_string_key(a, b);
                    e.emit(k, v);
                },
                &Dedup,
                |&key, values: Vec<u32>, out: &mut OutputSink<SimilarPair>| {
                    one_string_dedup(corpus, &filter, aligning, t, key, values, out);
                },
            )?,
        };
        // The graph's terminal: shared_token, expand_similar, and
        // dedup_verify all execute here, cross-stage overlapped; the
        // report lands in execution (topological) order.
        let (mut pairs, verify_report) = verified.collect()?;
        report.extend(verify_report);

        join_empty_strings(corpus, &string_ids, &mut pairs);
        pairs.sort_unstable_by_key(|p| (p.a, p.b));
        Ok(JoinOutput { pairs, report })
    }

    /// The collect-based form of [`TsjJoiner::self_join`]: identical jobs,
    /// identical output, but every stage is a one-stage graph whose output
    /// materializes in a driver `Vec` before feeding the next — driver
    /// memory is O(candidates). Kept as the migration reference and the
    /// baseline the dataset-chained pipeline is differentially tested
    /// against (`tests/dataset_equivalence.rs`).
    pub fn self_join_collected(
        &self,
        corpus: &Corpus,
        cfg: &TsjConfig,
    ) -> Result<JoinOutput, JoinError> {
        cfg.validate()?;
        let t = cfg.threshold;
        let mut report = SimReport::new();
        let string_ids: Vec<u32> = (0..corpus.len() as u32).collect();

        // ---- Stage 0: token document frequencies → M eligibility --------
        let mut stats = self.cluster.run_combined(
            "tsj.token_stats",
            &string_ids,
            token_stats_map(corpus),
            &Count,
            token_stats_reduce(),
        )?;
        let (eligible, dropped_tokens) = apply_m_filter(corpus, cfg, stats.output);
        stats
            .stats
            .counters
            .insert("tokens_dropped_by_M", dropped_tokens);
        report.push(stats.stats);

        // ---- Stage 1: shared-token candidates (Sec. III-C) --------------
        let shared = self.cluster.run(
            "tsj.shared_token",
            &string_ids,
            shared_token_map(corpus, &eligible),
            shared_token_reduce(),
        )?;
        report.push(shared.stats);
        let mut candidates = shared.output;

        // ---- Stage 2: similar-token candidates (Sec. III-D) -------------
        let similar_map: Option<SimilarMap> = match cfg.scheme.candidates() {
            CandidateGen::SharedOnly => None,
            CandidateGen::SharedAndSimilar => {
                // 2a: NLD self-join of the eligible token space.
                let elig_tokens: Vec<TokenId> =
                    corpus.token_ids().filter(|t| eligible[t.index()]).collect();
                let texts: Vec<&str> = elig_tokens.iter().map(|&t| corpus.token_text(t)).collect();
                let (token_pairs, mass_report) =
                    MassJoin::new(self.cluster, t).nld_self_join_collected(&texts)?;
                report.extend(mass_report);
                let (map, expand_input) = build_similar_map(&elig_tokens, &token_pairs);

                // 2b: expand similar token pairs through the postings.
                let expanded = self.cluster.run_combined(
                    "tsj.expand_similar",
                    &expand_input,
                    expand_similar_map(corpus),
                    &Dedup,
                    expand_similar_reduce(),
                )?;
                report.push(expanded.stats);
                candidates.extend(expanded.output);
                Some(map)
            }
        };

        // ---- Stage 3: dedup + filter + verify (Sec. III-E/F/G3) ---------
        let filter = FilterContext::new(
            corpus,
            t,
            cfg.length_filter,
            cfg.histogram_filter,
            similar_map.as_ref(),
            Some(&eligible),
        );
        let aligning = cfg.scheme.aligning();
        let verify_overhead = self.cluster.config().cost.verify_group_overhead_secs;
        let verified = match cfg.dedup {
            DedupStrategy::BothStrings => self.cluster.run_combined_with_group_overhead(
                "tsj.dedup_verify.both_strings",
                verify_overhead,
                &candidates,
                |&pair, e: &mut Emitter<(u32, u32), ()>| e.emit(pair, ()),
                &Dedup,
                |&(a, b), _hits: Vec<()>, out: &mut OutputSink<SimilarPair>| {
                    check_and_verify(corpus, &filter, aligning, t, a, b, out);
                },
            )?,
            DedupStrategy::OneString => self.cluster.run_combined_with_group_overhead(
                "tsj.dedup_verify.one_string",
                verify_overhead,
                &candidates,
                |&(a, b), e: &mut Emitter<u32, u32>| {
                    let (k, v) = one_string_key(a, b);
                    e.emit(k, v);
                },
                &Dedup,
                |&key, values: Vec<u32>, out: &mut OutputSink<SimilarPair>| {
                    one_string_dedup(corpus, &filter, aligning, t, key, values, out);
                },
            )?,
        };
        report.push(verified.stats);
        let mut pairs = verified.output;

        join_empty_strings(corpus, &string_ids, &mut pairs);
        pairs.sort_unstable_by_key(|p| (p.a, p.b));
        Ok(JoinOutput { pairs, report })
    }
}

// ---- Stage builders (shared by the dataset-chained and collect-based
// pipelines, so the two forms cannot drift apart) -------------------------

/// Stage 0 mapper: one partial count per distinct token occurrence; the
/// `Count` combiner folds them map-side, so the shuffle carries one record
/// per (map task, distinct token) instead of one per token *occurrence*.
fn token_stats_map(corpus: &Corpus) -> impl Fn(&u32, &mut Emitter<u32, u64>) + Sync + '_ {
    move |&s, e| {
        for t in distinct_tokens(corpus, StringId(s)) {
            e.emit(t.0, 1);
        }
    }
}

/// Stage 0 reducer: sums the partial counts into a document frequency.
fn token_stats_reduce() -> impl Fn(&u32, Vec<u64>, &mut OutputSink<(u32, u32)>) + Sync {
    |&tid, partial_counts, out| {
        out.emit((tid, partial_counts.iter().sum::<u64>() as u32));
    }
}

/// Builds the `M`-eligibility bitmap from the token_stats output and
/// returns the number of dropped tokens alongside it; the caller books
/// the count as a `tokens_dropped_by_M` counter on the `tsj.token_stats`
/// job (the job the `M` filter acts on), so the filter's effect is
/// visible in the `SimReport` instead of being computed and discarded.
fn apply_m_filter(
    corpus: &Corpus,
    cfg: &TsjConfig,
    stats_output: Vec<(u32, u32)>,
) -> (Vec<bool>, u64) {
    let mut eligible = vec![false; corpus.num_tokens()];
    let mut dropped_tokens = 0u64;
    for (tid, df) in stats_output {
        if cfg.max_token_frequency.is_none_or(|m| df as usize <= m) {
            eligible[tid as usize] = true;
        } else {
            dropped_tokens += 1;
        }
    }
    (eligible, dropped_tokens)
}

/// Stage 1 mapper: postings of eligible tokens.
///
/// No combiner on this stage: `distinct_tokens` already guarantees each
/// (token, string) posting is emitted at most once, and every string lives
/// in exactly one map task, so there are no within-task duplicates for a
/// combiner to fold — it would only add a sort of the highest-volume map
/// output for zero shuffle savings.
fn shared_token_map<'a>(
    corpus: &'a Corpus,
    eligible: &'a [bool],
) -> impl Fn(&u32, &mut Emitter<u32, u32>) + Sync + 'a {
    move |&s, e| {
        for t in distinct_tokens(corpus, StringId(s)) {
            if eligible[t.index()] {
                e.emit(t.0, s);
            }
        }
    }
}

/// Stage 1 reducer: every unordered pair of strings sharing the token,
/// once (self-join symmetry optimization).
fn shared_token_reduce() -> impl Fn(&u32, Vec<u32>, &mut OutputSink<(u32, u32)>) + Sync {
    |_token, mut sids, out| {
        sids.sort_unstable();
        sids.dedup();
        for i in 0..sids.len() {
            for j in i + 1..sids.len() {
                out.emit((sids[i], sids[j]));
                out.add_counter("shared_token_candidates", 1);
            }
        }
    }
}

/// Turns the MassJoin hits back into corpus token ids: the `SimilarMap`
/// the histogram filter consults, plus the expand stage's input pairs.
fn build_similar_map(
    elig_tokens: &[TokenId],
    token_pairs: &[tsj_passjoin::SimilarTokenPair],
) -> (SimilarMap, Vec<(u32, u32)>) {
    let mut map = SimilarMap::default();
    let mut expand_input: Vec<(u32, u32)> = Vec::with_capacity(token_pairs.len());
    for p in token_pairs {
        let ta = elig_tokens[p.a as usize];
        let tb = elig_tokens[p.b as usize];
        let key = if ta.0 <= tb.0 {
            (ta.0, tb.0)
        } else {
            (tb.0, ta.0)
        };
        map.insert(key, p.ld);
        expand_input.push(key);
    }
    (map, expand_input)
}

/// An unordered candidate string-id pair, normalized to `a < b`.
type Pair = (u32, u32);

/// Stage 2b mapper: crosses a similar token pair's postings lists.
/// Candidate pairs are keyed on themselves and the reducer only
/// deduplicates, so the `Dedup` combiner ships one record per distinct
/// pair per map task.
fn expand_similar_map(corpus: &Corpus) -> impl Fn(&Pair, &mut Emitter<Pair, ()>) + Sync + '_ {
    move |&(ta, tb), e| {
        for &sa in corpus.postings(TokenId(ta)) {
            for &sb in corpus.postings(TokenId(tb)) {
                if sa == sb {
                    continue;
                }
                let key = if sa < sb { (sa.0, sb.0) } else { (sb.0, sa.0) };
                e.emit(key, ());
                e.add_counter("similar_token_candidates", 1);
            }
        }
    }
}

/// Stage 2b reducer: within-job dedup (grouping on the pair).
fn expand_similar_reduce() -> impl Fn(&Pair, Vec<()>, &mut OutputSink<Pair>) + Sync {
    |&pair, _hits, out| out.emit(pair)
}

/// Stage 3 kernel: filters one deduplicated candidate pair and verifies
/// the survivors (Sec. III-E/F). Both dedup strategies funnel here.
fn check_and_verify(
    corpus: &Corpus,
    filter: &FilterContext<'_>,
    aligning: Aligning,
    t: f64,
    a: u32,
    b: u32,
    out: &mut OutputSink<SimilarPair>,
) {
    out.add_counter("candidates_distinct", 1);
    match filter.check(StringId(a), StringId(b)) {
        FilterVerdict::PrunedByLength => {
            out.add_counter("pruned_length", 1);
        }
        FilterVerdict::PrunedByHistogram => {
            out.add_counter("pruned_histogram", 1);
        }
        FilterVerdict::Survives => {
            out.add_counter("verified", 1);
            // NSLD verification costs far more than a filter check, and
            // Hungarian costs more than greedy; declare it so the
            // simulated clock tracks the actual cost distribution
            // (Sec. III-F complexity).
            out.add_work(crate::verify::verification_work_units(
                corpus,
                StringId(a),
                StringId(b),
                aligning,
            ));
            if let Some(d) = verify_pair(corpus, StringId(a), StringId(b), t, aligning) {
                out.emit(SimilarPair {
                    a: StringId(a),
                    b: StringId(b),
                    nsld: d,
                });
            }
        }
    }
}

/// Stage 3 reducer body for grouping-on-one-string: "the reducer then
/// de-duplicates the reduce value list using a hash set" (Sec. III-G3).
fn one_string_dedup(
    corpus: &Corpus,
    filter: &FilterContext<'_>,
    aligning: Aligning,
    t: f64,
    key: u32,
    values: Vec<u32>,
    out: &mut OutputSink<SimilarPair>,
) {
    let mut seen: HashSet<u32, FxBuildHasher> = HashSet::default();
    for other in values {
        if seen.insert(other) {
            let (a, b) = if key < other {
                (key, other)
            } else {
                (other, key)
            };
            check_and_verify(corpus, filter, aligning, t, a, b, out);
        }
    }
}

/// Strings that tokenize to nothing are all mutually at NSLD 0
/// (Definition 4's degenerate case); candidate generation cannot see them
/// (no tokens), so they are joined directly driver-side.
fn join_empty_strings(corpus: &Corpus, string_ids: &[u32], pairs: &mut Vec<SimilarPair>) {
    let empties: Vec<u32> = string_ids
        .iter()
        .copied()
        .filter(|&s| corpus.token_count(StringId(s)) == 0)
        .collect();
    for i in 0..empties.len() {
        for j in i + 1..empties.len() {
            pairs.push(SimilarPair {
                a: StringId(empties[i]),
                b: StringId(empties[j]),
                nsld: 0.0,
            });
        }
    }
}

/// The paper's grouping-on-one-string key-selection rule (Sec. III-G3):
/// `τ` becomes the key iff `int(HASH(τ) < HASH(υ)) == (HASH(τ)+HASH(υ)) % 2`;
/// otherwise `υ` does. The parity term decorrelates the choice from the
/// hash order, balancing key-side load across the pair population.
pub(crate) fn one_string_key(a: u32, b: u32) -> (u32, u32) {
    let ha = fingerprint64(&a);
    let hb = fingerprint64(&b);
    let less = u64::from(ha < hb);
    let parity = ha.wrapping_add(hb) % 2;
    if less == parity {
        (a, b)
    } else {
        (b, a)
    }
}

/// Iterates a string's tokens with within-string duplicates removed
/// (postings semantics: a token names a string once).
fn distinct_tokens<'a>(corpus: &'a Corpus, s: StringId) -> impl Iterator<Item = TokenId> + 'a {
    let tokens = corpus.tokens(s);
    tokens
        .iter()
        .enumerate()
        .filter(move |(i, t)| !tokens[..*i].contains(t))
        .map(|(_, &t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_string_key_is_deterministic_and_keeps_both_ids() {
        for (a, b) in [(1u32, 2u32), (10, 99), (5, 5), (0, 1000)] {
            let (k1, v1) = one_string_key(a, b);
            let (k2, v2) = one_string_key(a, b);
            assert_eq!((k1, v1), (k2, v2));
            let mut ids = [k1, v1];
            ids.sort_unstable();
            let mut expect = [a, b];
            expect.sort_unstable();
            assert_eq!(ids, expect);
        }
    }

    #[test]
    fn one_string_key_balances_key_side() {
        // Over many pairs, each side should be chosen roughly half the time
        // (that is the point of the parity rule).
        let mut first = 0u32;
        let n = 10_000u32;
        for i in 0..n {
            let (k, _) = one_string_key(i, i + n);
            if k == i {
                first += 1;
            }
        }
        let frac = first as f64 / n as f64;
        assert!((0.45..0.55).contains(&frac), "key-side fraction {frac}");
    }

    #[test]
    fn similar_pair_spills_roundtrip() {
        let p = SimilarPair {
            a: StringId(7),
            b: StringId(1234),
            nsld: 0.0625,
        };
        let mut bytes = Vec::new();
        p.spill(&mut bytes);
        let mut slice = bytes.as_slice();
        assert_eq!(SimilarPair::restore(&mut slice), Some(p));
        assert!(slice.is_empty());
    }

    #[test]
    fn join_error_wraps_config_and_job_errors() {
        let c: JoinError = ConfigError::ZeroMaxTokenFrequency.into();
        assert!(matches!(c, JoinError::Config(_)));
        assert!(c.to_string().contains("invalid join configuration"));
        let j: JoinError = JobError::Transport {
            message: "exchange failed".into(),
        }
        .into();
        assert!(matches!(j, JoinError::Job(_)));
        assert!(j.to_string().contains("pipeline job failed"));
        // Sources chain for error-reporting crates.
        assert!(std::error::Error::source(&j).is_some());
    }
}
