//! # Tokenized-String Joiner (TSJ)
//!
//! The paper's primary contribution (Sec. III): a scalable, distributed
//! framework for NSLD similarity self-joins of tokenized strings, following
//! a **generate–filter–verify** paradigm:
//!
//! 1. **Generate** candidate pairs that either *share a token*
//!    (Sec. III-C) or *have a pair of similar tokens* (Sec. III-D): the
//!    NSLD threshold `T` carries down to an NLD threshold on tokens
//!    (Theorem 3), so the token spaces are NLD-self-joined with MassJoin
//!    and the hits are expanded through the postings lists.
//! 2. **Filter** candidates with two sound, cheap prunes (Sec. III-E):
//!    the aggregate-length bound (Lemma 6) and a lower bound on SLD
//!    assembled from token-length histograms, the exact LDs of
//!    similar-token matches, and Lemma 10 for provably-dissimilar token
//!    pairs.
//! 3. **Verify** the survivors by computing SLD exactly (Hungarian
//!    matching on the ε-padded token bigraph, Sec. III-F) or approximately
//!    (greedy-token-aligning, Sec. III-G5).
//!
//! The optimizations and approximations of Sec. III-G are all here:
//! self-join symmetry skipping, high-frequency-token dropping (`M`),
//! de-duplication by grouping-on-one-string or grouping-on-both-strings,
//! the exact-token-matching approximation (skip step 1's similar-token
//! side), and greedy-token-aligning.
//!
//! ## Quick start
//!
//! ```
//! use tsj::{TsjConfig, TsjJoiner};
//! use tsj_mapreduce::Cluster;
//! use tsj_tokenize::{Corpus, NameTokenizer};
//!
//! let corpus = Corpus::build(
//!     ["barak obama", "barak obamma", "maria garcia", "mariah garcia"],
//!     &NameTokenizer::default(),
//! );
//! let cluster = Cluster::with_machines(8);
//! let out = TsjJoiner::new(&cluster)
//!     .self_join(&corpus, &TsjConfig { threshold: 0.15, ..TsjConfig::default() })
//!     .unwrap();
//! assert_eq!(out.pairs.len(), 2); // the two near-duplicate pairs
//! ```

pub mod config;
pub mod filters;
pub mod joiner;
pub mod reference;
pub mod scoring;
pub mod verify;

pub use config::{ApproximationScheme, CandidateGen, ConfigError, DedupStrategy, TsjConfig};
pub use filters::{FilterContext, SimilarMap};
pub use joiner::{JoinError, JoinOutput, SimilarPair, TsjJoiner};
pub use reference::brute_force_self_join;
pub use scoring::{pair_set, precision, recall};
pub use verify::{verification_work_units, verify_pair};
