//! Brute-force reference join: the ground truth every TSJ configuration is
//! measured against (`O(n²)` NSLD computations, thread-parallel).

use tsj_mapreduce::pool::run_indexed;
use tsj_setdist::{nsld_within, Aligning};
use tsj_tokenize::{Corpus, StringId};

use crate::joiner::SimilarPair;

/// All pairs with `NSLD ≤ t`, computed exactly (Hungarian verification on
/// every pair, with only the always-sound Lemma 6 pre-check inside
/// `nsld_within`). Sorted by `(a, b)`.
///
/// Use for tests and for the recall denominators of Figs. 4–5; quadratic,
/// so keep inputs ≲ 20k strings.
pub fn brute_force_self_join(corpus: &Corpus, t: f64, threads: usize) -> Vec<SimilarPair> {
    let n = corpus.len();
    let rows: Vec<Vec<SimilarPair>> = run_indexed(n, threads.max(1), |i| {
        let a = StringId(i as u32);
        let ta = corpus.token_texts(a);
        let mut out = Vec::new();
        for j in i + 1..n {
            let b = StringId(j as u32);
            let tb = corpus.token_texts(b);
            if let Some(d) = nsld_within(&ta, &tb, t, Aligning::Hungarian) {
                out.push(SimilarPair { a, b, nsld: d });
            }
        }
        out
    })
    .expect("brute-force workers do not panic");
    let mut pairs: Vec<SimilarPair> = rows.into_iter().flatten().collect();
    pairs.sort_unstable_by_key(|p| (p.a, p.b));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tokenize::NameTokenizer;

    #[test]
    fn finds_known_pairs() {
        let c = Corpus::build(
            ["chan kalan", "chank alan", "other name", "chan kalan"],
            &NameTokenizer::default(),
        );
        let pairs = brute_force_self_join(&c, 0.2, 4);
        let ids: Vec<(u32, u32)> = pairs.iter().map(|p| (p.a.0, p.b.0)).collect();
        assert_eq!(ids, vec![(0, 1), (0, 3), (1, 3)]);
        assert_eq!(pairs[1].nsld, 0.0); // exact duplicate
    }

    #[test]
    fn empty_corpus_and_singleton() {
        let c = Corpus::build(Vec::<&str>::new(), &NameTokenizer::default());
        assert!(brute_force_self_join(&c, 0.3, 2).is_empty());
        let c1 = Corpus::build(["solo act"], &NameTokenizer::default());
        assert!(brute_force_self_join(&c1, 0.3, 2).is_empty());
    }

    #[test]
    fn includes_tokenless_duplicates() {
        let c = Corpus::build(["", "  ", "real name"], &NameTokenizer::default());
        let pairs = brute_force_self_join(&c, 0.1, 2);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].a.0, pairs[0].b.0), (0, 1));
        assert_eq!(pairs[0].nsld, 0.0);
    }
}
