//! Precision / recall scoring of join results against a reference
//! (the metrics of Sec. V-B2).

use std::collections::HashSet;

use tsj_mapreduce::FxBuildHasher;

use crate::joiner::SimilarPair;

/// Collapses join results to their unordered id-pair set (keyed with the
/// runtime's deterministic Fx hasher, not std's per-process SipHash).
pub fn pair_set(pairs: &[SimilarPair]) -> HashSet<(u32, u32), FxBuildHasher> {
    pairs.iter().map(|p| (p.a.0, p.b.0)).collect()
}

/// Recall of `found` against `truth`: "the ratio between the number of the
/// discovered pairs to the number of pairs discovered by
/// fuzzy-token-matching". `1.0` when the truth is empty.
pub fn recall(found: &[SimilarPair], truth: &[SimilarPair]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let f = pair_set(found);
    let t = pair_set(truth);
    t.intersection(&f).count() as f64 / t.len() as f64
}

/// Precision of `found` against `truth`: "the percentage of the discovered
/// pairs that are truly similar". `1.0` when nothing was found.
pub fn precision(found: &[SimilarPair], truth: &[SimilarPair]) -> f64 {
    if found.is_empty() {
        return 1.0;
    }
    let f = pair_set(found);
    let t = pair_set(truth);
    f.intersection(&t).count() as f64 / f.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tokenize::StringId;

    fn pairs(ids: &[(u32, u32)]) -> Vec<SimilarPair> {
        ids.iter()
            .map(|&(a, b)| SimilarPair {
                a: StringId(a),
                b: StringId(b),
                nsld: 0.0,
            })
            .collect()
    }

    #[test]
    fn perfect_scores() {
        let t = pairs(&[(0, 1), (2, 3)]);
        assert_eq!(recall(&t, &t), 1.0);
        assert_eq!(precision(&t, &t), 1.0);
    }

    #[test]
    fn partial_recall() {
        let truth = pairs(&[(0, 1), (2, 3), (4, 5), (6, 7)]);
        let found = pairs(&[(0, 1), (2, 3), (8, 9)]);
        assert_eq!(recall(&found, &truth), 0.5);
        assert!((precision(&found, &truth) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_edge_cases() {
        let some = pairs(&[(0, 1)]);
        assert_eq!(recall(&[], &some), 0.0);
        assert_eq!(recall(&some, &[]), 1.0);
        assert_eq!(precision(&[], &some), 1.0);
    }
}
