//! Final verification (Sec. III-F): exact or greedy NSLD on a candidate
//! pair, with the tokenized-string identifiers resolved back to token text.

use tsj_setdist::{nsld_within, Aligning};
use tsj_tokenize::{Corpus, StringId};

/// Simulated work units for verifying one candidate pair (in the runtime's
/// ~100 ns units): the `O(L(x)*L(y))` token-bigraph construction plus the
/// matching itself -- `O(k^3)` Hungarian or `O(k^2 log k)` greedy
/// (Sec. III-F/III-G5 complexity analysis). This is what makes
/// greedy-token-aligning *simulate* faster as well as run faster.
pub fn verification_work_units(
    corpus: &Corpus,
    a: StringId,
    b: StringId,
    aligning: Aligning,
) -> u64 {
    let (la, lb) = (corpus.total_len(a) as u64, corpus.total_len(b) as u64);
    let k = corpus.token_count(a).max(corpus.token_count(b)) as u64;
    let bigraph = (la * lb / 40).max(1);
    let align = match aligning {
        Aligning::Hungarian => k * k * k / 2,
        Aligning::Greedy => k * k * (64 - k.leading_zeros() as u64) / 4,
    };
    bigraph + align.max(1)
}

/// Computes `NSLD` for one candidate pair and returns it when it is within
/// `t` under the chosen aligning.
///
/// With [`Aligning::Greedy`] the distance is an upper bound on the exact
/// NSLD, so an accepted pair is always a true positive (precision 1.0,
/// Sec. V-B2); some true pairs may be rejected (recall < 1).
pub fn verify_pair(
    corpus: &Corpus,
    a: StringId,
    b: StringId,
    t: f64,
    aligning: Aligning,
) -> Option<f64> {
    let ta = corpus.token_texts(a);
    let tb = corpus.token_texts(b);
    nsld_within(&ta, &tb, t, aligning)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tokenize::NameTokenizer;

    #[test]
    fn verifies_known_pairs() {
        let c = Corpus::build(
            ["chan kalan", "chank alan", "zzz yyy"],
            &NameTokenizer::default(),
        );
        // NSLD = 0.2 (paper example).
        let d = verify_pair(&c, StringId(0), StringId(1), 0.2, Aligning::Hungarian).unwrap();
        assert!((d - 0.2).abs() < 1e-12);
        assert!(verify_pair(&c, StringId(0), StringId(1), 0.19, Aligning::Hungarian).is_none());
        assert!(verify_pair(&c, StringId(0), StringId(2), 0.5, Aligning::Hungarian).is_none());
    }

    #[test]
    fn greedy_never_reports_below_exact() {
        let c = Corpus::build(
            ["ann bee cee", "anne bea see", "ann cee bee"],
            &NameTokenizer::default(),
        );
        for (a, b) in [(0u32, 1u32), (0, 2), (1, 2)] {
            let exact = verify_pair(&c, StringId(a), StringId(b), 0.99, Aligning::Hungarian);
            let greedy = verify_pair(&c, StringId(a), StringId(b), 0.99, Aligning::Greedy);
            if let (Some(e), Some(g)) = (exact, greedy) {
                assert!(g >= e - 1e-12);
            }
        }
    }
}
