//! The dataset differential harness: the dataset-chained TSJ pipeline
//! ([`TsjJoiner::self_join`]) — which since the lazy DAG executor runs
//! its recorded stages with partition-level cross-stage overlap — must
//! produce output *byte-identical* to eager stage-at-a-time execution
//! ([`DatasetMode::Eager`]) and to the collect-based wrapper pipeline
//! ([`TsjJoiner::self_join_collected`]) across real thread counts,
//! shuffle partition counts, both transports, and bounded/unbounded
//! shuffle memory — while its interior candidate-carrying stages move
//! **zero** records across the driver boundary. A chaining or scheduling
//! bug does not crash; it silently corrupts join output, silently
//! reorders a wave, or silently re-materializes the candidate set — this
//! harness is the deliverable that makes the lazy dataset layer
//! trustworthy.

use std::time::Duration;

use proptest::prelude::*;
use tsj::{ApproximationScheme, DedupStrategy, SimilarPair, TsjConfig, TsjJoiner};
use tsj_datagen::workload;
use tsj_mapreduce::{
    Cluster, ClusterConfig, DatasetMode, Emitter, OutputSink, SchedulerConfig, SchedulerMode,
    ShuffleConfig, SimReport, StraggleInjection, Transport,
};
use tsj_tokenize::{Corpus, NameTokenizer};

fn cluster_with(
    threads: usize,
    partitions: usize,
    machines: usize,
    shuffle: ShuffleConfig,
) -> Cluster {
    Cluster::new(ClusterConfig {
        machines,
        threads,
        partitions,
        ..ClusterConfig::default()
    })
    .with_shuffle_config(shuffle)
}

fn config(t: f64) -> TsjConfig {
    TsjConfig {
        threshold: t,
        max_token_frequency: Some(100),
        // FuzzyTokenMatching pulls the MassJoin sub-pipeline in, so the
        // chained graph exercises every stage shape: uncombined,
        // Count/Dedup-combined, group-overhead verification, and the
        // union of two candidate streams.
        scheme: ApproximationScheme::FuzzyTokenMatching,
        dedup: DedupStrategy::OneString,
        ..TsjConfig::default()
    }
}

fn chained(cluster: &Cluster, corpus: &Corpus, t: f64) -> tsj::JoinOutput {
    TsjJoiner::new(cluster)
        .self_join(corpus, &config(t))
        .unwrap()
}

/// The same pipeline with every dataset stage forced at its call site —
/// the pre-DAG semantics the lazy scheduler must reproduce exactly.
fn chained_eager(cluster: &Cluster, corpus: &Corpus, t: f64) -> tsj::JoinOutput {
    TsjJoiner::new(&cluster.clone().with_dataset_mode(DatasetMode::Eager))
        .self_join(corpus, &config(t))
        .unwrap()
}

fn collected_pairs(cluster: &Cluster, corpus: &Corpus, t: f64) -> Vec<SimilarPair> {
    TsjJoiner::new(cluster)
        .self_join_collected(corpus, &config(t))
        .unwrap()
        .pairs
}

/// The shuffle configurations of the sweep: both transports, unbounded
/// and spill-pressured.
fn shuffle_matrix() -> [ShuffleConfig; 4] {
    [
        ShuffleConfig::unbounded(),
        ShuffleConfig::bounded(8, 8),
        ShuffleConfig::unbounded().with_transport(Transport::MultiProcess),
        ShuffleConfig::bounded(8, 8).with_transport(Transport::MultiProcess),
    ]
}

/// Interior candidate-carrying stages: their output must stay inside the
/// runtime (that is the dataset layer's entire point).
const INTERIOR: [&str; 3] = [
    "tsj.shared_token",
    "tsj.expand_similar",
    "massjoin.candidates",
];

fn assert_driver_accounting(report: &SimReport, n_strings: u64) {
    for j in report.jobs() {
        if INTERIOR.contains(&j.name.as_str()) {
            assert_eq!(
                j.driver_out_records, 0,
                "interior stage {} materialized records driver-side",
                j.name
            );
        }
        match j.name.as_str() {
            // Driver-fed stages: the crossing is their input length.
            "tsj.token_stats" | "tsj.shared_token" => {
                assert_eq!(j.driver_in_records, n_strings, "{}", j.name);
            }
            // Runtime-fed stages: nothing crosses inward.
            "massjoin.verify" => assert_eq!(j.driver_in_records, 0, "{}", j.name),
            name if name.starts_with("tsj.dedup_verify") => {
                assert_eq!(j.driver_in_records, 0, "{}", j.name);
                // Everything a collected terminal stage emits crosses
                // exactly once.
                assert_eq!(j.driver_out_records, j.output_records, "{}", j.name);
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The scheduler-mode guarantee: the FIFO pool, the priority
    /// work-stealing scheduler, and speculative re-execution (with a
    /// millisecond speculation threshold, so copies really launch) all
    /// produce *byte-identical* verified join output — across threads ×
    /// partitions × both transports × bounded/unbounded shuffles — and
    /// the interior stages still cross zero driver records. Scheduling
    /// policy may only ever change wall-clock behaviour and the
    /// observability counters.
    #[test]
    fn scheduler_modes_are_join_output_invariant(
        seed in 0u64..1_000,
        t in 0.05f64..0.2,
    ) {
        let w = workload(100, 0.3, seed);
        let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
        let n = corpus.len() as u64;
        let reference = collected_pairs(
            &cluster_with(4, 0, 16, ShuffleConfig::unbounded())
                .with_scheduler(SchedulerConfig {
                    mode: SchedulerMode::Fifo,
                    ..SchedulerConfig::default()
                }),
            &corpus,
            t,
        );
        let modes = [
            SchedulerConfig {
                mode: SchedulerMode::Fifo,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                mode: SchedulerMode::Stealing,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                mode: SchedulerMode::Speculative,
                speculate_after: Duration::from_millis(1),
                straggle: None,
            },
            // Speculation with a seeded straggler on a mid-pipeline
            // stage: the winning copy's output must be indistinguishable
            // from the loser's.
            SchedulerConfig {
                mode: SchedulerMode::Speculative,
                speculate_after: Duration::from_millis(1),
                straggle: Some(StraggleInjection {
                    stage: "tsj.shared_token".into(),
                    micros: 20_000,
                }),
            },
        ];
        for shuffle in [
            ShuffleConfig::unbounded(),
            ShuffleConfig::bounded(8, 8).with_transport(Transport::MultiProcess),
        ] {
            for threads in [2usize, 8] {
                for partitions in [0usize, 5] {
                    for sched in &modes {
                        let cluster = cluster_with(threads, partitions, 16, shuffle.clone())
                            .with_scheduler(sched.clone());
                        let out = chained(&cluster, &corpus, t);
                        prop_assert_eq!(
                            &out.pairs,
                            &reference,
                            "mode = {:?}, straggle = {}, threads = {}, partitions = {}",
                            sched.mode,
                            sched.straggle.is_some(),
                            threads,
                            partitions
                        );
                        assert_driver_accounting(&out.report, n);
                        if sched.mode != SchedulerMode::Speculative {
                            prop_assert_eq!(out.report.total_speculative_launched(), 0);
                            prop_assert_eq!(out.report.total_speculative_won(), 0);
                        }
                    }
                }
            }
        }
    }

    /// The acceptance guarantee: lazy DAG execution (cross-stage
    /// overlap), eager stage-at-a-time execution, and the collect-based
    /// wrappers all produce *byte-identical* verified join output (ids
    /// and distances) — across ≥3 real thread counts × ≥3 partition
    /// counts × both transports × bounded/unbounded shuffles — and
    /// interior stages cross zero driver records in every configuration.
    #[test]
    fn chained_join_is_byte_identical_to_collected(
        seed in 0u64..1_000,
        t in 0.05f64..0.2,
    ) {
        let w = workload(100, 0.3, seed);
        let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
        let n = corpus.len() as u64;
        let reference = collected_pairs(
            &cluster_with(4, 0, 16, ShuffleConfig::unbounded()),
            &corpus,
            t,
        );
        for shuffle in shuffle_matrix() {
            for threads in [1usize, 2, 8] {
                let cluster = cluster_with(threads, 0, 16, shuffle.clone());
                let out = chained(&cluster, &corpus, t);
                prop_assert_eq!(&out.pairs, &reference, "lazy, threads = {}", threads);
                assert_driver_accounting(&out.report, n);
                let eager = chained_eager(&cluster, &corpus, t);
                prop_assert_eq!(&eager.pairs, &reference, "eager, threads = {}", threads);
                assert_driver_accounting(&eager.report, n);
            }
            for partitions in [1usize, 5, 64] {
                let cluster = cluster_with(4, partitions, 16, shuffle.clone());
                let out = chained(&cluster, &corpus, t);
                prop_assert_eq!(&out.pairs, &reference, "lazy, partitions = {}", partitions);
                assert_driver_accounting(&out.report, n);
                let eager = chained_eager(&cluster, &corpus, t);
                prop_assert_eq!(&eager.pairs, &reference, "eager, partitions = {}", partitions);
                assert_driver_accounting(&eager.report, n);
            }
        }
    }
}

/// The report of a chained join names every stage in execution order,
/// books the `M` filter's dropped tokens on the token_stats job, and the
/// driver totals decompose into exactly the legitimate crossings.
#[test]
fn chained_report_accounts_for_the_driver_boundary() {
    let w = workload(200, 0.35, 7);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let cluster = cluster_with(4, 0, 16, ShuffleConfig::bounded(16, 32));
    let out = TsjJoiner::new(&cluster)
        .self_join(
            &corpus,
            &TsjConfig {
                threshold: 0.15,
                // Tiny M so the filter provably bites.
                max_token_frequency: Some(3),
                ..TsjConfig::default()
            },
        )
        .unwrap();

    // Execution order: token_stats and the MassJoin sub-graph collect
    // early (their outputs are driver state the later stage closures
    // need); the lazily recorded candidate stages and the verifier all
    // execute at the final collect, in build order.
    let names: Vec<&str> = out.report.jobs().iter().map(|j| j.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "tsj.token_stats",
            "massjoin.candidates",
            "massjoin.verify",
            "tsj.shared_token",
            "tsj.expand_similar",
            "tsj.dedup_verify.one_string",
        ]
    );
    assert_driver_accounting(&out.report, corpus.len() as u64);

    // The dropped-token observability hole is closed: the counter lives
    // on the token_stats job and agrees with a driver-side recount.
    let stats_job = &out.report.jobs()[0];
    let dropped = stats_job.counter("tokens_dropped_by_M");
    assert!(dropped > 0, "M = 3 on 200 names must drop some tokens");
    assert_eq!(out.report.counter("tokens_dropped_by_M"), dropped);

    // Driver crossings: inputs of the driver-fed stages + every collected
    // output — nothing else.
    let expected_in: u64 = out.report.jobs().iter().map(|j| j.driver_in_records).sum();
    let expected_out: u64 = out.report.jobs().iter().map(|j| j.driver_out_records).sum();
    assert_eq!(out.report.total_driver_in_records(), expected_in);
    assert_eq!(out.report.total_driver_out_records(), expected_out);
    assert_eq!(
        out.report.total_driver_records(),
        expected_in + expected_out
    );
    // The rendered report carries the driver column.
    let rendered = format!("{}", out.report);
    assert!(rendered.contains("driver(rec)"));
}

/// Both dedup strategies and all three approximation schemes survive the
/// chaining (exercising the group-overhead dataset stages, the
/// SharedOnly graph without a union, and greedy verification).
#[test]
fn all_schemes_and_dedups_match_collected_chaining() {
    let w = workload(120, 0.3, 99);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    for (scheme, dedup) in [
        (
            ApproximationScheme::FuzzyTokenMatching,
            DedupStrategy::BothStrings,
        ),
        (
            ApproximationScheme::GreedyTokenAligning,
            DedupStrategy::OneString,
        ),
        (
            ApproximationScheme::ExactTokenMatching,
            DedupStrategy::OneString,
        ),
    ] {
        let cfg = TsjConfig {
            threshold: 0.15,
            max_token_frequency: Some(100),
            scheme,
            dedup,
            ..TsjConfig::default()
        };
        for shuffle in [
            ShuffleConfig::unbounded(),
            ShuffleConfig::bounded(16, 32).with_transport(Transport::MultiProcess),
        ] {
            let cluster = cluster_with(4, 0, 16, shuffle);
            let joiner = TsjJoiner::new(&cluster);
            let chained = joiner.self_join(&corpus, &cfg).unwrap();
            let collected = joiner.self_join_collected(&corpus, &cfg).unwrap();
            assert_eq!(
                chained.pairs, collected.pairs,
                "scheme {scheme:?}, dedup {dedup:?}"
            );
            assert_driver_accounting(&chained.report, corpus.len() as u64);
        }
    }
}

/// Bad configurations surface as `JoinError::Config` before any job runs
/// — no panic, and both pipeline forms agree on the error.
#[test]
fn invalid_configs_error_instead_of_panicking() {
    let corpus = Corpus::build(["a b", "a c"], &NameTokenizer::default());
    let cluster = cluster_with(2, 0, 4, ShuffleConfig::unbounded());
    let joiner = TsjJoiner::new(&cluster);
    for bad in [
        TsjConfig {
            threshold: 0.9,
            ..TsjConfig::default()
        },
        TsjConfig {
            threshold: -0.5,
            ..TsjConfig::default()
        },
        TsjConfig {
            max_token_frequency: Some(0),
            ..TsjConfig::default()
        },
    ] {
        let err = joiner.self_join(&corpus, &bad).unwrap_err();
        assert!(
            matches!(err, tsj::JoinError::Config(_)),
            "expected a config error, got {err:?}"
        );
        assert_eq!(err, joiner.self_join_collected(&corpus, &bad).unwrap_err());
    }
}

/// `Dataset::repartition` invariance on real workload data: re-routing a
/// skewed candidate stream by record hash between two pipeline-shaped
/// stages changes partition placement only — the downstream stage's
/// (sorted) output is byte-identical with and without it, across
/// partition counts, transports, and bounded/unbounded shuffles.
#[test]
fn repartition_between_stages_is_output_invariant() {
    let w = workload(150, 0.35, 11);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let string_ids: Vec<u32> = (0..corpus.len() as u32).collect();
    for shuffle in [
        ShuffleConfig::unbounded(),
        ShuffleConfig::bounded(8, 8).with_transport(Transport::MultiProcess),
    ] {
        let cluster = cluster_with(4, 0, 16, shuffle);
        let run = |repartition: Option<usize>| {
            let candidates = cluster
                .input(&string_ids)
                .map_reduce(
                    "cand.shared_token",
                    |&s, e: &mut Emitter<u32, u32>| {
                        for &t in corpus.tokens(tsj_tokenize::StringId(s)) {
                            e.emit(t.0, s);
                        }
                    },
                    |_t: &u32, mut sids: Vec<u32>, out: &mut OutputSink<(u32, u32)>| {
                        sids.sort_unstable();
                        sids.dedup();
                        for i in 0..sids.len() {
                            for j in i + 1..sids.len() {
                                out.emit((sids[i], sids[j]));
                            }
                        }
                    },
                )
                .unwrap();
            let candidates = match repartition {
                Some(n) => candidates.repartition(n).unwrap(),
                None => candidates,
            };
            let (mut out, report) = candidates
                .map_reduce_combined(
                    "cand.dedup",
                    |&pair: &(u32, u32), e: &mut Emitter<(u32, u32), ()>| e.emit(pair, ()),
                    &tsj_mapreduce::Dedup,
                    |&pair: &(u32, u32), _hits: Vec<()>, out: &mut OutputSink<(u32, u32)>| {
                        out.emit(pair);
                    },
                )
                .unwrap()
                .collect()
                .unwrap();
            out.sort_unstable();
            if let Some(n) = repartition {
                let repart = &report.jobs()[1];
                assert!(repart.name.starts_with("repartition"), "{}", repart.name);
                assert_eq!(
                    repart.input_records, repart.output_records,
                    "repartition({n}) must move every record exactly once"
                );
                assert_eq!(repart.driver_in_records + repart.driver_out_records, 0);
            }
            out
        };
        let plain = run(None);
        assert!(!plain.is_empty());
        for n in [1usize, 3, 32] {
            assert_eq!(run(Some(n)), plain, "repartition({n})");
        }
    }
}
