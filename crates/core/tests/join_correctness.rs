//! End-to-end correctness of the TSJ pipeline.
//!
//! The load-bearing claims (Sec. III, V-B):
//!
//! * fuzzy-token-matching ≡ brute force (with `M` disabled): the generate /
//!   filter stages lose nothing, Theorem 3 and the filter soundness hold
//!   end to end;
//! * both dedup strategies produce identical result sets;
//! * the approximations only lose pairs (precision 1.0), with
//!   exact ⊆ {greedy, fuzzy} ⊆ fuzzy;
//! * a finite `M` only loses pairs whose every witness token was dropped.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsj::{
    brute_force_self_join, pair_set, precision, recall, ApproximationScheme, DedupStrategy,
    TsjConfig, TsjJoiner,
};
use tsj_datagen::workload;
use tsj_mapreduce::Cluster;
use tsj_tokenize::{Corpus, NameTokenizer};

fn corpus_of(strings: &[String]) -> Corpus {
    Corpus::build(strings, &NameTokenizer::default())
}

fn join(
    corpus: &Corpus,
    t: f64,
    scheme: ApproximationScheme,
    dedup: DedupStrategy,
    m: Option<usize>,
) -> Vec<tsj::SimilarPair> {
    let cluster = Cluster::with_machines(16);
    TsjJoiner::new(&cluster)
        .self_join(
            corpus,
            &TsjConfig {
                threshold: t,
                max_token_frequency: m,
                scheme,
                dedup,
                ..TsjConfig::default()
            },
        )
        .unwrap()
        .pairs
}

#[test]
fn fuzzy_equals_brute_force_on_fixed_corpus() {
    let strings: Vec<String> = [
        "barak obama",
        "barak obamma",
        "burak ubama",
        "obama barak",
        "chan kalan",
        "chank alan",
        "maria garcia",
        "mariah garcia",
        "maria lopez garcia",
        "wei chen",
        "wei chan",
        "jon smith",
        "jonathan smith",
        "j smith",
        "",
        "  ",
        "bob bob",
        "bob",
        "anna lee kim",
        "ana lee kim",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let c = corpus_of(&strings);
    for t in [0.05, 0.1, 0.15, 0.25] {
        let truth = brute_force_self_join(&c, t, 4);
        let got = join(
            &c,
            t,
            ApproximationScheme::FuzzyTokenMatching,
            DedupStrategy::OneString,
            None,
        );
        assert_eq!(
            pair_set(&got),
            pair_set(&truth),
            "t={t}: TSJ fuzzy != brute force"
        );
        // Distances agree too (both exact).
        for (g, b) in got.iter().zip(truth.iter()) {
            assert_eq!((g.a, g.b), (b.a, b.b));
            assert!((g.nsld - b.nsld).abs() < 1e-12);
        }
    }
}

#[test]
fn dedup_strategies_agree() {
    let w = workload(300, 0.3, 17);
    let c = corpus_of(&w.strings);
    for t in [0.1, 0.2] {
        let one = join(
            &c,
            t,
            ApproximationScheme::FuzzyTokenMatching,
            DedupStrategy::OneString,
            None,
        );
        let both = join(
            &c,
            t,
            ApproximationScheme::FuzzyTokenMatching,
            DedupStrategy::BothStrings,
            None,
        );
        assert_eq!(pair_set(&one), pair_set(&both), "t={t}");
    }
}

#[test]
fn approximations_err_on_the_false_negative_side() {
    let w = workload(400, 0.4, 23);
    let c = corpus_of(&w.strings);
    for t in [0.075, 0.15, 0.225] {
        let fuzzy = join(
            &c,
            t,
            ApproximationScheme::FuzzyTokenMatching,
            DedupStrategy::OneString,
            None,
        );
        let greedy = join(
            &c,
            t,
            ApproximationScheme::GreedyTokenAligning,
            DedupStrategy::OneString,
            None,
        );
        let exact = join(
            &c,
            t,
            ApproximationScheme::ExactTokenMatching,
            DedupStrategy::OneString,
            None,
        );

        // Precision 1.0: every reported pair is truly similar.
        assert_eq!(precision(&greedy, &fuzzy), 1.0, "greedy precision at t={t}");
        assert_eq!(precision(&exact, &fuzzy), 1.0, "exact precision at t={t}");

        // Subset structure.
        assert!(pair_set(&greedy).is_subset(&pair_set(&fuzzy)));
        assert!(pair_set(&exact).is_subset(&pair_set(&fuzzy)));

        // Recall ordering observed in the paper: greedy ≈ 1, exact below.
        let rg = recall(&greedy, &fuzzy);
        let re = recall(&exact, &fuzzy);
        assert!(
            rg >= re - 1e-9,
            "greedy recall {rg} < exact recall {re} at t={t}"
        );
        assert!(rg > 0.95, "greedy recall {rg} too low at t={t}");
    }
}

#[test]
fn m_filter_only_loses_pairs() {
    let w = workload(400, 0.3, 31);
    let c = corpus_of(&w.strings);
    let t = 0.1;
    let unfiltered = join(
        &c,
        t,
        ApproximationScheme::FuzzyTokenMatching,
        DedupStrategy::OneString,
        None,
    );
    let mut prev = pair_set(&unfiltered);
    // Decreasing M drops more tokens, monotonically losing candidates.
    for m in [200usize, 50, 10, 2] {
        let got = join(
            &c,
            t,
            ApproximationScheme::FuzzyTokenMatching,
            DedupStrategy::OneString,
            Some(m),
        );
        let set = pair_set(&got);
        assert!(
            set.is_subset(&prev),
            "M={m} must not add pairs over the next-larger M"
        );
        assert_eq!(precision(&got, &unfiltered), 1.0);
        prev = set;
    }
}

#[test]
fn rings_are_recovered() {
    // Planted fraud rings must be substantially reconnected at T = 0.2
    // (1–2 small edits per variant).
    let w = workload(500, 0.5, 41);
    let c = corpus_of(&w.strings);
    let found = pair_set(&join(
        &c,
        0.2,
        ApproximationScheme::FuzzyTokenMatching,
        DedupStrategy::OneString,
        None,
    ));
    let mut ring_pairs = 0usize;
    let mut recovered = 0usize;
    for ring in &w.rings {
        for i in 0..ring.len() {
            for j in i + 1..ring.len() {
                ring_pairs += 1;
                let (a, b) = (ring[i] as u32, ring[j] as u32);
                let key = if a < b { (a, b) } else { (b, a) };
                if found.contains(&key) {
                    recovered += 1;
                }
            }
        }
    }
    let frac = recovered as f64 / ring_pairs.max(1) as f64;
    assert!(
        frac > 0.5,
        "only {recovered}/{ring_pairs} ring pairs recovered at T=0.2"
    );
}

#[test]
fn filters_can_be_disabled_without_changing_results() {
    let w = workload(250, 0.4, 53);
    let c = corpus_of(&w.strings);
    let cluster = Cluster::with_machines(8);
    let base = TsjConfig {
        threshold: 0.15,
        max_token_frequency: None,
        ..TsjConfig::default()
    };
    let with = TsjJoiner::new(&cluster).self_join(&c, &base).unwrap();
    let without = TsjJoiner::new(&cluster)
        .self_join(
            &c,
            &TsjConfig {
                length_filter: false,
                histogram_filter: false,
                ..base
            },
        )
        .unwrap();
    assert_eq!(pair_set(&with.pairs), pair_set(&without.pairs));
    // The filters must actually prune something on this workload.
    assert!(
        with.report.counter("pruned_length") + with.report.counter("pruned_histogram") > 0,
        "filters never fired — workload too easy or filters broken"
    );
    // Filtered run verifies fewer candidates.
    assert!(with.report.counter("verified") <= without.report.counter("verified"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized end-to-end equivalence: TSJ fuzzy (no M) ≡ brute force on
    /// arbitrary small populations, all dedup strategies.
    #[test]
    fn fuzzy_equals_brute_force_random(seed in 0u64..10_000, t in 0.03f64..0.3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut strings =
            tsj_datagen::generate_names(40, &mut rng, &tsj_datagen::NameGenConfig::default());
        let rings = tsj_datagen::plant_rings(
            &mut strings, 4, &mut rng, &tsj_datagen::RingConfig::default());
        let _ = rings;
        let c = corpus_of(&strings);
        let truth = pair_set(&brute_force_self_join(&c, t, 4));
        for dedup in [DedupStrategy::OneString, DedupStrategy::BothStrings] {
            let got = pair_set(&join(
                &c, t, ApproximationScheme::FuzzyTokenMatching, dedup, None));
            prop_assert_eq!(&got, &truth, "dedup={:?} t={}", dedup, t);
        }
    }
}
