//! Pin: the shipped TSJ and MassJoin pipeline graphs analyze with zero
//! plan diagnostics — under `PlanCheck::Deny`, so a regression fails the
//! job instead of merely warning. (The HMJ graph has the same pin in
//! `crates/metricjoin/tests/plan_clean.rs`.)
//!
//! The clusters pin `ShuffleConfig::default()` so the pin is about the
//! *graph shape*, independent of the shuffle knobs CI jobs inject via
//! `TSJ_*` environment variables.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsj::{TsjConfig, TsjJoiner};
use tsj_datagen::{generate_names, plant_rings, NameGenConfig, RingConfig};
use tsj_mapreduce::{Cluster, DatasetMode, PlanCheck, ShuffleConfig};
use tsj_passjoin::MassJoin;
use tsj_tokenize::{Corpus, NameTokenizer};

fn strict_cluster() -> Cluster {
    Cluster::with_machines(8)
        .with_shuffle_config(ShuffleConfig::default())
        .with_plan_check(PlanCheck::Deny)
}

fn workload() -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(11);
    let mut strings = generate_names(120, &mut rng, &NameGenConfig::default());
    plant_rings(&mut strings, 8, &mut rng, &RingConfig::default());
    strings
}

#[test]
fn tsj_pipeline_analyzes_clean() {
    let strings = workload();
    let corpus = Corpus::build(&strings, &NameTokenizer::default());
    for mode in [DatasetMode::Lazy, DatasetMode::Eager] {
        let cluster = strict_cluster().with_dataset_mode(mode);
        // Deny mode: any diagnostic fails the join outright.
        let out = TsjJoiner::new(&cluster)
            .self_join(&corpus, &TsjConfig::default())
            .expect("shipped TSJ graph must analyze clean");
        assert!(
            out.report.plan_diagnostics().is_empty(),
            "mode {mode:?}: {:?}",
            out.report.plan_diagnostics()
        );
        assert!(!out.pairs.is_empty(), "workload has planted rings");
    }
}

#[test]
fn massjoin_pipeline_analyzes_clean() {
    let strings = workload();
    let tokens: Vec<&str> = strings.iter().map(|s| s.as_str()).collect();
    let cluster = strict_cluster();
    let (pairs, report) = MassJoin::new(&cluster, 0.2)
        .nld_self_join(&tokens)
        .expect("shipped MassJoin graph must analyze clean");
    assert!(
        report.plan_diagnostics().is_empty(),
        "{:?}",
        report.plan_diagnostics()
    );
    assert!(!pairs.is_empty(), "workload has planted rings");
}
