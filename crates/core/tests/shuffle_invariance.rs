//! Shuffle-refactor invariants: the verified join output must be
//! byte-identical regardless of real thread count and shuffle partition
//! count, and the combiner-based jobs must match their uncombined
//! formulations exactly.

use proptest::prelude::*;
use tsj::{ApproximationScheme, DedupStrategy, SimilarPair, TsjConfig, TsjJoiner};
use tsj_datagen::workload;
use tsj_mapreduce::{Cluster, ClusterConfig, CostModel, Count, Emitter, OutputSink};
use tsj_tokenize::{Corpus, NameTokenizer, StringId};

fn cluster_with(threads: usize, partitions: usize, machines: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        machines,
        threads,
        partitions,
        cost: CostModel::default(),
    })
}

fn join_with(
    cluster: &Cluster,
    corpus: &Corpus,
    t: f64,
    scheme: ApproximationScheme,
    dedup: DedupStrategy,
) -> Vec<SimilarPair> {
    TsjJoiner::new(cluster)
        .self_join(
            corpus,
            &TsjConfig {
                threshold: t,
                max_token_frequency: Some(100),
                scheme,
                dedup,
                ..TsjConfig::default()
            },
        )
        .unwrap()
        .pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole's behaviour-preservation guarantee, end to end: the
    /// sorted `SimilarPair` output of a full TSJ self-join is *identical*
    /// (ids and distances, not just the pair set) across real thread
    /// counts and shuffle partition counts.
    #[test]
    fn join_output_invariant_under_threads_and_partitions(
        seed in 0u64..1_000,
        t in 0.05f64..0.25,
    ) {
        let w = workload(120, 0.3, seed);
        let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
        for (scheme, dedup) in [
            (ApproximationScheme::FuzzyTokenMatching, DedupStrategy::OneString),
            (ApproximationScheme::GreedyTokenAligning, DedupStrategy::BothStrings),
        ] {
            let reference =
                join_with(&cluster_with(1, 0, 16), &corpus, t, scheme, dedup);
            for threads in [2usize, 8] {
                let got =
                    join_with(&cluster_with(threads, 0, 16), &corpus, t, scheme, dedup);
                prop_assert_eq!(&got, &reference, "threads = {}", threads);
            }
            for partitions in [1usize, 5, 64] {
                let got =
                    join_with(&cluster_with(4, partitions, 16), &corpus, t, scheme, dedup);
                prop_assert_eq!(&got, &reference, "partitions = {}", partitions);
            }
            // Machine count changes partitioning too (partitions defaults
            // to machines) — output still identical.
            for machines in [1usize, 3, 64] {
                let got =
                    join_with(&cluster_with(4, 0, machines), &corpus, t, scheme, dedup);
                prop_assert_eq!(&got, &reference, "machines = {}", machines);
            }
        }
    }
}

/// `tsj.token_stats` equivalence: the production formulation (emit 1 per
/// distinct token occurrence, `Count` combiner, summing reducer) matches
/// the pre-refactor uncombined formulation (emit `()` per occurrence,
/// reducer counts the group) document-frequency for document-frequency.
#[test]
fn token_stats_combiner_matches_uncombined_reduce() {
    let w = workload(300, 0.3, 41);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let string_ids: Vec<u32> = (0..corpus.len() as u32).collect();
    let cluster = cluster_with(4, 0, 16);

    let distinct_tokens = |s: u32| {
        let tokens = corpus.tokens(StringId(s));
        tokens
            .iter()
            .enumerate()
            .filter(move |(i, t)| !tokens[..*i].contains(t))
            .map(|(_, &t)| t)
            .collect::<Vec<_>>()
    };

    // Pre-refactor shape: one shuffled record per token occurrence.
    let uncombined = cluster
        .run(
            "token_stats.uncombined",
            &string_ids,
            |&s, e: &mut Emitter<u32, ()>| {
                for t in distinct_tokens(s) {
                    e.emit(t.0, ());
                }
            },
            |&tid, hits: Vec<()>, out: &mut OutputSink<(u32, u32)>| {
                out.emit((tid, hits.len() as u32));
            },
        )
        .unwrap();

    // Production shape (what `TsjJoiner` runs): partial counts + combiner.
    let combined = cluster
        .run_combined(
            "token_stats.combined",
            &string_ids,
            |&s, e: &mut Emitter<u32, u64>| {
                for t in distinct_tokens(s) {
                    e.emit(t.0, 1);
                }
            },
            &Count,
            |&tid, partial_counts: Vec<u64>, out: &mut OutputSink<(u32, u32)>| {
                out.emit((tid, partial_counts.iter().sum::<u64>() as u32));
            },
        )
        .unwrap();

    let sort = |mut v: Vec<(u32, u32)>| {
        v.sort_unstable();
        v
    };
    assert_eq!(sort(uncombined.output), sort(combined.output));
    // The whole point: same answer, fewer shuffled records.
    assert_eq!(
        uncombined.stats.shuffle_records,
        uncombined.stats.map_output_records
    );
    assert!(
        combined.stats.shuffle_records < uncombined.stats.shuffle_records,
        "count combiner must shrink token_stats shuffle volume: {} vs {}",
        combined.stats.shuffle_records,
        uncombined.stats.shuffle_records
    );
}

/// The pipeline report must show the combiner actually engaging on the
/// combiner-enabled TSJ jobs (shuffled < emitted).
#[test]
fn sim_report_shows_reduced_shuffle_volume() {
    let w = workload(400, 0.35, 17);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let cluster = cluster_with(4, 0, 16);
    let out = TsjJoiner::new(&cluster)
        .self_join(
            &corpus,
            &TsjConfig {
                threshold: 0.15,
                max_token_frequency: Some(100),
                ..TsjConfig::default()
            },
        )
        .unwrap();
    let jobs = out.report.jobs();
    assert!(!jobs.is_empty());
    for j in jobs {
        assert!(
            j.shuffle_records <= j.map_output_records,
            "{}: shuffled {} > emitted {}",
            j.name,
            j.shuffle_records,
            j.map_output_records
        );
    }
    let stats = |name: &str| {
        jobs.iter()
            .find(|j| j.name == name)
            .unwrap_or_else(|| panic!("job {name} missing from report"))
    };
    // token_stats emits one record per (string, distinct token); with ~400
    // names over a shared token vocabulary the Count combiner must fold
    // some of them inside at least one map task.
    let ts = stats("tsj.token_stats");
    assert!(
        ts.shuffle_records < ts.map_output_records,
        "token_stats combiner never engaged: {} emitted, {} shuffled",
        ts.map_output_records,
        ts.shuffle_records
    );
    // The report totals aggregate the saving.
    assert!(out.report.total_shuffle_records() < out.report.total_map_output_records());
}
