//! Memory-bounded shuffle invariants at the pipeline level: a full TSJ
//! self-join run with tiny combine/spill thresholds must produce output
//! byte-identical to the unbounded configuration across thread, partition
//! and machine counts; mapper memory must honour the threshold; and the
//! spilled volume must be visible in (and charged by) the simulation.

use proptest::prelude::*;
use tsj::{ApproximationScheme, DedupStrategy, SimilarPair, TsjConfig, TsjJoiner};
use tsj_datagen::workload;
use tsj_mapreduce::{Cluster, ClusterConfig, ShuffleConfig};
use tsj_tokenize::{Corpus, NameTokenizer};

fn cluster_with(
    threads: usize,
    partitions: usize,
    machines: usize,
    shuffle: ShuffleConfig,
) -> Cluster {
    Cluster::new(ClusterConfig {
        machines,
        threads,
        partitions,
        ..ClusterConfig::default()
    })
    .with_shuffle_config(shuffle)
}

fn join(cluster: &Cluster, corpus: &Corpus, t: f64) -> tsj::JoinOutput {
    TsjJoiner::new(cluster)
        .self_join(
            corpus,
            &TsjConfig {
                threshold: t,
                max_token_frequency: Some(100),
                scheme: ApproximationScheme::FuzzyTokenMatching,
                dedup: DedupStrategy::OneString,
                ..TsjConfig::default()
            },
        )
        .unwrap()
}

fn pairs(cluster: &Cluster, corpus: &Corpus, t: f64) -> Vec<SimilarPair> {
    join(cluster, corpus, t).pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole's behaviour-preservation guarantee: with the spill
    /// threshold forced tiny, the verified join output is *byte-identical*
    /// (ids and distances) to the unbounded run, across real thread
    /// counts, shuffle partition counts, and simulated machine counts.
    #[test]
    fn bounded_join_is_byte_identical_to_unbounded(
        seed in 0u64..1_000,
        t in 0.05f64..0.2,
    ) {
        let w = workload(100, 0.3, seed);
        let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
        let reference =
            pairs(&cluster_with(4, 0, 16, ShuffleConfig::unbounded()), &corpus, t);
        for shuffle in [ShuffleConfig::bounded(24, 48), ShuffleConfig::bounded(8, 8)] {
            for threads in [1usize, 8] {
                let got = pairs(&cluster_with(threads, 0, 16, shuffle.clone()), &corpus, t);
                prop_assert_eq!(&got, &reference, "threads = {}", threads);
            }
            for partitions in [1usize, 5, 64] {
                let got = pairs(&cluster_with(4, partitions, 16, shuffle.clone()), &corpus, t);
                prop_assert_eq!(&got, &reference, "partitions = {}", partitions);
            }
            for machines in [1usize, 64] {
                let got = pairs(&cluster_with(4, 0, machines, shuffle.clone()), &corpus, t);
                prop_assert_eq!(&got, &reference, "machines = {}", machines);
            }
        }
    }

    /// Mapper memory honours the spill threshold on every pipeline job, in
    /// every configuration, including jobs whose mappers emit bursts.
    #[test]
    fn peak_buffered_records_never_exceed_the_threshold(
        seed in 0u64..1_000,
        threshold in 8usize..64,
    ) {
        let w = workload(150, 0.35, seed);
        let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
        let shuffle = ShuffleConfig {
            combine_threshold: Some(threshold / 2),
            spill_threshold: Some(threshold),
            ..ShuffleConfig::default()
        };
        let out = join(&cluster_with(4, 0, 16, shuffle), &corpus, 0.15);
        for j in out.report.jobs() {
            prop_assert!(
                j.peak_buffered_records <= threshold as u64,
                "job {} peaked at {} buffered records (threshold {})",
                j.name, j.peak_buffered_records, threshold
            );
        }
    }
}

/// The spill path must actually engage on a realistic workload, show up in
/// the report totals, and be charged by the cost model — while the
/// unbounded run of the same workload spills nothing.
#[test]
fn report_shows_and_charges_spilled_volume() {
    let w = workload(400, 0.35, 23);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());

    let unbounded = join(
        &cluster_with(4, 0, 16, ShuffleConfig::unbounded()),
        &corpus,
        0.15,
    );
    assert_eq!(unbounded.report.total_spilled_records(), 0);
    assert_eq!(unbounded.report.total_spill_bytes(), 0);

    let bounded = join(
        &cluster_with(4, 0, 16, ShuffleConfig::bounded(32, 64)),
        &corpus,
        0.15,
    );
    assert_eq!(
        bounded.pairs, unbounded.pairs,
        "bounded pipeline must reproduce the unbounded result"
    );
    assert!(
        bounded.report.total_spilled_records() > 0,
        "tiny thresholds must force spilling on a 400-string workload"
    );
    assert!(bounded.report.total_spill_bytes() > 0);
    let spilling_jobs: Vec<&str> = bounded
        .report
        .jobs()
        .iter()
        .filter(|j| j.spilled_records > 0)
        .map(|j| j.name.as_str())
        .collect();
    assert!(!spilling_jobs.is_empty());
    for j in bounded.report.jobs() {
        // Spilled records are part of the shuffled volume, and the cost
        // model charges their I/O into the job's simulated time.
        assert!(j.spilled_records <= j.shuffle_records, "{}", j.name);
        if j.spilled_records > 0 {
            assert!(j.spill_bytes > 0, "{}", j.name);
            assert!(j.spill_secs > 0.0, "{} spill I/O not charged", j.name);
        } else {
            assert_eq!(j.spill_secs, 0.0, "{}", j.name);
        }
    }
    // Moving shuffle volume through disk costs simulated time: the bounded
    // pipeline can never be faster than the unbounded one on equal data.
    assert!(
        bounded.report.total_sim_secs() >= unbounded.report.total_sim_secs(),
        "bounded {:.3}s vs unbounded {:.3}s",
        bounded.report.total_sim_secs(),
        unbounded.report.total_sim_secs()
    );
    // The rendered report carries the new column.
    let rendered = format!("{}", bounded.report);
    assert!(rendered.contains("spilled"));
}

/// Both dedup strategies and the greedy scheme survive bounded mappers
/// (they exercise `run_combined_with_group_overhead` and the massjoin
/// pipeline's `ChunkRole` spill codec).
#[test]
fn all_schemes_and_dedups_match_unbounded_under_spilling() {
    let w = workload(120, 0.3, 99);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    for (scheme, dedup) in [
        (
            ApproximationScheme::FuzzyTokenMatching,
            DedupStrategy::BothStrings,
        ),
        (
            ApproximationScheme::GreedyTokenAligning,
            DedupStrategy::OneString,
        ),
        (
            ApproximationScheme::ExactTokenMatching,
            DedupStrategy::OneString,
        ),
    ] {
        let run = |shuffle: ShuffleConfig| {
            TsjJoiner::new(&cluster_with(4, 0, 16, shuffle))
                .self_join(
                    &corpus,
                    &TsjConfig {
                        threshold: 0.15,
                        max_token_frequency: Some(100),
                        scheme,
                        dedup,
                        ..TsjConfig::default()
                    },
                )
                .unwrap()
                .pairs
        };
        assert_eq!(
            run(ShuffleConfig::unbounded()),
            run(ShuffleConfig::bounded(16, 32)),
            "scheme {scheme:?}, dedup {dedup:?}"
        );
    }
}
