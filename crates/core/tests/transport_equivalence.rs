//! The transport differential harness: a full TSJ self-join (including
//! the MassJoin token-join stages) run over the `MultiProcess` file
//! exchange or the `Remote` network shuffle must produce output
//! *byte-identical* to the default `InProcess` handoff — across real
//! thread counts, shuffle partition counts, simulated machine counts,
//! and bounded/unbounded shuffle memory configurations, and (for the
//! network path) under deterministic injected connection faults. A
//! transport bug does not crash; it silently corrupts join output —
//! this harness is the deliverable that makes the exchange trustworthy.

use proptest::prelude::*;
use tsj::{ApproximationScheme, DedupStrategy, SimilarPair, TsjConfig, TsjJoiner};
use tsj_datagen::workload;
use tsj_mapreduce::{Cluster, ClusterConfig, FaultConfig, ShuffleConfig, Transport};
use tsj_tokenize::{Corpus, NameTokenizer};

fn cluster_with(
    threads: usize,
    partitions: usize,
    machines: usize,
    shuffle: ShuffleConfig,
) -> Cluster {
    Cluster::new(ClusterConfig {
        machines,
        threads,
        partitions,
        ..ClusterConfig::default()
    })
    .with_shuffle_config(shuffle)
}

fn join(cluster: &Cluster, corpus: &Corpus, t: f64) -> tsj::JoinOutput {
    TsjJoiner::new(cluster)
        .self_join(
            corpus,
            &TsjConfig {
                threshold: t,
                max_token_frequency: Some(100),
                // FuzzyTokenMatching pulls the MassJoin pipeline in, so
                // the exchange carries every wire type the workspace has
                // (u64/u32 keys, (), ChunkRole, tuples).
                scheme: ApproximationScheme::FuzzyTokenMatching,
                dedup: DedupStrategy::OneString,
                ..TsjConfig::default()
            },
        )
        .unwrap()
}

fn pairs(cluster: &Cluster, corpus: &Corpus, t: f64) -> Vec<SimilarPair> {
    join(cluster, corpus, t).pairs
}

/// The shuffle configurations the differential sweep covers: unbounded
/// and two spill pressures, each pushed through the given exchange
/// transport.
fn exchange_configs(transport: Transport) -> [ShuffleConfig; 3] {
    [
        ShuffleConfig::unbounded().with_transport(transport),
        ShuffleConfig::bounded(24, 48).with_transport(transport),
        ShuffleConfig::bounded(8, 8).with_transport(transport),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The tentpole guarantee: swapping the shuffle transport changes
    /// *nothing* about the verified join output (ids and distances),
    /// across ≥3 real thread counts × ≥3 partition counts ×
    /// bounded/unbounded shuffle configs — and machine counts for good
    /// measure.
    #[test]
    fn multiprocess_join_is_byte_identical_to_inprocess(
        seed in 0u64..1_000,
        t in 0.05f64..0.2,
    ) {
        let w = workload(100, 0.3, seed);
        let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
        let reference =
            pairs(&cluster_with(4, 0, 16, ShuffleConfig::unbounded()), &corpus, t);
        for shuffle in exchange_configs(Transport::MultiProcess) {
            for threads in [1usize, 2, 8] {
                let got = pairs(&cluster_with(threads, 0, 16, shuffle.clone()), &corpus, t);
                prop_assert_eq!(&got, &reference, "threads = {}", threads);
            }
            for partitions in [1usize, 5, 64] {
                let got = pairs(&cluster_with(4, partitions, 16, shuffle.clone()), &corpus, t);
                prop_assert_eq!(&got, &reference, "partitions = {}", partitions);
            }
            for machines in [1usize, 64] {
                let got = pairs(&cluster_with(4, 0, machines, shuffle.clone()), &corpus, t);
                prop_assert_eq!(&got, &reference, "machines = {}", machines);
            }
        }
    }

    /// The network shuffle joins the same sweep: map tasks publish runs
    /// to the job's run server and reducers assemble their partitions
    /// over ranged socket fetches, yet the verified join output must
    /// stay byte-identical to the in-process reference across threads,
    /// partitions, and spill pressure.
    #[test]
    fn remote_join_is_byte_identical_to_inprocess(
        seed in 0u64..1_000,
        t in 0.05f64..0.2,
    ) {
        let w = workload(100, 0.3, seed);
        let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
        let reference =
            pairs(&cluster_with(4, 0, 16, ShuffleConfig::unbounded()), &corpus, t);
        for shuffle in exchange_configs(Transport::Remote) {
            for threads in [1usize, 8] {
                let got = pairs(&cluster_with(threads, 0, 16, shuffle.clone()), &corpus, t);
                prop_assert_eq!(&got, &reference, "threads = {}", threads);
            }
            for partitions in [1usize, 5, 64] {
                let got = pairs(&cluster_with(4, partitions, 16, shuffle.clone()), &corpus, t);
                prop_assert_eq!(&got, &reference, "partitions = {}", partitions);
            }
        }
    }

    /// The merge fan-in cap composes with every transport at pipeline
    /// scale: tiny spill thresholds force many runs per partition, the
    /// hierarchical merge engages, and output is still byte-identical.
    #[test]
    fn capped_merge_fan_in_preserves_pipeline_output(
        seed in 0u64..1_000,
    ) {
        let t = 0.15;
        let w = workload(100, 0.3, seed);
        let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
        let reference =
            pairs(&cluster_with(4, 0, 16, ShuffleConfig::unbounded()), &corpus, t);
        for transport in [
            Transport::InProcess,
            Transport::MultiProcess,
            Transport::Remote,
        ] {
            let shuffle = ShuffleConfig::bounded(8, 8)
                .with_transport(transport)
                .with_merge_fan_in(3);
            let out = join(&cluster_with(4, 2, 16, shuffle), &corpus, t);
            prop_assert_eq!(&out.pairs, &reference, "transport = {:?}", transport);
            prop_assert!(
                out.report.jobs().iter().any(|j| j.merge_passes > 0),
                "8-record spill runs over 2 partitions must exceed fan-in 3 somewhere"
            );
        }
    }
}

/// Every pipeline job — TSJ's stages *and* the MassJoin sub-pipeline —
/// must show nonzero transport bytes under `MultiProcess` (nothing takes
/// a hidden in-process shortcut), must be charged simulated transport
/// time for them, and the whole pipeline can never be *faster* than the
/// free in-process handoff on equal data.
#[test]
fn multiprocess_reports_transport_bytes_on_every_job() {
    let w = workload(200, 0.35, 7);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());

    let in_proc = join(
        &cluster_with(4, 0, 16, ShuffleConfig::unbounded()),
        &corpus,
        0.15,
    );
    for j in in_proc.report.jobs() {
        assert_eq!(j.transport, "in-process", "{}", j.name);
        assert_eq!(j.transport_bytes, 0, "{}", j.name);
        assert_eq!(j.transport_secs, 0.0, "{}", j.name);
    }
    assert_eq!(in_proc.report.total_transport_bytes(), 0);

    let multi = join(
        &cluster_with(
            4,
            0,
            16,
            ShuffleConfig::unbounded().with_transport(Transport::MultiProcess),
        ),
        &corpus,
        0.15,
    );
    assert_eq!(multi.pairs, in_proc.pairs);
    let jobs = multi.report.jobs();
    assert!(
        jobs.len() >= 5,
        "pipeline must include TSJ + MassJoin stages, got {}",
        jobs.len()
    );
    for j in jobs {
        assert_eq!(j.transport, "multi-process", "{}", j.name);
        assert!(
            j.transport_bytes > 0,
            "job {} moved no bytes through the exchange",
            j.name
        );
        assert!(j.transport_secs > 0.0, "{} transport not charged", j.name);
        // v2 framing lower bound: 1-byte length varint + 1-byte
        // fingerprint delta per shuffled record.
        assert!(
            j.transport_bytes >= 2 * j.shuffle_records,
            "{}: {} bytes for {} records",
            j.name,
            j.transport_bytes,
            j.shuffle_records
        );
    }
    assert!(multi.report.total_transport_bytes() > 0);
    assert!(
        multi.report.total_sim_secs() >= in_proc.report.total_sim_secs(),
        "multi-process {:.3}s vs in-process {:.3}s",
        multi.report.total_sim_secs(),
        in_proc.report.total_sim_secs()
    );
    // The rendered report carries the transport column.
    let rendered = format!("{}", multi.report);
    assert!(rendered.contains("xport(B)"));
}

/// Every pipeline job under `Transport::Remote` crosses the socket for
/// real: the fetch counters are live on every job, the fetched payload
/// equals the deterministic exchange volume, and that volume matches
/// the multi-process exchange byte-for-byte (both transports ship the
/// identical spill-format runs).
#[test]
fn remote_reports_fetch_stats_on_every_job_and_matches_multiprocess_volume() {
    let w = workload(200, 0.35, 7);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());

    let multi = join(
        &cluster_with(
            4,
            0,
            16,
            ShuffleConfig::unbounded().with_transport(Transport::MultiProcess),
        ),
        &corpus,
        0.15,
    );
    let remote = join(
        &cluster_with(
            4,
            0,
            16,
            ShuffleConfig::unbounded().with_transport(Transport::Remote),
        ),
        &corpus,
        0.15,
    );
    assert_eq!(remote.pairs, multi.pairs);
    let remote_jobs = remote.report.jobs();
    let multi_jobs = multi.report.jobs();
    assert_eq!(remote_jobs.len(), multi_jobs.len());
    for (r, m) in remote_jobs.iter().zip(multi_jobs) {
        assert_eq!(r.transport, "remote", "{}", r.name);
        assert!(r.fetch_requests > 0, "{} never touched the socket", r.name);
        assert_eq!(
            r.fetch_bytes, r.transport_bytes,
            "{}: fetched payload must equal the exchanged volume",
            r.name
        );
        assert_eq!(
            r.transport_bytes, m.transport_bytes,
            "{}: remote and multi-process must ship identical run bytes",
            r.name
        );
        assert!(r.transport_secs > 0.0, "{} transport not charged", r.name);
    }
    assert!(remote.report.total_fetch_requests() > 0);
    assert_eq!(remote.report.total_fetch_retries(), 0, "no faults injected");
    assert_eq!(
        remote.report.total_fetch_bytes(),
        remote.report.total_transport_bytes()
    );
    // The rendered report carries the fetch column.
    let rendered = format!("{}", remote.report);
    assert!(rendered.contains("fetch(rpc/retry)"));
}

/// Deterministic fault injection: with every 3rd fetch-service frame
/// dropped server-side, the client's retry loop must absorb the faults
/// — retries become visible in the stats, and the verified join output
/// does not change by a single pair.
#[test]
fn remote_with_injected_faults_is_byte_identical_and_retries() {
    let w = workload(150, 0.3, 21);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    let clean = join(
        &cluster_with(
            4,
            0,
            16,
            ShuffleConfig::bounded(16, 32).with_transport(Transport::Remote),
        ),
        &corpus,
        0.15,
    );
    let faulty = join(
        &cluster_with(
            4,
            0,
            16,
            ShuffleConfig::bounded(16, 32)
                .with_transport(Transport::Remote)
                .with_net_fault(FaultConfig {
                    drop_nth: 3,
                    stall_us: 100,
                    seed: 1,
                }),
        ),
        &corpus,
        0.15,
    );
    assert!(
        faulty.report.total_fetch_retries() > 0,
        "a 1-in-3 drop rate across {} requests must force retries",
        faulty.report.total_fetch_requests()
    );
    assert_eq!(faulty.pairs, clean.pairs, "faults must not change output");
    assert_eq!(
        faulty.report.total_transport_bytes(),
        clean.report.total_transport_bytes(),
        "the deterministic exchange volume must not see the faults"
    );
}

/// Both dedup strategies and all three approximation schemes survive the
/// exchange (exercising `run_with_group_overhead`, the `ChunkRole` and
/// tuple wire types, and the greedy/exact pipelines).
#[test]
fn all_schemes_and_dedups_match_inprocess_over_the_exchange() {
    let w = workload(120, 0.3, 99);
    let corpus = Corpus::build(&w.strings, &NameTokenizer::default());
    for (scheme, dedup) in [
        (
            ApproximationScheme::FuzzyTokenMatching,
            DedupStrategy::BothStrings,
        ),
        (
            ApproximationScheme::GreedyTokenAligning,
            DedupStrategy::OneString,
        ),
        (
            ApproximationScheme::ExactTokenMatching,
            DedupStrategy::OneString,
        ),
    ] {
        let run = |shuffle: ShuffleConfig| {
            TsjJoiner::new(&cluster_with(4, 0, 16, shuffle))
                .self_join(
                    &corpus,
                    &TsjConfig {
                        threshold: 0.15,
                        max_token_frequency: Some(100),
                        scheme,
                        dedup,
                        ..TsjConfig::default()
                    },
                )
                .unwrap()
                .pairs
        };
        let reference = run(ShuffleConfig::unbounded());
        assert_eq!(
            reference,
            run(ShuffleConfig::unbounded().with_transport(Transport::MultiProcess)),
            "scheme {scheme:?}, dedup {dedup:?} (unbounded)"
        );
        assert_eq!(
            reference,
            run(ShuffleConfig::bounded(16, 32).with_transport(Transport::MultiProcess)),
            "scheme {scheme:?}, dedup {dedup:?} (bounded)"
        );
    }
}
