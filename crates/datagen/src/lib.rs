//! Deterministic synthetic workloads for the TSJ reproduction.
//!
//! The paper evaluates on 44.4M names on Google accounts from one region —
//! data we cannot have. This crate generates populations that reproduce the
//! *load-bearing properties* of that dataset (see DESIGN.md §2):
//!
//! * **Zipf token popularity** — a few given names/surnames ("john",
//!   "mary") are shared by a huge number of strings, the long tail is
//!   nearly unique. This skew is what the `M` high-frequency filter
//!   (Sec. III-G2) and the load-balancing discussions (Figs. 1, 7) are
//!   about.
//! * **Short tokens, 2–4 tokens per string** — human-name shaped.
//! * **Fraud rings** — groups of strings derived from one base identity by
//!   *small adversarial edits* (in-token typos, token shuffles, boundary
//!   shifts like the paper's "chan kalan" → "chank alan", duplicated
//!   characters): the attacker keeps the name recognizable to a bank
//!   officer while evading exact matching (Sec. I-A).
//! * **ROC label sets** — account name *changes*: legitimate ones are rare
//!   small edits (nicknames "william" → "bill", abbreviation, reordering,
//!   a typo), fraudulent ones are drastic renames (the account-creation /
//!   account-exploitation split of Sec. V-D).
//!
//! Everything is seeded (`rand::StdRng`), so every figure harness is
//! exactly reproducible.

pub mod names;
pub mod rings;
pub mod roc;
pub mod zipf;

pub use names::{generate_names, NameGenConfig};
pub use rings::{plant_rings, RingConfig};
pub use roc::{roc_dataset, RocSample};
pub use zipf::Zipf;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A complete self-join workload: a background population with planted
/// fraud rings, plus the ground-truth ring membership.
#[derive(Debug, Clone)]
pub struct Workload {
    /// All account name strings (background + ring members, shuffled).
    pub strings: Vec<String>,
    /// Ground truth: each ring's member indices into `strings`.
    pub rings: Vec<Vec<usize>>,
}

/// Standard workload used by the figure harnesses: `n` strings of which
/// roughly `ring_fraction` belong to planted fraud rings.
///
/// Deterministic in `(n, ring_fraction, seed)`.
pub fn workload(n: usize, ring_fraction: f64, seed: u64) -> Workload {
    assert!((0.0..=1.0).contains(&ring_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let ring_cfg = RingConfig::default();
    let avg_ring = (ring_cfg.min_size + ring_cfg.max_size) as f64 / 2.0;
    let num_rings = ((n as f64 * ring_fraction) / avg_ring).round() as usize;

    let background = n.saturating_sub((num_rings as f64 * avg_ring) as usize);
    let mut strings = generate_names(background, &mut rng, &NameGenConfig::default());
    let rings = plant_rings(&mut strings, num_rings, &mut rng, &ring_cfg);
    // Ring sizes are random, so the total drifts around n: top up with
    // extra background names, or truncate (dropping any ring stragglers).
    if strings.len() < n {
        let fill = generate_names(n - strings.len(), &mut rng, &NameGenConfig::default());
        strings.extend(fill);
    }
    strings.truncate(n);
    let rings = rings
        .into_iter()
        .map(|r| r.into_iter().filter(|&i| i < n).collect::<Vec<_>>())
        .filter(|r: &Vec<usize>| r.len() >= 2)
        .collect();
    Workload { strings, rings }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let a = workload(500, 0.2, 42);
        let b = workload(500, 0.2, 42);
        assert_eq!(a.strings, b.strings);
        assert_eq!(a.rings, b.rings);
        let c = workload(500, 0.2, 43);
        assert_ne!(a.strings, c.strings);
    }

    #[test]
    fn workload_has_requested_size_and_rings() {
        let w = workload(1000, 0.3, 7);
        assert_eq!(w.strings.len(), 1000);
        assert!(!w.rings.is_empty());
        for ring in &w.rings {
            assert!(ring.len() >= 2);
            for &i in ring {
                assert!(i < w.strings.len());
            }
        }
    }

    #[test]
    fn zero_ring_fraction_means_no_rings() {
        let w = workload(200, 0.0, 1);
        assert!(w.rings.is_empty());
        assert_eq!(w.strings.len(), 200);
    }
}
