//! Synthetic person-name generation with Zipf-distributed popularity.

use rand::rngs::StdRng;
use rand::Rng;

use crate::zipf::Zipf;

/// Popular given names (head of the Zipf distribution). Drawn from common
/// English/Spanish/Arabic/South-Asian romanizations so token lengths and
/// character distributions resemble a real multi-script-romanized region.
pub const GIVEN_NAMES: &[&str] = &[
    "john",
    "mary",
    "james",
    "robert",
    "michael",
    "william",
    "david",
    "richard",
    "joseph",
    "thomas",
    "charles",
    "maria",
    "patricia",
    "jennifer",
    "linda",
    "elizabeth",
    "barbara",
    "susan",
    "jessica",
    "sarah",
    "karen",
    "mohammed",
    "ahmed",
    "ali",
    "omar",
    "hassan",
    "fatima",
    "aisha",
    "zainab",
    "yusuf",
    "ibrahim",
    "carlos",
    "jose",
    "juan",
    "luis",
    "miguel",
    "ana",
    "carmen",
    "rosa",
    "elena",
    "sofia",
    "wei",
    "ming",
    "hui",
    "jing",
    "chen",
    "yan",
    "lei",
    "xin",
    "hao",
    "raj",
    "amit",
    "sanjay",
    "vijay",
    "ravi",
    "priya",
    "anita",
    "sunita",
    "deepa",
    "kavita",
    "ivan",
    "dmitri",
    "sergei",
    "olga",
    "natasha",
    "pierre",
    "jean",
    "marie",
    "claire",
    "luc",
    "hans",
    "karl",
    "greta",
    "ingrid",
    "lars",
    "kenji",
    "hiroshi",
    "yuki",
    "akira",
    "sakura",
    "kwame",
    "kofi",
    "ama",
    "abena",
    "femi",
    "daniel",
    "matthew",
    "anthony",
    "mark",
    "donald",
    "steven",
    "paul",
    "andrew",
    "joshua",
    "kevin",
    "brian",
    "george",
    "edward",
    "ronald",
    "timothy",
    "jason",
    "jeffrey",
    "ryan",
    "jacob",
    "gary",
    "nancy",
    "lisa",
    "betty",
    "margaret",
    "sandra",
    "ashley",
    "kimberly",
    "emily",
    "donna",
    "michelle",
    "dorothy",
    "carol",
    "amanda",
    "melissa",
    "deborah",
];

/// Popular surnames.
pub const SURNAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
    "green",
    "adams",
    "nelson",
    "baker",
    "hall",
    "rivera",
    "campbell",
    "mitchell",
    "carter",
    "roberts",
    "khan",
    "ahmed",
    "hussain",
    "malik",
    "sheikh",
    "patel",
    "sharma",
    "singh",
    "kumar",
    "gupta",
    "mehta",
    "shah",
    "reddy",
    "rao",
    "nair",
    "iyer",
    "chen",
    "wang",
    "zhang",
    "liu",
    "yang",
    "huang",
    "zhao",
    "wu",
    "zhou",
    "xu",
    "sun",
    "ma",
    "zhu",
    "kim",
    "park",
    "choi",
    "jung",
    "kang",
    "cho",
    "yoon",
    "jang",
    "lim",
    "han",
    "tanaka",
    "suzuki",
    "takahashi",
    "watanabe",
    "ito",
    "yamamoto",
    "nakamura",
    "kobayashi",
    "ivanov",
    "petrov",
    "sidorov",
    "volkov",
    "kuznetsov",
    "muller",
    "schmidt",
    "schneider",
    "fischer",
    "weber",
    "meyer",
    "wagner",
    "becker",
    "hoffmann",
    "dubois",
    "moreau",
    "laurent",
    "simon",
    "michel",
    "leroy",
    "rossi",
    "russo",
    "ferrari",
    "esposito",
];

/// Syllables for generating tail (rare) names.
const ONSETS: &[&str] = &[
    "b", "ch", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "sh", "t", "v", "w",
    "y", "z", "br", "dr", "kr", "st", "tr",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ou", "ia"];
const CODAS: &[&str] = &["", "", "n", "m", "r", "l", "s", "t", "k", "nd", "ng"];

/// Configuration for name generation.
#[derive(Debug, Clone)]
pub struct NameGenConfig {
    /// Zipf exponent for token popularity (≈1 matches name corpora).
    pub zipf_exponent: f64,
    /// Probability a name carries a middle initial token ("h").
    pub middle_initial_prob: f64,
    /// Probability a name carries a full middle name token.
    pub middle_name_prob: f64,
    /// Probability of a double surname ("garcia lopez").
    pub double_surname_prob: f64,
    /// Probability a token is a fresh rare name instead of a pool draw
    /// (controls the size of the distinct-token tail).
    pub rare_name_prob: f64,
}

impl Default for NameGenConfig {
    fn default() -> Self {
        Self {
            zipf_exponent: 1.0,
            middle_initial_prob: 0.15,
            middle_name_prob: 0.15,
            double_surname_prob: 0.20,
            rare_name_prob: 0.25,
        }
    }
}

/// Generates a rare (tail) name of 2–4 syllables.
pub fn rare_name(rng: &mut StdRng) -> String {
    let syllables = rng.gen_range(2..=4);
    let mut s = String::new();
    for _ in 0..syllables {
        s.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        s.push_str(NUCLEI[rng.gen_range(0..NUCLEI.len())]);
        s.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
    }
    s
}

/// Draws one full name (2–4 tokens) according to `cfg`.
pub fn generate_name(
    rng: &mut StdRng,
    cfg: &NameGenConfig,
    given_z: &Zipf,
    sur_z: &Zipf,
) -> String {
    let mut tokens: Vec<String> = Vec::with_capacity(4);
    let given = if rng.gen_bool(cfg.rare_name_prob) {
        rare_name(rng)
    } else {
        GIVEN_NAMES[given_z.sample(rng)].to_owned()
    };
    tokens.push(given);
    if rng.gen_bool(cfg.middle_initial_prob) {
        let c = (b'a' + rng.gen_range(0..26u8)) as char;
        tokens.push(c.to_string());
    } else if rng.gen_bool(cfg.middle_name_prob) {
        let middle = if rng.gen_bool(cfg.rare_name_prob) {
            rare_name(rng)
        } else {
            GIVEN_NAMES[given_z.sample(rng)].to_owned()
        };
        tokens.push(middle);
    }
    let surname = if rng.gen_bool(cfg.rare_name_prob) {
        rare_name(rng)
    } else {
        SURNAMES[sur_z.sample(rng)].to_owned()
    };
    tokens.push(surname);
    if rng.gen_bool(cfg.double_surname_prob) {
        tokens.push(SURNAMES[sur_z.sample(rng)].to_owned());
    }
    tokens.join(" ")
}

/// Generates `n` full names.
pub fn generate_names(n: usize, rng: &mut StdRng, cfg: &NameGenConfig) -> Vec<String> {
    let given_z = Zipf::new(GIVEN_NAMES.len(), cfg.zipf_exponent);
    let sur_z = Zipf::new(SURNAMES.len(), cfg.zipf_exponent);
    (0..n)
        .map(|_| generate_name(rng, cfg, &given_z, &sur_z))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn names_have_two_to_four_tokens() {
        let mut rng = StdRng::seed_from_u64(5);
        for name in generate_names(2000, &mut rng, &NameGenConfig::default()) {
            let t = name.split_whitespace().count();
            assert!((2..=4).contains(&t), "{name:?} has {t} tokens");
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
        }
    }

    #[test]
    fn token_popularity_is_skewed() {
        let mut rng = StdRng::seed_from_u64(6);
        let names = generate_names(5000, &mut rng, &NameGenConfig::default());
        let mut freq: HashMap<&str, u32> = HashMap::new();
        for n in &names {
            for t in n.split_whitespace() {
                *freq.entry(t).or_insert(0) += 1;
            }
        }
        let mut counts: Vec<u32> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Head token should be orders of magnitude above the median.
        let median = counts[counts.len() / 2];
        assert!(
            counts[0] > 50 * median.max(1),
            "head {} vs median {median} — not Zipf-like",
            counts[0]
        );
    }

    #[test]
    fn rare_names_are_pronounceable_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let n = rare_name(&mut rng);
            assert!(n.len() >= 2);
            assert!(n.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(8);
        let mut b = StdRng::seed_from_u64(8);
        assert_eq!(
            generate_names(50, &mut a, &NameGenConfig::default()),
            generate_names(50, &mut b, &NameGenConfig::default())
        );
    }
}
