//! Fraud-ring generation: the adversarial edit model of Sec. I-A.
//!
//! A ring is a set of accounts whose names derive from one base identity by
//! *small, well-crafted edits* — enough to defeat exact matching, small
//! enough that "the bank officers would not be alarmed". The edit inventory
//! mirrors the paper's examples ("Obamma, Boraak H.", "Burak Ubama",
//! "chan kalan" → "chank alan"):
//!
//! * in-token typo (insert/delete/substitute one character),
//! * duplicated character ("obama" → "obamma"),
//! * token shuffle (free under NSLD — that is the point of setwise
//!   distances),
//! * boundary shift (move a character across a token boundary, the
//!   "chank alan" pattern: 2 character edits under SLD),
//! * vowel swap ("barak" → "burak").

use rand::rngs::StdRng;
use rand::Rng;

use crate::names::{generate_name, NameGenConfig};
use crate::zipf::Zipf;

/// Ring shape parameters.
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Minimum accounts per ring (including the base identity).
    pub min_size: usize,
    /// Maximum accounts per ring.
    pub max_size: usize,
    /// Minimum adversarial edit operations applied per variant.
    pub min_ops: usize,
    /// Maximum adversarial edit operations per variant.
    pub max_ops: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        Self {
            min_size: 3,
            max_size: 8,
            min_ops: 1,
            max_ops: 2,
        }
    }
}

const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];

/// Applies one random adversarial edit to a tokenized name, in place.
pub fn adversarial_edit(tokens: &mut [String], rng: &mut StdRng) {
    if tokens.is_empty() {
        return;
    }
    match rng.gen_range(0..5u8) {
        // In-token typo.
        0 => {
            let t = pick_editable(tokens, rng);
            let chars: Vec<char> = tokens[t].chars().collect();
            let mut chars = chars;
            match rng.gen_range(0..3u8) {
                0 => {
                    // insert
                    let p = rng.gen_range(0..=chars.len());
                    chars.insert(p, random_letter(rng));
                }
                1 if chars.len() > 2 => {
                    // delete (keep tokens ≥ 2 chars so they stay name-like)
                    let p = rng.gen_range(0..chars.len());
                    chars.remove(p);
                }
                _ => {
                    // substitute
                    let p = rng.gen_range(0..chars.len());
                    chars[p] = random_letter(rng);
                }
            }
            tokens[t] = chars.into_iter().collect();
        }
        // Duplicate a character ("obama" → "obamma").
        1 => {
            let t = pick_editable(tokens, rng);
            let mut chars: Vec<char> = tokens[t].chars().collect();
            let p = rng.gen_range(0..chars.len());
            let c = chars[p];
            chars.insert(p, c);
            tokens[t] = chars.into_iter().collect();
        }
        // Token shuffle (free under NSLD).
        2 => {
            if tokens.len() >= 2 {
                let i = rng.gen_range(0..tokens.len());
                let j = rng.gen_range(0..tokens.len());
                tokens.swap(i, j);
            }
        }
        // Boundary shift: "chan kalan" → "chank alan" (2 SLD edits).
        3 => {
            if tokens.len() >= 2 {
                let i = rng.gen_range(0..tokens.len() - 1);
                let (left, right) = (i, i + 1);
                if tokens[left].chars().count() >= 3 {
                    let c = tokens[left].pop().expect("non-empty");
                    tokens[right].insert(0, c);
                } else if tokens[right].chars().count() >= 3 {
                    let c = tokens[right].remove(0);
                    tokens[left].push(c);
                }
            }
        }
        // Vowel swap ("barak" → "burak").
        _ => {
            let t = pick_editable(tokens, rng);
            let mut chars: Vec<char> = tokens[t].chars().collect();
            let vowel_positions: Vec<usize> = chars
                .iter()
                .enumerate()
                .filter(|(_, c)| VOWELS.contains(c))
                .map(|(i, _)| i)
                .collect();
            if let Some(&p) = pick(&vowel_positions, rng) {
                let old = chars[p];
                let mut new = old;
                while new == old {
                    new = VOWELS[rng.gen_range(0..VOWELS.len())];
                }
                chars[p] = new;
                tokens[t] = chars.into_iter().collect();
            }
        }
    }
}

fn pick_editable(tokens: &[String], rng: &mut StdRng) -> usize {
    // Prefer tokens with ≥ 2 chars (initials survive verbatim).
    let candidates: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.chars().count() >= 2)
        .map(|(i, _)| i)
        .collect();
    *pick(&candidates, rng).unwrap_or(&0)
}

fn pick<'a, T>(xs: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

fn random_letter(rng: &mut StdRng) -> char {
    (b'a' + rng.gen_range(0..26u8)) as char
}

/// Derives one ring variant from a base name with `ops` adversarial edits.
pub fn ring_variant(base: &str, ops: usize, rng: &mut StdRng) -> String {
    let mut tokens: Vec<String> = base.split_whitespace().map(str::to_owned).collect();
    for _ in 0..ops {
        adversarial_edit(&mut tokens, rng);
    }
    tokens.retain(|t| !t.is_empty());
    tokens.join(" ")
}

/// Plants `num_rings` fraud rings into `population`, appending the ring
/// members and returning each ring's indices.
pub fn plant_rings(
    population: &mut Vec<String>,
    num_rings: usize,
    rng: &mut StdRng,
    cfg: &RingConfig,
) -> Vec<Vec<usize>> {
    assert!(cfg.min_size >= 2 && cfg.max_size >= cfg.min_size);
    assert!(cfg.max_ops >= cfg.min_ops);
    let name_cfg = NameGenConfig::default();
    let given_z = Zipf::new(crate::names::GIVEN_NAMES.len(), name_cfg.zipf_exponent);
    let sur_z = Zipf::new(crate::names::SURNAMES.len(), name_cfg.zipf_exponent);

    let mut rings = Vec::with_capacity(num_rings);
    for _ in 0..num_rings {
        let base = generate_name(rng, &name_cfg, &given_z, &sur_z);
        let size = rng.gen_range(cfg.min_size..=cfg.max_size);
        let mut members = Vec::with_capacity(size);
        members.push(population.len());
        population.push(base.clone());
        for _ in 1..size {
            let ops = rng.gen_range(cfg.min_ops..=cfg.max_ops);
            members.push(population.len());
            population.push(ring_variant(&base, ops, rng));
        }
        rings.push(members);
    }
    rings
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn variants_stay_close_to_base_in_nsld() {
        let mut rng = StdRng::seed_from_u64(11);
        let base = "barak hussein obama";
        let base_tokens: Vec<&str> = base.split_whitespace().collect();
        for _ in 0..100 {
            let v = ring_variant(base, 2, &mut rng);
            let v_tokens: Vec<&str> = v.split_whitespace().collect();
            let d = tsj_setdist::nsld(&base_tokens, &v_tokens);
            // 2 small ops on an 18-char name: comfortably under 0.35.
            assert!(d <= 0.35, "variant {v:?} drifted to NSLD {d}");
        }
    }

    #[test]
    fn variants_differ_from_base_usually() {
        let mut rng = StdRng::seed_from_u64(12);
        let base = "maria garcia lopez";
        let mut changed = 0;
        for _ in 0..50 {
            if ring_variant(base, 2, &mut rng) != base {
                changed += 1;
            }
        }
        // Shuffles of identical tokens can be no-ops, but most edits change
        // the string.
        assert!(changed >= 40, "only {changed}/50 variants differ");
    }

    #[test]
    fn planted_rings_index_into_population() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut pop = vec!["background one".to_owned(), "background two".to_owned()];
        let rings = plant_rings(&mut pop, 5, &mut rng, &RingConfig::default());
        assert_eq!(rings.len(), 5);
        for ring in &rings {
            assert!(ring.len() >= RingConfig::default().min_size);
            for &i in ring {
                assert!(i >= 2 && i < pop.len()); // appended after background
                assert!(!pop[i].is_empty());
            }
        }
    }

    #[test]
    fn edits_never_produce_empty_strings() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..500 {
            let v = ring_variant("al bo cy", 4, &mut rng);
            assert!(!v.is_empty());
            assert!(v.split_whitespace().all(|t| !t.is_empty()));
        }
    }
}
