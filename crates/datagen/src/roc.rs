//! Labelled name-change samples for the Fig. 6 ROC experiment.
//!
//! Sec. V-D: 10,000 accounts that changed names, half legitimate, half
//! fraudulent. Legitimate changes are "rare cases, such as legal name
//! changes, or name abbreviation, e.g., from William to Bill"; fraudulent
//! changes are "usually very drastic" because the account creator and the
//! account exploiter are different actors — the new name is essentially a
//! fresh random identity.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::names::{generate_name, NameGenConfig};
use crate::rings::adversarial_edit;
use crate::zipf::Zipf;

/// Nickname pairs for legitimate renames (formal → familiar).
pub const NICKNAMES: &[(&str, &str)] = &[
    ("william", "bill"),
    ("robert", "bob"),
    ("richard", "dick"),
    ("james", "jim"),
    ("john", "jack"),
    ("michael", "mike"),
    ("joseph", "joe"),
    ("thomas", "tom"),
    ("charles", "chuck"),
    ("elizabeth", "liz"),
    ("margaret", "peggy"),
    ("patricia", "pat"),
    ("jennifer", "jen"),
    ("katherine", "kate"),
    ("daniel", "dan"),
    ("matthew", "matt"),
    ("anthony", "tony"),
    ("steven", "steve"),
    ("andrew", "andy"),
    ("joshua", "josh"),
    ("timothy", "tim"),
    ("jeffrey", "jeff"),
    ("edward", "ed"),
    ("ronald", "ron"),
    ("kenneth", "ken"),
    ("alexander", "alex"),
    ("benjamin", "ben"),
    ("samuel", "sam"),
];

/// One labelled name change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RocSample {
    /// Name before the change.
    pub old: String,
    /// Name after the change.
    pub new: String,
    /// `true` when the change is fraudulent (drastic rename).
    pub fraud: bool,
}

/// Generates `n` samples: `n/2` legitimate changes, `n − n/2` fraudulent,
/// interleaved deterministically.
pub fn roc_dataset(n: usize, seed: u64) -> Vec<RocSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = NameGenConfig::default();
    let given_z = Zipf::new(crate::names::GIVEN_NAMES.len(), cfg.zipf_exponent);
    let sur_z = Zipf::new(crate::names::SURNAMES.len(), cfg.zipf_exponent);

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let old = generate_name(&mut rng, &cfg, &given_z, &sur_z);
        let fraud = i % 2 == 1;
        let new = if fraud {
            fraudulent_rename(&old, &mut rng, &cfg, &given_z, &sur_z)
        } else {
            legitimate_rename(&old, &mut rng)
        };
        out.push(RocSample { old, new, fraud });
    }
    out
}

/// A legitimate rename: nickname substitution, abbreviation, token
/// reordering, or a single small typo fix.
///
/// The op mix is deliberately nickname/abbreviation-heavy: those are the
/// renames Sec. V-D cites ("legal name changes, or name abbreviation,
/// e.g., from William to Bill"). They are also exactly the changes that
/// defeat token-level fuzzy matching — `NED("william", "bill") ≈ 0.43` and
/// `NED("maria", "m") = 0.2` fall below any reasonable δ, so the weighted
/// set measures treat the token as fully lost, while NSLD charges only the
/// characters actually edited.
pub fn legitimate_rename(old: &str, rng: &mut StdRng) -> String {
    let mut tokens: Vec<String> = old.split_whitespace().map(str::to_owned).collect();
    // Middle-name abbreviation ("barak hussein obama" → "barak h obama"):
    // only names with ≥ 3 tokens have a middle token to abbreviate.
    let abbreviate_middle = |tokens: &mut Vec<String>, rng: &mut StdRng| -> bool {
        let middles: Vec<usize> = (1..tokens.len().saturating_sub(1))
            .filter(|&i| tokens[i].chars().count() > 1)
            .collect();
        if middles.is_empty() {
            return false;
        }
        let i = middles[rng.gen_range(0..middles.len())];
        tokens[i] = tokens[i].chars().next().expect("non-empty").to_string();
        true
    };
    let nickname = |tokens: &mut Vec<String>| -> bool {
        for t in tokens.iter_mut() {
            if let Some((_, nick)) = NICKNAMES.iter().find(|(full, _)| full == t) {
                *t = (*nick).to_owned();
                return true;
            }
        }
        false
    };
    match rng.gen_range(0..10u8) {
        // Nickname substitution where applicable, else a small typo.
        0..=5 => {
            if !nickname(&mut tokens) {
                adversarial_edit(&mut tokens, rng);
            }
        }
        // Middle-name abbreviation, else a small typo.
        6..=7 => {
            if !abbreviate_middle(&mut tokens, rng) {
                adversarial_edit(&mut tokens, rng);
            }
        }
        // Reorder (e.g., "surname, given" form).
        8 => tokens.reverse(),
        // Single typo (legal-change spelling tweaks).
        _ => adversarial_edit(&mut tokens, rng),
    }
    tokens.retain(|t| !t.is_empty());
    tokens.join(" ")
}

/// A fraudulent rename. Three sub-populations:
///
/// * **drastic** (60%): a completely fresh identity — the account-creation
///   vs account-exploitation split of Sec. V-D;
/// * **measure-gaming** (30%): the sophisticated adversary of Sec. V-D
///   ("an adversary strives to game the measures"): the new identity keeps
///   the *rare* tokens of the old name — rare tokens carry nearly all the
///   IDF weight, so weighted set measures see high similarity — while the
///   actual identity (the common given-name tokens) is replaced;
/// * **keep-surname** (10%): stolen credentials reused with the surname
///   kept to match other documents.
pub fn fraudulent_rename(
    old: &str,
    rng: &mut StdRng,
    cfg: &NameGenConfig,
    given_z: &Zipf,
    sur_z: &Zipf,
) -> String {
    let fresh = generate_name(rng, cfg, given_z, sur_z);
    let roll: f64 = rng.gen();
    if roll < 0.30 {
        // Measure-gaming: retain the old name's rare (out-of-pool) tokens.
        let rare: Vec<&str> = old
            .split_whitespace()
            .filter(|t| {
                !crate::names::GIVEN_NAMES.contains(t)
                    && !crate::names::SURNAMES.contains(t)
                    && t.chars().count() > 1
            })
            .take(2)
            .collect();
        let kept: Vec<&str> = if rare.is_empty() {
            // Nothing rare to hide behind: keep the longest token.
            old.split_whitespace()
                .max_by_key(|t| t.chars().count())
                .into_iter()
                .collect()
        } else {
            rare
        };
        let fresh_given = fresh.split_whitespace().next().unwrap_or("x");
        let mut tokens: Vec<String> = vec![fresh_given.to_owned()];
        tokens.extend(kept.iter().map(|t| (*t).to_owned()));
        // A light typo on the kept tokens keeps them above any reasonable
        // token-match threshold δ (so the set measures still credit them)
        // while nudging the true character distance up.
        adversarial_edit(&mut tokens, rng);
        tokens.retain(|t| !t.is_empty());
        tokens.join(" ")
    } else if roll < 0.40 {
        // Keep the old surname, replace the rest.
        let old_last = old.split_whitespace().last().unwrap_or("x");
        let mut tokens: Vec<&str> = fresh.split_whitespace().collect();
        let n = tokens.len();
        tokens[n - 1] = old_last;
        tokens.join(" ")
    } else {
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_balanced_and_deterministic() {
        let a = roc_dataset(1000, 99);
        let b = roc_dataset(1000, 99);
        assert_eq!(a, b);
        let frauds = a.iter().filter(|s| s.fraud).count();
        assert_eq!(frauds, 500);
    }

    #[test]
    fn legit_changes_are_smaller_than_fraud_changes_on_average() {
        let data = roc_dataset(2000, 100);
        let dist = |s: &RocSample| {
            let o: Vec<&str> = s.old.split_whitespace().collect();
            let n: Vec<&str> = s.new.split_whitespace().collect();
            tsj_setdist::nsld(&o, &n)
        };
        let legit: Vec<f64> = data.iter().filter(|s| !s.fraud).map(dist).collect();
        let fraud: Vec<f64> = data.iter().filter(|s| s.fraud).map(dist).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&legit) + 0.2 < mean(&fraud),
            "legit mean {} vs fraud mean {} — populations must separate",
            mean(&legit),
            mean(&fraud)
        );
    }

    #[test]
    fn renames_are_nonempty() {
        for s in roc_dataset(500, 101) {
            assert!(!s.new.is_empty());
            assert!(s.new.split_whitespace().count() >= 1);
        }
    }

    #[test]
    fn nickname_table_is_well_formed() {
        for (full, nick) in NICKNAMES {
            assert!(!full.is_empty() && !nick.is_empty());
            assert_ne!(full, nick);
        }
    }
}
