//! Zipf-distributed rank sampling.
//!
//! Token popularity in name corpora is classically Zipfian: the r-th most
//! popular name appears with probability ∝ 1/r^s. The `M` filter experiment
//! (Fig. 3/5) sweeps how many of these heavy hitters TSJ drops.

use rand::Rng;

/// A Zipf sampler over ranks `0..n` with exponent `s`.
///
/// Sampling is inverse-CDF over a precomputed cumulative table: `O(log n)`
/// per draw, exact, deterministic given the RNG.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform; name corpora are near `s ≈ 1`).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` if there is exactly one rank (degenerate sampler).
    pub fn is_empty(&self) -> bool {
        false // construction requires n ≥ 1
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_is_head_heavy() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 is ≈ 1/H(1000) ≈ 13% of draws; rank 500 ≈ 0.027%.
        assert!(counts[0] > 10_000, "head rank too light: {}", counts[0]);
        assert!(counts[0] > 50 * counts[500].max(1));
        // Top-10 ranks together should dominate a uniform share.
        let top10: u32 = counts[..10].iter().sum();
        assert!(top10 > 35_000, "top-10 share too small: {top10}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "not uniform: {c}");
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }
}
