//! Fuzzy Matching Similarity (FMS) and its approximation AFMS
//! (Chaudhuri et al., "Robust and Efficient Fuzzy Match for Online Data
//! Cleaning", SIGMOD 2003 — reference \[10\] of the paper).
//!
//! These are the earliest token-edit-tolerant measures the paper reviews
//! (Sec. IV), implemented here so their documented drawbacks can be
//! *demonstrated*, not just cited:
//!
//! * **FMS is order-sensitive**: the transformation cost matches token `i`
//!   of the input against token `i`-ish of the target (positional), so a
//!   token shuffle — free under NSLD — costs under FMS.
//! * **FMS and AFMS are asymmetric**: `fms(x, y) ≠ fms(y, x)` in general,
//!   which "poses challenges when using them as tokenized-string similarity
//!   measures in other applications".
//!
//! The implementation follows the paper's \[10\] description at the level of
//! detail the comparison needs: a weighted transformation cost with
//! user-set penalties for token replacement (scaled by normalized edit
//! distance), insertion, and deletion; FMS compares tokens positionally,
//! AFMS matches each input token to its best target token (possibly
//! many-to-one).

use tsj_strdist::{char_len, levenshtein};

use crate::measures::TokenWeights;

/// Penalty configuration of \[10\] ("the user sets penalties for token
/// insertion, deletion, or editing").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmsPenalties {
    /// Cost multiplier for replacing (editing) a token, scaled by the
    /// tokens' normalized edit distance.
    pub replace: f64,
    /// Cost multiplier for inserting a target token the input lacks.
    pub insert: f64,
    /// Cost multiplier for deleting an input token absent from the target.
    pub delete: f64,
}

impl Default for FmsPenalties {
    fn default() -> Self {
        Self {
            replace: 1.0,
            insert: 1.0,
            delete: 1.0,
        }
    }
}

fn ned(a: &str, b: &str) -> f64 {
    let m = char_len(a).max(char_len(b));
    if m == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / m as f64
}

/// Fuzzy Matching Similarity: `1 − cost / total_weight`, where the cost
/// transforms the *input* `x` into the *target* `y` by editing positionally
/// aligned tokens and inserting/deleting the overhang.
///
/// Positional alignment is what makes FMS **order-sensitive**; transforming
/// *into* `y` (weights and insertions charged against `y`'s tokens) is what
/// makes it **asymmetric**. Clamped to `[0, 1]`.
pub fn fms(
    x: &[impl AsRef<str>],
    y: &[impl AsRef<str>],
    weights: &TokenWeights,
    penalties: FmsPenalties,
) -> f64 {
    let total: f64 = y.iter().map(|t| weights.weight(t.as_ref())).sum();
    if total == 0.0 {
        return if x.is_empty() { 1.0 } else { 0.0 };
    }
    let mut cost = 0.0;
    let common = x.len().min(y.len());
    for i in 0..common {
        let (a, b) = (x[i].as_ref(), y[i].as_ref());
        cost += penalties.replace * weights.weight(b) * ned(a, b);
    }
    for t in y.iter().skip(common) {
        cost += penalties.insert * weights.weight(t.as_ref());
    }
    for t in x.iter().skip(common) {
        cost += penalties.delete * weights.weight(t.as_ref());
    }
    (1.0 - cost / total).clamp(0.0, 1.0)
}

/// Approximate FMS: "ignores the token positions. AFMS matches each token
/// in a string to its best matching token in the other string, which may
/// result in multiple tokens from one string matched to the same token in
/// the other string."
pub fn afms(
    x: &[impl AsRef<str>],
    y: &[impl AsRef<str>],
    weights: &TokenWeights,
    penalties: FmsPenalties,
) -> f64 {
    let total: f64 = y.iter().map(|t| weights.weight(t.as_ref())).sum();
    if total == 0.0 {
        return if x.is_empty() { 1.0 } else { 0.0 };
    }
    let mut cost = 0.0;
    for a in x {
        let a = a.as_ref();
        // Best (cheapest) target token — duplicates allowed.
        let best = y
            .iter()
            .map(|b| {
                let b = b.as_ref();
                penalties.replace * weights.weight(b) * ned(a, b)
            })
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            cost += best;
        } else {
            cost += penalties.delete * weights.weight(a);
        }
    }
    (1.0 - cost / total).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> TokenWeights {
        TokenWeights::uniform()
    }

    #[test]
    fn identical_strings_score_one() {
        let x = ["barak", "obama"];
        assert_eq!(fms(&x, &x, &w(), FmsPenalties::default()), 1.0);
        assert_eq!(afms(&x, &x, &w(), FmsPenalties::default()), 1.0);
    }

    /// The paper's first criticism: FMS is sensitive to token order —
    /// a shuffle that NSLD treats as free costs almost everything here.
    #[test]
    fn fms_is_order_sensitive() {
        let x = ["barak", "obama"];
        let shuffled = ["obama", "barak"];
        let same_order = fms(&x, &x, &w(), FmsPenalties::default());
        let shuffled_score = fms(&x, &shuffled, &w(), FmsPenalties::default());
        assert!(
            shuffled_score < same_order - 0.3,
            "shuffle should hurt FMS badly: {shuffled_score} vs {same_order}"
        );
        // NSLD, by contrast, treats the shuffle as identity.
        assert_eq!(tsj_setdist::nsld(&x, &shuffled), 0.0);
    }

    /// The paper's second criticism: FMS and AFMS are not symmetric.
    #[test]
    fn fms_and_afms_are_asymmetric() {
        let x = ["barak"];
        let y = ["barak", "hussein", "obama"];
        let p = FmsPenalties::default();
        let weights =
            TokenWeights::from_dfs([("barak", 1usize), ("hussein", 50), ("obama", 2)], 100);
        assert_ne!(fms(&x, &y, &weights, p), fms(&y, &x, &weights, p));
        assert_ne!(afms(&x, &y, &weights, p), afms(&y, &x, &weights, p));
    }

    /// AFMS fixes order-sensitivity but introduces many-to-one matching.
    #[test]
    fn afms_ignores_order_but_collapses_duplicates() {
        let x = ["obama", "barak"];
        let y = ["barak", "obama"];
        let p = FmsPenalties::default();
        assert_eq!(afms(&x, &y, &w(), p), 1.0); // shuffle is free here
                                                // Two copies of "bob" both match the single target "bob": AFMS
                                                // sees a perfect score even though the multisets differ.
        let dup = ["bob", "bob"];
        let single = ["bob"];
        assert_eq!(afms(&dup, &single, &w(), p), 1.0);
        // NSLD charges the duplicate's deletion.
        assert!(tsj_setdist::nsld(&dup, &single) > 0.0);
    }

    #[test]
    fn penalties_scale_costs() {
        let x = ["barak"];
        let y = ["barak", "obama"];
        let cheap = fms(
            &x,
            &y,
            &w(),
            FmsPenalties {
                insert: 0.1,
                ..Default::default()
            },
        );
        let pricey = fms(
            &x,
            &y,
            &w(),
            FmsPenalties {
                insert: 1.0,
                ..Default::default()
            },
        );
        assert!(cheap > pricey);
    }

    #[test]
    fn empty_edge_cases() {
        let e: &[&str] = &[];
        let x = ["a"];
        let p = FmsPenalties::default();
        assert_eq!(fms(e, e, &w(), p), 1.0);
        assert_eq!(fms(&x, e, &w(), p), 0.0);
        assert_eq!(afms(e, e, &w(), p), 1.0);
    }
}
