//! Weighted set-based fuzzy similarity measures and ROC tooling.
//!
//! These are the *related-work* measures the paper compares NSLD against in
//! Fig. 6 (Sec. V-D): the weighted fuzzy variants of Jaccard, cosine and
//! Dice from Wang et al. \[67\] ("Extending String Similarity Join to
//! Tolerant Fuzzy Token Matching"), plus SoftTfIdf \[13\] for completeness.
//! They all share the two-threshold structure the paper criticizes: a
//! token-level edit-similarity threshold `δ` *and* a set-level similarity
//! threshold, "two totally unrelated thresholds, which impairs the tuning
//! of the join" — and none of them is a metric (demonstrated by the
//! triangle-violation tests).
//!
//! [`roc`] computes ROC curves / AUC for the Fig. 6 experiment.

pub mod fms;
pub mod measures;
pub mod roc;

pub use fms::{afms, fms, FmsPenalties};
pub use measures::{fuzzy_distance, fuzzy_similarity, soft_tfidf, FuzzyMeasure, TokenWeights};
pub use roc::{auc, roc_curve, RocCurve};
