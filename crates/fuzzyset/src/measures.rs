//! Weighted fuzzy set-similarity measures (Wang et al. \[67\], Cohen et
//! al. \[13\]).

use std::collections::HashMap;

use tsj_strdist::{char_len, jaro_winkler, levenshtein};
use tsj_tokenize::Corpus;

/// IDF-style token weights: `w(t) = ln(1 + N / df(t))`.
///
/// Popular tokens ("john", "smith") carry little evidence of identity;
/// rare tokens carry a lot. This is the "weighted" in the paper's
/// "weighted FJaccard/FCosine/FDice".
#[derive(Debug, Clone)]
pub struct TokenWeights {
    weights: HashMap<String, f64>,
    /// Weight for tokens never seen in the reference corpus (max IDF).
    unseen: f64,
}

impl TokenWeights {
    /// Builds weights from `(token, document frequency)` pairs over a
    /// collection of `n_docs` documents.
    pub fn from_dfs<I, S>(dfs: I, n_docs: usize) -> Self
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let n = n_docs.max(1) as f64;
        let weights = dfs
            .into_iter()
            .map(|(t, df)| (t.into(), (1.0 + n / df.max(1) as f64).ln()))
            .collect();
        Self {
            weights,
            unseen: (1.0 + n).ln(),
        }
    }

    /// Builds weights from an interned corpus's postings.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        Self::from_dfs(
            corpus
                .token_ids()
                .map(|t| (corpus.token_text(t).to_owned(), corpus.df(t))),
            corpus.len(),
        )
    }

    /// Uniform weights (1.0 for everything) — the unweighted variants.
    pub fn uniform() -> Self {
        Self {
            weights: HashMap::new(),
            unseen: 1.0,
        }
    }

    /// Weight of one token.
    pub fn weight(&self, token: &str) -> f64 {
        self.weights.get(token).copied().unwrap_or(self.unseen)
    }

    /// Total weight of a token multiset.
    pub fn total(&self, tokens: &[impl AsRef<str>]) -> f64 {
        tokens.iter().map(|t| self.weight(t.as_ref())).sum()
    }
}

/// Which set-similarity normalization to apply to the fuzzy overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzyMeasure {
    /// `O / (W(x) + W(y) − O)` — weighted FJaccard.
    Jaccard,
    /// `O / √(W(x)·W(y))` — weighted FCosine.
    Cosine,
    /// `2·O / (W(x) + W(y))` — weighted FDice.
    Dice,
}

/// Normalized edit similarity between tokens:
/// `NED(a, b) = 1 − LD(a, b) / max(|a|, |b|)`.
fn ned(a: &str, b: &str) -> f64 {
    let m = char_len(a).max(char_len(b));
    if m == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / m as f64
}

/// Greedy one-to-one fuzzy token matching: all cross pairs with
/// `NED ≥ δ`, taken in decreasing-similarity order (the matching strategy
/// of \[67\]; like the paper's AFMS discussion, best-match but one-to-one).
/// Returns `(i, j, sim)` matched pairs.
fn fuzzy_matching(
    x: &[impl AsRef<str>],
    y: &[impl AsRef<str>],
    delta: f64,
) -> Vec<(usize, usize, f64)> {
    let mut edges: Vec<(f64, usize, usize)> = Vec::new();
    for (i, a) in x.iter().enumerate() {
        for (j, b) in y.iter().enumerate() {
            let s = ned(a.as_ref(), b.as_ref());
            if s >= delta {
                edges.push((s, i, j));
            }
        }
    }
    // Descending similarity; deterministic tie-break on indices.
    edges.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut used_x = vec![false; x.len()];
    let mut used_y = vec![false; y.len()];
    let mut out = Vec::new();
    for (s, i, j) in edges {
        if !used_x[i] && !used_y[j] {
            used_x[i] = true;
            used_y[j] = true;
            out.push((i, j, s));
        }
    }
    out
}

/// Weighted fuzzy set similarity (Wang et al. \[67\] style).
///
/// The fuzzy overlap is `O = Σ min(w(a), w(b)) · NED(a, b)` over the greedy
/// one-to-one matching of token pairs with `NED ≥ δ`; with `δ = 1` this
/// degenerates to the classical weighted overlap on exact-equal tokens.
/// The result is in `[0, 1]` for all three normalizations.
pub fn fuzzy_similarity(
    x: &[impl AsRef<str>],
    y: &[impl AsRef<str>],
    weights: &TokenWeights,
    delta: f64,
    measure: FuzzyMeasure,
) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 1.0;
    }
    if x.is_empty() || y.is_empty() {
        return 0.0;
    }
    let overlap: f64 = fuzzy_matching(x, y, delta)
        .into_iter()
        .map(|(i, j, s)| {
            weights
                .weight(x[i].as_ref())
                .min(weights.weight(y[j].as_ref()))
                * s
        })
        .sum();
    let (wx, wy) = (weights.total(x), weights.total(y));
    let sim = match measure {
        FuzzyMeasure::Jaccard => overlap / (wx + wy - overlap),
        FuzzyMeasure::Cosine => overlap / (wx * wy).sqrt(),
        FuzzyMeasure::Dice => 2.0 * overlap / (wx + wy),
    };
    sim.clamp(0.0, 1.0)
}

/// Distance form: `1 − similarity` (the conversion used in Sec. V-D).
pub fn fuzzy_distance(
    x: &[impl AsRef<str>],
    y: &[impl AsRef<str>],
    weights: &TokenWeights,
    delta: f64,
    measure: FuzzyMeasure,
) -> f64 {
    1.0 - fuzzy_similarity(x, y, weights, delta, measure)
}

/// SoftTfIdf (Cohen et al. \[13\]): tokens match when their Jaro–Winkler
/// similarity is at least `theta`; each matched pair contributes the
/// product of the tokens' normalized weights scaled by the JW similarity.
pub fn soft_tfidf(
    x: &[impl AsRef<str>],
    y: &[impl AsRef<str>],
    weights: &TokenWeights,
    theta: f64,
) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 1.0;
    }
    if x.is_empty() || y.is_empty() {
        return 0.0;
    }
    let norm = |ts: &[&str]| -> f64 {
        ts.iter()
            .map(|t| weights.weight(t).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    let xs: Vec<&str> = x.iter().map(AsRef::as_ref).collect();
    let ys: Vec<&str> = y.iter().map(AsRef::as_ref).collect();
    let (nx, ny) = (norm(&xs), norm(&ys));
    if nx == 0.0 || ny == 0.0 {
        return 0.0;
    }
    let mut sim = 0.0;
    for a in &xs {
        // Best JW partner in y at or above theta (CLOSE(θ) of [13]).
        let best = ys
            .iter()
            .map(|b| (jaro_winkler(a, b), *b))
            .filter(|(jw, _)| *jw >= theta)
            .max_by(|p, q| p.0.total_cmp(&q.0));
        if let Some((jw, b)) = best {
            sim += (weights.weight(a) / nx) * (weights.weight(b) / ny) * jw;
        }
    }
    sim.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEASURES: [FuzzyMeasure; 3] = [
        FuzzyMeasure::Jaccard,
        FuzzyMeasure::Cosine,
        FuzzyMeasure::Dice,
    ];

    #[test]
    fn identical_multisets_have_similarity_one() {
        let w = TokenWeights::uniform();
        let x = ["barak", "obama"];
        for m in MEASURES {
            assert!(
                (fuzzy_similarity(&x, &x, &w, 0.8, m) - 1.0).abs() < 1e-12,
                "{m:?}"
            );
            assert_eq!(fuzzy_distance(&x, &x, &w, 0.8, m), 0.0);
        }
        assert!((soft_tfidf(&x, &x, &w, 0.9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_multisets_have_similarity_zero() {
        let w = TokenWeights::uniform();
        let x = ["aaaa", "bbbb"];
        let y = ["cccc", "dddd"];
        for m in MEASURES {
            assert_eq!(fuzzy_similarity(&x, &y, &w, 0.5, m), 0.0, "{m:?}");
        }
    }

    #[test]
    fn token_order_is_irrelevant() {
        let w = TokenWeights::uniform();
        let x = ["chan", "kalan"];
        let y = ["kalan", "chan"];
        for m in MEASURES {
            assert!((fuzzy_similarity(&x, &y, &w, 0.8, m) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn delta_one_degenerates_to_exact_weighted_jaccard() {
        let w = TokenWeights::from_dfs([("john", 100usize), ("smith", 50), ("zanzibar", 1)], 100);
        let x = ["john", "zanzibar"];
        let y = ["john", "smith"];
        let got = fuzzy_similarity(&x, &y, &w, 1.0, FuzzyMeasure::Jaccard);
        // Exact overlap = w(john); classical weighted Jaccard.
        let o = w.weight("john");
        let expect = o / (w.total(&x) + w.total(&y) - o);
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn fuzzy_overlap_tolerates_token_edits() {
        let w = TokenWeights::uniform();
        // "obama" vs "obamma": NED = 1 − 1/6 = 0.833.
        let x = ["barak", "obama"];
        let y = ["barak", "obamma"];
        let rigid = fuzzy_similarity(&x, &y, &w, 1.0, FuzzyMeasure::Jaccard);
        let fuzzy = fuzzy_similarity(&x, &y, &w, 0.8, FuzzyMeasure::Jaccard);
        assert!(fuzzy > rigid, "fuzzy {fuzzy} should exceed rigid {rigid}");
    }

    #[test]
    fn rare_tokens_dominate_weighted_measures() {
        let w = TokenWeights::from_dfs([("john", 10_000usize), ("xylophanes", 2)], 10_000);
        // Sharing the rare token counts far more than sharing the common one.
        let share_rare = fuzzy_similarity(
            &["john", "xylophanes"],
            &["mary", "xylophanes"],
            &w,
            1.0,
            FuzzyMeasure::Jaccard,
        );
        let share_common = fuzzy_similarity(
            &["john", "xylophanes"],
            &["john", "abcdefgh"],
            &w,
            1.0,
            FuzzyMeasure::Jaccard,
        );
        assert!(share_rare > 2.0 * share_common);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let w = TokenWeights::uniform();
        let cases: &[(&[&str], &[&str])] = &[
            (&["a", "bb"], &["ab"]),
            (&["chan", "kalan"], &["chank", "alan"]),
            (&[], &["x"]),
        ];
        for (x, y) in cases {
            for m in MEASURES {
                let xy = fuzzy_similarity(x, y, &w, 0.7, m);
                let yx = fuzzy_similarity(y, x, &w, 0.7, m);
                assert!((xy - yx).abs() < 1e-12, "{m:?} {x:?} {y:?}");
                assert!((0.0..=1.0).contains(&xy));
            }
        }
    }

    /// The paper's structural criticism: these distances are not metrics.
    /// A concrete triangle violation for 1 − FJaccard with fuzzy matching
    /// (found by exhaustive search over small token universes): the middle
    /// set `y` fuzzy-matches both neighbours through "abc", but `x` and `z`
    /// share nothing fuzzy at δ = 0.3 beyond the common "a".
    #[test]
    fn fuzzy_jaccard_distance_violates_triangle_inequality() {
        let w = TokenWeights::uniform();
        let delta = 0.3;
        let x: &[&str] = &["a", "ab"];
        let y: &[&str] = &["a", "abc"];
        let z: &[&str] = &["a", "bc"];
        let dist = |p: &[&str], q: &[&str]| fuzzy_distance(p, q, &w, delta, FuzzyMeasure::Jaccard);
        let (dxy, dyz, dxz) = (dist(x, y), dist(y, z), dist(x, z));
        assert!(
            dxy + dyz < dxz - 1e-9,
            "expected violation: {dxy} + {dyz} vs {dxz}"
        );
    }

    #[test]
    fn soft_tfidf_behaves() {
        let w = TokenWeights::uniform();
        // Close names score high; unrelated names score low.
        let a = soft_tfidf(&["martha", "jones"], &["marhta", "jones"], &w, 0.9);
        let b = soft_tfidf(&["martha", "jones"], &["xavier", "quine"], &w, 0.9);
        assert!(a > 0.9, "close names should score high, got {a}");
        assert!(b < 0.2, "unrelated names should score low, got {b}");
    }
}
