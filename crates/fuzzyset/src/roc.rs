//! ROC curves and AUC for the Fig. 6 distance-quality experiment.
//!
//! Convention: each sample is `(score, label)` where `score` is a
//! *distance* (higher ⇒ more suspicious) and `label` is `true` for fraud.
//! The classifier "predict fraud when distance ≥ θ" sweeps θ from +∞ down,
//! tracing (FPR, TPR) points.

/// An ROC curve: `(fpr, tpr)` points, monotonically non-decreasing in both
/// coordinates, starting at `(0, 0)` and ending at `(1, 1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    pub points: Vec<(f64, f64)>,
}

impl RocCurve {
    /// Area under the curve by trapezoidal integration.
    pub fn auc(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                (x1 - x0) * (y0 + y1) / 2.0
            })
            .sum()
    }

    /// True-positive rate at the smallest threshold whose FPR does not
    /// exceed `max_fpr` (operating-point lookup).
    pub fn tpr_at_fpr(&self, max_fpr: f64) -> f64 {
        self.points
            .iter()
            .take_while(|(fpr, _)| *fpr <= max_fpr + 1e-12)
            .map(|(_, tpr)| *tpr)
            .fold(0.0, f64::max)
    }
}

/// Builds the ROC curve of a scored, labelled sample set.
///
/// Ties in scores are handled correctly (grouped into one step), so the
/// AUC equals the Mann–Whitney U statistic.
pub fn roc_curve(samples: &[(f64, bool)]) -> RocCurve {
    let pos = samples.iter().filter(|(_, l)| *l).count();
    let neg = samples.len() - pos;
    if pos == 0 || neg == 0 {
        // Degenerate: no discrimination task; return the diagonal.
        return RocCurve {
            points: vec![(0.0, 0.0), (1.0, 1.0)],
        };
    }
    let mut sorted: Vec<(f64, bool)> = samples.to_vec();
    // Descending score: highest distance classified fraud first.
    sorted.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));

    let mut points = Vec::with_capacity(sorted.len() + 2);
    points.push((0.0, 0.0));
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < sorted.len() {
        // Consume the whole tie group at this score.
        let score = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == score {
            if sorted[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push((fp as f64 / neg as f64, tp as f64 / pos as f64));
    }
    RocCurve { points }
}

/// AUC computed directly via the rank (Mann–Whitney) statistic:
/// `P(score_fraud > score_legit) + ½·P(equal)`.
pub fn auc(samples: &[(f64, bool)]) -> f64 {
    roc_curve(samples).auc()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auc_one() {
        let samples: Vec<(f64, bool)> = (0..50)
            .map(|i| (i as f64, false))
            .chain((0..50).map(|i| (100.0 + i as f64, true)))
            .collect();
        let c = roc_curve(&samples);
        assert!((c.auc() - 1.0).abs() < 1e-12);
        assert_eq!(c.tpr_at_fpr(0.0), 1.0);
    }

    #[test]
    fn inverted_separation_has_auc_zero() {
        let samples: Vec<(f64, bool)> = (0..50)
            .map(|i| (i as f64, true))
            .chain((0..50).map(|i| (100.0 + i as f64, false)))
            .collect();
        assert!(roc_curve(&samples).auc() < 1e-12);
    }

    #[test]
    fn all_ties_is_chance() {
        let samples: Vec<(f64, bool)> = (0..100).map(|i| (0.5, i % 2 == 0)).collect();
        assert!((roc_curve(&samples).auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interleaved_is_near_chance() {
        let samples: Vec<(f64, bool)> = (0..1000).map(|i| (i as f64, i % 2 == 0)).collect();
        let a = roc_curve(&samples).auc();
        assert!((a - 0.5).abs() < 0.01, "AUC {a}");
    }

    #[test]
    fn curve_endpoints_and_monotonicity() {
        let samples = [(0.9, true), (0.8, false), (0.7, true), (0.1, false)];
        let c = roc_curve(&samples);
        assert_eq!(*c.points.first().unwrap(), (0.0, 0.0));
        assert_eq!(*c.points.last().unwrap(), (1.0, 1.0));
        for w in c.points.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn degenerate_single_class() {
        assert_eq!(roc_curve(&[(0.5, true)]).auc(), 0.5);
        assert_eq!(roc_curve(&[]).auc(), 0.5);
    }

    #[test]
    fn tpr_at_fpr_lookup() {
        // fraud at 0.9/0.7, legit at 0.8/0.1.
        let samples = [(0.9, true), (0.8, false), (0.7, true), (0.1, false)];
        let c = roc_curve(&samples);
        // θ just above 0.8: TP=1, FP=0.
        assert_eq!(c.tpr_at_fpr(0.0), 0.5);
        // Allowing FPR 0.5 admits θ=0.7: TP=2.
        assert_eq!(c.tpr_at_fpr(0.5), 1.0);
    }
}
