//! `tsjlint`: in-tree static analysis enforcing the runtime's invariants.
//!
//! The container has no crates.io access, so this is a hand-rolled pass,
//! not a `syn` AST walk: [`clean_source`] blanks comments, string /
//! raw-string / char literals (preserving newlines, so line numbers map
//! 1:1 to the original file) and parses `tsjlint:allow` directives;
//! [`strip_cfg_test`] blanks `#[cfg(test)]` items (balanced-brace
//! skipping, so nested test modules vanish wholesale); [`parse`] builds a
//! structural layer over the cleaned token stream — matched delimiters,
//! an item tree (mod / impl / fn boundaries with signatures), `let`
//! bindings with their type / initializer / scope extents, and
//! receiver-chain walking — and the rule pack in `rules` runs over that
//! structure, scoped per module class:
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `no-panic-in-data-plane` | `crates/mapreduce/src/**` | `unwrap()`, `expect(`, `panic!`, `unreachable!`, `todo!` |
//! | `no-ambient-env` | every crate's `src/**` except `crates/shims`, `crates/bench` | `env::var*`, `env::temp_dir`, `env::set_var`, `env::remove_var` outside `from_env` / `from_lookup` |
//! | `no-wallclock-in-deterministic` | `dag*`, `dataset.rs`, `merge.rs`, `spill.rs` of `crates/mapreduce/src` | `Instant::now`, `SystemTime::now` |
//! | `no-lossy-cast-on-wire-paths` | `protocol.rs`, `spill.rs`, `transport.rs` | truncating `as` casts to a narrower integer without `try_from`, a mask, or a bound |
//! | `no-unbounded-alloc-from-wire` | `crates/netshuffle/src/**`, `spill.rs` | allocations sized from wire-decoded integers with no dominating bounds check |
//! | `no-lock-across-io` | `crates/netshuffle/src/**`, `pool.rs` | lock guards held across socket/file I/O or a foreign `Condvar::wait` |
//! | `no-silent-result-drop` | `crates/mapreduce/src/**`, `crates/netshuffle/src/**` | `let _ =` / bare-statement discards of `Result`-returning calls |
//! | `no-hashmap-iter-in-output-path` | `crates/netshuffle/src/**`, output-feeding `mapreduce` modules | iterating std `HashMap`/`HashSet` where order reaches output or the wire |
//!
//! Scope note for `no-wallclock-in-deterministic`: `pool.rs` and
//! `cluster.rs` sit deliberately *outside* the rule. The scheduler's
//! straggler detection (`SchedulerConfig::speculate_after`, the queue-wait
//! and wall-clock observability counters) is real-time *by design* — it
//! reacts to how long tasks actually run. Those readings never feed the
//! simulated cluster statistics, which stay pure functions of the data
//! and configuration; the planning/merge modules in scope are where a
//! wall-clock read could silently break that determinism.
//!
//! The same reasoning keeps `crates/netshuffle/src` outside
//! `no-wallclock-in-deterministic`: the run-fetch service is real
//! network code, and its deadlines, idle timeouts, and retry backoff are
//! wall-clock *by design* — a fetch that cannot time out is a hang, not
//! a determinism win. What the network layer observes (retries, stalls)
//! surfaces only through the wall-clock-class `JobStats` fetch counters;
//! the bytes it moves are the same spill-format runs every transport
//! ships, so job *output* stays deterministic without the rule.
//! `netshuffle` remains fully inside `no-ambient-env`: its knobs arrive
//! through `FetchConfig` / `FaultConfig` values constructed by
//! `ShuffleConfig::from_lookup`, never from ambient `env::var` reads.
//!
//! Escape hatch: a `// tsjlint:allow(<rule>) <reason>` line comment
//! suppresses the *next* violation of `<rule>` on its own line or within
//! the following [`ALLOW_WINDOW_LINES`] lines (one violation per
//! directive — a window, not a region, so rustfmt reflowing a statement
//! across lines cannot detach the suppression). A directive with an
//! unknown rule or no written reason is itself a `malformed-allow`
//! diagnostic. Directives are recognized in `//` comments only and must
//! start the comment body (prose that merely mentions the syntax is not
//! a suppression).
//!
//! Diagnostics are machine-readable `file:line:rule` triples;
//! `crates/lint/baseline.txt` lists `file:rule` pairs to tolerate (so the
//! pass can land strict even if a rule fires on legacy code — the
//! workspace currently baselines nothing).

pub mod parse;
mod rules;

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

/// Forbids process-killing panics in the job path: the runtime's contract
/// (PR 5) is that worker failures surface as structured `JobError`s.
pub const RULE_NO_PANIC: &str = "no-panic-in-data-plane";
/// Forbids ambient environment reads outside the `from_env` /
/// `from_lookup` config constructors, which own the loud-fallback
/// discipline.
pub const RULE_NO_AMBIENT_ENV: &str = "no-ambient-env";
/// Forbids wall-clock reads in the deterministic planning/merge modules
/// (measurement belongs to the cluster's timed task paths).
pub const RULE_NO_WALLCLOCK: &str = "no-wallclock-in-deterministic";
/// Forbids truncating `as` casts to narrower integer widths on the wire
/// codec paths; a silently wrapped length corrupts frames where an
/// explicit `try_from` would refuse.
pub const RULE_LOSSY_CAST: &str = "no-lossy-cast-on-wire-paths";
/// Forbids allocations sized from wire-decoded integers that are not
/// dominated by a bounds check — the classic length-prefix
/// memory-exhaustion shape.
pub const RULE_WIRE_ALLOC: &str = "no-unbounded-alloc-from-wire";
/// Forbids holding a lock guard across socket/file I/O or a foreign
/// `Condvar::wait` — the deadlock/convoy shape.
pub const RULE_LOCK_IO: &str = "no-lock-across-io";
/// Forbids silently discarding `Result`-returning calls (`let _ =`, bare
/// statements) in the data-plane crates.
pub const RULE_RESULT_DROP: &str = "no-silent-result-drop";
/// Forbids iterating std `HashMap`/`HashSet` in modules that feed reduce
/// output or wire encoding — hash order is arbitrary, and every
/// byte-identity test depends on deterministic output.
pub const RULE_HASHMAP_ITER: &str = "no-hashmap-iter-in-output-path";
/// A `tsjlint:allow` directive that names an unknown rule or carries no
/// reason.
pub const RULE_MALFORMED_ALLOW: &str = "malformed-allow";

/// Every suppressible rule (what `tsjlint:allow(...)` accepts).
pub const RULES: [&str; 8] = [
    RULE_NO_PANIC,
    RULE_NO_AMBIENT_ENV,
    RULE_NO_WALLCLOCK,
    RULE_LOSSY_CAST,
    RULE_WIRE_ALLOC,
    RULE_LOCK_IO,
    RULE_RESULT_DROP,
    RULE_HASHMAP_ITER,
];

/// How many lines below its own an allow directive still covers (one
/// violation max). Wide enough that rustfmt reflowing the annotated
/// statement — or a multi-line reason comment — cannot detach it, narrow
/// enough that the suppression stays local.
pub const ALLOW_WINDOW_LINES: usize = 10;

/// One finding: `file:line:rule` plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line in the original source.
    pub line: usize,
    /// Rule code (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// What fired and why it matters.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `tsjlint:allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line of the directive comment.
    pub line: usize,
    /// The rule it suppresses (always one of [`RULES`]).
    pub rule: String,
}

/// [`clean_source`]'s output: the blanked text plus everything the
/// comment scan extracted on the way.
#[derive(Debug)]
pub struct Cleaned {
    /// Source with comments and literal contents replaced by spaces;
    /// newlines (and therefore line numbers) are preserved exactly.
    pub text: String,
    /// Well-formed allow directives, in line order.
    pub allows: Vec<Allow>,
    /// `(line, message)` for malformed directives.
    pub malformed: Vec<(usize, String)>,
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Parses the body of a `//` comment for a `tsjlint:allow` directive.
/// The directive must *start* the comment (after `//`/`//!`/`///` and
/// whitespace) so that prose merely mentioning the syntax — like this
/// file's docs — is not mistaken for a suppression.
fn parse_allow(
    comment: &str,
    line: usize,
    allows: &mut Vec<Allow>,
    bad: &mut Vec<(usize, String)>,
) {
    let lead = comment.trim_start_matches(['!', '/', ' ', '\t']);
    let Some(rest) = lead.strip_prefix("tsjlint:allow") else {
        return;
    };
    let Some(open) = rest.strip_prefix('(') else {
        bad.push((line, "expected `(` after `tsjlint:allow`".to_owned()));
        return;
    };
    let Some(close) = open.find(')') else {
        bad.push((line, "unterminated `tsjlint:allow(` directive".to_owned()));
        return;
    };
    let rule = open[..close].trim();
    if !RULES.contains(&rule) {
        bad.push((line, format!("unknown rule `{rule}` in tsjlint:allow")));
        return;
    }
    let reason = open[close + 1..].trim();
    if reason.is_empty() {
        bad.push((
            line,
            format!("tsjlint:allow({rule}) carries no reason; every suppression must say why"),
        ));
        return;
    }
    allows.push(Allow {
        line,
        rule: rule.to_owned(),
    });
}

/// Blanks comments and string/char literal *contents* (delimiters stay, so
/// tokens cannot merge), preserving every newline; parses `tsjlint:allow`
/// directives out of `//` comments as it goes. Handles line comments,
/// nested block comments, string escapes, raw/byte/C strings (`r"`,
/// `r#"…"#`, `b"`, `br#"`, `c"`, `cr#"`), byte chars (`b'x'`), and the
/// char-literal vs lifetime ambiguity (`'a'` vs `'a`).
pub fn clean_source(src: &str) -> Cleaned {
    let chars: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(chars.len());
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Blank `n` chars starting at `i` into `out`, preserving newlines and
    // advancing the line counter.
    macro_rules! blank {
        ($n:expr) => {{
            for k in 0..$n {
                let c = chars[i + k];
                if c == '\n' {
                    line += 1;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            i += $n;
        }};
    }
    macro_rules! keep {
        ($n:expr) => {{
            for k in 0..$n {
                let c = chars[i + k];
                if c == '\n' {
                    line += 1;
                }
                out.push(c);
            }
            i += $n;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        // ---- line comment (directive host) ---------------------------
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let end = chars[i..]
                .iter()
                .position(|&c| c == '\n')
                .map(|p| i + p)
                .unwrap_or(chars.len());
            let body: String = chars[i + 2..end].iter().collect();
            parse_allow(&body, line, &mut allows, &mut malformed);
            blank!(end - i);
            continue;
        }
        // ---- block comment (nested) ----------------------------------
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            let mut j = i;
            while j < chars.len() {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    j += 1;
                }
            }
            blank!(j - i);
            continue;
        }
        // ---- identifiers (may prefix a literal) ----------------------
        if is_ident_char(c) {
            let mut j = i;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            let ident: String = chars[i..j].iter().collect();
            keep!(j - i);
            // String prefix? (`r`, `b`, `br`, `c`, `cr` directly followed
            // by `"` or `#…"`; anything else is a plain identifier.)
            let raw_capable = matches!(ident.as_str(), "r" | "br" | "cr");
            let plain_capable = matches!(ident.as_str(), "b" | "c");
            if raw_capable {
                let mut k = i;
                while chars.get(k) == Some(&'#') {
                    k += 1;
                }
                if chars.get(k) == Some(&'"') {
                    let hashes = k - i;
                    keep!(hashes + 1); // the #s and the opening quote
                    blank_raw_string(&chars, &mut i, &mut line, &mut out, hashes);
                    continue;
                }
            }
            if (plain_capable || raw_capable) && chars.get(i) == Some(&'"') {
                keep!(1);
                blank_plain_string(&chars, &mut i, &mut line, &mut out);
                continue;
            }
            if ident == "b" && chars.get(i) == Some(&'\'') {
                keep!(1);
                blank_char_literal(&chars, &mut i, &mut line, &mut out);
                continue;
            }
            continue;
        }
        // ---- plain string --------------------------------------------
        if c == '"' {
            keep!(1);
            blank_plain_string(&chars, &mut i, &mut line, &mut out);
            continue;
        }
        // ---- char literal vs lifetime --------------------------------
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(n) if n != '\'' => chars.get(i + 2) == Some(&'\''),
                _ => false,
            };
            keep!(1);
            if is_char {
                blank_char_literal(&chars, &mut i, &mut line, &mut out);
            }
            continue;
        }
        keep!(1);
    }

    Cleaned {
        text: out.into_iter().collect(),
        allows,
        malformed,
    }
}

/// Blanks a plain (escaped) string's contents up to and including the
/// closing quote; `i` sits just past the opening quote.
fn blank_plain_string(chars: &[char], i: &mut usize, line: &mut usize, out: &mut Vec<char>) {
    while *i < chars.len() {
        let c = chars[*i];
        if c == '\\' && *i + 1 < chars.len() {
            for k in 0..2 {
                if chars[*i + k] == '\n' {
                    *line += 1;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            *i += 2;
            continue;
        }
        if c == '"' {
            out.push('"');
            *i += 1;
            return;
        }
        if c == '\n' {
            *line += 1;
            out.push('\n');
        } else {
            out.push(' ');
        }
        *i += 1;
    }
}

/// Blanks a raw string's contents up to and including its `"##…`
/// terminator; `i` sits just past the opening quote, `hashes` is the
/// delimiter's `#` count.
fn blank_raw_string(
    chars: &[char],
    i: &mut usize,
    line: &mut usize,
    out: &mut Vec<char>,
    hashes: usize,
) {
    while *i < chars.len() {
        if chars[*i] == '"' && chars[*i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes {
            out.push('"');
            *i += 1;
            for _ in 0..hashes {
                out.push('#');
                *i += 1;
            }
            return;
        }
        if chars[*i] == '\n' {
            *line += 1;
            out.push('\n');
        } else {
            out.push(' ');
        }
        *i += 1;
    }
}

/// Blanks a char (or byte-char) literal's contents up to and including the
/// closing quote; `i` sits just past the opening quote.
fn blank_char_literal(chars: &[char], i: &mut usize, line: &mut usize, out: &mut Vec<char>) {
    while *i < chars.len() {
        let c = chars[*i];
        if c == '\\' && *i + 1 < chars.len() {
            out.push(' ');
            out.push(' ');
            *i += 2;
            continue;
        }
        if c == '\'' {
            out.push('\'');
            *i += 1;
            return;
        }
        if c == '\n' {
            *line += 1;
            out.push('\n');
        } else {
            out.push(' ');
        }
        *i += 1;
    }
}

/// Blanks every `#[cfg(test)]`-annotated item (attribute through the end
/// of the following braced block or `;`-terminated item) in
/// already-cleaned text. Nested test modules disappear with their parent
/// (balanced-brace skip). Newlines are preserved.
pub fn strip_cfg_test(cleaned: &str) -> String {
    let chars: Vec<char> = cleaned.chars().collect();
    let mut out = chars.clone();
    let mut i = 0usize;
    while i < chars.len() {
        let Some(after_attr) = match_cfg_test(&chars, i) else {
            i += 1;
            continue;
        };
        let mut j = after_attr;
        // Skip whitespace and any further attributes on the item.
        loop {
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if chars.get(j) == Some(&'#') {
                let mut k = j + 1;
                while k < chars.len() && chars[k].is_whitespace() {
                    k += 1;
                }
                if chars.get(k) == Some(&'[') {
                    let mut depth = 0usize;
                    while k < chars.len() {
                        match chars[k] {
                            '[' => depth += 1,
                            ']' => {
                                depth -= 1;
                                if depth == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    j = k;
                    continue;
                }
            }
            break;
        }
        // The item body: through the matching `}` of its first brace
        // block, or through a `;` reached before any brace opens.
        let mut depth = 0usize;
        while j < chars.len() {
            match chars[j] {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                ';' if depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for slot in out.iter_mut().take(j).skip(i) {
            if *slot != '\n' {
                *slot = ' ';
            }
        }
        i = j;
    }
    out.into_iter().collect()
}

/// Matches `#[cfg(test)]` (whitespace-tolerant) at `i`; returns the index
/// just past the closing `]`.
fn match_cfg_test(chars: &[char], i: usize) -> Option<usize> {
    if chars.get(i) != Some(&'#') {
        return None;
    }
    let mut j = i + 1;
    let mut eat = |expected: &str| -> bool {
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        let got: String = chars[j..].iter().take(expected.chars().count()).collect();
        if got == expected {
            j += expected.chars().count();
            true
        } else {
            false
        }
    };
    for part in ["[", "cfg", "(", "test", ")", "]"] {
        if !eat(part) {
            return None;
        }
    }
    Some(j)
}

/// Applies allow directives: each directive suppresses the first
/// violation of its rule on its own line or within the next
/// [`ALLOW_WINDOW_LINES`] lines. Returns the surviving diagnostics.
fn apply_allows(mut diags: Vec<Diagnostic>, allows: &[Allow]) -> Vec<Diagnostic> {
    diags.sort_by_key(|d| d.line);
    let mut used: Vec<bool> = vec![false; allows.len()];
    diags.retain(|d| {
        for (k, a) in allows.iter().enumerate() {
            if used[k] || a.rule != d.rule {
                continue;
            }
            if d.line >= a.line && d.line <= a.line + ALLOW_WINDOW_LINES {
                used[k] = true;
                return false;
            }
        }
        true
    });
    diags
}

/// Lints one file's source text. `path` is the repo-relative path
/// (forward slashes) — it selects which rules apply.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let scope = rules::scope_of(path);
    let cleaned = clean_source(src);
    let mut diags: Vec<Diagnostic> = cleaned
        .malformed
        .iter()
        .map(|(line, message)| Diagnostic {
            file: path.to_owned(),
            line: *line,
            rule: RULE_MALFORMED_ALLOW,
            message: message.clone(),
        })
        .collect();
    if scope.any() {
        let stripped = strip_cfg_test(&cleaned.text);
        let toks = parse::tokenize(&stripped);
        let found = rules::scan(path, &toks, &scope);
        diags.extend(apply_allows(found, &cleaned.allows));
    }
    diags.sort_by_key(|d| d.line);
    diags
}

/// Walks the workspace's `src/` trees (every `crates/*/src/**/*.rs` plus
/// the root crate's `src/`, skipping `crates/shims`) and lints each file.
/// Files come back in sorted path order.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let dir = entry?.path();
            if dir.file_name().is_some_and(|n| n == "shims") {
                continue;
            }
            collect_rs(&dir.join("src"), &mut files)?;
        }
    }
    files.sort();
    let mut diags = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        diags.extend(lint_source(&rel, &src));
    }
    Ok(diags)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads a baseline file: one `file:rule` pair per line, `#` comments and
/// blank lines ignored. A missing file is an empty baseline.
pub fn load_baseline(path: &Path) -> HashSet<(String, String)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return HashSet::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (file, rule) = l.rsplit_once(':')?;
            Some((file.to_owned(), rule.to_owned()))
        })
        .collect()
}

/// Splits diagnostics into `(fresh, baselined)` against a baseline set.
pub fn split_baselined(
    diags: Vec<Diagnostic>,
    baseline: &HashSet<(String, String)>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    diags
        .into_iter()
        .partition(|d| !baseline.contains(&(d.file.clone(), d.rule.to_owned())))
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- cleaning -----------------------------------------------------

    #[test]
    fn line_comments_are_blanked_but_lines_kept() {
        let src = "let a = 1; // unwrap() here is prose\nlet b = 2;\n";
        let c = clean_source(src);
        assert!(!c.text.contains("unwrap"));
        assert_eq!(c.text.matches('\n').count(), src.matches('\n').count());
        assert!(c.text.contains("let b = 2;"));
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let src = "a /* outer /* inner panic! */ still outer */ b";
        let c = clean_source(src);
        assert!(!c.text.contains("panic"));
        assert!(c.text.contains('a') && c.text.contains('b'));
    }

    #[test]
    fn string_contents_are_blanked_delimiters_kept() {
        let src = r#"let s = "call unwrap() now \" quoted"; after"#;
        let c = clean_source(src);
        assert!(!c.text.contains("unwrap"));
        assert!(c.text.contains("after"));
        assert_eq!(c.text.matches('"').count(), 2);
    }

    #[test]
    fn raw_and_byte_strings_are_blanked() {
        let src = "let r = r#\"panic! \"inner\" \"#; let b = b\"todo!\"; let br = br##\"x\"##; end";
        let c = clean_source(src);
        assert!(!c.text.contains("panic"));
        assert!(!c.text.contains("todo"));
        assert!(c.text.contains("end"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let z = 'z'; let esc = '\\''; }";
        let c = clean_source(src);
        // The lifetime name must survive (it is not a char literal)...
        assert!(c.text.contains("<'a>"));
        assert!(c.text.contains("&'a str"));
        // ...while char contents are blanked: the double-quote char cannot
        // open a string (nothing after it gets blanked).
        assert!(c.text.contains("let z ="));
        assert!(!c.text.contains("'z'"));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let src = "let s = \"line one\nline two\";\nunwrap_marker";
        let c = clean_source(src);
        assert_eq!(c.text.matches('\n').count(), 2);
        assert!(c.text.contains("unwrap_marker"));
    }

    // ---- allow parsing ------------------------------------------------

    #[test]
    fn wellformed_allow_is_recorded() {
        let src = "// tsjlint:allow(no-panic-in-data-plane) heap invariant\nx.unwrap();";
        let c = clean_source(src);
        assert_eq!(
            c.allows,
            vec![Allow {
                line: 1,
                rule: RULE_NO_PANIC.to_owned()
            }]
        );
        assert!(c.malformed.is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let c = clean_source("// tsjlint:allow(no-panic-in-data-plane)\n");
        assert!(c.allows.is_empty());
        assert_eq!(c.malformed.len(), 1);
        assert!(c.malformed[0].1.contains("no reason"));
    }

    #[test]
    fn allow_with_unknown_rule_is_malformed() {
        let c = clean_source("// tsjlint:allow(no-such-rule) because\n");
        assert!(c.allows.is_empty());
        assert_eq!(c.malformed.len(), 1);
        assert!(c.malformed[0].1.contains("unknown rule"));
    }

    // ---- cfg(test) stripping -----------------------------------------

    #[test]
    fn cfg_test_module_is_stripped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let stripped = strip_cfg_test(&clean_source(src).text);
        assert!(!stripped.contains("unwrap"));
        assert!(stripped.contains("live"));
        assert!(stripped.contains("also_live"));
        assert_eq!(stripped.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn nested_cfg_test_modules_strip_with_parent() {
        let src = "#[cfg(test)]\nmod outer {\n  #[cfg(test)]\n  mod inner { fn t() { panic!(\"x\") } }\n  fn u() { y.expect(\"z\"); }\n}\nfn live() {}\n";
        let stripped = strip_cfg_test(&clean_source(src).text);
        assert!(!stripped.contains("panic"));
        assert!(!stripped.contains("expect"));
        assert!(stripped.contains("live"));
    }

    #[test]
    fn cfg_test_with_extra_attribute_and_semicolon_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { a.unwrap() }\n#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let stripped = strip_cfg_test(&clean_source(src).text);
        assert!(!stripped.contains("unwrap"));
        assert!(!stripped.contains("mod tests"));
        assert!(stripped.contains("live"));
    }

    // ---- rules --------------------------------------------------------

    const JOB_PATH: &str = "crates/mapreduce/src/cluster.rs";

    #[test]
    fn no_panic_catches_all_five_forms() {
        let src = "fn f() { a.unwrap(); b.expect(\"m\"); panic!(\"x\"); unreachable!(); todo!() }";
        let diags = lint_source(JOB_PATH, src);
        assert_eq!(diags.len(), 5, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == RULE_NO_PANIC));
    }

    #[test]
    fn no_panic_ignores_lookalike_identifiers() {
        let src =
            "fn f() { a.unwrap_or_else(g); unwrap_all(x); b.expect_err(\"m\"); panic_message(p); }";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn no_panic_out_of_scope_elsewhere() {
        let src = "fn f() { a.unwrap(); }";
        assert!(lint_source("crates/core/src/joiner.rs", src).is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let src = "fn f() { a.unwrap(); } // tsjlint:allow(no-panic-in-data-plane) test fixture\n";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn preceding_allow_suppresses_within_window() {
        let src = "// tsjlint:allow(no-panic-in-data-plane) spans the reflowed\n// statement below\nfn f() {\n    a\n        .unwrap();\n}\n";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn one_allow_covers_one_violation() {
        let src = "// tsjlint:allow(no-panic-in-data-plane) only the first\nfn f() { a.unwrap(); b.unwrap(); }";
        let diags = lint_source(JOB_PATH, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn allow_outside_window_does_not_suppress() {
        let filler = "\n".repeat(ALLOW_WINDOW_LINES + 1);
        let src = format!(
            "// tsjlint:allow(no-panic-in-data-plane) too far away{filler}fn f() {{ a.unwrap(); }}"
        );
        assert_eq!(lint_source(JOB_PATH, &src).len(), 1);
    }

    #[test]
    fn wallclock_banned_in_deterministic_modules_only() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let diags = lint_source("crates/mapreduce/src/merge.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == RULE_NO_WALLCLOCK));
        // cluster.rs measures real task time on purpose.
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn netshuffle_is_real_time_but_not_ambient_env() {
        // The network layer's deadlines and backoff are wall-clock by
        // design (see the module-docs scope note) — but its knobs must
        // still arrive through config values, not ambient env reads.
        let clock = "fn f() { let t = Instant::now(); }";
        assert!(lint_source("crates/netshuffle/src/client.rs", clock).is_empty());
        let env = "fn f() { let v = std::env::var(\"TSJ_NET_FAULT_DROP_NTH\"); }";
        let diags = lint_source("crates/netshuffle/src/client.rs", env);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_NO_AMBIENT_ENV);
        // Panics are also out of scope here: netshuffle surfaces
        // structured errors by API contract, not by lint.
        assert!(
            lint_source("crates/netshuffle/src/server.rs", "fn f() { a.unwrap(); }").is_empty()
        );
    }

    #[test]
    fn env_reads_flagged_outside_constructors() {
        let src = "fn f() { let v = std::env::var(\"X\"); }";
        let diags = lint_source("crates/core/src/config.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_NO_AMBIENT_ENV);
    }

    #[test]
    fn env_reads_allowed_inside_from_env_and_from_lookup() {
        let src = "impl C {\n fn from_env() -> Self { Self::from_lookup(|n| std::env::var_os(n)) }\n fn from_lookup(f: F) -> Self { let _ = std::env::var(\"Y\"); todo() }\n}";
        assert!(lint_source("crates/core/src/config.rs", src).is_empty());
    }

    #[test]
    fn env_exemption_ends_with_the_constructor() {
        let src = "fn from_env() { let _ = std::env::var(\"A\"); }\nfn other() { let _ = std::env::var(\"B\"); }";
        let diags = lint_source("crates/core/src/config.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn env_rule_skips_shims_and_bench() {
        let src = "fn f() { let v = std::env::var(\"X\"); }";
        assert!(lint_source("crates/shims/rand/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn violations_in_test_code_are_ignored() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { a.unwrap(); panic!(\"x\"); } }";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn malformed_allow_is_reported_with_location() {
        let src = "fn f() {}\n// tsjlint:allow(no-panic-in-data-plane)\n";
        let diags = lint_source(JOB_PATH, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_MALFORMED_ALLOW);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn diagnostic_renders_machine_readable_triple() {
        let diags = lint_source(JOB_PATH, "fn f() { a.unwrap(); }");
        let rendered = diags[0].to_string();
        assert!(
            rendered.starts_with("crates/mapreduce/src/cluster.rs:1:no-panic-in-data-plane:"),
            "{rendered}"
        );
    }

    // ---- no-lossy-cast-on-wire-paths ---------------------------------

    const WIRE_PATH: &str = "crates/netshuffle/src/protocol.rs";

    #[test]
    fn lossy_cast_flags_narrowing_as() {
        let src = "fn f(len: usize) -> u32 { len as u32 }";
        let diags = lint_source(WIRE_PATH, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_LOSSY_CAST);
    }

    #[test]
    fn lossy_cast_ignores_widening_bounded_and_masked_operands() {
        let src = "fn f(n: u32, v: u64, x: usize) {\n\
                   let wide = n as u64;\n\
                   let size = n as usize;\n\
                   let bounded = x.min(65535) as u16;\n\
                   let masked = (v & 0x7f) as u8 | 0x80;\n\
                   let literal = 200 as u8;\n\
                   }";
        assert!(lint_source(WIRE_PATH, src).is_empty());
    }

    #[test]
    fn lossy_cast_exempts_self_and_respects_scope() {
        let src = "impl Tag { fn wire(&self) -> u8 { *self as u8 } }";
        assert!(lint_source(WIRE_PATH, src).is_empty());
        // Same narrowing cast outside the wire paths is out of scope.
        let narrowing = "fn f(len: usize) -> u32 { len as u32 }";
        assert!(lint_source("crates/netshuffle/src/client.rs", narrowing).is_empty());
    }

    #[test]
    fn lossy_cast_allow_suppresses() {
        let src = "fn f(len: usize) -> u32 {\n\
                   // tsjlint:allow(no-lossy-cast-on-wire-paths) len is capped by the caller\n\
                   len as u32\n}";
        assert!(lint_source(WIRE_PATH, src).is_empty());
    }

    // ---- no-unbounded-alloc-from-wire --------------------------------

    #[test]
    fn wire_sized_alloc_without_check_is_flagged() {
        let src = "fn f(raw: [u8; 4]) -> Vec<u8> {\n\
                   let len = u32::from_le_bytes(raw) as usize;\n\
                   let v = vec![0u8; len];\n\
                   v\n}";
        let diags = lint_source(WIRE_PATH, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_WIRE_ALLOC);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn wire_sized_with_capacity_and_read_exact_are_flagged() {
        let src = "fn f(buf: &mut B, r: &mut R) {\n\
                   let count = get_u32(buf) as usize;\n\
                   let specs = Vec::with_capacity(count);\n\
                   let n = read_varint(buf) as usize;\n\
                   r.read_exact(&mut scratch[..n]);\n\
                   }";
        let diags = lint_source(WIRE_PATH, src);
        let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(
            rules,
            vec![RULE_WIRE_ALLOC, RULE_WIRE_ALLOC, RULE_RESULT_DROP],
            "{diags:?}"
        );
    }

    #[test]
    fn dominating_bounds_check_exempts_the_alloc() {
        let src = "fn f(raw: [u8; 4]) -> Option<Vec<u8>> {\n\
                   let len = u32::from_le_bytes(raw) as usize;\n\
                   if len > MAX_FETCH {\n\
                       return None;\n\
                   }\n\
                   Some(vec![0u8; len])\n}";
        assert!(lint_source(WIRE_PATH, src).is_empty());
    }

    #[test]
    fn clamped_sizes_are_exempt_at_decode_or_use() {
        let src = "fn f(buf: &mut B) {\n\
                   let hint = read_varint(buf).min(1024);\n\
                   let a = Vec::with_capacity(hint);\n\
                   let raw = read_varint(buf);\n\
                   let b = Vec::with_capacity(raw.min(1024));\n\
                   }";
        assert!(lint_source(WIRE_PATH, src).is_empty());
    }

    #[test]
    fn non_wire_sizes_are_not_flagged() {
        let src = "fn f(records: &[R]) {\n\
                   let len = records.len();\n\
                   let v = Vec::with_capacity(len);\n\
                   }";
        assert!(lint_source(WIRE_PATH, src).is_empty());
    }

    // ---- no-lock-across-io -------------------------------------------

    const POOL_PATH: &str = "crates/mapreduce/src/pool.rs";

    #[test]
    fn guard_held_across_file_io_is_flagged() {
        let src = "fn f(s: &S) {\n\
                   let q = s.state.lock();\n\
                   let r = s.file.write_all(b\"x\");\n\
                   consume(q, r);\n}";
        let diags = lint_source(POOL_PATH, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_LOCK_IO);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn dropping_the_guard_before_io_is_clean() {
        let src = "fn f(s: &S) {\n\
                   let q = s.state.lock();\n\
                   let n = q.front();\n\
                   drop(q);\n\
                   let r = s.file.write_all(data);\n\
                   consume(n, r);\n}";
        assert!(lint_source(POOL_PATH, src).is_empty());
    }

    #[test]
    fn extractor_chains_do_not_bind_a_guard() {
        let src = "fn f(s: &S) {\n\
                   let server = s.server.lock().take();\n\
                   let r = s.file.write_all(data);\n\
                   consume(server, r);\n}";
        assert!(lint_source(POOL_PATH, src).is_empty());
    }

    #[test]
    fn condvar_wait_consuming_its_own_guard_is_clean() {
        let src = "fn f(s: &S) {\n\
                   let mut coord = s.coord.lock();\n\
                   while coord.pending {\n\
                       coord = s.ready.wait(coord);\n\
                   }\n}";
        assert!(lint_source(POOL_PATH, src).is_empty());
    }

    #[test]
    fn condvar_wait_under_a_foreign_guard_is_flagged() {
        let src = "fn f(s: &S) {\n\
                   let own = s.own.lock();\n\
                   let coord = s.coord.lock();\n\
                   consume(own, s.ready.wait(coord));\n}";
        let diags = lint_source(POOL_PATH, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_LOCK_IO);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn lock_rule_respects_scope() {
        let src = "fn f(s: &S) {\n\
                   let q = s.state.lock();\n\
                   let r = s.file.write_all(b\"x\");\n\
                   consume(q, r);\n}";
        assert!(lint_source("crates/mapreduce/src/merge.rs", src).is_empty());
    }

    // ---- no-silent-result-drop ---------------------------------------

    #[test]
    fn let_underscore_discard_is_flagged() {
        let src = "fn f(h: H) { let _ = h.join(); }";
        let diags = lint_source(JOB_PATH, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_RESULT_DROP);
    }

    #[test]
    fn bare_result_statement_is_flagged() {
        let src = "fn f(w: &mut W) { w.flush(); }";
        let diags = lint_source(JOB_PATH, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_RESULT_DROP);
    }

    #[test]
    fn handled_results_are_clean() {
        let src = "fn f(w: &mut W, h: H) -> io::Result<()> {\n\
                   w.flush()?;\n\
                   let r = w.flush();\n\
                   if h.join().is_err() {\n\
                       log();\n\
                   }\n\
                   r\n}";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn catch_unwind_discard_is_exempt() {
        let src = "fn f() { let _ = catch_unwind(AssertUnwindSafe(run)); }";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn result_drop_allow_suppresses() {
        let src = "fn f(a: A) {\n\
                   // tsjlint:allow(no-silent-result-drop) best-effort wakeup poke\n\
                   let _ = connect(a);\n}";
        assert!(lint_source("crates/netshuffle/src/server.rs", src).is_empty());
    }

    // ---- no-hashmap-iter-in-output-path ------------------------------

    #[test]
    fn hashmap_for_loop_in_output_path_is_flagged() {
        let src = "fn emit(rows: &[R]) {\n\
                   let mut groups: HashMap<u64, u32> = HashMap::default();\n\
                   for r in rows {\n\
                       groups.insert(r.k, r.v);\n\
                   }\n\
                   for (k, v) in &groups {\n\
                       out(k, v);\n\
                   }\n}";
        let diags = lint_source(JOB_PATH, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_HASHMAP_ITER);
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn hashset_method_iteration_is_flagged() {
        let src = "fn f() -> Vec<u64> {\n\
                   let seen = HashSet::new();\n\
                   seen.iter().copied().collect()\n}";
        // The `HashSet` marker must appear in the type or initializer.
        let typed = "fn f() -> Vec<u64> {\n\
                   let seen: HashSet<u64> = Default::default();\n\
                   seen.iter().copied().collect()\n}";
        for src in [src, typed] {
            let diags = lint_source(JOB_PATH, src);
            assert_eq!(diags.len(), 1, "{diags:?}");
            assert_eq!(diags[0].rule, RULE_HASHMAP_ITER);
        }
    }

    #[test]
    fn ordered_containers_and_point_lookups_are_clean() {
        let src = "fn f(rows: &[R]) {\n\
                   let mut index: BTreeMap<u64, u32> = BTreeMap::new();\n\
                   for (k, v) in &index { out(k, v); }\n\
                   let mut cache: HashMap<u64, u32> = HashMap::new();\n\
                   cache.insert(1, 2);\n\
                   let hit = cache.get(&1);\n\
                   consume(rows, hit);\n}";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn same_named_field_access_is_not_the_binding() {
        let src = "fn f(task: &T) {\n\
                   let groups: HashMap<u64, u32> = HashMap::new();\n\
                   let n = task.groups.iter().count();\n\
                   consume(groups, n);\n}";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn hashmap_iter_allow_suppresses() {
        let src = "fn f() {\n\
                   let groups: HashMap<u64, u32> = HashMap::new();\n\
                   // tsjlint:allow(no-hashmap-iter-in-output-path) sorted by position before emit\n\
                   for (k, v) in &groups { out(k, v); }\n}";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    // ---- baseline -----------------------------------------------------

    #[test]
    fn baseline_splits_known_pairs() {
        let mut baseline = HashSet::new();
        baseline.insert((JOB_PATH.to_owned(), RULE_NO_PANIC.to_owned()));
        let diags = lint_source(JOB_PATH, "fn f() { a.unwrap(); }");
        let (fresh, old) = split_baselined(diags, &baseline);
        assert!(fresh.is_empty());
        assert_eq!(old.len(), 1);
    }
}
