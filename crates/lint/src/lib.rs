//! `tsjlint`: in-tree static analysis enforcing the runtime's invariants.
//!
//! The container has no crates.io access, so this is a small hand-rolled
//! pass, not a `syn` AST walk: [`clean_source`] blanks comments, string /
//! raw-string / char literals (preserving newlines, so line numbers map
//! 1:1 to the original file) and parses `tsjlint:allow` directives;
//! [`strip_cfg_test`] blanks `#[cfg(test)]` items (balanced-brace
//! skipping, so nested test modules vanish wholesale); and a
//! whole-identifier token scan applies the rules, scoped per module
//! class:
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `no-panic-in-data-plane` | `crates/mapreduce/src/**` | `unwrap()`, `expect(`, `panic!`, `unreachable!`, `todo!` |
//! | `no-ambient-env` | every crate's `src/**` except `crates/shims`, `crates/bench` | `env::var*`, `env::temp_dir`, `env::set_var`, `env::remove_var` outside `from_env` / `from_lookup` |
//! | `no-wallclock-in-deterministic` | `dag*`, `dataset.rs`, `merge.rs`, `spill.rs` of `crates/mapreduce/src` | `Instant::now`, `SystemTime::now` |
//!
//! Scope note for `no-wallclock-in-deterministic`: `pool.rs` and
//! `cluster.rs` sit deliberately *outside* the rule. The scheduler's
//! straggler detection (`SchedulerConfig::speculate_after`, the queue-wait
//! and wall-clock observability counters) is real-time *by design* — it
//! reacts to how long tasks actually run. Those readings never feed the
//! simulated cluster statistics, which stay pure functions of the data
//! and configuration; the planning/merge modules in scope are where a
//! wall-clock read could silently break that determinism.
//!
//! The same reasoning keeps `crates/netshuffle/src` outside
//! `no-wallclock-in-deterministic`: the run-fetch service is real
//! network code, and its deadlines, idle timeouts, and retry backoff are
//! wall-clock *by design* — a fetch that cannot time out is a hang, not
//! a determinism win. What the network layer observes (retries, stalls)
//! surfaces only through the wall-clock-class `JobStats` fetch counters;
//! the bytes it moves are the same spill-format runs every transport
//! ships, so job *output* stays deterministic without the rule.
//! `netshuffle` remains fully inside `no-ambient-env`: its knobs arrive
//! through `FetchConfig` / `FaultConfig` values constructed by
//! `ShuffleConfig::from_lookup`, never from ambient `env::var` reads.
//!
//! Escape hatch: a `// tsjlint:allow(<rule>) <reason>` line comment
//! suppresses the *next* violation of `<rule>` on its own line or within
//! the following [`ALLOW_WINDOW_LINES`] lines (one violation per
//! directive — a window, not a region, so rustfmt reflowing a statement
//! across lines cannot detach the suppression). A directive with an
//! unknown rule or no written reason is itself a `malformed-allow`
//! diagnostic. Directives are recognized in `//` comments only and must
//! start the comment body (prose that merely mentions the syntax is not
//! a suppression).
//!
//! Diagnostics are machine-readable `file:line:rule` triples;
//! `crates/lint/baseline.txt` lists `file:rule` pairs to tolerate (so the
//! pass can land strict even if a rule fires on legacy code — the
//! workspace currently baselines nothing).

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

/// Forbids process-killing panics in the job path: the runtime's contract
/// (PR 5) is that worker failures surface as structured `JobError`s.
pub const RULE_NO_PANIC: &str = "no-panic-in-data-plane";
/// Forbids ambient environment reads outside the `from_env` /
/// `from_lookup` config constructors, which own the loud-fallback
/// discipline.
pub const RULE_NO_AMBIENT_ENV: &str = "no-ambient-env";
/// Forbids wall-clock reads in the deterministic planning/merge modules
/// (measurement belongs to the cluster's timed task paths).
pub const RULE_NO_WALLCLOCK: &str = "no-wallclock-in-deterministic";
/// A `tsjlint:allow` directive that names an unknown rule or carries no
/// reason.
pub const RULE_MALFORMED_ALLOW: &str = "malformed-allow";

/// Every suppressible rule (what `tsjlint:allow(...)` accepts).
pub const RULES: [&str; 3] = [RULE_NO_PANIC, RULE_NO_AMBIENT_ENV, RULE_NO_WALLCLOCK];

/// How many lines below its own an allow directive still covers (one
/// violation max). Wide enough that rustfmt reflowing the annotated
/// statement — or a multi-line reason comment — cannot detach it, narrow
/// enough that the suppression stays local.
pub const ALLOW_WINDOW_LINES: usize = 10;

/// One finding: `file:line:rule` plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line in the original source.
    pub line: usize,
    /// Rule code (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// What fired and why it matters.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `tsjlint:allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line of the directive comment.
    pub line: usize,
    /// The rule it suppresses (always one of [`RULES`]).
    pub rule: String,
}

/// [`clean_source`]'s output: the blanked text plus everything the
/// comment scan extracted on the way.
#[derive(Debug)]
pub struct Cleaned {
    /// Source with comments and literal contents replaced by spaces;
    /// newlines (and therefore line numbers) are preserved exactly.
    pub text: String,
    /// Well-formed allow directives, in line order.
    pub allows: Vec<Allow>,
    /// `(line, message)` for malformed directives.
    pub malformed: Vec<(usize, String)>,
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Parses the body of a `//` comment for a `tsjlint:allow` directive.
/// The directive must *start* the comment (after `//`/`//!`/`///` and
/// whitespace) so that prose merely mentioning the syntax — like this
/// file's docs — is not mistaken for a suppression.
fn parse_allow(
    comment: &str,
    line: usize,
    allows: &mut Vec<Allow>,
    bad: &mut Vec<(usize, String)>,
) {
    let lead = comment.trim_start_matches(['!', '/', ' ', '\t']);
    let Some(rest) = lead.strip_prefix("tsjlint:allow") else {
        return;
    };
    let Some(open) = rest.strip_prefix('(') else {
        bad.push((line, "expected `(` after `tsjlint:allow`".to_owned()));
        return;
    };
    let Some(close) = open.find(')') else {
        bad.push((line, "unterminated `tsjlint:allow(` directive".to_owned()));
        return;
    };
    let rule = open[..close].trim();
    if !RULES.contains(&rule) {
        bad.push((line, format!("unknown rule `{rule}` in tsjlint:allow")));
        return;
    }
    let reason = open[close + 1..].trim();
    if reason.is_empty() {
        bad.push((
            line,
            format!("tsjlint:allow({rule}) carries no reason; every suppression must say why"),
        ));
        return;
    }
    allows.push(Allow {
        line,
        rule: rule.to_owned(),
    });
}

/// Blanks comments and string/char literal *contents* (delimiters stay, so
/// tokens cannot merge), preserving every newline; parses `tsjlint:allow`
/// directives out of `//` comments as it goes. Handles line comments,
/// nested block comments, string escapes, raw/byte/C strings (`r"`,
/// `r#"…"#`, `b"`, `br#"`, `c"`, `cr#"`), byte chars (`b'x'`), and the
/// char-literal vs lifetime ambiguity (`'a'` vs `'a`).
pub fn clean_source(src: &str) -> Cleaned {
    let chars: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(chars.len());
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Blank `n` chars starting at `i` into `out`, preserving newlines and
    // advancing the line counter.
    macro_rules! blank {
        ($n:expr) => {{
            for k in 0..$n {
                let c = chars[i + k];
                if c == '\n' {
                    line += 1;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            i += $n;
        }};
    }
    macro_rules! keep {
        ($n:expr) => {{
            for k in 0..$n {
                let c = chars[i + k];
                if c == '\n' {
                    line += 1;
                }
                out.push(c);
            }
            i += $n;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        // ---- line comment (directive host) ---------------------------
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let end = chars[i..]
                .iter()
                .position(|&c| c == '\n')
                .map(|p| i + p)
                .unwrap_or(chars.len());
            let body: String = chars[i + 2..end].iter().collect();
            parse_allow(&body, line, &mut allows, &mut malformed);
            blank!(end - i);
            continue;
        }
        // ---- block comment (nested) ----------------------------------
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            let mut j = i;
            while j < chars.len() {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    j += 1;
                }
            }
            blank!(j - i);
            continue;
        }
        // ---- identifiers (may prefix a literal) ----------------------
        if is_ident_char(c) {
            let mut j = i;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            let ident: String = chars[i..j].iter().collect();
            keep!(j - i);
            // String prefix? (`r`, `b`, `br`, `c`, `cr` directly followed
            // by `"` or `#…"`; anything else is a plain identifier.)
            let raw_capable = matches!(ident.as_str(), "r" | "br" | "cr");
            let plain_capable = matches!(ident.as_str(), "b" | "c");
            if raw_capable {
                let mut k = i;
                while chars.get(k) == Some(&'#') {
                    k += 1;
                }
                if chars.get(k) == Some(&'"') {
                    let hashes = k - i;
                    keep!(hashes + 1); // the #s and the opening quote
                    blank_raw_string(&chars, &mut i, &mut line, &mut out, hashes);
                    continue;
                }
            }
            if (plain_capable || raw_capable) && chars.get(i) == Some(&'"') {
                keep!(1);
                blank_plain_string(&chars, &mut i, &mut line, &mut out);
                continue;
            }
            if ident == "b" && chars.get(i) == Some(&'\'') {
                keep!(1);
                blank_char_literal(&chars, &mut i, &mut line, &mut out);
                continue;
            }
            continue;
        }
        // ---- plain string --------------------------------------------
        if c == '"' {
            keep!(1);
            blank_plain_string(&chars, &mut i, &mut line, &mut out);
            continue;
        }
        // ---- char literal vs lifetime --------------------------------
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(n) if n != '\'' => chars.get(i + 2) == Some(&'\''),
                _ => false,
            };
            keep!(1);
            if is_char {
                blank_char_literal(&chars, &mut i, &mut line, &mut out);
            }
            continue;
        }
        keep!(1);
    }

    Cleaned {
        text: out.into_iter().collect(),
        allows,
        malformed,
    }
}

/// Blanks a plain (escaped) string's contents up to and including the
/// closing quote; `i` sits just past the opening quote.
fn blank_plain_string(chars: &[char], i: &mut usize, line: &mut usize, out: &mut Vec<char>) {
    while *i < chars.len() {
        let c = chars[*i];
        if c == '\\' && *i + 1 < chars.len() {
            for k in 0..2 {
                if chars[*i + k] == '\n' {
                    *line += 1;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            *i += 2;
            continue;
        }
        if c == '"' {
            out.push('"');
            *i += 1;
            return;
        }
        if c == '\n' {
            *line += 1;
            out.push('\n');
        } else {
            out.push(' ');
        }
        *i += 1;
    }
}

/// Blanks a raw string's contents up to and including its `"##…`
/// terminator; `i` sits just past the opening quote, `hashes` is the
/// delimiter's `#` count.
fn blank_raw_string(
    chars: &[char],
    i: &mut usize,
    line: &mut usize,
    out: &mut Vec<char>,
    hashes: usize,
) {
    while *i < chars.len() {
        if chars[*i] == '"' && chars[*i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes {
            out.push('"');
            *i += 1;
            for _ in 0..hashes {
                out.push('#');
                *i += 1;
            }
            return;
        }
        if chars[*i] == '\n' {
            *line += 1;
            out.push('\n');
        } else {
            out.push(' ');
        }
        *i += 1;
    }
}

/// Blanks a char (or byte-char) literal's contents up to and including the
/// closing quote; `i` sits just past the opening quote.
fn blank_char_literal(chars: &[char], i: &mut usize, line: &mut usize, out: &mut Vec<char>) {
    while *i < chars.len() {
        let c = chars[*i];
        if c == '\\' && *i + 1 < chars.len() {
            out.push(' ');
            out.push(' ');
            *i += 2;
            continue;
        }
        if c == '\'' {
            out.push('\'');
            *i += 1;
            return;
        }
        if c == '\n' {
            *line += 1;
            out.push('\n');
        } else {
            out.push(' ');
        }
        *i += 1;
    }
}

/// Blanks every `#[cfg(test)]`-annotated item (attribute through the end
/// of the following braced block or `;`-terminated item) in
/// already-cleaned text. Nested test modules disappear with their parent
/// (balanced-brace skip). Newlines are preserved.
pub fn strip_cfg_test(cleaned: &str) -> String {
    let chars: Vec<char> = cleaned.chars().collect();
    let mut out = chars.clone();
    let mut i = 0usize;
    while i < chars.len() {
        let Some(after_attr) = match_cfg_test(&chars, i) else {
            i += 1;
            continue;
        };
        let mut j = after_attr;
        // Skip whitespace and any further attributes on the item.
        loop {
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if chars.get(j) == Some(&'#') {
                let mut k = j + 1;
                while k < chars.len() && chars[k].is_whitespace() {
                    k += 1;
                }
                if chars.get(k) == Some(&'[') {
                    let mut depth = 0usize;
                    while k < chars.len() {
                        match chars[k] {
                            '[' => depth += 1,
                            ']' => {
                                depth -= 1;
                                if depth == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    j = k;
                    continue;
                }
            }
            break;
        }
        // The item body: through the matching `}` of its first brace
        // block, or through a `;` reached before any brace opens.
        let mut depth = 0usize;
        while j < chars.len() {
            match chars[j] {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                ';' if depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for slot in out.iter_mut().take(j).skip(i) {
            if *slot != '\n' {
                *slot = ' ';
            }
        }
        i = j;
    }
    out.into_iter().collect()
}

/// Matches `#[cfg(test)]` (whitespace-tolerant) at `i`; returns the index
/// just past the closing `]`.
fn match_cfg_test(chars: &[char], i: usize) -> Option<usize> {
    if chars.get(i) != Some(&'#') {
        return None;
    }
    let mut j = i + 1;
    let mut eat = |expected: &str| -> bool {
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        let got: String = chars[j..].iter().take(expected.chars().count()).collect();
        if got == expected {
            j += expected.chars().count();
            true
        } else {
            false
        }
    };
    for part in ["[", "cfg", "(", "test", ")", "]"] {
        if !eat(part) {
            return None;
        }
    }
    Some(j)
}

/// One scanned token: an identifier or a single symbol char, with its
/// 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String, usize),
    Sym(char, usize),
}

fn tokenize(text: &str) -> Vec<Tok> {
    let chars: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if is_ident_char(c) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            toks.push(Tok::Ident(chars[start..i].iter().collect(), line));
            continue;
        }
        toks.push(Tok::Sym(c, line));
        i += 1;
    }
    toks
}

/// Which rules apply to a repo-relative path (forward slashes).
#[derive(Debug, Clone, Copy)]
struct Scope {
    no_panic: bool,
    no_env: bool,
    no_wallclock: bool,
}

fn scope_of(path: &str) -> Scope {
    let job_path = path.starts_with("crates/mapreduce/src/");
    let deterministic = matches!(
        path,
        "crates/mapreduce/src/dag.rs"
            | "crates/mapreduce/src/dataset.rs"
            | "crates/mapreduce/src/merge.rs"
            | "crates/mapreduce/src/spill.rs"
    ) || path.starts_with("crates/mapreduce/src/dag/");
    let env = !path.starts_with("crates/shims/") && !path.starts_with("crates/bench/");
    Scope {
        no_panic: job_path,
        no_env: env,
        no_wallclock: deterministic,
    }
}

const ENV_BANNED: [&str; 7] = [
    "var",
    "var_os",
    "vars",
    "vars_os",
    "temp_dir",
    "set_var",
    "remove_var",
];

/// Functions whose bodies may read the environment: the loud-fallback
/// config constructors.
const ENV_EXEMPT_FNS: [&str; 2] = ["from_env", "from_lookup"];

/// Scans cleaned, test-stripped token text for rule violations.
fn scan_tokens(path: &str, toks: &[Tok], scope: Scope) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Innermost-function context: (name, brace depth of its body).
    let mut fn_stack: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut depth = 0usize;

    let ident_at = |idx: usize| -> Option<(&str, usize)> {
        match toks.get(idx) {
            Some(Tok::Ident(s, l)) => Some((s.as_str(), *l)),
            _ => None,
        }
    };
    let sym_at = |idx: usize, want: char| -> bool {
        matches!(toks.get(idx), Some(Tok::Sym(c, _)) if *c == want)
    };

    for (idx, tok) in toks.iter().enumerate() {
        match tok {
            Tok::Sym('{', _) => {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, depth));
                }
            }
            Tok::Sym('}', _) => {
                if fn_stack.last().is_some_and(|(_, d)| *d == depth) {
                    fn_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            Tok::Sym(';', _) => {
                // `fn f();` in a trait: the pending body never comes.
                pending_fn = None;
            }
            Tok::Ident(ident, line) => {
                let (ident, line) = (ident.as_str(), *line);
                if ident == "fn" {
                    if let Some((name, _)) = ident_at(idx + 1) {
                        pending_fn = Some(name.to_owned());
                    }
                    continue;
                }
                if scope.no_panic {
                    if matches!(ident, "unwrap" | "expect") && sym_at(idx + 1, '(') {
                        diags.push(Diagnostic {
                            file: path.to_owned(),
                            line,
                            rule: RULE_NO_PANIC,
                            message: format!(
                                "`{ident}(` can kill a worker; propagate a JobError/SpillError \
                                 instead (or justify with tsjlint:allow)"
                            ),
                        });
                    }
                    if matches!(ident, "panic" | "unreachable" | "todo") && sym_at(idx + 1, '!') {
                        diags.push(Diagnostic {
                            file: path.to_owned(),
                            line,
                            rule: RULE_NO_PANIC,
                            message: format!(
                                "`{ident}!` can kill a worker; propagate a JobError/SpillError \
                                 instead (or justify with tsjlint:allow)"
                            ),
                        });
                    }
                }
                if scope.no_wallclock
                    && matches!(ident, "Instant" | "SystemTime")
                    && sym_at(idx + 1, ':')
                    && sym_at(idx + 2, ':')
                    && ident_at(idx + 3).map(|(s, _)| s) == Some("now")
                {
                    diags.push(Diagnostic {
                        file: path.to_owned(),
                        line,
                        rule: RULE_NO_WALLCLOCK,
                        message: format!(
                            "`{ident}::now` in a deterministic module; timing belongs to the \
                             cluster's measured task paths"
                        ),
                    });
                }
                if scope.no_env && ident == "env" && sym_at(idx + 1, ':') && sym_at(idx + 2, ':') {
                    if let Some((callee, _)) = ident_at(idx + 3) {
                        let exempt = fn_stack
                            .last()
                            .is_some_and(|(name, _)| ENV_EXEMPT_FNS.contains(&name.as_str()));
                        if ENV_BANNED.contains(&callee) && !exempt {
                            diags.push(Diagnostic {
                                file: path.to_owned(),
                                line,
                                rule: RULE_NO_AMBIENT_ENV,
                                message: format!(
                                    "`env::{callee}` outside a from_env/from_lookup constructor; \
                                     route configuration through the config layer"
                                ),
                            });
                        }
                    }
                }
            }
            Tok::Sym(..) => {}
        }
    }
    diags
}

/// Applies allow directives: each directive suppresses the first
/// violation of its rule on its own line or within the next
/// [`ALLOW_WINDOW_LINES`] lines. Returns the surviving diagnostics.
fn apply_allows(mut diags: Vec<Diagnostic>, allows: &[Allow]) -> Vec<Diagnostic> {
    diags.sort_by_key(|d| d.line);
    let mut used: Vec<bool> = vec![false; allows.len()];
    diags.retain(|d| {
        for (k, a) in allows.iter().enumerate() {
            if used[k] || a.rule != d.rule {
                continue;
            }
            if d.line >= a.line && d.line <= a.line + ALLOW_WINDOW_LINES {
                used[k] = true;
                return false;
            }
        }
        true
    });
    diags
}

/// Lints one file's source text. `path` is the repo-relative path
/// (forward slashes) — it selects which rules apply.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let scope = scope_of(path);
    let cleaned = clean_source(src);
    let mut diags: Vec<Diagnostic> = cleaned
        .malformed
        .iter()
        .map(|(line, message)| Diagnostic {
            file: path.to_owned(),
            line: *line,
            rule: RULE_MALFORMED_ALLOW,
            message: message.clone(),
        })
        .collect();
    if scope.no_panic || scope.no_env || scope.no_wallclock {
        let stripped = strip_cfg_test(&cleaned.text);
        let toks = tokenize(&stripped);
        let found = scan_tokens(path, &toks, scope);
        diags.extend(apply_allows(found, &cleaned.allows));
    }
    diags.sort_by_key(|d| d.line);
    diags
}

/// Walks the workspace's `src/` trees (every `crates/*/src/**/*.rs` plus
/// the root crate's `src/`, skipping `crates/shims`) and lints each file.
/// Files come back in sorted path order.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let dir = entry?.path();
            if dir.file_name().is_some_and(|n| n == "shims") {
                continue;
            }
            collect_rs(&dir.join("src"), &mut files)?;
        }
    }
    files.sort();
    let mut diags = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        diags.extend(lint_source(&rel, &src));
    }
    Ok(diags)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads a baseline file: one `file:rule` pair per line, `#` comments and
/// blank lines ignored. A missing file is an empty baseline.
pub fn load_baseline(path: &Path) -> HashSet<(String, String)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return HashSet::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (file, rule) = l.rsplit_once(':')?;
            Some((file.to_owned(), rule.to_owned()))
        })
        .collect()
}

/// Splits diagnostics into `(fresh, baselined)` against a baseline set.
pub fn split_baselined(
    diags: Vec<Diagnostic>,
    baseline: &HashSet<(String, String)>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    diags
        .into_iter()
        .partition(|d| !baseline.contains(&(d.file.clone(), d.rule.to_owned())))
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- cleaning -----------------------------------------------------

    #[test]
    fn line_comments_are_blanked_but_lines_kept() {
        let src = "let a = 1; // unwrap() here is prose\nlet b = 2;\n";
        let c = clean_source(src);
        assert!(!c.text.contains("unwrap"));
        assert_eq!(c.text.matches('\n').count(), src.matches('\n').count());
        assert!(c.text.contains("let b = 2;"));
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let src = "a /* outer /* inner panic! */ still outer */ b";
        let c = clean_source(src);
        assert!(!c.text.contains("panic"));
        assert!(c.text.contains('a') && c.text.contains('b'));
    }

    #[test]
    fn string_contents_are_blanked_delimiters_kept() {
        let src = r#"let s = "call unwrap() now \" quoted"; after"#;
        let c = clean_source(src);
        assert!(!c.text.contains("unwrap"));
        assert!(c.text.contains("after"));
        assert_eq!(c.text.matches('"').count(), 2);
    }

    #[test]
    fn raw_and_byte_strings_are_blanked() {
        let src = "let r = r#\"panic! \"inner\" \"#; let b = b\"todo!\"; let br = br##\"x\"##; end";
        let c = clean_source(src);
        assert!(!c.text.contains("panic"));
        assert!(!c.text.contains("todo"));
        assert!(c.text.contains("end"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let z = 'z'; let esc = '\\''; }";
        let c = clean_source(src);
        // The lifetime name must survive (it is not a char literal)...
        assert!(c.text.contains("<'a>"));
        assert!(c.text.contains("&'a str"));
        // ...while char contents are blanked: the double-quote char cannot
        // open a string (nothing after it gets blanked).
        assert!(c.text.contains("let z ="));
        assert!(!c.text.contains("'z'"));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let src = "let s = \"line one\nline two\";\nunwrap_marker";
        let c = clean_source(src);
        assert_eq!(c.text.matches('\n').count(), 2);
        assert!(c.text.contains("unwrap_marker"));
    }

    // ---- allow parsing ------------------------------------------------

    #[test]
    fn wellformed_allow_is_recorded() {
        let src = "// tsjlint:allow(no-panic-in-data-plane) heap invariant\nx.unwrap();";
        let c = clean_source(src);
        assert_eq!(
            c.allows,
            vec![Allow {
                line: 1,
                rule: RULE_NO_PANIC.to_owned()
            }]
        );
        assert!(c.malformed.is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let c = clean_source("// tsjlint:allow(no-panic-in-data-plane)\n");
        assert!(c.allows.is_empty());
        assert_eq!(c.malformed.len(), 1);
        assert!(c.malformed[0].1.contains("no reason"));
    }

    #[test]
    fn allow_with_unknown_rule_is_malformed() {
        let c = clean_source("// tsjlint:allow(no-such-rule) because\n");
        assert!(c.allows.is_empty());
        assert_eq!(c.malformed.len(), 1);
        assert!(c.malformed[0].1.contains("unknown rule"));
    }

    // ---- cfg(test) stripping -----------------------------------------

    #[test]
    fn cfg_test_module_is_stripped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let stripped = strip_cfg_test(&clean_source(src).text);
        assert!(!stripped.contains("unwrap"));
        assert!(stripped.contains("live"));
        assert!(stripped.contains("also_live"));
        assert_eq!(stripped.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn nested_cfg_test_modules_strip_with_parent() {
        let src = "#[cfg(test)]\nmod outer {\n  #[cfg(test)]\n  mod inner { fn t() { panic!(\"x\") } }\n  fn u() { y.expect(\"z\"); }\n}\nfn live() {}\n";
        let stripped = strip_cfg_test(&clean_source(src).text);
        assert!(!stripped.contains("panic"));
        assert!(!stripped.contains("expect"));
        assert!(stripped.contains("live"));
    }

    #[test]
    fn cfg_test_with_extra_attribute_and_semicolon_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { a.unwrap() }\n#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let stripped = strip_cfg_test(&clean_source(src).text);
        assert!(!stripped.contains("unwrap"));
        assert!(!stripped.contains("mod tests"));
        assert!(stripped.contains("live"));
    }

    // ---- rules --------------------------------------------------------

    const JOB_PATH: &str = "crates/mapreduce/src/cluster.rs";

    #[test]
    fn no_panic_catches_all_five_forms() {
        let src = "fn f() { a.unwrap(); b.expect(\"m\"); panic!(\"x\"); unreachable!(); todo!() }";
        let diags = lint_source(JOB_PATH, src);
        assert_eq!(diags.len(), 5, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == RULE_NO_PANIC));
    }

    #[test]
    fn no_panic_ignores_lookalike_identifiers() {
        let src =
            "fn f() { a.unwrap_or_else(g); unwrap_all(x); b.expect_err(\"m\"); panic_message(p); }";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn no_panic_out_of_scope_elsewhere() {
        let src = "fn f() { a.unwrap(); }";
        assert!(lint_source("crates/core/src/joiner.rs", src).is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let src = "fn f() { a.unwrap(); } // tsjlint:allow(no-panic-in-data-plane) test fixture\n";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn preceding_allow_suppresses_within_window() {
        let src = "// tsjlint:allow(no-panic-in-data-plane) spans the reflowed\n// statement below\nfn f() {\n    a\n        .unwrap();\n}\n";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn one_allow_covers_one_violation() {
        let src = "// tsjlint:allow(no-panic-in-data-plane) only the first\nfn f() { a.unwrap(); b.unwrap(); }";
        let diags = lint_source(JOB_PATH, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn allow_outside_window_does_not_suppress() {
        let filler = "\n".repeat(ALLOW_WINDOW_LINES + 1);
        let src = format!(
            "// tsjlint:allow(no-panic-in-data-plane) too far away{filler}fn f() {{ a.unwrap(); }}"
        );
        assert_eq!(lint_source(JOB_PATH, &src).len(), 1);
    }

    #[test]
    fn wallclock_banned_in_deterministic_modules_only() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let diags = lint_source("crates/mapreduce/src/merge.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == RULE_NO_WALLCLOCK));
        // cluster.rs measures real task time on purpose.
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn netshuffle_is_real_time_but_not_ambient_env() {
        // The network layer's deadlines and backoff are wall-clock by
        // design (see the module-docs scope note) — but its knobs must
        // still arrive through config values, not ambient env reads.
        let clock = "fn f() { let t = Instant::now(); }";
        assert!(lint_source("crates/netshuffle/src/client.rs", clock).is_empty());
        let env = "fn f() { let v = std::env::var(\"TSJ_NET_FAULT_DROP_NTH\"); }";
        let diags = lint_source("crates/netshuffle/src/client.rs", env);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_NO_AMBIENT_ENV);
        // Panics are also out of scope here: netshuffle surfaces
        // structured errors by API contract, not by lint.
        assert!(
            lint_source("crates/netshuffle/src/server.rs", "fn f() { a.unwrap(); }").is_empty()
        );
    }

    #[test]
    fn env_reads_flagged_outside_constructors() {
        let src = "fn f() { let v = std::env::var(\"X\"); }";
        let diags = lint_source("crates/core/src/config.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_NO_AMBIENT_ENV);
    }

    #[test]
    fn env_reads_allowed_inside_from_env_and_from_lookup() {
        let src = "impl C {\n fn from_env() -> Self { Self::from_lookup(|n| std::env::var_os(n)) }\n fn from_lookup(f: F) -> Self { let _ = std::env::var(\"Y\"); todo() }\n}";
        assert!(lint_source("crates/core/src/config.rs", src).is_empty());
    }

    #[test]
    fn env_exemption_ends_with_the_constructor() {
        let src = "fn from_env() { let _ = std::env::var(\"A\"); }\nfn other() { let _ = std::env::var(\"B\"); }";
        let diags = lint_source("crates/core/src/config.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn env_rule_skips_shims_and_bench() {
        let src = "fn f() { let v = std::env::var(\"X\"); }";
        assert!(lint_source("crates/shims/rand/src/lib.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn violations_in_test_code_are_ignored() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { a.unwrap(); panic!(\"x\"); } }";
        assert!(lint_source(JOB_PATH, src).is_empty());
    }

    #[test]
    fn malformed_allow_is_reported_with_location() {
        let src = "fn f() {}\n// tsjlint:allow(no-panic-in-data-plane)\n";
        let diags = lint_source(JOB_PATH, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_MALFORMED_ALLOW);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn diagnostic_renders_machine_readable_triple() {
        let diags = lint_source(JOB_PATH, "fn f() { a.unwrap(); }");
        let rendered = diags[0].to_string();
        assert!(
            rendered.starts_with("crates/mapreduce/src/cluster.rs:1:no-panic-in-data-plane:"),
            "{rendered}"
        );
    }

    // ---- baseline -----------------------------------------------------

    #[test]
    fn baseline_splits_known_pairs() {
        let mut baseline = HashSet::new();
        baseline.insert((JOB_PATH.to_owned(), RULE_NO_PANIC.to_owned()));
        let diags = lint_source(JOB_PATH, "fn f() { a.unwrap(); }");
        let (fresh, old) = split_baselined(diags, &baseline);
        assert!(fresh.is_empty());
        assert_eq!(old.len(), 1);
    }
}
