//! `tsjlint` CLI: lints the workspace sources against the runtime's
//! invariant rules (see the library docs for the rule catalog).
//!
//! Usage: `tsjlint [--deny] [--root <dir>] [--baseline <file>]`
//!
//! Diagnostics print to stdout as `file:line:rule: message`; a summary
//! goes to stderr. Exit status is 0 unless `--deny` is set and a
//! non-baselined diagnostic fired (exit 1), or the invocation itself
//! failed (exit 2).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory argument"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a file argument"),
            },
            "--help" | "-h" => {
                println!("usage: tsjlint [--deny] [--root <dir>] [--baseline <file>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(discover_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "tsjlint: no workspace root found (no ancestor Cargo.toml with [workspace]); \
                 pass --root"
            );
            return ExitCode::from(2);
        }
    };

    let baseline_path = baseline.unwrap_or_else(|| root.join("crates/lint/baseline.txt"));
    let baseline = tsj_lint::load_baseline(&baseline_path);

    let diags = match tsj_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "tsjlint: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let (fresh, baselined) = tsj_lint::split_baselined(diags, &baseline);

    for d in &fresh {
        println!("{d}");
    }
    eprintln!(
        "tsjlint: {} diagnostic{} ({} baselined)",
        fresh.len(),
        if fresh.len() == 1 { "" } else { "s" },
        baselined.len()
    );
    // Per-rule fresh counts (machine-grepable; CI lifts these into the
    // step summary).
    for rule in tsj_lint::RULES
        .iter()
        .chain(std::iter::once(&tsj_lint::RULE_MALFORMED_ALLOW))
    {
        let n = fresh.iter().filter(|d| d.rule == *rule).count();
        eprintln!("tsjlint:   {rule}: {n}");
    }

    if deny && !fresh.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("tsjlint: {err}\nusage: tsjlint [--deny] [--root <dir>] [--baseline <file>]");
    ExitCode::from(2)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
