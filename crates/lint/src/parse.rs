//! The structural layer under the v2 rules: a whole-identifier tokenizer,
//! delimiter matching, and a lightweight brace-matching parser that turns
//! cleaned (comment/literal-blanked, test-stripped) source text into an
//! *item tree* — `mod` / `impl` / `fn` boundaries with function
//! signatures — plus `let`-binding and receiver-chain analyses the rules
//! build on.
//!
//! This is deliberately not a grammar-complete Rust parser (the build
//! environment has no crates.io, so no `syn`): it recovers exactly the
//! structure the rule pack needs — which function a token is in, where a
//! binding's enclosing block ends, what expression feeds a cast or a
//! call — and degrades by *skipping* anything it cannot shape, never by
//! misattributing it. Token indices are stable, so every derived range
//! (`Item::body`, `LetBinding::init`, ...) indexes the same token slice.

use std::ops::Range;

/// One scanned token: a whole identifier (keywords and numeric literals
/// included — `is_ident_char` accepts digits) or a single symbol
/// character, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier-ish run (`foo`, `r#match` minus the `#`, `0x7f`).
    Ident(String, usize),
    /// A single non-identifier, non-whitespace character.
    Sym(char, usize),
}

impl Tok {
    /// The token's 1-based source line.
    pub fn line(&self) -> usize {
        match self {
            Tok::Ident(_, l) | Tok::Sym(_, l) => *l,
        }
    }

    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s, _) => Some(s),
            Tok::Sym(..) => None,
        }
    }

    /// Whether this is the symbol `want`.
    pub fn is_sym(&self, want: char) -> bool {
        matches!(self, Tok::Sym(c, _) if *c == want)
    }

    /// Whether this is the identifier `want`.
    pub fn is_ident(&self, want: &str) -> bool {
        matches!(self, Tok::Ident(s, _) if s == want)
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes cleaned text into identifiers and single-symbol tokens with
/// line numbers. Numeric literals lex as identifiers (`0x7f`); `_` is an
/// identifier of its own.
pub fn tokenize(text: &str) -> Vec<Tok> {
    let chars: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if is_ident_char(c) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            toks.push(Tok::Ident(chars[start..i].iter().collect(), line));
            continue;
        }
        toks.push(Tok::Sym(c, line));
        i += 1;
    }
    toks
}

/// Matches `{}`, `()`, and `[]` pairs: `map[i]` is the index of the
/// token matching the delimiter at `i`, or `i` itself for non-delimiters
/// and unbalanced delimiters. Angle brackets are *not* matched here —
/// `<`/`>` double as comparison operators; the parser tracks them
/// contextually instead.
pub fn match_delims(toks: &[Tok]) -> Vec<usize> {
    let mut map: Vec<usize> = (0..toks.len()).collect();
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        match tok {
            Tok::Sym(c @ ('{' | '(' | '['), _) => stack.push((*c, i)),
            Tok::Sym(c @ ('}' | ')' | ']'), _) => {
                let open = match c {
                    '}' => '{',
                    ')' => '(',
                    _ => '[',
                };
                if let Some(&(kind, at)) = stack.last() {
                    if kind == open {
                        stack.pop();
                        map[at] = i;
                        map[i] = at;
                    }
                }
            }
            _ => {}
        }
    }
    map
}

/// What an [`Item`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A `mod` (or `trait` — both are named scopes holding further items).
    Mod,
    /// An `impl` block.
    Impl,
    /// A function, with its parsed signature.
    Fn(FnSig),
}

/// The parts of a function signature the rules care about.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSig {
    /// Declared `async`.
    pub is_async: bool,
    /// Declared `unsafe`.
    pub is_unsafe: bool,
    /// The return type mentions `Result` (`Result<..>`, `io::Result<..>`).
    pub returns_result: bool,
}

/// One node of the item tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Its name (`mod`/`fn` name; the first type identifier for `impl`).
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: usize,
    /// Token range strictly inside the body braces; `None` for bodyless
    /// items (`mod x;`, trait method declarations).
    pub body: Option<Range<usize>>,
    /// Nested items, including functions found inside statement blocks.
    pub children: Vec<Item>,
}

/// Parses the item tree of a token slice. `delims` must come from
/// [`match_delims`] over the same tokens.
pub fn parse_items(toks: &[Tok], delims: &[usize]) -> Vec<Item> {
    parse_range(toks, delims, 0..toks.len())
}

fn parse_range(toks: &[Tok], delims: &[usize], range: Range<usize>) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = range.start;
    while i < range.end {
        match &toks[i] {
            Tok::Ident(kw, line) if kw == "mod" || kw == "trait" => {
                let Some(name) = toks.get(i + 1).and_then(Tok::ident) else {
                    i += 1;
                    continue;
                };
                // `mod x;` / `mod x { ... }` / `trait T: Bound { ... }`.
                let mut j = i + 2;
                while j < range.end && !toks[j].is_sym('{') && !toks[j].is_sym(';') {
                    j += 1;
                }
                if j < range.end && toks[j].is_sym('{') && delims[j] > j {
                    let close = delims[j];
                    items.push(Item {
                        kind: ItemKind::Mod,
                        name: name.to_owned(),
                        line: *line,
                        body: Some(j + 1..close),
                        children: parse_range(toks, delims, j + 1..close),
                    });
                    i = close + 1;
                } else {
                    items.push(Item {
                        kind: ItemKind::Mod,
                        name: name.to_owned(),
                        line: *line,
                        body: None,
                        children: Vec::new(),
                    });
                    i = j.saturating_add(1);
                }
            }
            Tok::Ident(kw, line) if kw == "impl" => {
                // Name: the first type identifier at angle depth 0 after
                // `impl` (skipping the generic parameter list).
                let mut angle = 0i32;
                let mut name = String::new();
                let mut j = i + 1;
                while j < range.end && !toks[j].is_sym('{') && !toks[j].is_sym(';') {
                    match &toks[j] {
                        Tok::Sym('<', _) => angle += 1,
                        Tok::Sym('>', _) if !(j > 0 && toks[j - 1].is_sym('-')) => {
                            angle -= 1;
                        }
                        Tok::Ident(s, _) if angle == 0 && name.is_empty() => {
                            name = s.clone();
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < range.end && toks[j].is_sym('{') && delims[j] > j {
                    let close = delims[j];
                    items.push(Item {
                        kind: ItemKind::Impl,
                        name,
                        line: *line,
                        body: Some(j + 1..close),
                        children: parse_range(toks, delims, j + 1..close),
                    });
                    i = close + 1;
                } else {
                    i = j.saturating_add(1);
                }
            }
            // An item fn: `fn` followed by a name. (`fn(u32) -> u32`
            // pointer types have `(` next and fall through.)
            Tok::Ident(kw, line)
                if kw == "fn" && toks.get(i + 1).and_then(Tok::ident).is_some() =>
            {
                let name = toks[i + 1].ident().unwrap_or_default().to_owned();
                let sig_line = *line;
                let mut sig = modifiers_before(toks, range.start, i);

                // Params open: first `(` at angle depth 0 (generic bounds
                // like `F: Fn(u32) -> u32` keep their parens inside `<>`).
                let mut angle = 0i32;
                let mut j = i + 2;
                let mut params_open = None;
                while j < range.end {
                    match &toks[j] {
                        Tok::Sym('<', _) => angle += 1,
                        Tok::Sym('>', _) if !(j > 0 && toks[j - 1].is_sym('-')) => {
                            angle -= 1;
                        }
                        Tok::Sym('(', _) if angle <= 0 => {
                            params_open = Some(j);
                            break;
                        }
                        Tok::Sym('{' | ';', _) if angle <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                // Body start: first `{` (or `;` for bodyless decls) at
                // paren/bracket depth 0 after the params.
                let after_params = match params_open {
                    Some(open) if delims[open] > open => delims[open] + 1,
                    _ => j,
                };
                let mut k = after_params;
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut body_open = None;
                while k < range.end {
                    match &toks[k] {
                        Tok::Sym('(', _) => paren += 1,
                        Tok::Sym(')', _) => paren -= 1,
                        Tok::Sym('[', _) => bracket += 1,
                        Tok::Sym(']', _) => bracket -= 1,
                        Tok::Sym('{', _) if paren == 0 && bracket == 0 => {
                            body_open = Some(k);
                            break;
                        }
                        Tok::Sym(';', _) if paren == 0 && bracket == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                sig.returns_result = toks[after_params..k.min(range.end)]
                    .iter()
                    .any(|t| t.is_ident("Result"));
                match body_open {
                    Some(open) if delims[open] > open => {
                        let close = delims[open];
                        items.push(Item {
                            kind: ItemKind::Fn(sig),
                            name,
                            line: sig_line,
                            body: Some(open + 1..close),
                            children: parse_range(toks, delims, open + 1..close),
                        });
                        i = close + 1;
                    }
                    _ => {
                        items.push(Item {
                            kind: ItemKind::Fn(sig),
                            name,
                            line: sig_line,
                            body: None,
                            children: Vec::new(),
                        });
                        i = k.saturating_add(1);
                    }
                }
            }
            // Any other block (struct/enum bodies, statement blocks, match
            // arms): recurse so functions nested inside still surface, as
            // direct children of the enclosing item.
            Tok::Sym('{', _) if delims[i] > i => {
                let close = delims[i];
                items.extend(parse_range(toks, delims, i + 1..close));
                i = close + 1;
            }
            _ => i += 1,
        }
    }
    items
}

/// Collects `async`/`unsafe` from the modifier run directly before a
/// `fn` keyword (`pub(crate) const unsafe fn ...`).
fn modifiers_before(toks: &[Tok], start: usize, fn_idx: usize) -> FnSig {
    let mut sig = FnSig::default();
    let mut k = fn_idx;
    while k > start {
        match &toks[k - 1] {
            Tok::Ident(m, _)
                if matches!(
                    m.as_str(),
                    "pub" | "const" | "async" | "unsafe" | "extern" | "crate" | "super" | "self"
                ) =>
            {
                if m == "async" {
                    sig.is_async = true;
                }
                if m == "unsafe" {
                    sig.is_unsafe = true;
                }
                k -= 1;
            }
            Tok::Sym('(' | ')', _) => k -= 1,
            _ => break,
        }
    }
    sig
}

/// The deepest `fn` item whose body contains token `idx`, or `None` when
/// the token sits outside every function body.
pub fn innermost_fn(items: &[Item], idx: usize) -> Option<&Item> {
    for item in items {
        let Some(body) = &item.body else { continue };
        if !body.contains(&idx) {
            continue;
        }
        if let Some(inner) = innermost_fn(&item.children, idx) {
            return Some(inner);
        }
        return match item.kind {
            ItemKind::Fn(_) => Some(item),
            _ => None,
        };
    }
    None
}

/// Visits every `fn` item in the tree, depth-first.
pub fn for_each_fn<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item)) {
    for item in items {
        if matches!(item.kind, ItemKind::Fn(_)) {
            f(item);
        }
        for_each_fn(&item.children, f);
    }
}

/// One `let` binding of a simple name (patterns like `let (a, b) = ..`
/// and `if let`/`while let` heads are deliberately skipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LetBinding {
    /// The bound name (`_` for an explicit discard).
    pub name: String,
    /// 1-based line of the `let`.
    pub line: usize,
    /// Token range of the declared type (empty when inferred).
    pub ty: Range<usize>,
    /// Token range of the initializer (empty for `let x;`).
    pub init: Range<usize>,
    /// Index of the terminating `;`.
    pub stmt_end: usize,
    /// Index of the `}` closing the binding's enclosing block (the body's
    /// end for top-of-function bindings) — where the binding drops.
    pub scope_end: usize,
}

/// Extracts the simple-name `let` bindings of a body range, each with its
/// initializer tokens and enclosing-block end. Nested blocks (closures,
/// `if`/`match` arms) are walked too; their bindings carry the inner
/// block's `scope_end`.
pub fn let_bindings(toks: &[Tok], delims: &[usize], body: Range<usize>) -> Vec<LetBinding> {
    let mut out = Vec::new();
    let mut blocks: Vec<usize> = Vec::new();
    let mut i = body.start;
    while i < body.end {
        match &toks[i] {
            Tok::Sym('{', _) => blocks.push(i),
            Tok::Sym('}', _) => {
                blocks.pop();
            }
            Tok::Ident(kw, line) if kw == "let" => {
                // `if let` / `while let` heads are refutable patterns, not
                // scoped bindings.
                let after_cond =
                    i > body.start && matches!(toks[i - 1].ident(), Some("if" | "while" | "else"));
                if after_cond {
                    i += 1;
                    continue;
                }
                let mut p = i + 1;
                if toks.get(p).is_some_and(|t| t.is_ident("mut")) {
                    p += 1;
                }
                let Some(name) = toks.get(p).and_then(Tok::ident) else {
                    i += 1;
                    continue;
                };
                let name = name.to_owned();
                let line = *line;
                // Optional `: Type` up to the `=` at angle/paren/bracket
                // depth 0 (associated-type bindings like `Item = u32` hide
                // their `=` inside `<>`).
                let mut ty = p + 1..p + 1;
                let mut q = p + 1;
                if toks.get(q).is_some_and(|t| t.is_sym(':')) {
                    let ty_start = q + 1;
                    let mut angle = 0i32;
                    let mut paren = 0i32;
                    let mut bracket = 0i32;
                    q = ty_start;
                    while q < body.end {
                        match &toks[q] {
                            Tok::Sym('<', _) => angle += 1,
                            Tok::Sym('>', _) if !(q > 0 && toks[q - 1].is_sym('-')) => {
                                angle -= 1;
                            }
                            Tok::Sym('(', _) => paren += 1,
                            Tok::Sym(')', _) => paren -= 1,
                            Tok::Sym('[', _) => bracket += 1,
                            Tok::Sym(']', _) => bracket -= 1,
                            Tok::Sym('=' | ';', _) if angle <= 0 && paren == 0 && bracket == 0 => {
                                break;
                            }
                            _ => {}
                        }
                        q += 1;
                    }
                    ty = ty_start..q;
                }
                // Initializer: after `=`, to the `;` at full depth 0
                // (braces included — `let x = if c { a } else { b };`).
                let (init, stmt_end) = if toks.get(q).is_some_and(|t| t.is_sym('=')) {
                    let init_start = q + 1;
                    let mut depth = 0i32;
                    let mut r = init_start;
                    while r < body.end {
                        match &toks[r] {
                            Tok::Sym('(' | '[' | '{', _) => depth += 1,
                            Tok::Sym(')' | ']' | '}', _) => depth -= 1,
                            Tok::Sym(';', _) if depth == 0 => break,
                            _ => {}
                        }
                        r += 1;
                    }
                    (init_start..r, r)
                } else {
                    (q..q, q)
                };
                let scope_end = blocks.last().map_or(body.end, |&open| delims[open]);
                out.push(LetBinding {
                    name,
                    line,
                    ty,
                    init,
                    stmt_end,
                    scope_end,
                });
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Walks back from the *last* token of an expression to its first token,
/// crossing postfix chains: method/field access (`.`), paths (`::`),
/// call/index groups, and postfix `?`. Returns the start index.
///
/// `expr_start(toks, d, «)» of specs.len())` is the index of `specs`;
/// from the `)` of `(v & 0x7f)` with no preceding callee it is the `(`.
pub fn expr_start(toks: &[Tok], delims: &[usize], last: usize) -> usize {
    let mut j = last;
    loop {
        // Step over the current chain element.
        match &toks[j] {
            Tok::Sym(')' | ']', _) => {
                let open = delims[j];
                if open < j {
                    j = open;
                } else {
                    return j;
                }
                // A callee / indexed ident directly before the group
                // belongs to the same element.
                match j.checked_sub(1) {
                    Some(k) if toks[k].ident().is_some() => j = k,
                    _ => {}
                }
            }
            Tok::Ident(..) => {}
            Tok::Sym('?', _) => match j.checked_sub(1) {
                Some(k) => {
                    j = k;
                    continue;
                }
                None => return j,
            },
            _ => return j,
        }
        // Cross a `.` or `::` separator to the element on its left.
        match j.checked_sub(1) {
            Some(k) if toks[k].is_sym('.') => match k.checked_sub(1) {
                Some(m) => j = m,
                None => return j,
            },
            Some(k) if toks[k].is_sym(':') && k >= 1 && toks[k - 1].is_sym(':') => {
                match k.checked_sub(2) {
                    Some(m) => j = m,
                    None => return j,
                }
            }
            _ => return j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> (Vec<Tok>, Vec<usize>, Vec<Item>) {
        let toks = tokenize(src);
        let delims = match_delims(&toks);
        let items = parse_items(&toks, &delims);
        (toks, delims, items)
    }

    fn fn_names(items: &[Item]) -> Vec<String> {
        let mut names = Vec::new();
        for_each_fn(items, &mut |f| names.push(f.name.clone()));
        names
    }

    #[test]
    fn nested_mods_impls_and_fns_build_a_tree() {
        let src = "mod outer {\n  struct S;\n  impl S {\n    fn method(&self) { helper() }\n  }\n  mod inner { fn deep() {} }\n}\nfn top() {}\n";
        let (_, _, items) = parsed(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "outer");
        assert!(matches!(items[0].kind, ItemKind::Mod));
        let imp = &items[0].children[0];
        assert!(matches!(imp.kind, ItemKind::Impl));
        assert_eq!(imp.name, "S");
        assert_eq!(imp.children[0].name, "method");
        assert_eq!(items[0].children[1].children[0].name, "deep");
        assert_eq!(fn_names(&items), ["method", "deep", "top"]);
    }

    #[test]
    fn generics_with_shift_like_closers_do_not_derail_params() {
        let src =
            "fn f<T: Into<Vec<Vec<u8>>>>(x: T, y: [u8; 4]) -> Vec<u8> { body() }\nfn g() {}\n";
        let (_, _, items) = parsed(src);
        assert_eq!(fn_names(&items), ["f", "g"]);
        assert!(items[0].body.is_some());
    }

    #[test]
    fn where_clauses_and_fn_bound_arrows_are_skipped() {
        let src = "fn f<F>(make: F) -> Result<(), E>\nwhere\n    F: Fn(u32) -> Result<u32, E>,\n{ go() }\n";
        let (_, _, items) = parsed(src);
        assert_eq!(items.len(), 1);
        let ItemKind::Fn(sig) = &items[0].kind else {
            panic!("not a fn: {:?}", items[0]);
        };
        assert!(sig.returns_result);
        assert!(items[0].body.is_some());
    }

    #[test]
    fn async_unsafe_and_result_signatures_are_recognized() {
        let src = "pub(crate) async fn a() {}\nunsafe fn u() {}\nfn r() -> std::io::Result<()> { Ok(()) }\nfn plain() -> usize { 0 }\n";
        let (_, _, items) = parsed(src);
        let sigs: Vec<(String, FnSig)> = items
            .iter()
            .map(|i| match &i.kind {
                ItemKind::Fn(s) => (i.name.clone(), s.clone()),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(sigs[0].1.is_async && !sigs[0].1.is_unsafe);
        assert!(sigs[1].1.is_unsafe && !sigs[1].1.is_async);
        assert!(sigs[2].1.returns_result);
        assert!(!sigs[3].1.returns_result);
    }

    #[test]
    fn trait_methods_without_bodies_parse_as_bodyless_fns() {
        let src =
            "trait T {\n    fn required(&self) -> Result<(), E>;\n    fn provided(&self) {}\n}\n";
        let (_, _, items) = parsed(src);
        assert_eq!(items[0].name, "T");
        let kids = &items[0].children;
        assert_eq!(kids[0].name, "required");
        assert!(kids[0].body.is_none());
        assert!(kids[1].body.is_some());
    }

    #[test]
    fn innermost_fn_resolves_through_nesting_and_blocks() {
        let src = "fn outer() {\n    if cond {\n        marker_a;\n    }\n}\nmod m { fn inner() { marker_b; } }\nstatic X: u8 = 0;\n";
        let (toks, delims, items) = parsed(src);
        let at = |name: &str| toks.iter().position(|t| t.is_ident(name)).unwrap();
        assert_eq!(innermost_fn(&items, at("marker_a")).unwrap().name, "outer");
        assert_eq!(innermost_fn(&items, at("marker_b")).unwrap().name, "inner");
        let x_idx = toks.iter().position(|t| t.is_ident("X")).unwrap();
        assert!(innermost_fn(&items, x_idx).is_none());
        let _ = delims;
    }

    #[test]
    fn let_bindings_carry_type_init_and_scope() {
        let src = "fn f() {\n    let n: Vec<u8> = decode(buf);\n    {\n        let inner = n.len();\n        use_it(inner);\n    }\n    tail(n);\n}\n";
        let (toks, delims, items) = parsed(src);
        let body = items[0].body.clone().unwrap();
        let lets = let_bindings(&toks, &delims, body.clone());
        assert_eq!(lets.len(), 2);
        assert_eq!(lets[0].name, "n");
        assert!(toks[lets[0].ty.clone()].iter().any(|t| t.is_ident("Vec")));
        assert!(toks[lets[0].init.clone()]
            .iter()
            .any(|t| t.is_ident("decode")));
        assert_eq!(lets[0].scope_end, body.end);
        assert_eq!(lets[1].name, "inner");
        // The inner binding's scope closes before the outer one's.
        assert!(lets[1].scope_end < lets[0].scope_end);
    }

    #[test]
    fn if_let_and_tuple_patterns_are_skipped() {
        let src =
            "fn f() {\n    if let Some(x) = maybe() { use_it(x); }\n    let (a, b) = pair();\n    let plain = 1;\n}\n";
        let (toks, delims, items) = parsed(src);
        let lets = let_bindings(&toks, &delims, items[0].body.clone().unwrap());
        assert_eq!(lets.len(), 1);
        assert_eq!(lets[0].name, "plain");
    }

    #[test]
    fn braced_initializers_terminate_at_the_statement_semicolon() {
        let src = "fn f() {\n    let k = Key { a: 1, b: 2 };\n    let c = if x { 1 } else { 2 };\n    after();\n}\n";
        let (toks, delims, items) = parsed(src);
        let lets = let_bindings(&toks, &delims, items[0].body.clone().unwrap());
        assert_eq!(lets.len(), 2);
        assert!(toks[lets[0].init.clone()].iter().any(|t| t.is_ident("Key")));
        assert!(toks[lets[1].init.clone()]
            .iter()
            .any(|t| t.is_ident("else")));
        assert!(toks[lets[1].stmt_end].is_sym(';'));
    }

    #[test]
    fn expr_start_walks_receiver_chains() {
        let src = "put(out, specs.len() as u32); x = (v & 0x7f) as u8; y = get(buf)? as usize;";
        let toks = tokenize(src);
        let delims = match_delims(&toks);
        let casts: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.is_ident("as").then_some(i))
            .collect();
        assert_eq!(casts.len(), 3);
        // `specs.len() as u32` — operand starts at `specs`.
        assert!(toks[expr_start(&toks, &delims, casts[0] - 1)].is_ident("specs"));
        // `(v & 0x7f) as u8` — operand starts at the `(` group.
        assert!(toks[expr_start(&toks, &delims, casts[1] - 1)].is_sym('('));
        // `get(buf)? as usize` — `?` crosses back to the callee.
        assert!(toks[expr_start(&toks, &delims, casts[2] - 1)].is_ident("get"));
    }
}
