//! The v2 rule pack, running over the structural layer in [`crate::parse`].
//!
//! Every rule receives the cleaned, test-stripped token stream plus the
//! item tree and reports [`Diagnostic`]s; scoping (which rules see which
//! files) is decided once per file by [`scope_of`]. The rules are
//! heuristic by design — call *shapes*, not resolved types — and each
//! one's exemptions are chosen so the in-tree negatives (bounds-checked
//! allocations, `Condvar::wait` consuming its own guard, panic
//! containment via `catch_unwind`) stay silent without suppressions.

use crate::parse::{
    expr_start, for_each_fn, innermost_fn, let_bindings, match_delims, parse_items, Item, Tok,
};
use crate::{
    Diagnostic, RULE_HASHMAP_ITER, RULE_LOCK_IO, RULE_LOSSY_CAST, RULE_NO_AMBIENT_ENV,
    RULE_NO_PANIC, RULE_NO_WALLCLOCK, RULE_RESULT_DROP, RULE_WIRE_ALLOC,
};
use std::ops::Range;

/// Which rules apply to a repo-relative path (forward slashes).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Scope {
    pub no_panic: bool,
    pub no_env: bool,
    pub no_wallclock: bool,
    pub lossy_cast: bool,
    pub wire_alloc: bool,
    pub lock_io: bool,
    pub result_drop: bool,
    pub hashmap_iter: bool,
}

impl Scope {
    pub(crate) fn any(&self) -> bool {
        self.no_panic
            || self.no_env
            || self.no_wallclock
            || self.lossy_cast
            || self.wire_alloc
            || self.lock_io
            || self.result_drop
            || self.hashmap_iter
    }
}

pub(crate) fn scope_of(path: &str) -> Scope {
    let mapreduce = path.starts_with("crates/mapreduce/src/");
    let netshuffle = path.starts_with("crates/netshuffle/src/");
    let deterministic = matches!(
        path,
        "crates/mapreduce/src/dag.rs"
            | "crates/mapreduce/src/dataset.rs"
            | "crates/mapreduce/src/merge.rs"
            | "crates/mapreduce/src/spill.rs"
    ) || path.starts_with("crates/mapreduce/src/dag/");
    Scope {
        no_panic: mapreduce,
        no_env: !path.starts_with("crates/shims/") && !path.starts_with("crates/bench/"),
        no_wallclock: deterministic,
        lossy_cast: matches!(
            path,
            "crates/netshuffle/src/protocol.rs"
                | "crates/mapreduce/src/spill.rs"
                | "crates/mapreduce/src/transport.rs"
        ),
        wire_alloc: netshuffle || path == "crates/mapreduce/src/spill.rs",
        lock_io: netshuffle || path == "crates/mapreduce/src/pool.rs",
        result_drop: mapreduce || netshuffle,
        hashmap_iter: netshuffle
            || matches!(
                path,
                "crates/mapreduce/src/cluster.rs"
                    | "crates/mapreduce/src/merge.rs"
                    | "crates/mapreduce/src/shuffle.rs"
                    | "crates/mapreduce/src/transport.rs"
                    | "crates/mapreduce/src/spill.rs"
            ),
    }
}

/// Runs every in-scope rule over one file's token stream.
pub(crate) fn scan(path: &str, toks: &[Tok], scope: &Scope) -> Vec<Diagnostic> {
    let delims = match_delims(toks);
    let items = parse_items(toks, &delims);
    let mut diags = Vec::new();
    if scope.no_panic {
        rule_no_panic(path, toks, &mut diags);
    }
    if scope.no_wallclock {
        rule_no_wallclock(path, toks, &mut diags);
    }
    if scope.no_env {
        rule_no_env(path, toks, &items, &mut diags);
    }
    if scope.lossy_cast {
        rule_lossy_cast(path, toks, &delims, &mut diags);
    }
    if scope.wire_alloc {
        rule_wire_alloc(path, toks, &delims, &items, &mut diags);
    }
    if scope.lock_io {
        rule_lock_io(path, toks, &delims, &items, &mut diags);
    }
    if scope.result_drop {
        rule_result_drop(path, toks, &delims, &items, &mut diags);
    }
    if scope.hashmap_iter {
        rule_hashmap_iter(path, toks, &delims, &items, &mut diags);
    }
    diags
}

/// Whether token `idx` belongs to `f` directly (not to a fn item nested
/// inside it). Per-function rules filter bindings through this so a
/// nested fn — whose tokens sit inside its parent's body range — is
/// analyzed exactly once, in its own walk.
fn owned_by(items: &[Item], f: &Item, idx: usize) -> bool {
    innermost_fn(items, idx).is_none_or(|g| std::ptr::eq(g, f))
}

fn diag(path: &str, line: usize, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: path.to_owned(),
        line,
        rule,
        message,
    }
}

// ---- no-panic-in-data-plane ------------------------------------------

fn rule_no_panic(path: &str, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    for (idx, tok) in toks.iter().enumerate() {
        let Some(ident) = tok.ident() else { continue };
        let line = tok.line();
        if matches!(ident, "unwrap" | "expect") && toks.get(idx + 1).is_some_and(|t| t.is_sym('('))
        {
            diags.push(diag(
                path,
                line,
                RULE_NO_PANIC,
                format!(
                    "`{ident}(` can kill a worker; propagate a JobError/SpillError instead \
                     (or justify with tsjlint:allow)"
                ),
            ));
        }
        if matches!(ident, "panic" | "unreachable" | "todo")
            && toks.get(idx + 1).is_some_and(|t| t.is_sym('!'))
        {
            diags.push(diag(
                path,
                line,
                RULE_NO_PANIC,
                format!(
                    "`{ident}!` can kill a worker; propagate a JobError/SpillError instead \
                     (or justify with tsjlint:allow)"
                ),
            ));
        }
    }
}

// ---- no-wallclock-in-deterministic -----------------------------------

fn rule_no_wallclock(path: &str, toks: &[Tok], diags: &mut Vec<Diagnostic>) {
    for (idx, tok) in toks.iter().enumerate() {
        let Some(ident) = tok.ident() else { continue };
        if matches!(ident, "Instant" | "SystemTime")
            && toks.get(idx + 1).is_some_and(|t| t.is_sym(':'))
            && toks.get(idx + 2).is_some_and(|t| t.is_sym(':'))
            && toks.get(idx + 3).is_some_and(|t| t.is_ident("now"))
        {
            diags.push(diag(
                path,
                tok.line(),
                RULE_NO_WALLCLOCK,
                format!(
                    "`{ident}::now` in a deterministic module; timing belongs to the \
                     cluster's measured task paths"
                ),
            ));
        }
    }
}

// ---- no-ambient-env ---------------------------------------------------

const ENV_BANNED: [&str; 7] = [
    "var",
    "var_os",
    "vars",
    "vars_os",
    "temp_dir",
    "set_var",
    "remove_var",
];

/// Functions whose bodies may read the environment: the loud-fallback
/// config constructors.
const ENV_EXEMPT_FNS: [&str; 2] = ["from_env", "from_lookup"];

fn rule_no_env(path: &str, toks: &[Tok], items: &[Item], diags: &mut Vec<Diagnostic>) {
    for (idx, tok) in toks.iter().enumerate() {
        if !tok.is_ident("env")
            || !toks.get(idx + 1).is_some_and(|t| t.is_sym(':'))
            || !toks.get(idx + 2).is_some_and(|t| t.is_sym(':'))
        {
            continue;
        }
        let Some(callee) = toks.get(idx + 3).and_then(Tok::ident) else {
            continue;
        };
        if !ENV_BANNED.contains(&callee) {
            continue;
        }
        // Scope-sensitivity from the item tree: the innermost enclosing
        // function decides the exemption (closures inside `from_lookup`
        // still count as `from_lookup`).
        let exempt =
            innermost_fn(items, idx).is_some_and(|f| ENV_EXEMPT_FNS.contains(&f.name.as_str()));
        if !exempt {
            diags.push(diag(
                path,
                tok.line(),
                RULE_NO_AMBIENT_ENV,
                format!(
                    "`env::{callee}` outside a from_env/from_lookup constructor; \
                     route configuration through the config layer"
                ),
            ));
        }
    }
}

// ---- no-lossy-cast-on-wire-paths -------------------------------------

/// Cast targets narrower than the wire's native widths, with their max
/// values for the mask-fit exemption.
const NARROW_TARGETS: [(&str, u128); 6] = [
    ("u8", u8::MAX as u128),
    ("u16", u16::MAX as u128),
    ("u32", u32::MAX as u128),
    ("i8", i8::MAX as u128),
    ("i16", i16::MAX as u128),
    ("i32", i32::MAX as u128),
];

/// Parses an integer literal token (`0x7f`, `0b1010`, `123`, suffixes
/// tolerated and ignored).
fn literal_value(s: &str) -> Option<u128> {
    if !s.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    let t = s.replace('_', "");
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h.to_owned(), 16)
    } else if let Some(b) = t.strip_prefix("0b") {
        (b.to_owned(), 2)
    } else if let Some(o) = t.strip_prefix("0o") {
        (o.to_owned(), 8)
    } else {
        (t.clone(), 10)
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u128::from_str_radix(&digits[..end], radix).ok()
}

fn rule_lossy_cast(path: &str, toks: &[Tok], delims: &[usize], diags: &mut Vec<Diagnostic>) {
    for idx in 1..toks.len() {
        if !toks[idx].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(idx + 1).and_then(Tok::ident) else {
            continue;
        };
        let Some(&(_, max)) = NARROW_TARGETS.iter().find(|(t, _)| *t == target) else {
            continue;
        };
        let start = expr_start(toks, delims, idx - 1);
        let operand = &toks[start..idx];
        // `*self as u8` in a codec impl converts the receiver's own value
        // domain, not wire data.
        if operand.iter().any(|t| t.is_ident("self")) {
            continue;
        }
        // Already bounded or converted: `x.min(cap) as u16`,
        // `u32::try_from(x).unwrap_or(..) as ..`.
        if operand
            .iter()
            .any(|t| matches!(t.ident(), Some("min" | "clamp" | "try_from")))
        {
            continue;
        }
        // A lone literal that fits cannot truncate.
        if operand.len() == 1 {
            if let Some(v) = operand[0].ident().and_then(literal_value) {
                if v <= max {
                    continue;
                }
            }
        }
        // Mask-fit: `(v & 0x7f) as u8` — some `&`-mask in the operand
        // whose literal fits the target width.
        let masked = operand.iter().any(|t| t.is_sym('&'))
            && operand
                .iter()
                .filter_map(|t| t.ident().and_then(literal_value))
                .any(|v| v <= max);
        if masked {
            continue;
        }
        diags.push(diag(
            path,
            toks[idx].line(),
            RULE_LOSSY_CAST,
            format!(
                "truncating `as {target}` cast on a wire path; convert with try_from or \
                 mask the operand to the target width (or justify with tsjlint:allow)"
            ),
        ));
    }
}

// ---- no-unbounded-alloc-from-wire ------------------------------------

/// Initializer identifiers that mark a binding as wire-decoded.
const WIRE_MARKERS: [&str; 6] = [
    "from_le_bytes",
    "from_be_bytes",
    "read_varint",
    "get_u32",
    "get_u64",
    "decode",
];

/// Callees whose argument sizes an allocation (or a sized read).
const ALLOC_CALLEES: [&str; 5] = [
    "with_capacity",
    "with_capacity_and_hasher",
    "resize",
    "reserve",
    "read_exact",
];

fn has_ident(toks: &[Tok], range: Range<usize>, name: &str) -> bool {
    toks[range].iter().any(|t| t.is_ident(name))
}

fn rule_wire_alloc(
    path: &str,
    toks: &[Tok],
    delims: &[usize],
    items: &[Item],
    diags: &mut Vec<Diagnostic>,
) {
    for_each_fn(items, &mut |f| {
        let Some(body) = f.body.clone() else { return };
        let lets = let_bindings(toks, delims, body.clone());
        // (name, index its value exists from) for wire-decoded bindings.
        // A `.min(..)` / `.clamp(..)` in the initializer already bounds
        // the value; `try_from` alone converts without bounding.
        let tainted: Vec<(&str, usize)> = lets
            .iter()
            .filter(|b| owned_by(items, f, b.stmt_end))
            .filter(|b| {
                toks[b.init.clone()]
                    .iter()
                    .any(|t| matches!(t.ident(), Some(m) if WIRE_MARKERS.contains(&m)))
                    && !toks[b.init.clone()]
                        .iter()
                        .any(|t| matches!(t.ident(), Some("min" | "clamp")))
            })
            .map(|b| (b.name.as_str(), b.stmt_end))
            .collect();
        if tainted.is_empty() {
            return;
        }
        // Allocation sites: sized calls and `vec![.. ; n]`.
        let mut sites: Vec<(usize, Range<usize>, &'static str)> = Vec::new();
        for idx in body.clone() {
            if let Some(callee) = toks[idx].ident() {
                if let Some(&known) = ALLOC_CALLEES.iter().find(|&&c| c == callee) {
                    if toks.get(idx + 1).is_some_and(|t| t.is_sym('(')) && delims[idx + 1] > idx + 1
                    {
                        sites.push((idx, idx + 2..delims[idx + 1], known));
                    }
                }
                if callee == "vec"
                    && toks.get(idx + 1).is_some_and(|t| t.is_sym('!'))
                    && toks.get(idx + 2).is_some_and(|t| t.is_sym('['))
                    && delims[idx + 2] > idx + 2
                {
                    let close = delims[idx + 2];
                    // `vec![elem; n]`: the size expression follows the
                    // top-level `;`.
                    let mut depth = 0i32;
                    for (j, t) in toks.iter().enumerate().take(close).skip(idx + 3) {
                        match t {
                            Tok::Sym('(' | '[' | '{', _) => depth += 1,
                            Tok::Sym(')' | ']' | '}', _) => depth -= 1,
                            Tok::Sym(';', _) if depth == 0 => {
                                sites.push((idx, j + 1..close, "vec![_; n]"));
                                break;
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        for (site, size, what) in sites {
            for &(name, decl_end) in &tainted {
                if decl_end >= site || !has_ident(toks, size.clone(), name) {
                    continue;
                }
                // Bounded at the use site.
                if toks[size.clone()]
                    .iter()
                    .any(|t| matches!(t.ident(), Some("min" | "clamp")))
                {
                    continue;
                }
                // Dominating bounds check: an earlier `if` in this
                // function whose condition mentions the tainted name.
                if dominated_by_check(toks, body.start, site, name) {
                    continue;
                }
                diags.push(diag(
                    path,
                    toks[site].line(),
                    RULE_WIRE_ALLOC,
                    format!(
                        "`{what}` sized from wire-decoded `{name}` with no dominating bounds \
                         check; compare against a named cap (or clamp) before allocating"
                    ),
                ));
            }
        }
    });
}

/// Whether an `if` condition mentioning `name` appears between
/// `from` and `site` — the shape of a reject-before-allocate guard.
fn dominated_by_check(toks: &[Tok], from: usize, site: usize, name: &str) -> bool {
    for idx in from..site {
        if !toks[idx].is_ident("if") {
            continue;
        }
        let mut depth = 0i32;
        for t in toks.iter().take(site).skip(idx + 1) {
            match t {
                Tok::Sym('(' | '[', _) => depth += 1,
                Tok::Sym(')' | ']', _) => depth -= 1,
                Tok::Sym('{', _) if depth == 0 => break,
                Tok::Ident(s, _) if s == name => return true,
                _ => {}
            }
        }
    }
    false
}

// ---- no-lock-across-io -----------------------------------------------

/// Blocking or I/O calls a live lock guard must not enclose.
const IO_CALLS: [&str; 12] = [
    "read_frame",
    "write_frame",
    "connect",
    "accept",
    "read_exact",
    "read_exact_at",
    "read_to_end",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "sleep",
];

/// Chain-level calls that consume the guard within the statement — the
/// binding holds an extracted value, not the guard.
const GUARD_EXTRACTORS: [&str; 12] = [
    "take",
    "clone",
    "cloned",
    "copied",
    "len",
    "is_empty",
    "contains_key",
    "remove",
    "insert",
    "push",
    "pop",
    "get",
];

fn rule_lock_io(
    path: &str,
    toks: &[Tok],
    delims: &[usize],
    items: &[Item],
    diags: &mut Vec<Diagnostic>,
) {
    for_each_fn(items, &mut |f| {
        let Some(body) = f.body.clone() else { return };
        for b in let_bindings(toks, delims, body.clone()) {
            if !owned_by(items, f, b.stmt_end) {
                continue;
            }
            // A guard: the initializer calls `lock(`, either as a method
            // or through a free helper.
            let Some(lock_at) = b.init.clone().find(|&i| {
                toks[i].is_ident("lock") && toks.get(i + 1).is_some_and(|t| t.is_sym('('))
            }) else {
                continue;
            };
            // `.lock()...take()` chains extract a value and drop the
            // guard with the statement.
            let mut depth = 0i32;
            let mut extracted = false;
            for i in b.init.clone() {
                match &toks[i] {
                    Tok::Sym('(' | '[' | '{', _) => depth += 1,
                    Tok::Sym(')' | ']' | '}', _) => depth -= 1,
                    Tok::Ident(m, _)
                        if depth == 0
                            && i > lock_at
                            && i > b.init.start
                            && toks[i - 1].is_sym('.')
                            && toks.get(i + 1).is_some_and(|t| t.is_sym('('))
                            && GUARD_EXTRACTORS.contains(&m.as_str()) =>
                    {
                        extracted = true;
                    }
                    _ => {}
                }
            }
            if extracted {
                continue;
            }
            // The guard lives from its statement to its block's end —
            // or to an explicit `drop(name)`.
            let mut scope = b.stmt_end + 1..b.scope_end.min(body.end);
            for i in scope.clone() {
                if toks[i].is_ident("drop")
                    && toks.get(i + 1).is_some_and(|t| t.is_sym('('))
                    && toks.get(i + 2).is_some_and(|t| t.is_ident(&b.name))
                    && toks.get(i + 3).is_some_and(|t| t.is_sym(')'))
                {
                    scope.end = i;
                    break;
                }
            }
            for i in scope {
                let Some(callee) = toks[i].ident() else {
                    continue;
                };
                let called = toks.get(i + 1).is_some_and(|t| t.is_sym('('));
                if !called {
                    continue;
                }
                let blocking = IO_CALLS.contains(&callee);
                // `Condvar::wait(guard)` blocks every *other* live guard;
                // the one it consumes is its designed companion.
                let waits = matches!(callee, "wait" | "wait_timeout")
                    && delims[i + 1] > i + 1
                    && !has_ident(toks, i + 2..delims[i + 1], &b.name);
                if blocking || waits {
                    diags.push(diag(
                        path,
                        b.line,
                        RULE_LOCK_IO,
                        format!(
                            "lock guard `{}` is still held across `{callee}` on line {}; \
                             narrow the guard's scope or drop it before blocking",
                            b.name,
                            toks[i].line()
                        ),
                    ));
                    break;
                }
            }
        }
    });
}

// ---- no-silent-result-drop -------------------------------------------

/// Callees known to return `Result` whose bare-statement discard loses
/// the error (heuristic: call shape, not type resolution).
const RESULT_FNS: [&str; 13] = [
    "write_all",
    "read_exact",
    "flush",
    "sync_all",
    "sync_data",
    "remove_file",
    "remove_dir_all",
    "create_dir_all",
    "set_read_timeout",
    "set_write_timeout",
    "set_nodelay",
    "set_deadlines",
    "join",
];

fn rule_result_drop(
    path: &str,
    toks: &[Tok],
    delims: &[usize],
    items: &[Item],
    diags: &mut Vec<Diagnostic>,
) {
    // Form 1: `let _ = call(..);` — an explicit discard of a call's
    // return. `catch_unwind` is exempt: the Err *is* the contained panic
    // payload, and dropping it is the containment.
    for_each_fn(items, &mut |f| {
        let Some(body) = f.body.clone() else { return };
        for b in let_bindings(toks, delims, body) {
            if b.name != "_" || b.init.is_empty() || !owned_by(items, f, b.stmt_end) {
                continue;
            }
            let has_call = b.init.clone().any(|i| {
                toks[i].ident().is_some() && toks.get(i + 1).is_some_and(|t| t.is_sym('('))
            });
            if !has_call || has_ident(toks, b.init.clone(), "catch_unwind") {
                continue;
            }
            diags.push(diag(
                path,
                b.line,
                RULE_RESULT_DROP,
                "`let _ =` silently discards the call's Result; handle or log the error \
                 (or justify with tsjlint:allow)"
                    .to_owned(),
            ));
        }
    });
    // Form 2: a bare `receiver.known_result_fn(..);` statement.
    for (idx, tok) in toks.iter().enumerate() {
        let Some(callee) = tok.ident() else { continue };
        if !RESULT_FNS.contains(&callee) || !toks.get(idx + 1).is_some_and(|t| t.is_sym('(')) {
            continue;
        }
        let close = delims[idx + 1];
        if close <= idx + 1 || !toks.get(close + 1).is_some_and(|t| t.is_sym(';')) {
            continue;
        }
        let start = expr_start(toks, delims, close);
        let statement_position =
            start == 0 || matches!(&toks[start - 1], Tok::Sym(';' | '{' | '}', _));
        if statement_position {
            diags.push(diag(
                path,
                tok.line(),
                RULE_RESULT_DROP,
                format!(
                    "bare `{callee}(..);` statement discards its Result; `?`-propagate, \
                     handle, or log the error (or justify with tsjlint:allow)"
                ),
            ));
        }
    }
}

// ---- no-hashmap-iter-in-output-path ----------------------------------

/// Methods that observe a hash container in iteration order.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

fn rule_hashmap_iter(
    path: &str,
    toks: &[Tok],
    delims: &[usize],
    items: &[Item],
    diags: &mut Vec<Diagnostic>,
) {
    for_each_fn(items, &mut |f| {
        let Some(body) = f.body.clone() else { return };
        let lets = let_bindings(toks, delims, body.clone());
        for b in &lets {
            if !owned_by(items, f, b.stmt_end) {
                continue;
            }
            let hashy = toks[b.ty.clone()]
                .iter()
                .chain(toks[b.init.clone()].iter())
                .any(|t| matches!(t.ident(), Some("HashMap" | "HashSet")));
            if !hashy {
                continue;
            }
            let scope = b.stmt_end..b.scope_end.min(body.end);
            for i in scope {
                // A mention of the binding (not a same-named field).
                if !toks[i].is_ident(&b.name) || (i > 0 && toks[i - 1].is_sym('.')) {
                    continue;
                }
                // `name.iter()` / `name.into_iter()` / ...
                let method_iter = toks.get(i + 1).is_some_and(|t| t.is_sym('.'))
                    && toks
                        .get(i + 2)
                        .and_then(Tok::ident)
                        .is_some_and(|m| ITER_METHODS.contains(&m));
                // `for x in name` / `for x in &name`.
                let for_head = in_for_head(toks, i);
                if method_iter || for_head {
                    diags.push(diag(
                        path,
                        toks[i].line(),
                        RULE_HASHMAP_ITER,
                        format!(
                            "iterating std HashMap/HashSet `{}` in an output-feeding module; \
                             hash order is arbitrary — sort before emitting or use an ordered \
                             structure (or justify with tsjlint:allow)",
                            b.name
                        ),
                    ));
                    break;
                }
            }
        }
    });
}

/// Whether token `i` sits inside a `for .. in <head>` head (between `in`
/// and the loop's opening `{`).
fn in_for_head(toks: &[Tok], i: usize) -> bool {
    // Walk back to an `in` with a `for` before it, without crossing
    // statement boundaries or the loop body's `{`.
    let mut saw_in = false;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &toks[j] {
            Tok::Ident(s, _) if s == "in" => saw_in = true,
            Tok::Ident(s, _) if s == "for" => return saw_in,
            Tok::Sym('{' | '}' | ';', _) => return false,
            _ => {}
        }
    }
    false
}
