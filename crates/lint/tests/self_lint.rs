//! The linter lints itself — and the whole workspace stays fresh-clean.
//!
//! These tests run the real `lint_workspace` walk against the live
//! checkout, so a regression anywhere in the tree (a new unguarded
//! allocation, a reintroduced `let _ =`) fails `cargo test` before the
//! CI `--deny` job ever runs.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn lint_crate_passes_its_own_rules() {
    let root = workspace_root();
    let diags = tsj_lint::lint_workspace(&root).expect("workspace sources readable");
    let own: Vec<_> = diags
        .iter()
        .filter(|d| d.file.starts_with("crates/lint/"))
        .collect();
    assert!(own.is_empty(), "tsjlint flagged its own sources: {own:?}");
}

#[test]
fn workspace_is_fresh_clean_with_empty_baseline() {
    let root = workspace_root();
    let baseline = tsj_lint::load_baseline(&root.join("crates/lint/baseline.txt"));
    assert!(
        baseline.is_empty(),
        "the baseline must stay empty: real findings get fixed or carry a written allow"
    );
    let diags = tsj_lint::lint_workspace(&root).expect("workspace sources readable");
    let (fresh, _) = tsj_lint::split_baselined(diags, &baseline);
    assert!(fresh.is_empty(), "fresh diagnostics in the tree: {fresh:?}");
}

#[test]
fn every_rule_is_suppressible_and_documented() {
    // The allow parser accepts exactly the RULES list; a rule added to
    // the pack without joining RULES would be unsuppressible.
    assert_eq!(tsj_lint::RULES.len(), 8);
    let readme =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("README.md"))
            .expect("crates/lint/README.md exists");
    for rule in tsj_lint::RULES {
        assert!(
            readme.contains(rule),
            "README.md does not document rule `{rule}`"
        );
    }
}
