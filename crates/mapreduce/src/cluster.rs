//! The cluster: real threaded execution + simulated machine accounting.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::dataset::DataPartition;
use crate::hash::FxBuildHasher;
use crate::job::{Emitter, JobError, JobResult, JobStats, OutputSink, PhaseSim};
use crate::merge::{merge_segments_capped, Segment};
use crate::pool::run_indexed;
use crate::shuffle::{Combiner, PartitionedBuffer, ShuffleConfig, ShuffleRecord};
use crate::spill::{
    reserve_job_dir, reserve_job_spill_dir, RunMeta, RunReader, Spill, SpillDirGuard, SpillWriter,
};
use crate::transport::{InProcess, MapOutput, MultiProcess, ShuffleTransport, Transport};

/// Applies a combiner to a map task's output buffers and returns the
/// post-combine record count (how `run_stage` receives a combiner without
/// needing `K: Clone` on the uncombined entry points).
pub(crate) type CombineFn<'a, K, V> = &'a (dyn Fn(&mut PartitionedBuffer<K, V>) -> usize + Sync);

/// Where a stage's map wave reads its input from.
pub(crate) enum StageInput<'a, I> {
    /// A driver-resident slice (the classic [`Cluster::run`] path and the
    /// first stage after [`Cluster::input`](crate::dataset)): chunked into
    /// one map task per simulated machine, and counted as records crossing
    /// the driver boundary ([`JobStats::driver_in_records`]).
    Slice(&'a [I]),
    /// The partitioned output of a previous [`Dataset`] stage, resident in
    /// the runtime: one map task per non-empty partition, each streaming
    /// its segment (in-memory buffer or spilled run) directly. No records
    /// cross the driver boundary.
    ///
    /// [`Dataset`]: crate::dataset::Dataset
    Parts(&'a [DataPartition<I>]),
}

/// Where a stage's reduce output goes.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum SinkMode {
    /// Concatenate into one driver-side `Vec` ([`JobResult::output`]) —
    /// the classic `run*` behaviour, counted as records crossing the
    /// driver boundary ([`JobStats::driver_out_records`]).
    Driver,
    /// Keep the output partitioned in the runtime for the next stage: one
    /// [`DataPartition`] per reduce task — an in-memory buffer, or (under
    /// a bounded [`ShuffleConfig`]) a sorted-run file in the wire format,
    /// drained group-by-group so no worker buffers a partition's output.
    Dataset,
}

/// What a stage produced: driver output *or* runtime partitions, plus the
/// guard keeping any stage-output run files alive, and the stats.
pub(crate) struct StageResult<O> {
    /// Reducer outputs concatenated in partition order ([`SinkMode::Driver`]).
    pub(crate) output: Vec<O>,
    /// Per-reduce-task output partitions ([`SinkMode::Dataset`]).
    pub(crate) parts: Vec<DataPartition<O>>,
    /// Keeps spilled stage-output runs alive until the consuming
    /// [`Dataset`](crate::dataset::Dataset) drops.
    pub(crate) guard: Option<Arc<SpillDirGuard>>,
    pub(crate) stats: JobStats,
}

/// Simulated-cost parameters of the cluster.
///
/// The defaults model the paper's evaluation cluster (Sec. V: 1,000
/// machines, 1 GB RAM, 0.5 CPU each, production MapReduce): multi-second
/// job submission, sub-second worker spin-up, and a small per-reduce-group
/// worker-instantiation overhead — the quantity the paper blames for
/// grouping-on-both-strings losing to grouping-on-one-string (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-job scheduling/submission overhead (simulated seconds).
    pub job_startup_secs: f64,
    /// One-time map-wave worker spin-up (simulated seconds).
    pub map_worker_startup_secs: f64,
    /// Per-reduce-group worker instantiation overhead (simulated seconds)
    /// for ordinary jobs, where a reducer task streams through thousands of
    /// groups.
    pub reduce_group_overhead_secs: f64,
    /// Per-group overhead for *verification* jobs, where the paper's Fig. 1
    /// discussion applies: "grouping-on-one-string instantiates a worker
    /// for each string ... grouping-on-both-strings instantiates a worker
    /// for each candidate pair". Jobs opt in via
    /// [`Cluster::run_with_group_overhead`].
    pub verify_group_overhead_secs: f64,
    /// Shuffle cost per shuffled record, divided across machines. Charged
    /// on the **post-combine** record count
    /// ([`JobStats::shuffle_records`]), so map-side combining shows up as
    /// a shuffle saving exactly as it would on a real cluster.
    pub shuffle_secs_per_record: f64,
    /// Spill I/O cost per byte, divided across machines. Charged on
    /// `2 ×` [`JobStats::spill_bytes`] (each spilled byte is written by a
    /// memory-bounded mapper and read back once by the sort-merge reduce),
    /// so bounding mapper memory has a visible simulated price exactly as
    /// local disks would on a real cluster. The default models ~100 MB/s
    /// sequential disk on the paper's vintage worker.
    pub spill_secs_per_byte: f64,
    /// Shuffle-transport cost per byte moved between map and reduce
    /// workers, divided across machines. Charged on
    /// [`JobStats::transport_bytes`] — each serialized byte crosses the
    /// exchange once — so the `MultiProcess` transport's serialization
    /// volume has a visible simulated price the in-process handoff
    /// doesn't pay, exactly as a real cluster's interconnect would. The
    /// default models a ~1 Gb/s worker NIC of the paper's vintage.
    pub transport_secs_per_byte: f64,
    /// Multiplier from measured local CPU-seconds to simulated
    /// machine-seconds (models the paper's 0.5-CPU machines being slower
    /// than a modern core; also usable to extrapolate dataset scale).
    pub cpu_scale: f64,
    /// Simulated seconds charged per work unit (records in + records out +
    /// explicitly declared units), before `cpu_scale`. With a positive
    /// value the simulated clock is a *deterministic* function of the data
    /// — immune to OS scheduling noise in µs-scale task measurements. Set
    /// to `0.0` to fall back to the measured per-job rate (Σ cpu / Σ work).
    /// The default, 100 ns, matches the measured per-record cost of the
    /// join pipelines on a modern core.
    pub work_unit_secs: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            job_startup_secs: 4.0,
            map_worker_startup_secs: 1.0,
            reduce_group_overhead_secs: 1e-4,
            verify_group_overhead_secs: 3e-2,
            shuffle_secs_per_record: 2e-6,
            spill_secs_per_byte: 1e-8,
            transport_secs_per_byte: 1e-8,
            cpu_scale: 1.0,
            work_unit_secs: 1e-7,
        }
    }
}

/// Cluster configuration: how many machines to simulate and how many real
/// threads to execute with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Simulated machine count (the x-axis of the paper's Figures 1 and 7).
    pub machines: usize,
    /// Real worker threads; `0` means all available cores.
    pub threads: usize,
    /// Shuffle partition count; `0` (the default) means one partition per
    /// simulated machine, matching how a production shuffler routes keys
    /// to reducers. Any positive count is legal — job output is
    /// partition-count-invariant — and reduce partition `p` is charged to
    /// machine `p % machines`.
    pub partitions: usize,
    /// Simulated-cost parameters.
    pub cost: CostModel,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            machines: 1000,
            threads: 0,
            partitions: 0,
            cost: CostModel::default(),
        }
    }
}

/// An executable cluster. Cheap to construct; holds no threads between jobs.
#[derive(Debug, Clone)]
pub struct Cluster {
    cfg: ClusterConfig,
    /// Shuffle memory knobs shared by every job this cluster runs.
    shuffle: ShuffleConfig,
}

impl Cluster {
    /// Builds a cluster with the default (unbounded, in-process) shuffle,
    /// honouring the `TSJ_COMBINE_THRESHOLD` / `TSJ_SPILL_THRESHOLD` /
    /// `TSJ_SPILL_DIR` / `TSJ_SHUFFLE_TRANSPORT` / `TSJ_MERGE_FAN_IN`
    /// environment overrides (see [`ShuffleConfig`]) so an entire binary
    /// can be forced through the spill path or the multi-process exchange.
    /// Use [`Cluster::with_shuffle_config`] to pin an explicit
    /// configuration that ignores the environment.
    pub fn new(cfg: ClusterConfig) -> Self {
        let mut cfg = cfg;
        cfg.machines = cfg.machines.max(1);
        Self {
            cfg,
            shuffle: ShuffleConfig::from_env(),
        }
    }

    /// A cluster with `machines` simulated machines and default costs.
    pub fn with_machines(machines: usize) -> Self {
        Self::new(ClusterConfig {
            machines,
            ..ClusterConfig::default()
        })
    }

    /// Replaces the shuffle memory configuration (exactly as given — no
    /// environment overrides).
    pub fn with_shuffle_config(mut self, shuffle: ShuffleConfig) -> Self {
        self.shuffle = shuffle;
        self
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The shuffle memory knobs jobs run with.
    pub fn shuffle_config(&self) -> &ShuffleConfig {
        &self.shuffle
    }

    pub fn machines(&self) -> usize {
        self.cfg.machines
    }

    /// Shuffle partition count jobs run with (see [`ClusterConfig`]).
    pub fn partitions(&self) -> usize {
        if self.cfg.partitions > 0 {
            self.cfg.partitions
        } else {
            self.cfg.machines
        }
    }

    fn threads(&self) -> usize {
        if self.cfg.threads > 0 {
            self.cfg.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }

    /// The single source of truth for how a driver slice of `len` records
    /// is chunked into map tasks — one task per simulated machine, capped
    /// by the input — as `(num_tasks, chunk_size)`. The engine's Slice
    /// path and the dataset layer's driver→partition conversion
    /// ([`Dataset::union`](crate::dataset::Dataset::union)) both use it,
    /// so a union's partition layout always matches what the first stage
    /// would have seen.
    pub(crate) fn slice_chunking(&self, len: usize) -> (usize, usize) {
        let tasks = self.cfg.machines.min(len).max(1);
        (tasks, len.div_ceil(tasks).max(1))
    }

    /// Runs one MapReduce job (Sec. III-A semantics).
    ///
    /// * `map` is applied to every input record, emitting `⟨key2, value2⟩`
    ///   pairs into the [`Emitter`], which routes each pair to its shuffle
    ///   partition `HASH(key2) % partitions` at emit time.
    /// * Each partition's buffers are handed to exactly one reduce task,
    ///   which groups pairs by key; each key's values are handed to
    ///   `reduce` exactly once, on the simulated machine
    ///   `partition % machines`.
    /// * Output order across groups is unspecified (as on a real cluster),
    ///   but deterministic given the input and the partition count —
    ///   independent of the real thread count.
    ///
    /// Simulated time = job startup + map makespan + shuffle + reduce
    /// makespan; see [`CostModel`]. Real execution uses all configured
    /// threads regardless of the simulated machine count.
    pub fn run<I, K, V, O, M, R>(
        &self,
        name: &str,
        input: &[I],
        map: M,
        reduce: R,
    ) -> Result<JobResult<O>, JobError>
    where
        I: Sync + Spill,
        K: Hash + Eq + Send + Spill,
        V: Send + Spill,
        O: Send + Spill,
        M: Fn(&I, &mut Emitter<K, V>) + Sync,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        self.run_one_stage(
            name,
            self.cfg.cost.reduce_group_overhead_secs,
            input,
            map,
            None,
            reduce,
        )
    }

    /// [`Cluster::run`] with a map-side [`Combiner`]: each map task folds
    /// its emitted values per key through `combiner` before the shuffle,
    /// and the shuffle is charged on the post-combine record count
    /// ([`JobStats::shuffle_records`]).
    ///
    /// The reducer must be insensitive to the partial aggregation (see the
    /// [`Combiner`] contract) — given that, output is identical to
    /// [`Cluster::run`] with the same `map`/`reduce`.
    pub fn run_combined<I, K, V, O, M, C, R>(
        &self,
        name: &str,
        input: &[I],
        map: M,
        combiner: &C,
        reduce: R,
    ) -> Result<JobResult<O>, JobError>
    where
        I: Sync + Spill,
        K: Hash + Eq + Clone + Send + Spill,
        V: Send + Spill,
        O: Send + Spill,
        M: Fn(&I, &mut Emitter<K, V>) + Sync,
        C: Combiner<K, V>,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        let combine = |buffer: &mut PartitionedBuffer<K, V>| buffer.combine(combiner);
        self.run_one_stage(
            name,
            self.cfg.cost.reduce_group_overhead_secs,
            input,
            map,
            Some(&combine),
            reduce,
        )
    }

    /// [`Cluster::run`] with an explicit per-reduce-group worker overhead —
    /// used by verification jobs, whose work units are the workers the
    /// paper's dedup-strategy analysis counts (Sec. III-G3 / Fig. 1).
    pub fn run_with_group_overhead<I, K, V, O, M, R>(
        &self,
        name: &str,
        group_overhead_secs: f64,
        input: &[I],
        map: M,
        reduce: R,
    ) -> Result<JobResult<O>, JobError>
    where
        I: Sync + Spill,
        K: Hash + Eq + Send + Spill,
        V: Send + Spill,
        O: Send + Spill,
        M: Fn(&I, &mut Emitter<K, V>) + Sync,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        self.run_one_stage(name, group_overhead_secs, input, map, None, reduce)
    }

    /// [`Cluster::run_combined`] with an explicit per-reduce-group worker
    /// overhead (verification jobs with a map-side combiner).
    pub fn run_combined_with_group_overhead<I, K, V, O, M, C, R>(
        &self,
        name: &str,
        group_overhead_secs: f64,
        input: &[I],
        map: M,
        combiner: &C,
        reduce: R,
    ) -> Result<JobResult<O>, JobError>
    where
        I: Sync + Spill,
        K: Hash + Eq + Clone + Send + Spill,
        V: Send + Spill,
        O: Send + Spill,
        M: Fn(&I, &mut Emitter<K, V>) + Sync,
        C: Combiner<K, V>,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        let combine = |buffer: &mut PartitionedBuffer<K, V>| buffer.combine(combiner);
        self.run_one_stage(
            name,
            group_overhead_secs,
            input,
            map,
            Some(&combine),
            reduce,
        )
    }

    /// One-stage graph: a driver slice in, driver output back out — the
    /// engine call every `run*` entry point reduces to.
    fn run_one_stage<I, K, V, O, M, R>(
        &self,
        name: &str,
        group_overhead_secs: f64,
        input: &[I],
        map: M,
        combine: Option<CombineFn<'_, K, V>>,
        reduce: R,
    ) -> Result<JobResult<O>, JobError>
    where
        I: Sync + Spill,
        K: Hash + Eq + Send + Spill,
        V: Send + Spill,
        O: Send + Spill,
        M: Fn(&I, &mut Emitter<K, V>) + Sync,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        let result = self.run_stage(
            name,
            group_overhead_secs,
            StageInput::Slice(input),
            map,
            combine,
            reduce,
            SinkMode::Driver,
        )?;
        Ok(JobResult {
            output: result.output,
            stats: result.stats,
        })
    }

    /// Shared engine behind `run*` and the [`Dataset`](crate::dataset)
    /// stages. The combiner arrives pre-applied as a buffer-combining
    /// closure ([`CombineFn`]) so that only the combined entry points need
    /// `K: Clone` (combining clones keys; plain jobs never do).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_stage<I, K, V, O, M, R>(
        &self,
        name: &str,
        group_overhead_secs: f64,
        input: StageInput<'_, I>,
        map: M,
        combine: Option<CombineFn<'_, K, V>>,
        reduce: R,
        sink_mode: SinkMode,
    ) -> Result<StageResult<O>, JobError>
    where
        I: Sync + Spill,
        K: Hash + Eq + Send + Spill,
        V: Send + Spill,
        O: Send + Spill,
        M: Fn(&I, &mut Emitter<K, V>) + Sync,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        let wall_start = Instant::now();
        let machines = self.cfg.machines;
        let partitions = self.partitions();
        let threads = self.threads();
        let mut cost = self.cfg.cost;
        cost.reduce_group_overhead_secs = group_overhead_secs;

        // ---- Map phase ------------------------------------------------
        // Driver-slice input: one map task per simulated machine (a single
        // mapper wave), unless the input is smaller than the machine
        // count. Partitioned input (a previous stage's output): one map
        // task per non-empty partition, streaming that partition's segment
        // — an in-memory buffer or a spilled run read back record by
        // record — so interior stages never touch driver memory. Either
        // way each task partitions its output at emit time and
        // (optionally) combines it before the shuffle, so no serial
        // post-map partitioning pass exists. Under a memory-bounded
        // ShuffleConfig the task additionally combines its buffer
        // periodically mid-task and spills sorted runs to disk when the
        // buffer reaches the spill threshold (see `crate::shuffle`).
        let (num_tasks, chunk, part_ids, input_records, driver_in_records) = match &input {
            StageInput::Slice(s) => {
                let (n, chunk) = self.slice_chunking(s.len());
                (n, chunk, Vec::new(), s.len() as u64, s.len() as u64)
            }
            StageInput::Parts(parts) => {
                let ids: Vec<usize> = parts
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.records() > 0)
                    .map(|(i, _)| i)
                    .collect();
                let records: u64 = parts.iter().map(DataPartition::records).sum();
                (ids.len(), 0, ids, records, 0)
            }
        };

        // One uniquely named spill directory per job, removed (with its
        // segments) when the job finishes or fails. Tasks create it lazily
        // on first spill (`create_dir_all` is racy-safe), so an unspilled
        // bounded job touches the filesystem not at all.
        let spill_dir: Option<SpillDirGuard> = self.shuffle.spill_threshold.map(|_| {
            let base = self
                .shuffle
                .spill_dir
                .clone()
                .unwrap_or_else(std::env::temp_dir);
            SpillDirGuard(reserve_job_spill_dir(&base))
        });

        struct MapTaskOut<K, V> {
            cpu_secs: f64,
            /// Work units: input records + emitted pairs + combine scans +
            /// spilled records. The simulated load is rate-capped per work
            /// unit so that OS scheduling noise in the µs-scale
            /// measurements cannot masquerade as data skew (see
            /// `proportional_loads`).
            work: u64,
            /// Pairs emitted by `map` (pre-combine).
            emitted: u64,
            /// Records handed to the shuffle (post-combine, spilled runs
            /// included).
            shuffled: u64,
            /// High-water mark of in-memory buffered records.
            peak_buffered: u64,
            /// Partition-indexed in-memory output buffers.
            parts: Vec<Vec<ShuffleRecord<K, V>>>,
            /// Spill file + run directory, if this task spilled.
            spill: Option<crate::shuffle::TaskSpill>,
            counters: HashMap<&'static str, u64>,
        }

        let map_tasks: Vec<MapTaskOut<K, V>> = run_indexed(num_tasks, threads, |task| {
            let start = Instant::now();
            let mut emitter = match (&spill_dir, self.shuffle.spill_threshold) {
                (Some(guard), Some(threshold)) => Emitter::with_buffer(
                    PartitionedBuffer::with_spill(partitions, threshold, guard.0.clone(), task),
                ),
                _ => Emitter::with_partitions(partitions),
            };
            // Periodic combine watermark: re-combine only after the buffer
            // has grown by combine_threshold records since the last pass,
            // so a poorly combinable stream cannot trigger quadratic
            // re-combining. (usize::MAX = never, the unbounded default.)
            let combine_threshold = match (combine.is_some(), self.shuffle.combine_threshold) {
                (true, Some(t)) => t.max(1),
                _ => usize::MAX,
            };
            let mut next_combine = combine_threshold;
            let mut combine_work = 0u64;
            let mut task_input = 0u64;
            // One input record through map + the periodic combine check
            // (macro, not closure: it borrows half the task state).
            macro_rules! feed {
                ($record:expr) => {{
                    task_input += 1;
                    map($record, &mut emitter);
                    if emitter.buffer.len() >= next_combine {
                        combine_work += emitter.buffer.len() as u64;
                        combine.expect("combine_threshold implies combiner")(&mut emitter.buffer);
                        // Combining may not have freed enough (distinct
                        // keys); spill the combined run if still over the
                        // cap.
                        emitter.buffer.maybe_spill();
                        next_combine = emitter.buffer.len() + combine_threshold;
                    }
                }};
            }
            match &input {
                StageInput::Slice(s) => {
                    let lo = (task * chunk).min(s.len());
                    let hi = ((task + 1) * chunk).min(s.len());
                    for record in &s[lo..hi] {
                        feed!(record);
                    }
                }
                StageInput::Parts(parts) => match &parts[part_ids[task]] {
                    DataPartition::Mem(records) => {
                        for record in records {
                            feed!(record);
                        }
                    }
                    DataPartition::Spilled { file, meta } => {
                        let mut reader = RunReader::new(Arc::clone(file), *meta);
                        while let Some((_h, (), record)) = reader.next::<(), I>() {
                            feed!(&record);
                        }
                    }
                },
            }
            let emitted = emitter.emitted;
            // Final map-side combine over the leftover buffer: inside the
            // timed task (for the measured rate mode) *and* declared as one
            // work unit per scanned record (for the deterministic
            // work_unit_secs mode), so its CPU cost lands in the simulated
            // map phase like a real combiner's would instead of being
            // booked as free.
            let shuffled_in_mem = match combine {
                Some(c) => {
                    combine_work += emitter.buffer.len() as u64;
                    c(&mut emitter.buffer) as u64
                }
                None => emitter.buffer.len() as u64,
            };
            let spill = emitter.buffer.take_spill();
            let spilled = spill.as_ref().map_or(0, |s| s.records);
            let cpu_secs = start.elapsed().as_secs_f64();
            let work = task_input + emitted + combine_work + spilled + emitter.work_units;
            MapTaskOut {
                cpu_secs,
                work,
                emitted,
                shuffled: shuffled_in_mem + spilled,
                peak_buffered: emitter.buffer.peak_buffered() as u64,
                parts: emitter.buffer.into_parts(),
                spill,
                counters: emitter.counters,
            }
        })
        .map_err(|message| JobError::WorkerPanic {
            phase: "map",
            message,
        })?;

        let map_loads = proportional_loads(map_tasks.iter().map(|t| (t.cpu_secs, t.work)), &cost);
        let map_sim = phase_sim(&map_loads, machines.min(num_tasks));

        // ---- Shuffle ---------------------------------------------------
        // Records were already routed to `hash % partitions` at emit time;
        // how each partition's per-task segments — spilled sorted runs
        // first, then the task's in-memory leftover, in task order —
        // reach the reduce side is the transport's job (in-process
        // handoff, or serialization into per-partition exchange files;
        // see `crate::transport`). Cost is charged on the post-combine
        // volume, plus spill I/O on the spilled bytes (written once, read
        // back once), plus transport time on the exchanged bytes.
        let mut counters: HashMap<&'static str, u64> = HashMap::new();
        let mut map_output_records = 0u64;
        let mut shuffle_records = 0u64;
        let mut spilled_records = 0u64;
        let mut spill_bytes = 0u64;
        let mut spill_runs = 0u64;
        let mut peak_buffered_records = 0u64;
        let mut outputs: Vec<MapOutput<K, V>> = Vec::with_capacity(map_tasks.len());
        for task in map_tasks {
            map_output_records += task.emitted;
            shuffle_records += task.shuffled;
            peak_buffered_records = peak_buffered_records.max(task.peak_buffered);
            for (k, v) in &task.counters {
                *counters.entry(k).or_insert(0) += v;
            }
            if let Some(spill) = &task.spill {
                spilled_records += spill.records;
                spill_bytes += spill.bytes;
                spill_runs += spill.runs.iter().map(|runs| runs.len() as u64).sum::<u64>();
            }
            outputs.push(MapOutput::new(task.parts, task.spill));
        }
        let transport = self.shuffle.transport;
        let exchange = match transport {
            Transport::InProcess => InProcess.exchange(outputs, partitions),
            Transport::MultiProcess => {
                let base = self
                    .shuffle
                    .spill_dir
                    .clone()
                    .unwrap_or_else(std::env::temp_dir);
                MultiProcess::new(reserve_job_dir(&base, "tsj-exchange"))
                    .exchange(outputs, partitions)
            }
        }
        .map_err(|e| JobError::Transport {
            message: e.to_string(),
        })?;
        let transport_bytes = exchange.bytes_moved;
        let partition_segments = exchange.partition_segments;
        // The exchange directory (if any) must outlive the reduce phase,
        // which streams the partition files it holds.
        let exchange_guard = exchange.guard;
        let shuffle_secs = cost.shuffle_secs_per_record * shuffle_records as f64 / machines as f64;
        let spill_secs = cost.spill_secs_per_byte * 2.0 * spill_bytes as f64 / machines as f64;
        let transport_secs =
            cost.transport_secs_per_byte * transport_bytes as f64 / machines as f64;

        // ---- Reduce phase ----------------------------------------------
        struct ReduceTaskOut<O> {
            machine: usize,
            /// Measured CPU total for the whole partition (ms-scale, so
            /// reliable; feeds the job-wide work rate).
            cpu_secs: f64,
            /// Work units over the partition: values in + records emitted +
            /// explicitly declared units.
            work: u64,
            groups: u64,
            max_group: u64,
            /// Hierarchical pre-merge effort spent honouring the merge
            /// fan-in cap (zero on the flat or in-memory paths).
            merge: crate::merge::MergeEffort,
            /// Records emitted (also counted when drained to a run file).
            emitted: u64,
            /// Driver-bound output ([`SinkMode::Driver`]; empty otherwise).
            out: Vec<O>,
            /// Runtime-resident output partition ([`SinkMode::Dataset`]).
            part: Option<DataPartition<O>>,
            counters: HashMap<&'static str, u64>,
        }

        // Dataset stages under a bounded shuffle keep their output out of
        // memory too: each reduce task drains its sink into a sorted-run
        // file (wire format, fingerprint 0, unit key) after every group,
        // and the next stage's map wave streams it back. The directory
        // must outlive the job — the returned guard keeps it until the
        // consuming Dataset drops.
        let stage_out_dir: Option<Arc<SpillDirGuard>> =
            match (sink_mode, self.shuffle.spill_threshold) {
                (SinkMode::Dataset, Some(_)) => {
                    let base = self
                        .shuffle
                        .spill_dir
                        .clone()
                        .unwrap_or_else(std::env::temp_dir);
                    Some(Arc::new(SpillDirGuard(reserve_job_dir(&base, "tsj-stage"))))
                }
                _ => None,
            };

        // Scratch base for fan-in-capped hierarchical merges: the job's
        // exchange dir (multi-process) or spill dir (in-process spilling)
        // — whichever exists is also where every spilled segment lives,
        // and its guard already handles cleanup. Purely in-memory
        // partitions never merge, so needing scratch implies one exists.
        let merge_scratch: Option<std::path::PathBuf> = self.shuffle.merge_fan_in.and_then(|_| {
            exchange_guard
                .as_ref()
                .or(spill_dir.as_ref())
                .map(|guard| guard.0.clone())
        });

        // Each reduce task takes exclusive ownership of its partition's
        // segments via a take-once cell, so values move into the reducer
        // without cloning.
        type PartitionCell<K, V> = Mutex<Option<Vec<Segment<K, V>>>>;
        let parts: Vec<(usize, PartitionCell<K, V>)> = partition_segments
            .into_iter()
            .enumerate()
            .filter(|(_, segments)| !segments.is_empty())
            .map(|(p, segments)| (p, Mutex::new(Some(segments))))
            .collect();
        let reduce_tasks: Vec<ReduceTaskOut<O>> = run_indexed(parts.len(), threads, |idx| {
            let (partition, cell) = &parts[idx];
            let segments = cell
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each partition reduced once");

            let mut sink = OutputSink::new();
            let mut out_writer: Option<SpillWriter> = None;
            let mut max_group = 0u64;
            let mut n_groups = 0u64;
            let mut work = 0u64;
            let mut merge = crate::merge::MergeEffort::default();
            let start = Instant::now();
            if segments.iter().any(Segment::is_spilled) {
                // External path: stream a k-way sort-merge over the sorted
                // spill/exchange runs and the (sorted-on-the-fly)
                // in-memory segments, reducing each key as its run
                // completes — the partition is never materialized. With a
                // merge fan-in cap, runs beyond the cap are first folded
                // hierarchically into scratch runs. Group order: ascending
                // key fingerprint.
                merge = merge_segments_capped(
                    segments,
                    self.shuffle.merge_fan_in,
                    merge_scratch
                        .as_ref()
                        .map(|dir| dir.join(format!("reduce{partition}.merge"))),
                    |key, values| {
                        let n_values = values.len() as u64;
                        max_group = max_group.max(n_values);
                        n_groups += 1;
                        work += n_values;
                        reduce(&key, values, &mut sink);
                        if let Some(dir) = &stage_out_dir {
                            drain_stage_output(&mut sink, &mut out_writer, &dir.0, *partition);
                        }
                    },
                );
            } else {
                // In-memory path: group by key, remembering each key's
                // first occurrence so the group order within a partition
                // is deterministic (segments arrive in map-task order).
                let mut groups: HashMap<K, (usize, Vec<V>), FxBuildHasher> = HashMap::default();
                let mut pos = 0usize;
                for segment in segments {
                    let Segment::Mem(records) = segment else {
                        unreachable!("spilled segments take the merge path");
                    };
                    for (_h, k, v) in records {
                        groups
                            .entry(k)
                            .or_insert_with(|| (pos, Vec::new()))
                            .1
                            .push(v);
                        pos += 1;
                    }
                }
                let mut ordered: Vec<(K, (usize, Vec<V>))> = groups.into_iter().collect();
                ordered.sort_unstable_by_key(|(_, (pos, _))| *pos);
                n_groups = ordered.len() as u64;
                for (key, (_, values)) in ordered {
                    let n_values = values.len() as u64;
                    max_group = max_group.max(n_values);
                    work += n_values;
                    reduce(&key, values, &mut sink);
                    if let Some(dir) = &stage_out_dir {
                        drain_stage_output(&mut sink, &mut out_writer, &dir.0, *partition);
                    }
                }
            }
            let cpu_secs = start.elapsed().as_secs_f64();
            work += sink.emitted + sink.work_units;
            let part: Option<DataPartition<O>> = match (sink_mode, out_writer) {
                // Bounded dataset stage: the sink was drained after every
                // group, so the run file *is* the partition.
                (_, Some(writer)) => {
                    let meta = RunMeta {
                        offset: 0,
                        bytes: writer.bytes(),
                        records: writer.records(),
                    };
                    let (file, _path) = writer
                        .into_reader()
                        .unwrap_or_else(|e| panic!("stage output finalize failed: {e}"));
                    Some(DataPartition::Spilled { file, meta })
                }
                // Unbounded dataset stage: hand the buffer over as-is.
                (SinkMode::Dataset, None) if !sink.out.is_empty() => {
                    Some(DataPartition::Mem(std::mem::take(&mut sink.out)))
                }
                _ => None,
            };
            ReduceTaskOut {
                machine: partition % machines,
                cpu_secs,
                work,
                groups: n_groups,
                max_group,
                merge,
                emitted: sink.emitted,
                out: sink.out,
                part,
                counters: sink.counters,
            }
        })
        .map_err(|message| JobError::WorkerPanic {
            phase: "reduce",
            message,
        })?;

        // Deterministic per-partition loads: each partition is charged its
        // declared work at the job-wide measured rate, plus the per-group
        // worker-instantiation overheads; partitions sharing a simulated
        // machine (partitions > machines) add up on it.
        let base_loads =
            proportional_loads(reduce_tasks.iter().map(|t| (t.cpu_secs, t.work)), &cost);
        let mut machine_loads = vec![0.0f64; machines];
        let mut output = Vec::new();
        let mut parts_out: Vec<DataPartition<O>> = Vec::new();
        let mut output_records = 0u64;
        let mut reduce_groups = 0u64;
        let mut max_group_size = 0u64;
        let mut merge_passes = 0u64;
        let mut merge_scratch_bytes = 0u64;
        for (t, base) in reduce_tasks.into_iter().zip(base_loads) {
            debug_assert!(t.machine < machines);
            machine_loads[t.machine] += base + t.groups as f64 * cost.reduce_group_overhead_secs;
            reduce_groups += t.groups;
            max_group_size = max_group_size.max(t.max_group);
            merge_passes += t.merge.passes;
            merge_scratch_bytes += t.merge.scratch_bytes;
            output_records += t.emitted;
            output.extend(t.out);
            parts_out.extend(t.part);
            for (k, v) in t.counters {
                *counters.entry(k).or_insert(0) += v;
            }
        }
        // Reduce has drained every exchange file; the directory can go.
        drop(exchange_guard);
        let reduce_sim = if reduce_groups == 0 {
            PhaseSim::default()
        } else {
            phase_sim(&machine_loads, machines)
        };

        // Hierarchical-merge scratch runs are local-disk I/O exactly like
        // mapper spill (each scratch byte is written once and read back
        // once), so they are charged at the same rate, into the same line.
        let spill_secs = spill_secs
            + cost.spill_secs_per_byte * 2.0 * merge_scratch_bytes as f64 / machines as f64;
        let sim_total_secs = cost.job_startup_secs
            + cost.map_worker_startup_secs
            + map_sim.makespan_secs
            + shuffle_secs
            + spill_secs
            + transport_secs
            + reduce_sim.makespan_secs;

        let stats = JobStats {
            name: name.to_owned(),
            machines,
            input_records,
            map_output_records,
            shuffle_records,
            spilled_records,
            spill_bytes,
            spill_runs,
            transport: transport.name(),
            transport_bytes,
            merge_passes,
            merge_scratch_bytes,
            peak_buffered_records,
            reduce_groups,
            max_group_size,
            output_records,
            driver_in_records,
            driver_out_records: match sink_mode {
                SinkMode::Driver => output.len() as u64,
                SinkMode::Dataset => 0,
            },
            map: map_sim,
            shuffle_secs,
            spill_secs,
            transport_secs,
            reduce: reduce_sim,
            sim_total_secs,
            wall_secs: wall_start.elapsed().as_secs_f64(),
            counters,
        };
        Ok(StageResult {
            output,
            parts: parts_out,
            guard: stage_out_dir,
            stats,
        })
    }
}

/// Drains a reduce sink's buffered output records into the task's
/// stage-output run file (created lazily on first output), so a
/// dataset-producing reduce task under a bounded shuffle never holds more
/// than one group's output in memory. Records are framed in the spill
/// wire format with a zero fingerprint and a unit key — the next stage
/// streams them back as plain values. I/O failures panic, surfacing as a
/// reduce-worker panic like every other task-local I/O failure.
fn drain_stage_output<O: Spill>(
    sink: &mut OutputSink<O>,
    writer: &mut Option<SpillWriter>,
    dir: &std::path::Path,
    partition: usize,
) {
    if sink.out.is_empty() {
        return;
    }
    let writer = match writer {
        Some(w) => w,
        None => {
            let path = dir.join(format!("part{partition}.run"));
            *writer = Some(
                SpillWriter::create(path)
                    .unwrap_or_else(|e| panic!("stage output file creation failed: {e}")),
            );
            writer.as_mut().expect("just created")
        }
    };
    for record in sink.out.drain(..) {
        writer
            .write_record(0u64, &(), &record)
            .unwrap_or_else(|e| panic!("stage output write failed: {e}"));
    }
}

/// Converts measured `(cpu_secs, work_units)` samples into simulated
/// loads: every sample is charged its work units at the *job-wide* rate
/// `Σ cpu / Σ work`, scaled by `cpu_scale`.
///
/// Rationale: tasks and reduce partitions are often microseconds long, and
/// a single OS preemption inflates one measurement by orders of magnitude;
/// multiplied by `cpu_scale` that would masquerade as a straggler machine.
/// Charging declared work at one aggregate measured rate makes the
/// simulated load distribution *deterministic* given the data (only the
/// global rate is measured, over a large sample), while genuine skew is
/// preserved because hot tasks/partitions declare proportionally more work
/// (records in + records out + explicit [`add_work`] units).
///
/// [`add_work`]: crate::job::OutputSink::add_work
fn proportional_loads(samples: impl Iterator<Item = (f64, u64)>, cost: &CostModel) -> Vec<f64> {
    let samples: Vec<(f64, u64)> = samples.collect();
    let total_work: u64 = samples.iter().map(|(_, w)| w).sum();
    if total_work == 0 {
        return vec![0.0; samples.len()];
    }
    let rate = if cost.work_unit_secs > 0.0 {
        cost.work_unit_secs
    } else {
        let total_cpu: f64 = samples.iter().map(|(c, _)| c).sum();
        total_cpu / total_work as f64
    };
    samples
        .iter()
        .map(|&(_, w)| w as f64 * rate * cost.cpu_scale)
        .collect()
}

/// Computes makespan/total/skew for a phase from per-unit loads, where each
/// load is already assigned to a distinct simulated machine.
fn phase_sim(loads: &[f64], machines: usize) -> PhaseSim {
    if loads.is_empty() {
        return PhaseSim::default();
    }
    let makespan = loads.iter().copied().fold(0.0, f64::max);
    let total: f64 = loads.iter().sum();
    let mean = total / machines.max(1) as f64;
    let skew = if mean > 0.0 { makespan / mean } else { 1.0 };
    PhaseSim {
        makespan_secs: makespan,
        total_cpu_secs: total,
        skew,
    }
}
