//! The cluster: real threaded execution + simulated machine accounting.
//!
//! Since the lazy dataset layer (the private `dag` module), every stage —
//! whether a classic [`Cluster::run`] job or a node of a
//! [`Dataset`](crate::dataset::Dataset) graph — executes through one
//! *streaming* engine (`run_stage_streamed`): map tasks are submitted to
//! a shared worker pool as their inputs become ready (a driver slice's
//! chunks are ready immediately; an upstream stage's partitions become
//! ready one by one as its reduce tasks finish), and reduce tasks deliver
//! their output partitions downstream the moment they complete. One
//! engine, two call shapes — so the classic path and the DAG scheduler
//! cannot drift apart.

use std::collections::HashMap;
use std::fs::File;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::dag::analyze::PlanCheck;
use crate::dag::{execute, Feed, MapSource, Recv};
use crate::dataset::{DataPartition, DatasetMode};
use crate::job::{Emitter, JobError, JobResult, JobStats, OutputSink, PhaseSim};
use crate::merge::{merge_segments_capped, MergeEffort, Segment};
use crate::pool::{
    lock, panic_message, Pool, SchedStats, SchedulerConfig, SchedulerMode, TaskBody,
};
use crate::shuffle::{Combiner, PartitionedBuffer, ShuffleConfig, ShuffleRecord};
use crate::spill::{
    reserve_job_dir, reserve_job_spill_dir, RunMeta, RunReader, Spill, SpillDirGuard, SpillWriter,
};
use crate::transport::{InProcess, MapOutput, MultiProcess, Remote, ShuffleTransport, Transport};

/// Spill/scratch/output file names must be distinct across a task's
/// concurrent attempts ([`SchedulerMode::Speculative`] runs a primary and
/// a speculative copy of the same task at once). Attempt `a` of task `t`
/// uses spill task-id `t + a * ATTEMPT_STRIDE`; with at most two attempts
/// this cannot collide with a real task index below the stride, and no
/// stage has 2^20 map tasks (machine-capped).
const ATTEMPT_STRIDE: usize = 1 << 20;

/// A stage's boxed map function (`'f` is the execution lifetime: closures
/// may borrow the corpus, filters, bitmaps — anything outliving the run).
pub(crate) type MapFn<'f, I, K, V> = Box<dyn Fn(&I, &mut Emitter<K, V>) + Send + Sync + 'f>;

/// A stage's boxed combine pass: applies the job's [`Combiner`] to a map
/// task's buffers and returns the post-combine record count. Pre-applied
/// as a closure so only the combined entry points need `K: Clone`
/// (combining clones keys; plain jobs never do).
pub(crate) type CombineFn<'f, K, V> =
    Box<dyn Fn(&mut PartitionedBuffer<K, V>) -> usize + Send + Sync + 'f>;

/// A stage's boxed reduce function.
pub(crate) type ReduceFn<'f, K, V, O> =
    Box<dyn Fn(&K, Vec<V>, &mut OutputSink<O>) + Send + Sync + 'f>;

/// Everything one stage needs to execute, with its user code boxed — the
/// unit the lazy [`Dataset`](crate::dataset::Dataset) layer records in its
/// plan instead of executing.
pub(crate) struct StageSpec<'f, I, K, V, O> {
    pub(crate) name: String,
    pub(crate) group_overhead_secs: f64,
    /// Shuffle partition count for this stage: the cluster default, or a
    /// [`repartition`](crate::dataset::Dataset::repartition) override.
    pub(crate) partitions: usize,
    /// Whether this is a [`repartition`](crate::dataset::Dataset::repartition)
    /// stage (identity re-routing; recorded for plan analysis).
    pub(crate) is_repartition: bool,
    pub(crate) map: MapFn<'f, I, K, V>,
    pub(crate) combine: Option<CombineFn<'f, K, V>>,
    pub(crate) reduce: ReduceFn<'f, K, V, O>,
}

/// Where a stage's reduce output goes.
pub(crate) enum StageSink<'f, O> {
    /// Concatenate into one driver-side `Vec` in reduce-task order (the
    /// classic `run*` behaviour), counted as records crossing the driver
    /// boundary ([`JobStats::driver_out_records`]).
    Driver,
    /// Deliver each finished partition into the downstream feed *as its
    /// reduce task completes* — the cross-stage overlap. `base` is this
    /// stage's deterministic ordinal base (see [`crate::dag`]).
    Feed { feed: Feed<'f, O>, base: u64 },
}

/// Why a streamed stage did not produce a result.
pub(crate) enum StageFailure {
    /// An upstream producer failed; this stage aborted without running to
    /// completion and reports nothing (the upstream slot has the error).
    Upstream,
    /// The stage itself failed.
    Job(JobError),
}

/// A streamed stage's result: its stats, plus the driver-side output when
/// the sink was [`StageSink::Driver`].
pub(crate) struct StreamedResult<O> {
    pub(crate) output: Vec<O>,
    pub(crate) stats: JobStats,
}

/// Simulated-cost parameters of the cluster.
///
/// The defaults model the paper's evaluation cluster (Sec. V: 1,000
/// machines, 1 GB RAM, 0.5 CPU each, production MapReduce): multi-second
/// job submission, sub-second worker spin-up, and a small per-reduce-group
/// worker-instantiation overhead — the quantity the paper blames for
/// grouping-on-both-strings losing to grouping-on-one-string (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-job scheduling/submission overhead (simulated seconds).
    pub job_startup_secs: f64,
    /// One-time map-wave worker spin-up (simulated seconds).
    pub map_worker_startup_secs: f64,
    /// Per-reduce-group worker instantiation overhead (simulated seconds)
    /// for ordinary jobs, where a reducer task streams through thousands of
    /// groups.
    pub reduce_group_overhead_secs: f64,
    /// Per-group overhead for *verification* jobs, where the paper's Fig. 1
    /// discussion applies: "grouping-on-one-string instantiates a worker
    /// for each string ... grouping-on-both-strings instantiates a worker
    /// for each candidate pair". Jobs opt in via
    /// [`Cluster::run_with_group_overhead`].
    pub verify_group_overhead_secs: f64,
    /// Shuffle cost per shuffled record, divided across machines. Charged
    /// on the **post-combine** record count
    /// ([`JobStats::shuffle_records`]), so map-side combining shows up as
    /// a shuffle saving exactly as it would on a real cluster.
    pub shuffle_secs_per_record: f64,
    /// Spill I/O cost per byte, divided across machines. Charged on
    /// `2 ×` [`JobStats::spill_bytes`] (each spilled byte is written by a
    /// memory-bounded mapper and read back once by the sort-merge reduce),
    /// so bounding mapper memory has a visible simulated price exactly as
    /// local disks would on a real cluster. The default models ~100 MB/s
    /// sequential disk on the paper's vintage worker.
    pub spill_secs_per_byte: f64,
    /// Shuffle-transport cost per byte moved between map and reduce
    /// workers, divided across machines. Charged on
    /// [`JobStats::transport_bytes`] — each serialized byte crosses the
    /// exchange once — so the `MultiProcess` transport's serialization
    /// volume has a visible simulated price the in-process handoff
    /// doesn't pay, exactly as a real cluster's interconnect would. The
    /// default models a ~1 Gb/s worker NIC of the paper's vintage.
    pub transport_secs_per_byte: f64,
    /// Multiplier from measured local CPU-seconds to simulated
    /// machine-seconds (models the paper's 0.5-CPU machines being slower
    /// than a modern core; also usable to extrapolate dataset scale).
    pub cpu_scale: f64,
    /// Simulated seconds charged per work unit (records in + records out +
    /// explicitly declared units), before `cpu_scale`. With a positive
    /// value the simulated clock is a *deterministic* function of the data
    /// — immune to OS scheduling noise in µs-scale task measurements. Set
    /// to `0.0` to fall back to the measured per-job rate (Σ cpu / Σ work).
    /// The default, 100 ns, matches the measured per-record cost of the
    /// join pipelines on a modern core.
    pub work_unit_secs: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            job_startup_secs: 4.0,
            map_worker_startup_secs: 1.0,
            reduce_group_overhead_secs: 1e-4,
            verify_group_overhead_secs: 3e-2,
            shuffle_secs_per_record: 2e-6,
            spill_secs_per_byte: 1e-8,
            transport_secs_per_byte: 1e-8,
            cpu_scale: 1.0,
            work_unit_secs: 1e-7,
        }
    }
}

/// Cluster configuration: how many machines to simulate and how many real
/// threads to execute with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Simulated machine count (the x-axis of the paper's Figures 1 and 7).
    pub machines: usize,
    /// Real worker threads; `0` means all available cores.
    pub threads: usize,
    /// Shuffle partition count; `0` (the default) means one partition per
    /// simulated machine, matching how a production shuffler routes keys
    /// to reducers. Any positive count is legal — job output is
    /// partition-count-invariant — and reduce partition `p` is charged to
    /// machine `p % machines`.
    pub partitions: usize,
    /// Simulated-cost parameters.
    pub cost: CostModel,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            machines: 1000,
            threads: 0,
            partitions: 0,
            cost: CostModel::default(),
        }
    }
}

/// An executable cluster. Cheap to construct; holds no threads between jobs.
#[derive(Debug, Clone)]
pub struct Cluster {
    cfg: ClusterConfig,
    /// Shuffle memory knobs shared by every job this cluster runs.
    shuffle: ShuffleConfig,
    /// Whether [`Dataset`](crate::dataset::Dataset) stages execute lazily
    /// (the default) or at each `map_reduce*` call.
    dataset_mode: DatasetMode,
    /// Whether diagnosed [`Dataset`](crate::dataset::Dataset) plans still
    /// execute (warn, the default) or fail before running (deny).
    plan_check: PlanCheck,
    /// Worker-pool scheduling policy (mode, speculation threshold, seeded
    /// straggler) shared by every job this cluster runs.
    scheduler: SchedulerConfig,
    /// Automatic skew response: when a dataset stage boundary's partition
    /// sizes exceed `max/mean > ratio`, the planner inserts the existing
    /// `repartition` behind the scenes. `None` (the default) disables it.
    auto_repartition: Option<f64>,
}

/// Parses the `TSJ_AUTO_REPARTITION` skew-ratio override. A standalone
/// struct so the environment read lives in a fn literally named
/// `from_env`/`from_lookup` (the lint's sanctioned config-boundary shape).
struct AutoRepartition(Option<f64>);

impl AutoRepartition {
    fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var_os(name))
    }

    fn from_lookup(lookup: impl Fn(&str) -> Option<std::ffi::OsString>) -> Self {
        let Some(raw) = lookup("TSJ_AUTO_REPARTITION") else {
            return Self(None);
        };
        match raw.to_str().and_then(|s| s.trim().parse::<f64>().ok()) {
            Some(ratio) if ratio.is_finite() && ratio > 1.0 => Self(Some(ratio)),
            _ => {
                eprintln!(
                    "tsj-mapreduce: ignoring invalid TSJ_AUTO_REPARTITION={raw:?} \
                     (expected a finite max/mean skew ratio > 1.0); auto-repartition stays off"
                );
                Self(None)
            }
        }
    }
}

impl Cluster {
    /// Builds a cluster with the default (unbounded, in-process) shuffle,
    /// honouring the `TSJ_COMBINE_THRESHOLD` / `TSJ_SPILL_THRESHOLD` /
    /// `TSJ_SPILL_DIR` / `TSJ_SHUFFLE_TRANSPORT` / `TSJ_MERGE_FAN_IN`
    /// environment overrides (see [`ShuffleConfig`]) so an entire binary
    /// can be forced through the spill path or the multi-process exchange,
    /// `TSJ_DATASET_MODE` (see [`DatasetMode`]) so the lazy DAG
    /// scheduler can be differentially tested against stage-at-a-time
    /// execution, `TSJ_PLAN_CHECK` (see
    /// [`PlanCheck`]) so plan analysis can
    /// be escalated from warn to deny, `TSJ_SCHEDULER` /
    /// `TSJ_SPECULATE_AFTER_US` / `TSJ_STRAGGLE_STAGE` + `TSJ_STRAGGLE_US`
    /// (see [`SchedulerConfig`]) so the worker-pool scheduling policy can
    /// be swept externally, and `TSJ_AUTO_REPARTITION` (a max/mean skew
    /// ratio > 1.0) to enable automatic repartitioning of skewed dataset
    /// stage boundaries. Use [`Cluster::with_shuffle_config`] /
    /// [`Cluster::with_dataset_mode`] / [`Cluster::with_plan_check`] /
    /// [`Cluster::with_scheduler`] / [`Cluster::with_auto_repartition`] to
    /// pin explicit configurations that ignore the environment.
    pub fn new(cfg: ClusterConfig) -> Self {
        let mut cfg = cfg;
        cfg.machines = cfg.machines.max(1);
        Self {
            cfg,
            shuffle: ShuffleConfig::from_env(),
            dataset_mode: DatasetMode::from_env(),
            plan_check: PlanCheck::from_env(),
            scheduler: SchedulerConfig::from_env(),
            auto_repartition: AutoRepartition::from_env().0,
        }
    }

    /// A cluster with `machines` simulated machines and default costs.
    pub fn with_machines(machines: usize) -> Self {
        Self::new(ClusterConfig {
            machines,
            ..ClusterConfig::default()
        })
    }

    /// Replaces the shuffle memory configuration (exactly as given — no
    /// environment overrides).
    pub fn with_shuffle_config(mut self, shuffle: ShuffleConfig) -> Self {
        self.shuffle = shuffle;
        self
    }

    /// Pins the dataset execution mode (exactly as given — no environment
    /// override).
    pub fn with_dataset_mode(mut self, mode: DatasetMode) -> Self {
        self.dataset_mode = mode;
        self
    }

    /// Pins the plan-analysis mode (exactly as given — no environment
    /// override). [`PlanCheck::Deny`](crate::dag::analyze::PlanCheck) makes
    /// every diagnosed [`Dataset`](crate::dataset::Dataset) terminal fail
    /// with [`JobError::Plan`](crate::job::JobError) before executing.
    pub fn with_plan_check(mut self, check: PlanCheck) -> Self {
        self.plan_check = check;
        self
    }

    /// Pins the worker-pool scheduling policy (exactly as given — no
    /// environment override). Output is byte-identical across modes; only
    /// wall-clock behaviour and the scheduler observability counters
    /// ([`JobStats::steals`] and friends) change.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables (or, with `None`, disables) automatic skew response: when a
    /// [`Dataset`](crate::dataset::Dataset) stage's output partition sizes
    /// cross `max/mean > ratio`, the planner inserts the existing
    /// [`repartition`](crate::dataset::Dataset::repartition) behind the
    /// scenes before the next stage. Ratios ≤ 1.0 are treated as disabled
    /// (1.0 is perfect balance — nothing to fix).
    pub fn with_auto_repartition(mut self, ratio: Option<f64>) -> Self {
        self.auto_repartition = ratio.filter(|r| r.is_finite() && *r > 1.0);
        self
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The shuffle memory knobs jobs run with.
    pub fn shuffle_config(&self) -> &ShuffleConfig {
        &self.shuffle
    }

    /// How [`Dataset`](crate::dataset::Dataset) stages execute (lazy DAG
    /// vs stage-at-a-time).
    pub fn dataset_mode(&self) -> DatasetMode {
        self.dataset_mode
    }

    /// Whether diagnosed [`Dataset`](crate::dataset::Dataset) plans still
    /// execute (see [`PlanCheck`]).
    pub fn plan_check(&self) -> PlanCheck {
        self.plan_check
    }

    /// The worker-pool scheduling policy jobs run with.
    pub fn scheduler(&self) -> &SchedulerConfig {
        &self.scheduler
    }

    /// The automatic-repartition skew ratio, if enabled.
    pub fn auto_repartition(&self) -> Option<f64> {
        self.auto_repartition
    }

    pub fn machines(&self) -> usize {
        self.cfg.machines
    }

    /// Shuffle partition count jobs run with (see [`ClusterConfig`]).
    pub fn partitions(&self) -> usize {
        if self.cfg.partitions > 0 {
            self.cfg.partitions
        } else {
            self.cfg.machines
        }
    }

    pub(crate) fn threads(&self) -> usize {
        if self.cfg.threads > 0 {
            self.cfg.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }

    /// The single source of truth for how a driver slice of `len` records
    /// is chunked into map tasks — one task per simulated machine, capped
    /// by the input — as `(num_tasks, chunk_size)`. The engine's
    /// driver-slice path and the dataset layer's driver→partition
    /// conversion both use it, so a lifted input's partition layout always
    /// matches what the classic path would have seen.
    pub(crate) fn slice_chunking(&self, len: usize) -> (usize, usize) {
        let tasks = self.cfg.machines.min(len).max(1);
        (tasks, len.div_ceil(tasks).max(1))
    }

    /// Runs one MapReduce job (Sec. III-A semantics).
    ///
    /// * `map` is applied to every input record, emitting `⟨key2, value2⟩`
    ///   pairs into the [`Emitter`], which routes each pair to its shuffle
    ///   partition `HASH(key2) % partitions` at emit time.
    /// * Each partition's buffers are handed to exactly one reduce task,
    ///   which groups pairs by key; each key's values are handed to
    ///   `reduce` exactly once, on the simulated machine
    ///   `partition % machines`.
    /// * Output order across groups is unspecified (as on a real cluster),
    ///   but deterministic given the input and the partition count —
    ///   independent of the real thread count.
    ///
    /// Simulated time = job startup + map makespan + shuffle + reduce
    /// makespan; see [`CostModel`]. Real execution uses all configured
    /// threads regardless of the simulated machine count.
    pub fn run<I, K, V, O, M, R>(
        &self,
        name: &str,
        input: &[I],
        map: M,
        reduce: R,
    ) -> Result<JobResult<O>, JobError>
    where
        I: Send + Sync + Spill,
        K: Hash + Eq + Send + Spill,
        V: Send + Spill,
        O: Send + Sync + Spill,
        M: Fn(&I, &mut Emitter<K, V>) + Sync,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        self.run_one_stage(
            name,
            self.cfg.cost.reduce_group_overhead_secs,
            input,
            map,
            None,
            reduce,
        )
    }

    /// [`Cluster::run`] with a map-side [`Combiner`]: each map task folds
    /// its emitted values per key through `combiner` before the shuffle,
    /// and the shuffle is charged on the post-combine record count
    /// ([`JobStats::shuffle_records`]).
    ///
    /// The reducer must be insensitive to the partial aggregation (see the
    /// [`Combiner`] contract) — given that, output is identical to
    /// [`Cluster::run`] with the same `map`/`reduce`.
    pub fn run_combined<I, K, V, O, M, C, R>(
        &self,
        name: &str,
        input: &[I],
        map: M,
        combiner: &C,
        reduce: R,
    ) -> Result<JobResult<O>, JobError>
    where
        I: Send + Sync + Spill,
        K: Hash + Eq + Clone + Send + Spill,
        V: Send + Spill,
        O: Send + Sync + Spill,
        M: Fn(&I, &mut Emitter<K, V>) + Sync,
        C: Combiner<K, V>,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        let combine: CombineFn<'_, K, V> =
            Box::new(move |buffer: &mut PartitionedBuffer<K, V>| buffer.combine(combiner));
        self.run_one_stage(
            name,
            self.cfg.cost.reduce_group_overhead_secs,
            input,
            map,
            Some(combine),
            reduce,
        )
    }

    /// [`Cluster::run`] with an explicit per-reduce-group worker overhead —
    /// used by verification jobs, whose work units are the workers the
    /// paper's dedup-strategy analysis counts (Sec. III-G3 / Fig. 1).
    pub fn run_with_group_overhead<I, K, V, O, M, R>(
        &self,
        name: &str,
        group_overhead_secs: f64,
        input: &[I],
        map: M,
        reduce: R,
    ) -> Result<JobResult<O>, JobError>
    where
        I: Send + Sync + Spill,
        K: Hash + Eq + Send + Spill,
        V: Send + Spill,
        O: Send + Sync + Spill,
        M: Fn(&I, &mut Emitter<K, V>) + Sync,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        self.run_one_stage(name, group_overhead_secs, input, map, None, reduce)
    }

    /// [`Cluster::run_combined`] with an explicit per-reduce-group worker
    /// overhead (verification jobs with a map-side combiner).
    pub fn run_combined_with_group_overhead<I, K, V, O, M, C, R>(
        &self,
        name: &str,
        group_overhead_secs: f64,
        input: &[I],
        map: M,
        combiner: &C,
        reduce: R,
    ) -> Result<JobResult<O>, JobError>
    where
        I: Send + Sync + Spill,
        K: Hash + Eq + Clone + Send + Spill,
        V: Send + Spill,
        O: Send + Sync + Spill,
        M: Fn(&I, &mut Emitter<K, V>) + Sync,
        C: Combiner<K, V>,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        let combine: CombineFn<'_, K, V> =
            Box::new(move |buffer: &mut PartitionedBuffer<K, V>| buffer.combine(combiner));
        self.run_one_stage(name, group_overhead_secs, input, map, Some(combine), reduce)
    }

    /// One-stage graph: a driver slice in, driver output back out — the
    /// single-driver execution every `run*` entry point reduces to. The
    /// input's chunks are preloaded into the stage's feed (all ready at
    /// start), so the streamed engine behaves exactly like the former
    /// fixed map wave.
    fn run_one_stage<I, K, V, O, M, R>(
        &self,
        name: &str,
        group_overhead_secs: f64,
        input: &[I],
        map: M,
        combine: Option<CombineFn<'_, K, V>>,
        reduce: R,
    ) -> Result<JobResult<O>, JobError>
    where
        I: Send + Sync + Spill,
        K: Hash + Eq + Send + Spill,
        V: Send + Spill,
        O: Send + Sync + Spill,
        M: Fn(&I, &mut Emitter<K, V>) + Sync,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        let feed: Feed<'_, I> = Feed::new();
        feed.register_producer();
        feed.add_driver_in(input.len() as u64);
        let (tasks, chunk) = self.slice_chunking(input.len());
        for t in 0..tasks {
            let lo = (t * chunk).min(input.len());
            let hi = ((t + 1) * chunk).min(input.len());
            feed.push(t as u64, MapSource::Chunk(&input[lo..hi]));
        }
        feed.close_producer(true);

        let map = &map;
        let reduce = &reduce;
        let spec = StageSpec {
            name: name.to_owned(),
            group_overhead_secs,
            partitions: self.partitions(),
            is_repartition: false,
            map: Box::new(move |i: &I, e: &mut Emitter<K, V>| map(i, e)) as MapFn<'_, I, K, V>,
            combine,
            reduce: Box::new(move |k: &K, vs: Vec<V>, o: &mut OutputSink<O>| reduce(k, vs, o))
                as ReduceFn<'_, K, V, O>,
        };

        type ResultCell<O> = Mutex<Option<Result<StreamedResult<O>, StageFailure>>>;
        let result: Arc<ResultCell<O>> = Arc::new(Mutex::new(None));
        let cell = Arc::clone(&result);
        let cluster = self;
        // A preloaded one-stage graph never has more runnable map tasks
        // than input chunks, so tiny jobs need not spawn a full-width
        // pool; reduce tasks of a job this small are few as well.
        let workers = self.threads().min(tasks.max(1));
        execute(
            workers,
            self.scheduler.clone(),
            vec![Box::new(move |pool: &Pool<'_>| {
                let res = catch_unwind(AssertUnwindSafe(|| {
                    run_stage_streamed(cluster, spec, 0, feed, StageSink::Driver, pool)
                }))
                .unwrap_or_else(|p| {
                    Err(StageFailure::Job(JobError::WorkerPanic {
                        phase: "stage",
                        message: panic_message(p),
                    }))
                });
                *lock(&cell) = Some(res);
            })],
        );
        let outcome = lock(&result).take();
        match outcome {
            Some(Ok(r)) => Ok(JobResult {
                output: r.output,
                stats: r.stats,
            }),
            Some(Err(StageFailure::Job(e))) => Err(e),
            // A preloaded feed cannot fail upstream, and the thunk always
            // stores; both arms are defensive.
            Some(Err(StageFailure::Upstream)) | None => Err(JobError::WorkerPanic {
                phase: "stage",
                message: "stage driver exited without reporting".to_owned(),
            }),
        }
    }
}

/// A map task's measured output (one per consumed feed item).
struct MapTaskOut<K, V> {
    cpu_secs: f64,
    /// Work units: input records + emitted pairs + combine scans +
    /// spilled records. The simulated load is rate-capped per work
    /// unit so that OS scheduling noise in the µs-scale
    /// measurements cannot masquerade as data skew (see
    /// [`proportional_loads`]).
    work: u64,
    /// Records this task consumed.
    input: u64,
    /// Pairs emitted by `map` (pre-combine).
    emitted: u64,
    /// Records handed to the shuffle (post-combine, spilled runs
    /// included).
    shuffled: u64,
    /// High-water mark of in-memory buffered records.
    peak_buffered: u64,
    /// Partition-indexed in-memory output buffers (drained to the
    /// task's exchange file instead when `published` is set).
    parts: Vec<Vec<ShuffleRecord<K, V>>>,
    /// Spill file + run directory, if this task spilled (kept for stats
    /// accounting even when published — the runs were raw-copied into
    /// the exchange file).
    spill: Option<crate::shuffle::TaskSpill>,
    /// Run-server key this task's output was published under (remote
    /// transport only).
    published: Option<u64>,
    counters: HashMap<&'static str, u64>,
}

/// A reduce task's measured output (one per non-empty partition).
struct ReduceTaskOut<O> {
    machine: usize,
    /// Measured CPU total for the whole partition (ms-scale, so
    /// reliable; feeds the job-wide work rate).
    cpu_secs: f64,
    /// Work units over the partition: values in + records emitted +
    /// explicitly declared units.
    work: u64,
    groups: u64,
    max_group: u64,
    /// Hierarchical pre-merge effort spent honouring the merge
    /// fan-in cap (zero on the flat or in-memory paths).
    merge: MergeEffort,
    /// Records emitted (also counted when drained to a run file).
    emitted: u64,
    /// Driver-bound output ([`StageSink::Driver`]; empty otherwise).
    out: Vec<O>,
    counters: HashMap<&'static str, u64>,
}

/// Per-wave completion latch: task results keyed for deterministic
/// re-ordering, the lowest-key failure, and a done counter the driver
/// blocks on.
struct WaveGather<T> {
    outs: Vec<(u64, T)>,
    first_err: Option<(u64, JobError)>,
    done: usize,
}

impl<T> WaveGather<T> {
    fn cell() -> Arc<(Mutex<Self>, Condvar)> {
        Arc::new((
            Mutex::new(Self {
                outs: Vec::new(),
                first_err: None,
                done: 0,
            }),
            Condvar::new(),
        ))
    }
}

/// Records one task's result into its wave latch and wakes the driver.
fn wave_record<T>(cell: &(Mutex<WaveGather<T>>, Condvar), key: u64, result: Result<T, JobError>) {
    let mut g = lock(&cell.0);
    match result {
        Ok(out) => g.outs.push((key, out)),
        Err(e) => {
            if g.first_err.as_ref().is_none_or(|(k, _)| key < *k) {
                g.first_err = Some((key, e));
            }
        }
    }
    g.done += 1;
    drop(g);
    cell.1.notify_all();
}

/// A Drop-armed completion ticket: every submitted task holds one, and if
/// the task unwinds before explicitly completing (a panic escaping the
/// task's own `catch_unwind`, e.g. in result delivery), the ticket's Drop
/// records a structured failure — so [`wave_barrier`] always terminates
/// and the stage fails instead of hanging the driver forever.
struct WaveTicket<T> {
    cell: Arc<(Mutex<WaveGather<T>>, Condvar)>,
    key: u64,
    armed: bool,
}

impl<T> WaveTicket<T> {
    fn new(cell: Arc<(Mutex<WaveGather<T>>, Condvar)>, key: u64) -> Self {
        Self {
            cell,
            key,
            armed: true,
        }
    }

    /// Records the task's result and disarms the Drop fallback.
    fn complete(mut self, result: Result<T, JobError>) {
        self.armed = false;
        wave_record(&self.cell, self.key, result);
    }
}

impl<T> Drop for WaveTicket<T> {
    fn drop(&mut self) {
        if self.armed {
            wave_record(
                &self.cell,
                self.key,
                Err(JobError::WorkerPanic {
                    phase: "task",
                    message: "task aborted before reporting its result".to_owned(),
                }),
            );
        }
    }
}

/// Blocks until `submitted` tasks have recorded, then returns the sorted
/// results or the lowest-key error.
fn wave_barrier<T>(
    cell: &(Mutex<WaveGather<T>>, Condvar),
    submitted: usize,
) -> Result<Vec<T>, JobError> {
    let mut g = lock(&cell.0);
    while g.done < submitted {
        g = cell.1.wait(g).unwrap_or_else(|e| e.into_inner());
    }
    if let Some((_, e)) = g.first_err.take() {
        return Err(e);
    }
    let mut outs = std::mem::take(&mut g.outs);
    drop(g);
    outs.sort_unstable_by_key(|(key, _)| *key);
    Ok(outs.into_iter().map(|(_, t)| t).collect())
}

/// The streaming stage engine behind both the classic `run*` entry points
/// and the lazy [`Dataset`](crate::dataset::Dataset) scheduler (see the
/// module docs). Consumes `input` until its producers close — submitting
/// one map task per ready item — then shuffles through the configured
/// transport and runs one reduce task per non-empty partition, delivering
/// dataset partitions downstream as each task finishes.
pub(crate) fn run_stage_streamed<'f, I, K, V, O>(
    cluster: &Cluster,
    spec: StageSpec<'f, I, K, V, O>,
    priority: u32,
    input: Feed<'f, I>,
    sink: StageSink<'f, O>,
    pool: &Pool<'f>,
) -> Result<StreamedResult<O>, StageFailure>
where
    I: Send + Sync + Spill + 'f,
    K: Hash + Eq + Send + Spill + 'f,
    V: Send + Spill + 'f,
    O: Send + Sync + Spill + 'f,
{
    let machines = cluster.cfg.machines;
    let partitions = spec.partitions;
    let shuffle = Arc::new(cluster.shuffle.clone());
    let mut cost = cluster.cfg.cost;
    cost.reduce_group_overhead_secs = spec.group_overhead_secs;
    let spec = Arc::new(spec);

    // Scheduler observability for this stage, shared by every submitted
    // task; folded into the stage's JobStats at the end. Under
    // [`SchedulerMode::Speculative`] tasks are submitted as replayable
    // closures with a first-result-wins ticket cell: whichever attempt
    // finishes first takes the ticket (and, for reduce tasks, the right to
    // deliver the partition downstream); the loser's output is dropped.
    let sched_stats = Arc::new(SchedStats::default());
    let speculative = pool.scheduler().mode == SchedulerMode::Speculative;
    // Injected straggler (tests/benchmarks): this stage's map task 0
    // sleeps on its *primary* attempt only — simulating a slow node, the
    // only slowness speculation can beat, since a re-run of a
    // data-slow deterministic task is exactly as slow.
    let straggle_us: Option<u64> = pool
        .scheduler()
        .straggle
        .as_ref()
        .filter(|s| s.stage == spec.name)
        .map(|s| s.micros);

    // Base directory for this job's spill / exchange / stage-output
    // subdirectories; each is RAII-guarded so a job that fails mid-wave
    // still removes everything it created.
    let dir_base = shuffle.spill_base();

    // One uniquely named spill directory per job, removed (with its
    // segments) when the job finishes or fails. Tasks create it lazily
    // on first spill (`create_dir_all` is racy-safe), so an unspilled
    // bounded job touches the filesystem not at all.
    let spill_dir: Option<Arc<SpillDirGuard>> = shuffle
        .spill_threshold
        .map(|_| Arc::new(SpillDirGuard(reserve_job_spill_dir(&dir_base))));

    // Remote transport: this stage's run server must exist *before* the
    // map wave, because map tasks publish their exchange runs to it as
    // they finish (overlapping the wave). Shared with every map task; the
    // exchange-dir guard it holds keeps the directory alive for any
    // speculative attempt still writing after the stage moves on.
    let remote: Option<Arc<Remote>> = match shuffle.transport {
        Transport::Remote => Some(Arc::new(
            Remote::start(
                reserve_job_dir(&dir_base, "tsj-exchange"),
                shuffle.net_fault,
            )
            .map_err(|e| {
                StageFailure::Job(JobError::Transport {
                    message: format!("starting the run server: {e}"),
                })
            })?,
        )),
        Transport::InProcess | Transport::MultiProcess => None,
    };

    // ---- Map wave (streaming) -----------------------------------------
    // One map task per ready input item, submitted to the shared pool the
    // moment the item arrives — for a driver slice every chunk is ready
    // immediately (a single wave, as before); for an upstream stage each
    // partition becomes ready as its producing reduce task finishes, which
    // is exactly the cross-stage overlap. Each task partitions its output
    // at emit time and (optionally) combines it before the shuffle; under
    // a memory-bounded ShuffleConfig it also combines periodically
    // mid-task and spills sorted runs when the buffer hits the threshold.
    let map_gather = WaveGather::<MapTaskOut<K, V>>::cell();
    let mut submitted = 0usize;
    let mut wall_start: Option<Instant> = None;
    let upstream_failed = loop {
        match input.recv() {
            Recv::Item(ordinal, source) => {
                if wall_start.is_none() {
                    wall_start = Some(Instant::now());
                }
                let task = submitted;
                submitted += 1;
                let spec = Arc::clone(&spec);
                let shuffle = Arc::clone(&shuffle);
                let spill_dir = spill_dir.clone();
                let remote = remote.clone();
                let ticket = WaveTicket::new(Arc::clone(&map_gather), ordinal);
                let body = if speculative {
                    // Map sources read-share cleanly (slices, in-memory
                    // partitions by reference, positional spill reads), so
                    // every map task is replayable: `attempt` only picks
                    // distinct spill file names and skips the injected
                    // straggle on the speculative copy.
                    let source = Arc::new(source);
                    let ticket = Arc::new(Mutex::new(Some(ticket)));
                    let sched = Arc::clone(&sched_stats);
                    TaskBody::Replayable(Arc::new(move |attempt| {
                        if attempt == 0 && task == 0 {
                            if let Some(us) = straggle_us {
                                std::thread::sleep(Duration::from_micros(us));
                            }
                        }
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            run_map_task(
                                &spec,
                                &shuffle,
                                spill_dir.as_deref(),
                                remote.as_deref(),
                                partitions,
                                task + attempt * ATTEMPT_STRIDE,
                                &source,
                            )
                        }))
                        .unwrap_or_else(|p| {
                            Err(JobError::WorkerPanic {
                                phase: "map",
                                message: panic_message(p),
                            })
                        });
                        if let Some(ticket) = lock(&ticket).take() {
                            if attempt > 0 {
                                sched.speculative_won.fetch_add(1, Ordering::Relaxed);
                            }
                            ticket.complete(result);
                        }
                    }))
                } else {
                    TaskBody::Once(Box::new(move || {
                        // The injection fires in every mode (a straggling
                        // node doesn't care about the scheduler) — which is
                        // what lets benchmarks compare a straggled FIFO
                        // baseline against speculation on equal footing.
                        if task == 0 {
                            if let Some(us) = straggle_us {
                                std::thread::sleep(Duration::from_micros(us));
                            }
                        }
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            run_map_task(
                                &spec,
                                &shuffle,
                                spill_dir.as_deref(),
                                remote.as_deref(),
                                partitions,
                                task,
                                &source,
                            )
                        }))
                        .unwrap_or_else(|p| {
                            Err(JobError::WorkerPanic {
                                phase: "map",
                                message: panic_message(p),
                            })
                        });
                        ticket.complete(result);
                    }))
                };
                pool.submit(body, priority, Some(Arc::clone(&sched_stats)));
            }
            Recv::Closed { failed } => break failed,
        }
    };
    if upstream_failed {
        // The graph is doomed upstream; in-flight tasks of this stage
        // drain harmlessly on the pool (they only touch Arc-shared state).
        return Err(StageFailure::Upstream);
    }
    let wall_start = wall_start.unwrap_or_else(Instant::now);
    let map_tasks = wave_barrier(&map_gather, submitted).map_err(StageFailure::Job)?;
    let num_tasks = submitted;
    let driver_in_records = input.driver_in();
    let input_records: u64 = map_tasks.iter().map(|t| t.input).sum();
    // Every upstream segment has been streamed; release upstream dirs.
    drop(input.take_guards());

    let map_loads = proportional_loads(map_tasks.iter().map(|t| (t.cpu_secs, t.work)), &cost);
    let map_sim = phase_sim(&map_loads, machines.min(num_tasks.max(1)));

    // ---- Shuffle -------------------------------------------------------
    // Records were already routed to `hash % partitions` at emit time;
    // how each partition's per-task segments — spilled sorted runs
    // first, then the task's in-memory leftover, in task (= ordinal)
    // order — reach the reduce side is the transport's job (in-process
    // handoff, or serialization into per-partition exchange files;
    // see `crate::transport`). Cost is charged on the post-combine
    // volume, plus spill I/O on the spilled bytes (written once, read
    // back once), plus transport time on the exchanged bytes.
    let mut counters: HashMap<&'static str, u64> = HashMap::new();
    let mut map_output_records = 0u64;
    let mut shuffle_records = 0u64;
    let mut spilled_records = 0u64;
    let mut spill_bytes = 0u64;
    let mut spill_runs = 0u64;
    let mut peak_buffered_records = 0u64;
    let mut outputs: Vec<MapOutput<K, V>> = Vec::with_capacity(map_tasks.len());
    for task in map_tasks {
        map_output_records += task.emitted;
        shuffle_records += task.shuffled;
        peak_buffered_records = peak_buffered_records.max(task.peak_buffered);
        for (k, v) in &task.counters {
            *counters.entry(k).or_insert(0) += v;
        }
        if let Some(spill) = &task.spill {
            spilled_records += spill.records;
            spill_bytes += spill.bytes;
            spill_runs += spill.runs.iter().map(|runs| runs.len() as u64).sum::<u64>();
        }
        outputs.push(MapOutput::new(task.parts, task.spill).with_published(task.published));
    }
    let transport = shuffle.transport;
    let exchange = match (transport, &remote) {
        (Transport::InProcess, _) => InProcess.exchange(outputs, partitions),
        (Transport::MultiProcess, _) => {
            MultiProcess::new(reserve_job_dir(&dir_base, "tsj-exchange"))
                .exchange(outputs, partitions)
        }
        (Transport::Remote, Some(remote)) => {
            let exchange = remote.exchange(outputs, partitions);
            // Everything is fetched (or the exchange failed); either way
            // nothing fetches after this — stop serving.
            remote.stop();
            exchange
        }
        // `remote` is Some exactly when the transport is Remote (set a
        // few lines up); a structured error beats a panic in the data
        // plane if that invariant ever breaks.
        (Transport::Remote, None) => Err(std::io::Error::other(
            "remote transport configured but no run server was started",
        )),
    }
    .map_err(|e| {
        StageFailure::Job(JobError::Transport {
            message: e.to_string(),
        })
    })?;
    let transport_bytes = exchange.bytes_moved;
    let fetch_stats = exchange.fetch;
    let partition_segments = exchange.partition_segments;
    // The exchange directory (if any) must outlive the reduce phase,
    // which streams the partition files it holds.
    let exchange_guard = exchange.guard;
    let shuffle_secs = cost.shuffle_secs_per_record * shuffle_records as f64 / machines as f64;
    let spill_secs = cost.spill_secs_per_byte * 2.0 * spill_bytes as f64 / machines as f64;
    let transport_secs = cost.transport_secs_per_byte * transport_bytes as f64 / machines as f64;

    // ---- Reduce wave ---------------------------------------------------
    // Dataset stages under a bounded shuffle keep their output out of
    // memory too: each reduce task drains its sink into a sorted-run
    // file (wire format, fingerprint 0, unit key) after every group,
    // and the next stage's map wave streams it back. The directory
    // must outlive this job — its guard rides the output feed, held by
    // the consumer until its own map wave is done.
    let feed_sink: Option<(Feed<'f, O>, u64)> = match &sink {
        StageSink::Driver => None,
        StageSink::Feed { feed, base } => Some((feed.clone(), *base)),
    };
    let stage_out_dir: Option<Arc<SpillDirGuard>> = match (&feed_sink, shuffle.spill_threshold) {
        (Some(_), Some(_)) => {
            let guard = Arc::new(SpillDirGuard(reserve_job_dir(&dir_base, "tsj-stage")));
            if let Some((feed, _)) = &feed_sink {
                feed.add_guard(Arc::clone(&guard));
            }
            Some(guard)
        }
        _ => None,
    };

    // Scratch base for fan-in-capped hierarchical merges: the job's
    // exchange dir (multi-process) or spill dir (in-process spilling)
    // — whichever exists is also where every spilled segment lives,
    // and its guard already handles cleanup. Purely in-memory
    // partitions never merge, so needing scratch implies one exists.
    let merge_scratch: Option<PathBuf> = shuffle.merge_fan_in.and_then(|_| {
        exchange_guard
            .as_ref()
            .map(|guard| guard.0.clone())
            .or_else(|| spill_dir.as_ref().map(|guard| guard.0.clone()))
    });

    let reduce_gather = WaveGather::<ReduceTaskOut<O>>::cell();
    let mut reduce_submitted = 0usize;
    for (partition, segments) in partition_segments.into_iter().enumerate() {
        if segments.is_empty() {
            continue;
        }
        let task = reduce_submitted;
        reduce_submitted += 1;
        let spec = Arc::clone(&spec);
        let shuffle = Arc::clone(&shuffle);
        let stage_out_dir = stage_out_dir.clone();
        let merge_scratch = merge_scratch.clone();
        let feed_sink = feed_sink.clone();
        let ticket = WaveTicket::new(Arc::clone(&reduce_gather), task as u64);
        // A reduce task is replayable only when every segment is a spilled
        // run: runs are re-readable (positional reads over shared files),
        // so each attempt can rebuild its own segment set, whereas
        // in-memory segments are consumed by grouping and cannot feed two
        // attempts without `K: Clone`/`V: Clone` bounds the engine doesn't
        // have.
        let spilled_runs: Vec<(Arc<File>, RunMeta)> = if speculative {
            segments
                .iter()
                .filter_map(|seg| match seg {
                    Segment::Spilled { file, meta } => Some((Arc::clone(file), *meta)),
                    Segment::Mem(_) => None,
                })
                .collect()
        } else {
            Vec::new()
        };
        let body = if speculative && spilled_runs.len() == segments.len() {
            drop(segments);
            let ticket = Arc::new(Mutex::new(Some(ticket)));
            let sched = Arc::clone(&sched_stats);
            TaskBody::Replayable(Arc::new(move |attempt| {
                let segments: Vec<Segment<K, V>> = spilled_runs
                    .iter()
                    .map(|(file, meta)| Segment::Spilled {
                        file: Arc::clone(file),
                        meta: *meta,
                    })
                    .collect();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_reduce_task(
                        &spec,
                        &shuffle,
                        feed_sink.is_some(),
                        stage_out_dir.as_ref().map(|g| g.0.as_path()),
                        merge_scratch.as_deref(),
                        machines,
                        partition,
                        attempt,
                        segments,
                    )
                }))
                .unwrap_or_else(|p| {
                    Err(JobError::WorkerPanic {
                        phase: "reduce",
                        message: panic_message(p),
                    })
                });
                // First result wins: only the ticket holder delivers the
                // partition downstream and reports — the loser's output
                // (and its run file, if any) is dropped on the floor.
                if let Some(ticket) = lock(&ticket).take() {
                    if attempt > 0 {
                        sched.speculative_won.fetch_add(1, Ordering::Relaxed);
                    }
                    let result = result.map(|(out, part)| {
                        if let (Some((feed, base)), Some(part)) = (&feed_sink, part) {
                            feed.push(base | task as u64, MapSource::Part(part));
                        }
                        out
                    });
                    ticket.complete(result);
                }
            }))
        } else {
            TaskBody::Once(Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_reduce_task(
                        &spec,
                        &shuffle,
                        feed_sink.is_some(),
                        stage_out_dir.as_ref().map(|g| g.0.as_path()),
                        merge_scratch.as_deref(),
                        machines,
                        partition,
                        0,
                        segments,
                    )
                }))
                .unwrap_or_else(|p| {
                    Err(JobError::WorkerPanic {
                        phase: "reduce",
                        message: panic_message(p),
                    })
                });
                let result = result.map(|(out, part)| {
                    // Deliver the finished partition downstream immediately
                    // — the moment that makes the next stage's map task
                    // ready.
                    if let (Some((feed, base)), Some(part)) = (&feed_sink, part) {
                        feed.push(base | task as u64, MapSource::Part(part));
                    }
                    out
                });
                ticket.complete(result);
            }))
        };
        pool.submit(body, priority, Some(Arc::clone(&sched_stats)));
    }
    let reduce_tasks = wave_barrier(&reduce_gather, reduce_submitted).map_err(StageFailure::Job)?;
    // Reduce has drained every exchange file; the directory can go.
    drop(exchange_guard);

    // Deterministic per-partition loads: each partition is charged its
    // declared work at the job-wide measured rate, plus the per-group
    // worker-instantiation overheads; partitions sharing a simulated
    // machine (partitions > machines) add up on it.
    let base_loads = proportional_loads(reduce_tasks.iter().map(|t| (t.cpu_secs, t.work)), &cost);
    let mut machine_loads = vec![0.0f64; machines];
    let mut output = Vec::new();
    let mut output_records = 0u64;
    let mut reduce_groups = 0u64;
    let mut max_group_size = 0u64;
    let mut merge_passes = 0u64;
    let mut merge_scratch_bytes = 0u64;
    for (t, base) in reduce_tasks.into_iter().zip(base_loads) {
        debug_assert!(t.machine < machines);
        machine_loads[t.machine] += base + t.groups as f64 * cost.reduce_group_overhead_secs;
        reduce_groups += t.groups;
        max_group_size = max_group_size.max(t.max_group);
        merge_passes += t.merge.passes;
        merge_scratch_bytes += t.merge.scratch_bytes;
        output_records += t.emitted;
        output.extend(t.out);
        for (k, v) in t.counters {
            *counters.entry(k).or_insert(0) += v;
        }
    }
    let reduce_sim = if reduce_groups == 0 {
        PhaseSim::default()
    } else {
        phase_sim(&machine_loads, machines)
    };

    // Hierarchical-merge scratch runs are local-disk I/O exactly like
    // mapper spill (each scratch byte is written once and read back
    // once), so they are charged at the same rate, into the same line.
    let spill_secs =
        spill_secs + cost.spill_secs_per_byte * 2.0 * merge_scratch_bytes as f64 / machines as f64;
    let sim_total_secs = cost.job_startup_secs
        + cost.map_worker_startup_secs
        + map_sim.makespan_secs
        + shuffle_secs
        + spill_secs
        + transport_secs
        + reduce_sim.makespan_secs;

    let stats = JobStats {
        name: spec.name.clone(),
        machines,
        input_records,
        map_output_records,
        shuffle_records,
        spilled_records,
        spill_bytes,
        spill_runs,
        transport: transport.name(),
        transport_bytes,
        merge_passes,
        merge_scratch_bytes,
        peak_buffered_records,
        reduce_groups,
        max_group_size,
        output_records,
        driver_in_records,
        driver_out_records: match &sink {
            StageSink::Driver => output.len() as u64,
            StageSink::Feed { .. } => 0,
        },
        map: map_sim,
        shuffle_secs,
        spill_secs,
        transport_secs,
        reduce: reduce_sim,
        sim_total_secs,
        wall_secs: wall_start.elapsed().as_secs_f64(),
        steals: sched_stats.steals.load(Ordering::Relaxed),
        speculative_launched: sched_stats.speculative_launched.load(Ordering::Relaxed),
        speculative_won: sched_stats.speculative_won.load(Ordering::Relaxed),
        queue_wait_us: sched_stats.queue_wait_us.load(Ordering::Relaxed),
        fetch_requests: fetch_stats.requests,
        fetch_retries: fetch_stats.retries,
        fetch_bytes: fetch_stats.bytes,
        counters,
    };
    Ok(StreamedResult { output, stats })
}

/// One map task: streams its source through `map`, with periodic combine
/// and spill under a bounded shuffle. Runs on a pool worker. Takes its
/// source by reference so a speculative attempt can re-read it; `task`
/// is already attempt-distinct (see [`ATTEMPT_STRIDE`]) so concurrent
/// attempts never collide on a spill file name.
fn run_map_task<'f, I, K, V, O>(
    spec: &StageSpec<'f, I, K, V, O>,
    shuffle: &ShuffleConfig,
    spill_dir: Option<&SpillDirGuard>,
    remote: Option<&Remote>,
    partitions: usize,
    task: usize,
    source: &MapSource<'f, I>,
) -> Result<MapTaskOut<K, V>, JobError>
where
    I: Sync + Spill,
    K: Hash + Eq + Send + Spill,
    V: Send + Spill,
    O: Send + Spill,
{
    let start = Instant::now();
    let mut emitter = match (spill_dir, shuffle.spill_threshold) {
        (Some(guard), Some(threshold)) => Emitter::with_buffer(PartitionedBuffer::with_spill(
            partitions,
            threshold,
            guard.0.clone(),
            task,
        )),
        _ => Emitter::with_partitions(partitions),
    };
    // Periodic combine watermark: re-combine only after the buffer
    // has grown by combine_threshold records since the last pass,
    // so a poorly combinable stream cannot trigger quadratic
    // re-combining. (usize::MAX = never, the unbounded default.)
    let combine_threshold = match (spec.combine.is_some(), shuffle.combine_threshold) {
        (true, Some(t)) => t.max(1),
        _ => usize::MAX,
    };
    let mut next_combine = combine_threshold;
    let mut combine_work = 0u64;
    let mut task_input = 0u64;
    // One input record through map + the periodic combine check
    // (macro, not closure: it borrows half the task state).
    macro_rules! feed {
        ($record:expr) => {{
            task_input += 1;
            (spec.map)($record, &mut emitter);
            if emitter.buffer.len() >= next_combine {
                // A finite watermark implies a combiner (see the
                // combine_threshold match above), so the branch is
                // never skipped when combining is due.
                if let Some(combine) = spec.combine.as_ref() {
                    combine_work += emitter.buffer.len() as u64;
                    combine(&mut emitter.buffer);
                    // Combining may not have freed enough (distinct
                    // keys); spill the combined run if still over the
                    // cap.
                    emitter.buffer.maybe_spill();
                }
                next_combine = emitter.buffer.len() + combine_threshold;
            }
        }};
    }
    match source {
        MapSource::Chunk(records) => {
            for record in *records {
                feed!(record);
            }
        }
        MapSource::Part(DataPartition::Mem(records)) => {
            for record in records {
                feed!(record);
            }
        }
        MapSource::Part(DataPartition::Spilled { file, meta }) => {
            let mut reader = RunReader::new(Arc::clone(file), *meta);
            while let Some((_h, (), record)) = reader.next::<(), I>()? {
                feed!(&record);
            }
        }
    }
    let emitted = emitter.emitted;
    // Final map-side combine over the leftover buffer: inside the
    // timed task (for the measured rate mode) *and* declared as one
    // work unit per scanned record (for the deterministic
    // work_unit_secs mode), so its CPU cost lands in the simulated
    // map phase like a real combiner's would instead of being
    // booked as free.
    let shuffled_in_mem = match &spec.combine {
        Some(c) => {
            combine_work += emitter.buffer.len() as u64;
            c(&mut emitter.buffer) as u64
        }
        None => emitter.buffer.len() as u64,
    };
    let spill = emitter.buffer.take_spill();
    let spilled = spill.as_ref().map_or(0, |s| s.records);
    let peak_buffered = emitter.buffer.peak_buffered() as u64;
    // Remote transport: serialize this task's output into its own
    // exchange file and register it with the stage's run server *inside*
    // the timed task — runs are servable the moment the task finishes,
    // the writing overlaps the map wave, and the in-memory buffers are
    // freed here instead of being held until the exchange.
    let (parts, published) = match remote {
        Some(remote) => {
            remote
                .publish_task(task as u64, emitter.buffer.into_parts(), spill.as_ref())
                .map_err(|e| JobError::Transport {
                    message: format!("publishing map task {task} runs: {e}"),
                })?;
            (Vec::new(), Some(task as u64))
        }
        None => (emitter.buffer.into_parts(), None),
    };
    let cpu_secs = start.elapsed().as_secs_f64();
    let work = task_input + emitted + combine_work + spilled + emitter.work_units;
    Ok(MapTaskOut {
        cpu_secs,
        work,
        input: task_input,
        emitted,
        shuffled: shuffled_in_mem + spilled,
        peak_buffered,
        parts,
        spill,
        published,
        counters: emitter.counters,
    })
}

/// One reduce task: groups its partition's segments (in-memory, or a
/// streaming k-way sort-merge when anything spilled) and feeds each key's
/// values to `reduce`. Returns the measured task plus — for dataset
/// stages — the finished output partition to deliver downstream. Runs on
/// a pool worker. `attempt > 0` (a speculative copy) suffixes the merge
/// scratch and stage-output file names so concurrent attempts never
/// collide; a losing attempt's files are swept with the job directories.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn run_reduce_task<'f, I, K, V, O>(
    spec: &StageSpec<'f, I, K, V, O>,
    shuffle: &ShuffleConfig,
    dataset_sink: bool,
    stage_out_dir: Option<&Path>,
    merge_scratch: Option<&Path>,
    machines: usize,
    partition: usize,
    attempt: usize,
    segments: Vec<Segment<K, V>>,
) -> Result<(ReduceTaskOut<O>, Option<DataPartition<O>>), JobError>
where
    K: Hash + Eq + Spill,
    V: Spill,
    O: Spill,
{
    let mut sink = OutputSink::new();
    let mut out_writer: Option<SpillWriter> = None;
    let mut max_group = 0u64;
    let mut n_groups = 0u64;
    let mut work = 0u64;
    let mut merge = MergeEffort::default();
    let start = Instant::now();
    if segments.iter().any(Segment::is_spilled) {
        // External path: stream a k-way sort-merge over the sorted
        // spill/exchange runs and the (sorted-on-the-fly)
        // in-memory segments, reducing each key as its run
        // completes — the partition is never materialized. With a
        // merge fan-in cap, runs beyond the cap are first folded
        // hierarchically into scratch runs. Group order: ascending
        // key fingerprint.
        merge = merge_segments_capped(
            segments,
            shuffle.merge_fan_in,
            merge_scratch.map(|dir| {
                if attempt == 0 {
                    dir.join(format!("reduce{partition}.merge"))
                } else {
                    dir.join(format!("reduce{partition}.s{attempt}.merge"))
                }
            }),
            |key, values| {
                let n_values = values.len() as u64;
                max_group = max_group.max(n_values);
                n_groups += 1;
                work += n_values;
                (spec.reduce)(&key, values, &mut sink);
                if let Some(dir) = stage_out_dir {
                    drain_stage_output(&mut sink, &mut out_writer, dir, partition, attempt)?;
                }
                Ok(())
            },
        )?;
    } else {
        // In-memory path: group by key, remembering each key's
        // first occurrence so the group order within a partition
        // is deterministic (segments arrive in map-task order).
        let mut groups: HashMap<K, (usize, Vec<V>), crate::hash::FxBuildHasher> =
            HashMap::default();
        let mut pos = 0usize;
        for segment in segments {
            let Segment::Mem(records) = segment else {
                // tsjlint:allow(no-panic-in-data-plane) the merge arm above consumed every spilled segment
                unreachable!("spilled segments take the merge path");
            };
            for (_h, k, v) in records {
                groups
                    .entry(k)
                    .or_insert_with(|| (pos, Vec::new()))
                    .1
                    .push(v);
                pos += 1;
            }
        }
        // tsjlint:allow(no-hashmap-iter-in-output-path) drained in arbitrary order but sorted by first-occurrence position on the next line, before anything is emitted
        let mut ordered: Vec<(K, (usize, Vec<V>))> = groups.into_iter().collect();
        ordered.sort_unstable_by_key(|(_, (pos, _))| *pos);
        n_groups = ordered.len() as u64;
        for (key, (_, values)) in ordered {
            let n_values = values.len() as u64;
            max_group = max_group.max(n_values);
            work += n_values;
            (spec.reduce)(&key, values, &mut sink);
            if let Some(dir) = stage_out_dir {
                drain_stage_output(&mut sink, &mut out_writer, dir, partition, attempt)
                    .map_err(JobError::from)?;
            }
        }
    }
    let cpu_secs = start.elapsed().as_secs_f64();
    work += sink.emitted + sink.work_units;
    let part: Option<DataPartition<O>> = match (dataset_sink, out_writer) {
        // Bounded dataset stage: the sink was drained after every
        // group, so the run file *is* the partition.
        (_, Some(writer)) => {
            let meta = RunMeta {
                offset: 0,
                bytes: writer.bytes(),
                records: writer.records(),
            };
            let (file, _path) = writer.into_reader().map_err(|e| JobError::Spill {
                message: format!("stage output finalize failed: {e}"),
            })?;
            Some(DataPartition::Spilled { file, meta })
        }
        // Unbounded dataset stage: hand the buffer over as-is.
        (true, None) if !sink.out.is_empty() => {
            Some(DataPartition::Mem(std::mem::take(&mut sink.out)))
        }
        _ => None,
    };
    Ok((
        ReduceTaskOut {
            machine: partition % machines,
            cpu_secs,
            work,
            groups: n_groups,
            max_group,
            merge,
            emitted: sink.emitted,
            out: sink.out,
            counters: sink.counters,
        },
        part,
    ))
}

/// Drains a reduce sink's buffered output records into the task's
/// stage-output run file (created lazily on first output), so a
/// dataset-producing reduce task under a bounded shuffle never holds more
/// than one group's output in memory. Records are framed in the spill
/// wire format with a zero fingerprint and a unit key — the next stage
/// streams them back as plain values. I/O failures surface as a
/// [`SpillError`](crate::spill::SpillError), which the job path converts
/// into [`JobError::Spill`] — a full disk fails the job, not the process.
fn drain_stage_output<O: Spill>(
    sink: &mut OutputSink<O>,
    writer: &mut Option<SpillWriter>,
    dir: &Path,
    partition: usize,
    attempt: usize,
) -> Result<(), crate::spill::SpillError> {
    if sink.out.is_empty() {
        return Ok(());
    }
    let writer = match writer.take() {
        Some(w) => writer.insert(w),
        None => {
            // Speculative copies write attempt-suffixed run files so
            // concurrent attempts of one partition never collide.
            let path = if attempt == 0 {
                dir.join(format!("part{partition}.run"))
            } else {
                dir.join(format!("part{partition}.s{attempt}.run"))
            };
            writer.insert(SpillWriter::create(path)?)
        }
    };
    for record in sink.out.drain(..) {
        writer.write_record(0u64, &(), &record)?;
    }
    Ok(())
}

/// Converts measured `(cpu_secs, work_units)` samples into simulated
/// loads: every sample is charged its work units at the *job-wide* rate
/// `Σ cpu / Σ work`, scaled by `cpu_scale`.
///
/// Rationale: tasks and reduce partitions are often microseconds long, and
/// a single OS preemption inflates one measurement by orders of magnitude;
/// multiplied by `cpu_scale` that would masquerade as a straggler machine.
/// Charging declared work at one aggregate measured rate makes the
/// simulated load distribution *deterministic* given the data (only the
/// global rate is measured, over a large sample), while genuine skew is
/// preserved because hot tasks/partitions declare proportionally more work
/// (records in + records out + explicit [`add_work`] units).
///
/// [`add_work`]: crate::job::OutputSink::add_work
fn proportional_loads(samples: impl Iterator<Item = (f64, u64)>, cost: &CostModel) -> Vec<f64> {
    let samples: Vec<(f64, u64)> = samples.collect();
    let total_work: u64 = samples.iter().map(|(_, w)| w).sum();
    if total_work == 0 {
        return vec![0.0; samples.len()];
    }
    let rate = if cost.work_unit_secs > 0.0 {
        cost.work_unit_secs
    } else {
        let total_cpu: f64 = samples.iter().map(|(c, _)| c).sum();
        total_cpu / total_work as f64
    };
    samples
        .iter()
        .map(|&(_, w)| w as f64 * rate * cost.cpu_scale)
        .collect()
}

/// Computes makespan/total/skew for a phase from per-unit loads, where each
/// load is already assigned to a distinct simulated machine.
fn phase_sim(loads: &[f64], machines: usize) -> PhaseSim {
    if loads.is_empty() {
        return PhaseSim::default();
    }
    let makespan = loads.iter().copied().fold(0.0, f64::max);
    let total: f64 = loads.iter().sum();
    let mean = total / machines.max(1) as f64;
    let skew = if mean > 0.0 { makespan / mean } else { 1.0 };
    PhaseSim {
        makespan_secs: makespan,
        total_cpu_secs: total,
        skew,
    }
}
