//! The lazy job-graph executor: typed feeds between stages, a builder
//! that lowers a [`Dataset`](crate::dataset::Dataset) plan tree into stage
//! drivers, and the scheduler that runs them with **partition-level
//! cross-stage overlap** on one shared worker pool.
//!
//! # Execution model
//!
//! A built graph is a set of *stage drivers* (one lightweight thread per
//! pending stage — blocked on channels most of their life) plus a shared
//! [`Pool`] of exactly `threads` compute workers. Stages are connected by
//! [`Feed`]s: a stage's reduce tasks deliver each finished output
//! partition into the downstream feed *the moment the task completes*, and
//! the downstream driver submits the map task for that partition
//! immediately — so an upstream reduce wave overlaps the downstream map
//! wave on the same workers, with no oversubscription (compute only ever
//! runs on the pool). `union` is pure feed plumbing: both producers
//! deliver into one consumer feed, so merging candidate streams is fused
//! into the producers' waves and costs no stage of its own.
//!
//! # Determinism
//!
//! Overlap changes *when* work runs, never what it computes: every feed
//! item carries a deterministic ordinal (producer build order × task
//! index), consumers re-order their map-task outputs by ordinal at the
//! shuffle barrier, and everything downstream of that barrier is the
//! engine's existing deterministic machinery. Output is byte-identical to
//! executing the stages one at a time (property-tested in
//! `crates/core/tests/dataset_equivalence.rs`).
//!
//! # Failure
//!
//! A failing stage records its [`JobError`] in its stats slot and marks
//! its output feed failed; downstream drivers abort without recording
//! anything, and [`gather`] surfaces the first failed stage's error in
//! build order. Nothing panics across threads, and every spill/exchange/
//! stage-output directory guard rides the feeds, so a failing graph leaves
//! no temp files behind.

pub mod analyze;

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use crate::dag::analyze::{critical_path_depth, NodeKind, PlanInfo, PlanNodeInfo};
use crate::dataset::DataPartition;
use crate::job::{JobError, JobStats};
use crate::pool::{lock, Pool, SchedulerConfig};
use crate::report::SimReport;
use crate::spill::SpillDirGuard;

/// One ready input of a stage's map wave.
pub(crate) enum MapSource<'a, I> {
    /// A chunk of a borrowed driver slice (the classic `run*` path).
    Chunk(&'a [I]),
    /// A runtime-resident partition: an upstream reduce task's output, a
    /// materialized dataset partition, or a driver-input chunk lifted into
    /// the runtime by the dataset layer.
    Part(DataPartition<I>),
}

/// What a consumer's `recv` yielded.
pub(crate) enum Recv<'a, I> {
    /// One ready map input, tagged with its deterministic ordinal.
    Item(u64, MapSource<'a, I>),
    /// All producers closed; `failed` is true when any of them failed (the
    /// consumer must abort without reporting — the failed producer's slot
    /// carries the error).
    Closed { failed: bool },
}

struct FeedState<'a, I> {
    items: VecDeque<(u64, MapSource<'a, I>)>,
    open_producers: usize,
    failed: bool,
    /// Driver-resident records entering the runtime through this feed
    /// (booked as the consuming stage's `driver_in_records`).
    driver_in: u64,
    /// Directory guards backing spilled items; the consumer holds them
    /// until its map wave has streamed every run back.
    guards: Vec<Arc<SpillDirGuard>>,
}

/// The typed channel between producer waves and the consumer stage (or
/// the terminal collector). Cheap to clone; one consumer, any number of
/// registered producers.
pub(crate) struct Feed<'a, I> {
    inner: Arc<(Mutex<FeedState<'a, I>>, Condvar)>,
}

impl<I> Clone for Feed<'_, I> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<'a, I> Feed<'a, I> {
    pub(crate) fn new() -> Self {
        Self {
            inner: Arc::new((
                Mutex::new(FeedState {
                    items: VecDeque::new(),
                    open_producers: 0,
                    failed: false,
                    driver_in: 0,
                    guards: Vec::new(),
                }),
                Condvar::new(),
            )),
        }
    }

    /// Registers one producer (called at build time, before execution).
    pub(crate) fn register_producer(&self) {
        lock(&self.inner.0).open_producers += 1;
    }

    /// Delivers one ready map input.
    pub(crate) fn push(&self, ordinal: u64, source: MapSource<'a, I>) {
        lock(&self.inner.0).items.push_back((ordinal, source));
        self.inner.1.notify_all();
    }

    /// Books driver-resident records crossing into the runtime here.
    pub(crate) fn add_driver_in(&self, records: u64) {
        lock(&self.inner.0).driver_in += records;
    }

    /// Attaches a directory guard backing this feed's spilled items.
    pub(crate) fn add_guard(&self, guard: Arc<SpillDirGuard>) {
        lock(&self.inner.0).guards.push(guard);
    }

    /// One producer finished (`ok = false` marks the feed failed).
    pub(crate) fn close_producer(&self, ok: bool) {
        let mut st = lock(&self.inner.0);
        st.open_producers = st.open_producers.saturating_sub(1);
        if !ok {
            st.failed = true;
        }
        drop(st);
        self.inner.1.notify_all();
    }

    /// Blocks until an item is available, all producers closed, or a
    /// producer failed (failure short-circuits pending items: the graph is
    /// doomed, so the consumer aborts at once).
    pub(crate) fn recv(&self) -> Recv<'a, I> {
        let mut st = lock(&self.inner.0);
        loop {
            if st.failed {
                return Recv::Closed { failed: true };
            }
            if let Some((ordinal, source)) = st.items.pop_front() {
                return Recv::Item(ordinal, source);
            }
            if st.open_producers == 0 {
                return Recv::Closed { failed: false };
            }
            st = self.inner.1.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Takes the guards accumulated so far (consumer, at its map barrier).
    pub(crate) fn take_guards(&self) -> Vec<Arc<SpillDirGuard>> {
        std::mem::take(&mut lock(&self.inner.0).guards)
    }

    /// Driver-boundary records accumulated so far (consumer, at its map
    /// barrier — every producer has closed by then).
    pub(crate) fn driver_in(&self) -> u64 {
        lock(&self.inner.0).driver_in
    }

    /// Drains a *terminal* feed after execution: all delivered items (in
    /// arrival order; callers sort by ordinal), the guards keeping spilled
    /// items alive, and the pending driver-crossing count.
    #[allow(clippy::type_complexity)]
    pub(crate) fn drain_terminal(
        &self,
    ) -> (Vec<(u64, MapSource<'a, I>)>, Vec<Arc<SpillDirGuard>>, u64) {
        let mut st = lock(&self.inner.0);
        (
            std::mem::take(&mut st.items).into(),
            std::mem::take(&mut st.guards),
            st.driver_in,
        )
    }
}

/// A stage's result slot: its [`JobStats`] on success, its [`JobError`]
/// on failure, `None` when the stage never ran (upstream failure).
pub(crate) struct StatsSlot {
    result: Mutex<Option<Result<JobStats, JobError>>>,
}

impl StatsSlot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
        }
    }

    pub(crate) fn set(&self, result: Result<JobStats, JobError>) {
        *lock(&self.result) = Some(result);
    }

    fn take(&self) -> Option<Result<JobStats, JobError>> {
        lock(&self.result).take()
    }
}

/// One stage driver: orchestrates a stage's waves on the shared pool.
/// Runs on its own (mostly blocked) thread inside [`execute`].
pub(crate) type DriverThunk<'a> = Box<dyn FnOnce(&Pool<'a>) + Send + 'a>;

/// Lowers a plan tree into drivers + slots, assigning each producer its
/// deterministic ordinal base in build order.
pub(crate) struct Builder<'a> {
    pub(crate) thunks: Vec<DriverThunk<'a>>,
    pub(crate) slots: Vec<Arc<StatsSlot>>,
    next_base: u64,
    /// Structural shadow of the lowered graph, fed to [`analyze`] before
    /// execution. Consumers are recorded before their producers, so a
    /// node's consumer id is always smaller than its own.
    nodes: Vec<PlanNodeInfo>,
}

impl<'a> Builder<'a> {
    pub(crate) fn new() -> Self {
        Self {
            thunks: Vec::new(),
            slots: Vec::new(),
            next_base: 0,
            nodes: Vec::new(),
        }
    }

    /// Records one plan node (its id) for pre-execution analysis.
    pub(crate) fn add_node(&mut self, kind: NodeKind, consumer: Option<usize>) -> usize {
        let id = self.nodes.len();
        self.nodes.push(PlanNodeInfo { id, consumer, kind });
        id
    }

    /// Critical-path depth of a recorded node: hops along its consumer
    /// chain to the collected terminal. Used as the node's stage task
    /// priority — upstream stages outrank downstream ones, so the
    /// scheduler keeps producers ahead of the consumers waiting on them
    /// (cross-stage overlap by policy, not by luck).
    pub(crate) fn depth_of(&self, id: usize) -> u32 {
        critical_path_depth(&self.nodes, id)
    }

    /// The structural graph recorded so far, for [`analyze::analyze_plan`].
    pub(crate) fn plan_info(&self) -> PlanInfo {
        PlanInfo::from_nodes(self.nodes.clone())
    }

    /// The next producer's ordinal base: items are tagged
    /// `base << 32 | task_index`, so sorting by ordinal reproduces
    /// "producers in build order, tasks in index order" — exactly the
    /// partition order one-stage-at-a-time execution would see.
    pub(crate) fn next_base(&mut self) -> u64 {
        let base = self.next_base;
        self.next_base += 1;
        base << 32
    }

    /// Allocates the stats slot of the stage being built (slot order =
    /// build order = report order).
    pub(crate) fn new_slot(&mut self) -> Arc<StatsSlot> {
        let slot = Arc::new(StatsSlot::new());
        self.slots.push(Arc::clone(&slot));
        slot
    }
}

/// Runs a built graph: `threads` shared pool workers (scheduling per
/// `sched`) plus one driver thread per stage, all scoped. Returns when
/// every driver has finished and the pool has drained.
pub(crate) fn execute(threads: usize, sched: SchedulerConfig, thunks: Vec<DriverThunk<'_>>) {
    let threads = threads.max(1);
    let pool = Pool::new(threads, sched);
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let pool = &pool;
            scope.spawn(move || pool.run_worker(worker));
        }
        let drivers: Vec<_> = thunks
            .into_iter()
            .map(|thunk| scope.spawn(|| thunk(&pool)))
            .collect();
        for driver in drivers {
            // Driver bodies capture their own panics; a join error here
            // would mean the thunk wrapper itself panicked, which the
            // wrappers are written not to do. Either way the feeds'
            // Drop/close discipline keeps the remaining drivers exiting —
            // but a wrapper panic is a bug worth hearing about.
            if driver.join().is_err() {
                eprintln!("tsj-mapreduce: a stage driver panicked outside its capture wrapper");
            }
        }
        pool.shutdown();
    });
}

/// Collects every slot into a [`SimReport`] in build order, or the first
/// failed stage's error.
pub(crate) fn gather(slots: &[Arc<StatsSlot>]) -> Result<SimReport, JobError> {
    let mut report = SimReport::new();
    let mut first_err: Option<JobError> = None;
    let mut missing = false;
    for slot in slots {
        match slot.take() {
            Some(Ok(stats)) => report.push(stats),
            Some(Err(e)) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            None => missing = true,
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    if missing {
        // A stage was skipped without any stage reporting an error —
        // cannot happen unless a driver died outside its own capture.
        return Err(JobError::WorkerPanic {
            phase: "stage",
            message: "a stage driver exited without reporting".to_owned(),
        });
    }
    Ok(report)
}
