//! Plan-time analysis of lowered [`Dataset`](crate::dataset::Dataset) job
//! graphs.
//!
//! Lowering a plan tree records one [`PlanNodeInfo`] per node (inputs,
//! materialized partition sets, stages) with its consumer edge, and
//! [`analyze_plan`] runs a set of structural checks over that graph
//! *before* any stage executes:
//!
//! * **`empty-input`** — a stage whose transitive static inputs carry zero
//!   records: it can never produce output, so either the graph wiring or
//!   the data feeding it is wrong.
//! * **`unreachable-stage`** — a node whose consumer chain never reaches
//!   the collected terminal: its work would be computed and discarded.
//! * **`union-partition-mismatch`** — a union whose recorded stage
//!   producers are configured with different shuffle partition counts, so
//!   downstream map parallelism is unbalanced by construction. Only
//!   *recorded stages* are compared: materialized partition counts are
//!   data-dependent (empty partitions are dropped), not a plan property.
//! * **`terminal-repartition`** — a
//!   [`repartition`](crate::dataset::Dataset::repartition) stage feeding
//!   the terminal directly: collect concatenates every partition anyway,
//!   so the extra shuffle pass only reorders driver-bound records.
//! * **`uncombined-dedup-foldable`** — a stage shuffling zero-sized
//!   values without a combiner: the reducer can only observe key
//!   presence, so a [`Dedup`](crate::shuffle::Dedup) combiner would fold
//!   shuffle volume at no semantic cost (the paper's map-side-aggregation
//!   argument, Sec. III-G1).
//! * **`merge-fan-in-hazard`** — under the active
//!   [`ShuffleConfig`](crate::shuffle::ShuffleConfig), a spilling stage
//!   whose estimated incoming segment count exceeds
//!   [`MERGE_FAN_IN_BUDGET`] while no
//!   [`merge_fan_in`](crate::shuffle::ShuffleConfig::merge_fan_in) cap is
//!   set: its reduce tasks may open one file handle per spilled run.
//!
//! Diagnostics surface through
//! [`SimReport::plan_diagnostics`](crate::report::SimReport::plan_diagnostics)
//! (warn mode, the default) or fail the terminal with
//! [`JobError::Plan`](crate::job::JobError::Plan) when the cluster runs
//! with [`PlanCheck::Deny`] (`TSJ_PLAN_CHECK=deny`, or
//! [`Cluster::with_plan_check`](crate::cluster::Cluster::with_plan_check)).

use crate::shuffle::ShuffleConfig;

/// Reduce tasks merging more sorted runs than this in one pass are flagged
/// when no [`merge_fan_in`](crate::shuffle::ShuffleConfig::merge_fan_in)
/// cap bounds them — a typical per-process open-file budget share for one
/// worker's k-way merge.
pub const MERGE_FAN_IN_BUDGET: usize = 64;

/// Structural metadata of one recorded stage (see [`NodeKind::Stage`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageInfo {
    /// The stage name (as reported in [`JobStats`](crate::job::JobStats)).
    pub name: String,
    /// Configured shuffle partition count.
    pub partitions: usize,
    /// Whether the stage runs a map-side combiner.
    pub combined: bool,
    /// Whether the shuffle value type is zero-sized (`()`-like): the
    /// reducer can only observe key presence and multiplicity.
    pub value_is_zst: bool,
    /// Whether this is a [`repartition`](crate::dataset::Dataset::repartition)
    /// stage (identity re-routing, no user reduce logic).
    pub is_repartition: bool,
}

/// What one plan node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A driver-resident input slice ([`Cluster::input`](crate::cluster::Cluster::input)).
    Input {
        /// Records the slice holds.
        records: u64,
        /// Map tasks the consuming stage will chunk it into.
        tasks: usize,
    },
    /// Already-executed stage output resident in the runtime.
    Materialized {
        /// Non-empty partitions held.
        partitions: usize,
        /// Total records across them.
        records: u64,
    },
    /// A recorded, not-yet-executed stage.
    Stage(StageInfo),
}

/// One node of a lowered plan, with its consumer edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNodeInfo {
    /// Node id (index into [`PlanInfo::nodes`]). Consumers are always
    /// recorded before their producers, so `consumer < id` in lowered
    /// plans.
    pub id: usize,
    /// The node consuming this node's output; `None` for producers feeding
    /// the collected terminal.
    pub consumer: Option<usize>,
    /// What the node is.
    pub kind: NodeKind,
}

impl PlanNodeInfo {
    /// Display name for diagnostics.
    fn label(&self) -> String {
        match &self.kind {
            NodeKind::Input { records, .. } => format!("input({records} records)"),
            NodeKind::Materialized { partitions, .. } => {
                format!("materialized({partitions} partitions)")
            }
            NodeKind::Stage(s) => s.name.clone(),
        }
    }

    /// Statically estimated number of output partitions this node delivers
    /// to its consumer's map wave.
    fn output_partitions(&self) -> usize {
        match &self.kind {
            NodeKind::Input { tasks, .. } => *tasks,
            NodeKind::Materialized { partitions, .. } => *partitions,
            NodeKind::Stage(s) => s.partitions,
        }
    }
}

/// The structural graph a plan lowered into — what [`analyze_plan`] runs
/// over.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanInfo {
    nodes: Vec<PlanNodeInfo>,
}

impl PlanInfo {
    /// Builds a plan graph from explicit nodes (the builder records them
    /// during lowering; tests construct synthetic shapes directly).
    pub fn from_nodes(nodes: Vec<PlanNodeInfo>) -> Self {
        Self { nodes }
    }

    /// All recorded nodes, in lowering order (consumers before producers).
    pub fn nodes(&self) -> &[PlanNodeInfo] {
        &self.nodes
    }

    /// Critical-path depth of a node — see [`critical_path_depth`].
    pub fn depth_of(&self, id: usize) -> u32 {
        critical_path_depth(&self.nodes, id)
    }
}

/// Critical-path depth of node `id`: hops along its consumer chain to the
/// collected terminal (`consumer: None`). The terminal's direct producers
/// have depth 1, their producers 2, and so on — so *upstream* nodes carry
/// *higher* depths. The scheduler uses this as task priority: scheduling
/// upstream stages first keeps every downstream consumer fed, which is
/// the policy form of cross-stage overlap. Dangling edges and cycles
/// (possible only in synthetic graphs) stop the walk instead of looping.
pub fn critical_path_depth(nodes: &[PlanNodeInfo], id: usize) -> u32 {
    let mut depth = 0u32;
    let mut cur = id;
    // Hop budget = node count: a well-formed chain can't be longer, and a
    // cyclic synthetic graph terminates instead of spinning.
    for _ in 0..nodes.len() {
        match nodes.get(cur).and_then(|n| n.consumer) {
            Some(c) if c < nodes.len() => {
                depth += 1;
                cur = c;
            }
            _ => break,
        }
    }
    depth
}

/// Partition skew of a materialized boundary: the largest partition's
/// record count over the mean across the given (non-empty) partitions.
/// `1.0` means perfectly balanced; the auto-repartition response
/// ([`Cluster::with_auto_repartition`](crate::cluster::Cluster::with_auto_repartition))
/// triggers when this crosses its configured ratio. Degenerate inputs
/// (fewer than two partitions, or no records) report `1.0` — never
/// skewed.
pub fn partition_skew(records: &[u64]) -> f64 {
    if records.len() < 2 {
        return 1.0;
    }
    let total: u64 = records.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let max = records.iter().copied().max().unwrap_or(0);
    let mean = total as f64 / records.len() as f64;
    max as f64 / mean
}

/// One structural finding about a lowered plan. Stable codes (see
/// [`PlanDiagnostic::code`]) make the set greppable; `Display` renders the
/// human-readable explanation.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanDiagnostic {
    /// A stage whose transitive static inputs are empty.
    EmptyInput {
        /// The orphaned stage's name.
        stage: String,
    },
    /// A node whose output never reaches the collected terminal.
    Unreachable {
        /// The dangling node's label.
        node: String,
    },
    /// A union mixing stage producers configured with different partition
    /// counts.
    UnionPartitionMismatch {
        /// The consumer the union feeds (`collect` for the terminal).
        consumer: String,
        /// The producers' configured partition counts, in build order.
        partitions: Vec<usize>,
    },
    /// A repartition stage feeding the terminal directly.
    TerminalRepartition {
        /// The repartition stage's name.
        stage: String,
    },
    /// A repartition whose shuffle pass cannot usefully change the data's
    /// layout: its consumer immediately repartitions again, or its
    /// partition count equals what its stage producers already deliver.
    RedundantRepartition {
        /// The repartition stage's name.
        stage: String,
        /// `Some(consumer_name)` when the consumer repartitions again;
        /// `None` when the count matches the producers'.
        chained_into: Option<String>,
        /// The repartition's configured partition count.
        partitions: usize,
    },
    /// A stage shuffling zero-sized values without a combiner.
    UncombinedDedupFoldable {
        /// The stage's name.
        stage: String,
    },
    /// A spilling stage whose estimated merge fan-in exceeds the budget
    /// with no configured cap.
    MergeFanInHazard {
        /// The stage's name.
        stage: String,
        /// Statically estimated incoming segment count (≥ one sorted run
        /// per producing task under a spilling shuffle).
        incoming: usize,
        /// The budget it exceeds ([`MERGE_FAN_IN_BUDGET`]).
        budget: usize,
    },
}

impl PlanDiagnostic {
    /// Stable machine-readable code for this diagnostic kind.
    pub fn code(&self) -> &'static str {
        match self {
            PlanDiagnostic::EmptyInput { .. } => "empty-input",
            PlanDiagnostic::Unreachable { .. } => "unreachable-stage",
            PlanDiagnostic::UnionPartitionMismatch { .. } => "union-partition-mismatch",
            PlanDiagnostic::TerminalRepartition { .. } => "terminal-repartition",
            PlanDiagnostic::RedundantRepartition { .. } => "redundant-repartition",
            PlanDiagnostic::UncombinedDedupFoldable { .. } => "uncombined-dedup-foldable",
            PlanDiagnostic::MergeFanInHazard { .. } => "merge-fan-in-hazard",
        }
    }
}

impl std::fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanDiagnostic::EmptyInput { stage } => write!(
                f,
                "[empty-input] stage `{stage}` consumes a statically empty input \
                 and can never produce output"
            ),
            PlanDiagnostic::Unreachable { node } => write!(
                f,
                "[unreachable-stage] node `{node}` never reaches the collected \
                 terminal; its work would be discarded"
            ),
            PlanDiagnostic::UnionPartitionMismatch {
                consumer,
                partitions,
            } => write!(
                f,
                "[union-partition-mismatch] union into `{consumer}` mixes stage \
                 partition counts {partitions:?}; downstream map parallelism is \
                 unbalanced by construction"
            ),
            PlanDiagnostic::TerminalRepartition { stage } => write!(
                f,
                "[terminal-repartition] `{stage}` feeds collect directly; the \
                 extra shuffle pass only reorders driver-bound records"
            ),
            PlanDiagnostic::RedundantRepartition {
                stage,
                chained_into: Some(consumer),
                ..
            } => write!(
                f,
                "[redundant-repartition] `{stage}` feeds `{consumer}`, which \
                 immediately repartitions again; the first shuffle pass is wasted"
            ),
            PlanDiagnostic::RedundantRepartition {
                stage,
                chained_into: None,
                partitions,
            } => write!(
                f,
                "[redundant-repartition] `{stage}` repartitions to {partitions} \
                 partitions — the count its producers already deliver; the shuffle \
                 pass moves every record without changing the layout"
            ),
            PlanDiagnostic::UncombinedDedupFoldable { stage } => write!(
                f,
                "[uncombined-dedup-foldable] stage `{stage}` shuffles zero-sized \
                 values without a combiner; a Dedup combiner would fold shuffle \
                 volume at no semantic cost"
            ),
            PlanDiagnostic::MergeFanInHazard {
                stage,
                incoming,
                budget,
            } => write!(
                f,
                "[merge-fan-in-hazard] stage `{stage}` may merge ~{incoming} \
                 spilled runs per reduce task (budget {budget}) under the active \
                 spilling ShuffleConfig; set merge_fan_in to bound open files"
            ),
        }
    }
}

/// Whether diagnosed plans still execute.
///
/// `TSJ_PLAN_CHECK` selects the mode for clusters built through
/// [`Cluster::new`](crate::cluster::Cluster::new);
/// [`Cluster::with_plan_check`](crate::cluster::Cluster::with_plan_check)
/// pins it programmatically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanCheck {
    /// Record diagnostics in the terminal's
    /// [`SimReport`](crate::report::SimReport) and execute anyway (the
    /// default).
    #[default]
    Warn,
    /// Fail the terminal with [`JobError::Plan`](crate::job::JobError)
    /// before any stage executes — for tests pinning graphs clean.
    Deny,
}

impl PlanCheck {
    /// Stable lowercase name (what `TSJ_PLAN_CHECK` accepts).
    pub fn name(&self) -> &'static str {
        match self {
            PlanCheck::Warn => "warn",
            PlanCheck::Deny => "deny",
        }
    }

    /// Parses a `TSJ_PLAN_CHECK` value (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "warn" => Some(PlanCheck::Warn),
            "deny" => Some(PlanCheck::Deny),
            _ => None,
        }
    }

    /// The default with the `TSJ_PLAN_CHECK` environment override applied;
    /// invalid values fall back loudly (one stderr line), like
    /// [`ShuffleConfig::from_env`](crate::shuffle::ShuffleConfig::from_env).
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var_os(name))
    }

    pub(crate) fn from_lookup(lookup: impl Fn(&str) -> Option<std::ffi::OsString>) -> Self {
        match lookup("TSJ_PLAN_CHECK") {
            None => PlanCheck::default(),
            Some(raw) => match raw.to_str().and_then(PlanCheck::parse) {
                Some(mode) => mode,
                None => {
                    eprintln!(
                        "tsj-mapreduce: ignoring invalid TSJ_PLAN_CHECK={raw:?} \
                         (expected \"warn\" or \"deny\"); using warn mode"
                    );
                    PlanCheck::default()
                }
            },
        }
    }
}

/// Runs every structural check over a lowered plan under the given
/// shuffle configuration. Diagnostics come out grouped by check, each
/// group in node order.
pub fn analyze_plan(plan: &PlanInfo, shuffle: &ShuffleConfig) -> Vec<PlanDiagnostic> {
    let nodes = plan.nodes();
    let n = nodes.len();
    let mut diags = Vec::new();

    // Producer lists per consumer (terminal producers kept separately).
    let mut producers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut terminal_producers: Vec<usize> = Vec::new();
    for node in nodes {
        match node.consumer {
            Some(c) if c < n => producers[c].push(node.id),
            // Dangling consumer edge: the reachability walk flags it.
            Some(_) => {}
            None => terminal_producers.push(node.id),
        }
    }

    // ---- unreachable-stage -------------------------------------------
    for node in nodes {
        if !reaches_terminal(nodes, node.id) {
            diags.push(PlanDiagnostic::Unreachable { node: node.label() });
        }
    }

    // ---- empty-input --------------------------------------------------
    // Static output record counts, bottom-up. Consumers are recorded
    // before their producers (consumer id < producer id), so a reverse
    // scan visits producers first. A stage's output count is unknowable
    // statically — except when its entire input is statically empty, in
    // which case it is empty too (and orphaned).
    let mut static_out: Vec<Option<u64>> = vec![None; n];
    for id in (0..n).rev() {
        static_out[id] = match &nodes[id].kind {
            NodeKind::Input { records, .. } => Some(*records),
            NodeKind::Materialized { records, .. } => Some(*records),
            NodeKind::Stage(s) => {
                let feeding = &producers[id];
                let input_records: Option<u64> = if feeding.is_empty() {
                    // Synthetic graphs may omit producers; nothing to say.
                    None
                } else {
                    feeding.iter().map(|&p| static_out[p]).sum::<Option<u64>>()
                };
                match input_records {
                    Some(0) => {
                        diags.push(PlanDiagnostic::EmptyInput {
                            stage: s.name.clone(),
                        });
                        Some(0)
                    }
                    _ => None,
                }
            }
        };
    }

    // ---- union-partition-mismatch ------------------------------------
    // Compare configured partition counts only across *stage* producers:
    // materialized/input partition counts are data-dependent, not a plan
    // property.
    let mut check_union = |consumer: String, prods: &[usize]| {
        if prods.len() < 2 {
            return;
        }
        let stage_parts: Vec<usize> = prods
            .iter()
            .filter(|&&p| matches!(nodes[p].kind, NodeKind::Stage(_)))
            .map(|&p| nodes[p].output_partitions())
            .collect();
        if stage_parts.len() >= 2 && stage_parts.windows(2).any(|w| w[0] != w[1]) {
            diags.push(PlanDiagnostic::UnionPartitionMismatch {
                consumer,
                partitions: stage_parts,
            });
        }
    };
    for (cid, prods) in producers.iter().enumerate() {
        check_union(nodes[cid].label(), prods);
    }
    check_union("collect".to_owned(), &terminal_producers);

    // ---- terminal-repartition ----------------------------------------
    for node in nodes {
        if let NodeKind::Stage(s) = &node.kind {
            if s.is_repartition && node.consumer.is_none() {
                diags.push(PlanDiagnostic::TerminalRepartition {
                    stage: s.name.clone(),
                });
            }
        }
    }

    // ---- redundant-repartition ---------------------------------------
    for node in nodes {
        let NodeKind::Stage(s) = &node.kind else {
            continue;
        };
        if !s.is_repartition {
            continue;
        }
        // Chained: the consumer repartitions again, so this pass's layout
        // never survives to a computation.
        if let Some(c) = node.consumer.filter(|&c| c < n) {
            if let NodeKind::Stage(cs) = &nodes[c].kind {
                if cs.is_repartition {
                    diags.push(PlanDiagnostic::RedundantRepartition {
                        stage: s.name.clone(),
                        chained_into: Some(cs.name.clone()),
                        partitions: s.partitions,
                    });
                    continue;
                }
            }
        }
        // Count-equal: every producer is a stage already configured for
        // the same partition count. Input/materialized producer counts
        // are data-dependent, not a plan property, so mixed graphs stay
        // silent — same reasoning as the union check above.
        let prods = &producers[node.id];
        if !prods.is_empty()
            && prods
                .iter()
                .all(|&p| matches!(nodes[p].kind, NodeKind::Stage(_)))
            && prods
                .iter()
                .all(|&p| nodes[p].output_partitions() == s.partitions)
        {
            diags.push(PlanDiagnostic::RedundantRepartition {
                stage: s.name.clone(),
                chained_into: None,
                partitions: s.partitions,
            });
        }
    }

    // ---- uncombined-dedup-foldable -----------------------------------
    for node in nodes {
        if let NodeKind::Stage(s) = &node.kind {
            if s.value_is_zst && !s.combined && !s.is_repartition {
                diags.push(PlanDiagnostic::UncombinedDedupFoldable {
                    stage: s.name.clone(),
                });
            }
        }
    }

    // ---- merge-fan-in-hazard -----------------------------------------
    // Under a spilling shuffle every producing task contributes at least
    // one sorted run per reduce partition; without a merge_fan_in cap the
    // reduce-side k-way merge opens them all at once.
    if shuffle.spill_threshold.is_some() && shuffle.merge_fan_in.is_none() {
        for node in nodes {
            if !matches!(node.kind, NodeKind::Stage(_)) {
                continue;
            }
            let incoming: usize = producers[node.id]
                .iter()
                .map(|&p| nodes[p].output_partitions())
                .sum();
            if incoming > MERGE_FAN_IN_BUDGET {
                diags.push(PlanDiagnostic::MergeFanInHazard {
                    stage: node.label(),
                    incoming,
                    budget: MERGE_FAN_IN_BUDGET,
                });
            }
        }
    }

    diags
}

/// Whether following consumer edges from `id` reaches a terminal
/// (`consumer: None`) without cycling or dangling.
fn reaches_terminal(nodes: &[PlanNodeInfo], id: usize) -> bool {
    let mut cur = id;
    for _ in 0..=nodes.len() {
        match nodes[cur].consumer {
            None => return true,
            Some(c) if c < nodes.len() => cur = c,
            Some(_) => return false,
        }
    }
    false // cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(id: usize, consumer: Option<usize>, name: &str) -> PlanNodeInfo {
        PlanNodeInfo {
            id,
            consumer,
            kind: NodeKind::Stage(StageInfo {
                name: name.to_owned(),
                partitions: 8,
                combined: false,
                value_is_zst: false,
                is_repartition: false,
            }),
        }
    }

    fn input(id: usize, consumer: Option<usize>, records: u64, tasks: usize) -> PlanNodeInfo {
        PlanNodeInfo {
            id,
            consumer,
            kind: NodeKind::Input { records, tasks },
        }
    }

    #[test]
    fn clean_chain_has_no_diagnostics() {
        let plan = PlanInfo::from_nodes(vec![stage(0, None, "reduce"), input(1, Some(0), 100, 4)]);
        assert!(analyze_plan(&plan, &ShuffleConfig::default()).is_empty());
    }

    #[test]
    fn empty_input_propagates_down_a_chain() {
        // terminal stage <- interior stage <- empty input
        let plan = PlanInfo::from_nodes(vec![
            stage(0, None, "last"),
            stage(1, Some(0), "first"),
            input(2, Some(1), 0, 1),
        ]);
        let diags = analyze_plan(&plan, &ShuffleConfig::default());
        let empties: Vec<&str> = diags
            .iter()
            .filter_map(|d| match d {
                PlanDiagnostic::EmptyInput { stage } => Some(stage.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(empties, ["first", "last"]);
    }

    #[test]
    fn dangling_consumer_is_unreachable() {
        let plan = PlanInfo::from_nodes(vec![stage(0, Some(7), "lost")]);
        let diags = analyze_plan(&plan, &ShuffleConfig::default());
        assert!(diags
            .iter()
            .any(|d| matches!(d, PlanDiagnostic::Unreachable { node } if node == "lost")));
    }

    #[test]
    fn consumer_cycle_is_unreachable() {
        let mut a = stage(0, Some(1), "a");
        let b = stage(1, Some(0), "b");
        a.consumer = Some(1);
        let plan = PlanInfo::from_nodes(vec![a, b]);
        let diags = analyze_plan(&plan, &ShuffleConfig::default());
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.code() == "unreachable-stage")
                .count(),
            2
        );
    }

    #[test]
    fn union_mismatch_ignores_materialized_producers() {
        // Two stage producers with equal counts plus a materialized side
        // with a different (data-dependent) count: clean.
        let mat = PlanNodeInfo {
            id: 3,
            consumer: Some(0),
            kind: NodeKind::Materialized {
                partitions: 3,
                records: 10,
            },
        };
        let plan = PlanInfo::from_nodes(vec![
            stage(0, None, "consumer"),
            stage(1, Some(0), "left"),
            stage(2, Some(0), "right"),
            mat,
            input(4, Some(1), 5, 2),
            input(5, Some(2), 5, 2),
        ]);
        assert!(analyze_plan(&plan, &ShuffleConfig::default()).is_empty());
    }

    #[test]
    fn merge_fan_in_hazard_needs_spilling_config_without_cap() {
        let wide_input = input(1, Some(0), 10_000, 100);
        let plan = PlanInfo::from_nodes(vec![stage(0, None, "wide"), wide_input]);
        // Unbounded: clean.
        assert!(analyze_plan(&plan, &ShuffleConfig::default()).is_empty());
        // Spilling without a cap: hazard.
        let spilling = ShuffleConfig::bounded(32, 48);
        let diags = analyze_plan(&plan, &spilling);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d, PlanDiagnostic::MergeFanInHazard { incoming: 100, .. })),
            "{diags:?}"
        );
        // Spilling with a cap: clean again.
        assert!(analyze_plan(&plan, &spilling.with_merge_fan_in(8)).is_empty());
    }

    fn repart(id: usize, consumer: Option<usize>, name: &str, partitions: usize) -> PlanNodeInfo {
        PlanNodeInfo {
            id,
            consumer,
            kind: NodeKind::Stage(StageInfo {
                name: name.to_owned(),
                partitions,
                combined: false,
                value_is_zst: false,
                is_repartition: true,
            }),
        }
    }

    #[test]
    fn chained_repartitions_flag_the_upstream_pass() {
        // consumer stage <- repartition(8) <- repartition(4) <- input
        let plan = PlanInfo::from_nodes(vec![
            stage(0, None, "consume"),
            repart(1, Some(0), "repartition(8)", 8),
            repart(2, Some(1), "repartition(4)", 4),
            input(3, Some(2), 100, 2),
        ]);
        let diags = analyze_plan(&plan, &ShuffleConfig::default());
        let codes: Vec<&str> = diags.iter().map(|d| d.code()).collect();
        assert_eq!(codes, ["redundant-repartition"], "{diags:?}");
        assert!(matches!(
            &diags[0],
            PlanDiagnostic::RedundantRepartition {
                stage,
                chained_into: Some(c),
                ..
            } if stage == "repartition(4)" && c == "repartition(8)"
        ));
    }

    #[test]
    fn same_count_repartition_after_a_stage_is_flagged() {
        // consumer <- repartition(8) <- producer stage (8 partitions)
        let plan = PlanInfo::from_nodes(vec![
            stage(0, None, "consume"),
            repart(1, Some(0), "repartition(8)", 8),
            stage(2, Some(1), "produce"),
            input(3, Some(2), 100, 2),
        ]);
        let diags = analyze_plan(&plan, &ShuffleConfig::default());
        assert!(
            diags.iter().any(|d| matches!(
                d,
                PlanDiagnostic::RedundantRepartition {
                    chained_into: None,
                    partitions: 8,
                    ..
                }
            )),
            "{diags:?}"
        );
    }

    #[test]
    fn repartition_from_inputs_or_to_new_counts_is_clean() {
        // Input-fed repartition: the input's task count is data-dependent,
        // so no count claim is possible.
        let from_input = PlanInfo::from_nodes(vec![
            stage(0, None, "consume"),
            repart(1, Some(0), "repartition(8)", 8),
            input(2, Some(1), 100, 8),
        ]);
        assert!(analyze_plan(&from_input, &ShuffleConfig::default()).is_empty());
        // A genuine layout change: producer at 8, repartition to 4.
        let reshapes = PlanInfo::from_nodes(vec![
            stage(0, None, "consume"),
            repart(1, Some(0), "repartition(4)", 4),
            stage(2, Some(1), "produce"),
            input(3, Some(2), 100, 2),
        ]);
        assert!(analyze_plan(&reshapes, &ShuffleConfig::default()).is_empty());
    }

    #[test]
    fn plan_check_parses_and_defaults() {
        assert_eq!(PlanCheck::parse("deny"), Some(PlanCheck::Deny));
        assert_eq!(PlanCheck::parse(" WARN "), Some(PlanCheck::Warn));
        assert_eq!(PlanCheck::parse("nope"), None);
        assert_eq!(PlanCheck::from_lookup(|_| None), PlanCheck::Warn);
        assert_eq!(
            PlanCheck::from_lookup(|k| (k == "TSJ_PLAN_CHECK").then(|| "deny".into())),
            PlanCheck::Deny
        );
        assert_eq!(
            PlanCheck::from_lookup(|_| Some("garbage".into())),
            PlanCheck::Warn
        );
        assert_eq!(PlanCheck::Deny.name(), "deny");
    }

    #[test]
    fn critical_path_depth_counts_hops_to_the_terminal() {
        // terminal stage <- interior stage <- input
        let plan = PlanInfo::from_nodes(vec![
            stage(0, None, "last"),
            stage(1, Some(0), "first"),
            input(2, Some(1), 10, 2),
        ]);
        assert_eq!(plan.depth_of(0), 0);
        assert_eq!(plan.depth_of(1), 1);
        assert_eq!(plan.depth_of(2), 2);
        // Cycles and dangling edges terminate instead of spinning.
        let mut a = stage(0, Some(1), "a");
        let b = stage(1, Some(0), "b");
        a.consumer = Some(1);
        let cyclic = PlanInfo::from_nodes(vec![a, b]);
        assert_eq!(cyclic.depth_of(0), 2);
        let dangling = PlanInfo::from_nodes(vec![stage(0, Some(9), "lost")]);
        assert_eq!(dangling.depth_of(0), 0);
    }

    #[test]
    fn partition_skew_is_max_over_mean() {
        assert_eq!(partition_skew(&[]), 1.0);
        assert_eq!(partition_skew(&[100]), 1.0);
        assert_eq!(partition_skew(&[0, 0]), 1.0);
        assert_eq!(partition_skew(&[10, 10, 10, 10]), 1.0);
        // One fat partition: 40 vs mean 10 → skew 4.
        assert_eq!(partition_skew(&[40, 0, 0, 0]), 4.0);
        assert!((partition_skew(&[30, 5, 5]) - 2.25).abs() < 1e-12);
    }

    #[test]
    fn diagnostics_render_their_codes() {
        let d = PlanDiagnostic::UncombinedDedupFoldable { stage: "x".into() };
        assert_eq!(d.code(), "uncombined-dedup-foldable");
        assert!(d.to_string().contains("[uncombined-dedup-foldable]"));
        assert!(d.to_string().contains('x'));
    }
}
