//! Dataset handles: chaining pipeline stages inside the runtime.
//!
//! The classic [`Cluster::run*`](crate::cluster::Cluster::run) entry
//! points materialize every job's output as one driver-side `Vec` — fine
//! for a single job, but a multi-stage pipeline chained through such
//! `Vec`s holds every intermediate candidate set in driver memory no
//! matter how tightly the [`ShuffleConfig`](crate::shuffle::ShuffleConfig)
//! bounds the workers. A [`Dataset`] is the runtime-resident alternative
//! (the same move Spark-style dataflow engines make over raw MapReduce):
//!
//! * [`Cluster::input`] lifts a driver slice into a handle;
//! * [`Dataset::map_reduce`] / [`Dataset::map_reduce_combined`] (and
//!   their `_with_group_overhead` variants) run one MapReduce stage whose
//!   output *stays inside the runtime* as partition segments — per-reduce-
//!   task in-memory buffers, or (under a bounded shuffle) sorted-run files
//!   in the spill wire format ([`crate::spill`]) drained group-by-group;
//! * the next stage's map wave runs **one map task per partition**,
//!   streaming each segment directly (a [`RunReader`] per spilled run), so
//!   interior stages move records worker-to-worker without ever crossing
//!   the driver boundary ([`JobStats::driver_in_records`] /
//!   [`JobStats::driver_out_records`] are zero for them);
//! * [`Dataset::union`] concatenates two handles' partitions, so merging
//!   candidate streams needs no driver-side `Vec::extend`;
//! * [`Dataset::collect`] (or the streaming [`Dataset::for_each_output`])
//!   is the only point where records cross back into driver memory, booked
//!   onto the producing job's `driver_out_records`.
//!
//! Every handle carries the [`SimReport`] accumulated over the stages that
//! built it; `collect` hands it back alongside the records.
//!
//! Stages execute eagerly — a `map_reduce` call runs its job before
//! returning — so the "graph" is the chain of handles itself, and stage
//! closures may freely borrow driver state (corpus, filters, bitmaps).
//!
//! ```
//! use tsj_mapreduce::{Cluster, Count, Emitter, OutputSink};
//!
//! let cluster = Cluster::with_machines(4);
//! let docs = ["a b a", "b c"].map(String::from);
//! // Stage 1 (word count) flows into stage 2 (count histogram) without
//! // the intermediate (word, count) records ever landing driver-side.
//! let (histogram, report) = cluster
//!     .input(&docs)
//!     .map_reduce_combined(
//!         "wordcount",
//!         |doc: &String, e: &mut Emitter<String, u64>| {
//!             for w in doc.split_whitespace() {
//!                 e.emit(w.to_owned(), 1);
//!             }
//!         },
//!         &Count,
//!         |w: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
//!             out.emit((w.clone(), counts.iter().sum()));
//!         },
//!     )
//!     .unwrap()
//!     .map_reduce_combined(
//!         "histogram",
//!         |&(_, n): &(String, u64), e: &mut Emitter<u64, u64>| e.emit(n, 1),
//!         &Count,
//!         |&n: &u64, ones: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
//!             out.emit((n, ones.iter().sum()));
//!         },
//!     )
//!     .unwrap()
//!     .collect();
//! let mut histogram = histogram;
//! histogram.sort_unstable();
//! assert_eq!(histogram, vec![(1, 1), (2, 2)]); // {a: 2, b: 2, c: 1}
//! assert_eq!(report.jobs().len(), 2);
//! assert_eq!(report.jobs()[0].driver_out_records, 0); // interior stage
//! ```
//!
//! [`JobStats::driver_in_records`]: crate::job::JobStats::driver_in_records
//! [`JobStats::driver_out_records`]: crate::job::JobStats::driver_out_records
//! [`RunReader`]: crate::spill::RunReader

use std::fs::File;
use std::hash::Hash;
use std::sync::Arc;

use crate::cluster::{Cluster, CombineFn, SinkMode, StageInput};
use crate::job::{Emitter, JobError, OutputSink};
use crate::report::SimReport;
use crate::shuffle::{Combiner, PartitionedBuffer};
use crate::spill::{RunMeta, RunReader, Spill, SpillDirGuard};

/// One partition of a stage's output, resident in the runtime: the
/// in-memory buffer of one reduce task, or a sorted-run file in the spill
/// wire format (zero fingerprint, unit key) that the task drained its
/// output into under a bounded shuffle.
#[derive(Debug)]
pub enum DataPartition<T> {
    /// A reduce task's in-memory output buffer.
    Mem(Vec<T>),
    /// A reduce task's output run on disk (kept alive by the owning
    /// [`Dataset`]'s directory guard).
    Spilled {
        /// Read-only handle on the stage-output run file.
        file: Arc<File>,
        /// The run's location (the whole file, for stage output).
        meta: RunMeta,
    },
}

impl<T> DataPartition<T> {
    /// Records in this partition.
    pub fn records(&self) -> u64 {
        match self {
            DataPartition::Mem(v) => v.len() as u64,
            DataPartition::Spilled { meta, .. } => meta.records,
        }
    }
}

impl<T: Spill> DataPartition<T> {
    /// Streams every record to `f` (decoding spilled runs one record at a
    /// time; in-memory partitions are moved out).
    fn drain(self, f: &mut impl FnMut(T)) {
        match self {
            DataPartition::Mem(records) => records.into_iter().for_each(&mut *f),
            DataPartition::Spilled { file, meta } => {
                let mut reader = RunReader::new(file, meta);
                while let Some((_h, (), record)) = reader.next::<(), T>() {
                    f(record);
                }
            }
        }
    }
}

/// Where a dataset's records currently live.
enum Source<T> {
    /// Driver memory, not yet through any stage ([`Cluster::input`]). The
    /// first stage chunks it exactly like the classic `run*` path (one map
    /// task per simulated machine) and books the records as
    /// `driver_in_records`.
    Driver(Vec<T>),
    /// Partitioned output of one or more stages, resident in the runtime.
    Parts {
        parts: Vec<DataPartition<T>>,
        /// Directory guards keeping spilled stage-output runs alive.
        guards: Vec<Arc<SpillDirGuard>>,
    },
}

/// A handle on partitioned records inside the runtime — see the [module
/// docs](self) for the programming model.
pub struct Dataset<'c, T> {
    cluster: &'c Cluster,
    source: Source<T>,
    report: SimReport,
    /// Index (into `report`) of the job that produced the current
    /// partitions; `collect` books the driver crossing there. `None` for
    /// fresh inputs and unions (a union's partitions have two producers).
    producer: Option<usize>,
    /// Driver-resident records hiding inside `Source::Parts` because a
    /// union converted a fresh input into partitions; the next stage adds
    /// them to its `driver_in_records` so the boundary accounting stays
    /// exact for every graph shape.
    pending_driver_in: u64,
}

impl<T> std::fmt::Debug for Dataset<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (partitions, resident) = match &self.source {
            Source::Driver(records) => (1, format!("driver({} records)", records.len())),
            Source::Parts { parts, .. } => (parts.len(), "runtime".to_owned()),
        };
        f.debug_struct("Dataset")
            .field("partitions", &partitions)
            .field("resident", &resident)
            .field("jobs", &self.report.jobs().len())
            .finish()
    }
}

impl Cluster {
    /// Lifts a driver-resident slice into a [`Dataset`] handle, the entry
    /// point of a chained job graph. The records cross the driver boundary
    /// when the first stage consumes them (booked as that job's
    /// [`driver_in_records`](crate::job::JobStats::driver_in_records)).
    ///
    /// Clones the slice; when the caller has an owned `Vec` to give away,
    /// [`Cluster::input_vec`] avoids the copy.
    pub fn input<T: Clone>(&self, records: &[T]) -> Dataset<'_, T> {
        self.input_vec(records.to_vec())
    }

    /// [`Cluster::input`] taking ownership — no copy of the records.
    pub fn input_vec<T>(&self, records: Vec<T>) -> Dataset<'_, T> {
        Dataset {
            cluster: self,
            source: Source::Driver(records),
            report: SimReport::new(),
            producer: None,
            pending_driver_in: 0,
        }
    }
}

impl<'c, T: Sync + Spill> Dataset<'c, T> {
    /// Runs one MapReduce stage over this dataset; the output stays
    /// partitioned in the runtime (see the [module docs](self)).
    pub fn map_reduce<K, V, O, M, R>(
        self,
        name: &str,
        map: M,
        reduce: R,
    ) -> Result<Dataset<'c, O>, JobError>
    where
        K: Hash + Eq + Send + Spill,
        V: Send + Spill,
        O: Send + Spill,
        M: Fn(&T, &mut Emitter<K, V>) + Sync,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        let overhead = self.cluster.config().cost.reduce_group_overhead_secs;
        self.stage(name, overhead, map, None, reduce)
    }

    /// [`Dataset::map_reduce`] with a map-side [`Combiner`] (same contract
    /// as [`Cluster::run_combined`](crate::cluster::Cluster::run_combined)).
    pub fn map_reduce_combined<K, V, O, M, C, R>(
        self,
        name: &str,
        map: M,
        combiner: &C,
        reduce: R,
    ) -> Result<Dataset<'c, O>, JobError>
    where
        K: Hash + Eq + Clone + Send + Spill,
        V: Send + Spill,
        O: Send + Spill,
        M: Fn(&T, &mut Emitter<K, V>) + Sync,
        C: Combiner<K, V>,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        let overhead = self.cluster.config().cost.reduce_group_overhead_secs;
        let combine = |buffer: &mut PartitionedBuffer<K, V>| buffer.combine(combiner);
        self.stage(name, overhead, map, Some(&combine), reduce)
    }

    /// [`Dataset::map_reduce`] with an explicit per-reduce-group worker
    /// overhead (verification stages; see
    /// [`Cluster::run_with_group_overhead`](crate::cluster::Cluster::run_with_group_overhead)).
    pub fn map_reduce_with_group_overhead<K, V, O, M, R>(
        self,
        name: &str,
        group_overhead_secs: f64,
        map: M,
        reduce: R,
    ) -> Result<Dataset<'c, O>, JobError>
    where
        K: Hash + Eq + Send + Spill,
        V: Send + Spill,
        O: Send + Spill,
        M: Fn(&T, &mut Emitter<K, V>) + Sync,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        self.stage(name, group_overhead_secs, map, None, reduce)
    }

    /// [`Dataset::map_reduce_combined`] with an explicit per-reduce-group
    /// worker overhead.
    pub fn map_reduce_combined_with_group_overhead<K, V, O, M, C, R>(
        self,
        name: &str,
        group_overhead_secs: f64,
        map: M,
        combiner: &C,
        reduce: R,
    ) -> Result<Dataset<'c, O>, JobError>
    where
        K: Hash + Eq + Clone + Send + Spill,
        V: Send + Spill,
        O: Send + Spill,
        M: Fn(&T, &mut Emitter<K, V>) + Sync,
        C: Combiner<K, V>,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        let combine = |buffer: &mut PartitionedBuffer<K, V>| buffer.combine(combiner);
        self.stage(name, group_overhead_secs, map, Some(&combine), reduce)
    }

    /// The shared stage runner behind the four `map_reduce*` variants.
    fn stage<K, V, O, M, R>(
        self,
        name: &str,
        group_overhead_secs: f64,
        map: M,
        combine: Option<CombineFn<'_, K, V>>,
        reduce: R,
    ) -> Result<Dataset<'c, O>, JobError>
    where
        K: Hash + Eq + Send + Spill,
        V: Send + Spill,
        O: Send + Spill,
        M: Fn(&T, &mut Emitter<K, V>) + Sync,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Sync,
    {
        let Dataset {
            cluster,
            source,
            mut report,
            pending_driver_in,
            ..
        } = self;
        let mut result = match &source {
            Source::Driver(records) => cluster.run_stage(
                name,
                group_overhead_secs,
                StageInput::Slice(records),
                map,
                combine,
                reduce,
                SinkMode::Dataset,
            )?,
            Source::Parts { parts, .. } => cluster.run_stage(
                name,
                group_overhead_secs,
                StageInput::Parts(parts),
                map,
                combine,
                reduce,
                SinkMode::Dataset,
            )?,
        };
        // Driver records a union folded into the partitions cross the
        // boundary here, at their first map wave (the engine only counts
        // the Slice path itself).
        result.stats.driver_in_records += pending_driver_in;
        // The previous stage's buffers and run files are consumed; free
        // them (and their directories) before handing the new stage back.
        drop(source);
        report.push(result.stats);
        let producer = Some(report.jobs().len() - 1);
        Ok(Dataset {
            cluster,
            source: Source::Parts {
                parts: result.parts,
                guards: result.guard.into_iter().collect(),
            },
            report,
            producer,
            pending_driver_in: 0,
        })
    }

    /// Concatenates two datasets' partitions (candidate streams merging
    /// into one downstream stage). Reports are concatenated too — `self`'s
    /// jobs first. Both handles must come from the same [`Cluster`].
    ///
    /// Driver-boundary accounting stays exact for every shape: a fresh
    /// input folded in by the union books its records as
    /// `driver_in_records` on the next stage. A union has no single
    /// producing job, though, so *collecting* it directly books the
    /// outbound crossing on no job; route unions into a stage (the normal
    /// case) for exact outbound accounting.
    pub fn union(self, other: Dataset<'c, T>) -> Dataset<'c, T> {
        assert!(
            std::ptr::eq(self.cluster, other.cluster),
            "union requires datasets of the same cluster"
        );
        let cluster = self.cluster;
        let (mut parts, mut guards, mut report, pending) = self.into_parts();
        let (other_parts, other_guards, other_report, other_pending) = other.into_parts();
        parts.extend(other_parts);
        guards.extend(other_guards);
        report.extend(other_report);
        Dataset {
            cluster,
            source: Source::Parts { parts, guards },
            report,
            producer: None,
            pending_driver_in: pending + other_pending,
        }
    }

    /// Decomposes into partitions + guards + report + the driver-resident
    /// record count still awaiting its inbound crossing, converting a
    /// driver source into the partition layout its first stage would have
    /// seen (one chunk per simulated machine).
    #[allow(clippy::type_complexity)]
    fn into_parts(
        self,
    ) -> (
        Vec<DataPartition<T>>,
        Vec<Arc<SpillDirGuard>>,
        SimReport,
        u64,
    ) {
        match self.source {
            Source::Parts { parts, guards } => (parts, guards, self.report, self.pending_driver_in),
            Source::Driver(records) => {
                let pending = self.pending_driver_in + records.len() as u64;
                let (tasks, chunk) = self.cluster.slice_chunking(records.len());
                let mut records = records;
                let mut parts = Vec::with_capacity(tasks);
                while !records.is_empty() {
                    let tail = records.split_off(chunk.min(records.len()));
                    parts.push(DataPartition::Mem(std::mem::replace(&mut records, tail)));
                }
                (parts, Vec::new(), self.report, pending)
            }
        }
    }

    /// Brings every record back into driver memory (concatenated in
    /// partition order) together with the accumulated report — the job
    /// graph's terminal. The crossing is booked onto the producing job's
    /// [`driver_out_records`](crate::job::JobStats::driver_out_records).
    pub fn collect(self) -> (Vec<T>, SimReport) {
        let mut out = Vec::new();
        let report = self.drain_into(&mut |record| out.push(record));
        (out, report)
    }

    /// Streams every record to `f` in partition order without building a
    /// driver-side `Vec` (spilled partitions decode one record at a time).
    /// Returns the accumulated report; the crossing is booked like
    /// [`Dataset::collect`].
    pub fn for_each_output(self, mut f: impl FnMut(T)) -> SimReport {
        self.drain_into(&mut f)
    }

    fn drain_into(self, f: &mut impl FnMut(T)) -> SimReport {
        let producer = self.producer;
        let had_stages = matches!(self.source, Source::Parts { .. });
        let (parts, guards, mut report, _never_ran) = self.into_parts();
        let mut crossed = 0u64;
        for part in parts {
            part.drain(&mut |record| {
                crossed += 1;
                f(record);
            });
        }
        drop(guards);
        if had_stages {
            if let Some(i) = producer {
                report.jobs_mut()[i].driver_out_records += crossed;
            }
        }
        report
    }

    /// Total records currently held across all partitions.
    pub fn records(&self) -> u64 {
        match &self.source {
            Source::Driver(records) => records.len() as u64,
            Source::Parts { parts, .. } => parts.iter().map(DataPartition::records).sum(),
        }
    }

    /// Partition count (0 for a collected-empty stage output; driver
    /// inputs report the chunk count their first stage will use).
    pub fn num_partitions(&self) -> usize {
        match &self.source {
            Source::Driver(records) => self.cluster.slice_chunking(records.len()).0,
            Source::Parts { parts, .. } => parts.len(),
        }
    }

    /// The simulation report accumulated over the stages behind this
    /// handle (consumed by [`Dataset::collect`] /
    /// [`Dataset::for_each_output`]).
    pub fn report(&self) -> &SimReport {
        &self.report
    }

    /// Moves the accumulated report out of the handle (leaving it empty),
    /// so a pipeline interleaving several handles can assemble one report
    /// in true execution order instead of handle-merge order. A later
    /// `collect` of this handle can no longer book its driver crossing on
    /// the producing job (the stats left with the report).
    pub fn take_report(&mut self) -> SimReport {
        self.producer = None;
        std::mem::take(&mut self.report)
    }
}
