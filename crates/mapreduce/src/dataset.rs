//! Dataset handles: lazy job graphs chaining pipeline stages inside the
//! runtime.
//!
//! The classic [`Cluster::run*`](crate::cluster::Cluster::run) entry
//! points materialize every job's output as one driver-side `Vec` — fine
//! for a single job, but a multi-stage pipeline chained through such
//! `Vec`s holds every intermediate candidate set in driver memory no
//! matter how tightly the [`ShuffleConfig`](crate::shuffle::ShuffleConfig)
//! bounds the workers. A [`Dataset`] is the runtime-resident alternative
//! (the same move Spark-style dataflow engines make over raw MapReduce):
//!
//! * [`Cluster::input`] lifts a driver slice into a handle;
//! * [`Dataset::map_reduce`] / [`Dataset::map_reduce_combined`] (and
//!   their `_with_group_overhead` variants) **record one stage in a job
//!   DAG without executing it**; [`Dataset::union`] concatenates two
//!   graphs' output partitions, and [`Dataset::repartition`] records a
//!   key-hash re-routing stage for skewed stage outputs;
//! * a terminal — [`Dataset::collect`], the streaming
//!   [`Dataset::for_each_output`], or [`Dataset::take_report`] — executes
//!   the recorded graph. The executor (the private `dag` module) runs every pending
//!   stage on one shared worker pool with **partition-level cross-stage
//!   overlap**: the moment an upstream reduce task finishes its
//!   partition, the downstream map task for that partition is submitted,
//!   so one stage's reduce wave overlaps the next stage's map wave
//!   instead of idling cores at a stage barrier. `union` is fused into
//!   its producers' waves (pure feed plumbing — no stage of its own).
//!
//! Laziness changes *when* stages run, never what they compute: output is
//! byte-identical to executing each stage at its call site
//! ([`DatasetMode::Eager`], the differential baseline) and to chaining
//! the same jobs through driver `Vec`s — property-tested in
//! `crates/core/tests/dataset_equivalence.rs`.
//!
//! Interior stages move records worker-to-worker: per-reduce-task
//! partitions are in-memory buffers, or (under a bounded shuffle)
//! sorted-run files in the spill wire format ([`crate::spill`]) drained
//! group-by-group and streamed back by the consumer (a [`RunReader`] per
//! run), so neither driver memory nor any single worker ever holds an
//! interior candidate set. [`JobStats::driver_in_records`] /
//! [`JobStats::driver_out_records`] measure the driver boundary: zero for
//! interior stages, the collected output for the terminal one.
//!
//! Stage closures may freely borrow driver state (corpus, filters,
//! bitmaps): the handle's lifetime is the intersection of the cluster
//! borrow and everything the closures capture, and the borrows are only
//! used while a terminal executes.
//!
//! ```
//! use tsj_mapreduce::{Cluster, Count, Emitter, OutputSink};
//!
//! let cluster = Cluster::with_machines(4);
//! let docs = ["a b a", "b c"].map(String::from);
//! // Stage 1 (word count) flows into stage 2 (count histogram) without
//! // the intermediate (word, count) records ever landing driver-side —
//! // and stage 1's reduce overlaps stage 2's map at collect time.
//! let (histogram, report) = cluster
//!     .input(&docs)
//!     .map_reduce_combined(
//!         "wordcount",
//!         |doc: &String, e: &mut Emitter<String, u64>| {
//!             for w in doc.split_whitespace() {
//!                 e.emit(w.to_owned(), 1);
//!             }
//!         },
//!         &Count,
//!         |w: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
//!             out.emit((w.clone(), counts.iter().sum()));
//!         },
//!     )
//!     .unwrap()
//!     .map_reduce_combined(
//!         "histogram",
//!         |&(_, n): &(String, u64), e: &mut Emitter<u64, u64>| e.emit(n, 1),
//!         &Count,
//!         |&n: &u64, ones: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
//!             out.emit((n, ones.iter().sum()));
//!         },
//!     )
//!     .unwrap()
//!     .collect()
//!     .unwrap();
//! let mut histogram = histogram;
//! histogram.sort_unstable();
//! assert_eq!(histogram, vec![(1, 1), (2, 2)]); // {a: 2, b: 2, c: 1}
//! assert_eq!(report.jobs().len(), 2);
//! assert_eq!(report.jobs()[0].driver_out_records, 0); // interior stage
//! ```
//!
//! [`JobStats::driver_in_records`]: crate::job::JobStats::driver_in_records
//! [`JobStats::driver_out_records`]: crate::job::JobStats::driver_out_records
//! [`RunReader`]: crate::spill::RunReader

use std::fs::File;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::cluster::{
    run_stage_streamed, Cluster, CombineFn, MapFn, ReduceFn, StageFailure, StageSink, StageSpec,
};
use crate::dag::analyze::{analyze_plan, partition_skew, NodeKind, PlanCheck, StageInfo};
use crate::dag::{self, Builder, Feed, MapSource, StatsSlot};
use crate::hash::fingerprint64;
use crate::job::{Emitter, JobError, OutputSink};
use crate::pool::panic_message;
use crate::report::SimReport;
use crate::shuffle::Combiner;
use crate::spill::{RunMeta, RunReader, Spill, SpillDirGuard, SpillError};

/// How [`Dataset`] stages execute (`TSJ_DATASET_MODE`, or
/// [`Cluster::with_dataset_mode`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DatasetMode {
    /// Record stages in a job DAG; execute at a terminal with
    /// partition-level cross-stage overlap (the default).
    #[default]
    Lazy,
    /// Execute every stage at its `map_reduce*` call, one stage at a time
    /// — the pre-DAG behaviour, kept as the differential baseline the
    /// lazy scheduler is property-tested against (and for debugging:
    /// errors surface at the call that caused them).
    Eager,
}

impl DatasetMode {
    /// Stable lowercase name (what `TSJ_DATASET_MODE` accepts).
    pub fn name(&self) -> &'static str {
        match self {
            DatasetMode::Lazy => "lazy",
            DatasetMode::Eager => "eager",
        }
    }

    /// Parses a `TSJ_DATASET_MODE` value (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "lazy" => Some(DatasetMode::Lazy),
            "eager" => Some(DatasetMode::Eager),
            _ => None,
        }
    }

    /// The default with the `TSJ_DATASET_MODE` environment override
    /// applied; invalid values fall back loudly (one stderr line), like
    /// [`ShuffleConfig::from_env`](crate::shuffle::ShuffleConfig).
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var_os(name))
    }

    pub(crate) fn from_lookup(lookup: impl Fn(&str) -> Option<std::ffi::OsString>) -> Self {
        match lookup("TSJ_DATASET_MODE") {
            None => DatasetMode::default(),
            Some(raw) => match raw.to_str().and_then(DatasetMode::parse) {
                Some(mode) => mode,
                None => {
                    eprintln!(
                        "tsj-mapreduce: ignoring invalid TSJ_DATASET_MODE={raw:?} \
                         (expected \"lazy\" or \"eager\"); using lazy execution"
                    );
                    DatasetMode::default()
                }
            },
        }
    }
}

/// One partition of a stage's output, resident in the runtime: the
/// in-memory buffer of one reduce task, or a sorted-run file in the spill
/// wire format (zero fingerprint, unit key) that the task drained its
/// output into under a bounded shuffle.
#[derive(Debug)]
pub enum DataPartition<T> {
    /// A reduce task's in-memory output buffer.
    Mem(Vec<T>),
    /// A reduce task's output run on disk (kept alive by the owning
    /// [`Dataset`]'s directory guard).
    Spilled {
        /// Read-only handle on the stage-output run file.
        file: Arc<File>,
        /// The run's location (the whole file, for stage output).
        meta: RunMeta,
    },
}

impl<T> DataPartition<T> {
    /// Records in this partition.
    pub fn records(&self) -> u64 {
        match self {
            DataPartition::Mem(v) => v.len() as u64,
            DataPartition::Spilled { meta, .. } => meta.records,
        }
    }
}

impl<T: Spill> DataPartition<T> {
    /// Streams every record to `f` (decoding spilled runs one record at a
    /// time; in-memory partitions are moved out).
    fn drain(self, f: &mut impl FnMut(T)) -> Result<(), SpillError> {
        match self {
            DataPartition::Mem(records) => {
                records.into_iter().for_each(&mut *f);
                Ok(())
            }
            DataPartition::Spilled { file, meta } => {
                let mut reader = RunReader::new(file, meta);
                while let Some((_h, (), record)) = reader.next::<(), T>()? {
                    f(record);
                }
                Ok(())
            }
        }
    }
}

/// A node producing partitions of `T` — the type-erasure boundary of the
/// plan tree: the stage's input type (and its key/value types) are known
/// only inside the implementation, which owns its child plan and the
/// typed feed connecting them.
trait PlanNode<'a, T>: Send {
    /// Lowers this node (and its whole subtree) into stage drivers,
    /// registering as a producer on `out`. `consumer` is the plan-node id
    /// of the node consuming `out` (`None` for the collected terminal),
    /// recorded for pre-execution analysis.
    fn build(
        self: Box<Self>,
        cluster: &'a Cluster,
        b: &mut Builder<'a>,
        out: Feed<'a, T>,
        consumer: Option<usize>,
    );
}

/// Where a dataset's records currently live (or how to compute them).
enum Plan<'a, T> {
    /// Driver memory, not yet through any stage ([`Cluster::input`]). The
    /// first stage chunks it exactly like the classic `run*` path (one map
    /// task per simulated machine) and books the records as
    /// `driver_in_records`.
    Input(Vec<T>),
    /// Partitioned output of already-executed stages, resident in the
    /// runtime (a forced prefix, or [`DatasetMode::Eager`]).
    Materialized {
        parts: Vec<DataPartition<T>>,
        /// Directory guards keeping spilled stage-output runs alive.
        guards: Vec<Arc<SpillDirGuard>>,
        /// Driver-resident records hiding inside the partitions because a
        /// union (or eager forcing) converted a fresh input; the next
        /// stage books them as `driver_in_records` so the boundary
        /// accounting stays exact for every graph shape.
        driver_pending: u64,
    },
    /// A recorded, not-yet-executed stage (and its upstream subtree).
    Stage(Box<dyn PlanNode<'a, T> + 'a>),
    /// Concatenation of two plans' output partitions (left first).
    Union(Box<Plan<'a, T>>, Box<Plan<'a, T>>),
    /// A previous terminal failed; the error sticks to the handle so
    /// every later terminal re-surfaces it instead of silently yielding
    /// an empty result.
    Failed(JobError),
}

/// A handle on (an unexecuted plan for) partitioned records inside the
/// runtime — see the [module docs](self) for the programming model.
pub struct Dataset<'a, T> {
    cluster: &'a Cluster,
    plan: Plan<'a, T>,
    /// Stats of stages already executed behind this handle.
    report: SimReport,
    /// True when the current `Materialized` partitions were produced by
    /// the last job in `report` — `collect` books its driver crossing
    /// there, mirroring the stage-at-a-time semantics. Cleared by `union`
    /// (two producers) and [`Dataset::take_report`] (the stats left).
    producer_is_last_job: bool,
}

impl<T> std::fmt::Debug for Dataset<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let resident = match &self.plan {
            Plan::Input(records) => format!("driver({} records)", records.len()),
            Plan::Materialized { parts, .. } => format!("runtime({} partitions)", parts.len()),
            Plan::Stage(_) | Plan::Union(..) => "pending".to_owned(),
            Plan::Failed(e) => format!("failed({e})"),
        };
        f.debug_struct("Dataset")
            .field("resident", &resident)
            .field("executed_jobs", &self.report.jobs().len())
            .finish()
    }
}

impl Cluster {
    /// Lifts a driver-resident slice into a [`Dataset`] handle, the entry
    /// point of a job graph. The records cross the driver boundary when
    /// the first stage consumes them (booked as that job's
    /// [`driver_in_records`](crate::job::JobStats::driver_in_records)).
    ///
    /// Clones the slice; when the caller has an owned `Vec` to give away,
    /// [`Cluster::input_vec`] avoids the copy.
    pub fn input<T: Clone>(&self, records: &[T]) -> Dataset<'_, T> {
        self.input_vec(records.to_vec())
    }

    /// [`Cluster::input`] taking ownership — no copy of the records.
    pub fn input_vec<T>(&self, records: Vec<T>) -> Dataset<'_, T> {
        Dataset {
            cluster: self,
            plan: Plan::Input(records),
            report: SimReport::new(),
            producer_is_last_job: false,
        }
    }
}

/// The recorded form of one stage: its spec plus its upstream plan.
struct StagePlan<'a, I, K, V, O> {
    child: Plan<'a, I>,
    spec: StageSpec<'a, I, K, V, O>,
}

impl<'a, I, K, V, O> PlanNode<'a, O> for StagePlan<'a, I, K, V, O>
where
    I: Send + Sync + Spill + 'a,
    K: Hash + Eq + Send + Spill + 'a,
    V: Send + Spill + 'a,
    O: Send + Sync + Spill + 'a,
{
    fn build(
        self: Box<Self>,
        cluster: &'a Cluster,
        b: &mut Builder<'a>,
        out: Feed<'a, O>,
        consumer: Option<usize>,
    ) {
        let base = b.next_base();
        out.register_producer();
        let node = b.add_node(
            NodeKind::Stage(StageInfo {
                name: self.spec.name.clone(),
                partitions: self.spec.partitions,
                combined: self.spec.combine.is_some(),
                value_is_zst: std::mem::size_of::<V>() == 0,
                is_repartition: self.spec.is_repartition,
            }),
            consumer,
        );
        let input: Feed<'a, I> = Feed::new();
        build_plan(self.child, cluster, b, input.clone(), Some(node));
        // Slot allocated after the subtree's: slot order = execution
        // (topological) order, which is what the report shows.
        let slot: Arc<StatsSlot> = b.new_slot();
        let spec = self.spec;
        // Task priority = the stage's critical-path depth: upstream stages
        // outrank the consumers waiting on them, so cross-stage overlap is
        // scheduling policy, not luck. (Consumers are recorded before
        // their producers, so this node's consumer chain — what the depth
        // walks — is complete by now.)
        let priority = b.depth_of(node);
        b.thunks.push(Box::new(move |pool| {
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_stage_streamed(
                    cluster,
                    spec,
                    priority,
                    input,
                    StageSink::Feed {
                        feed: out.clone(),
                        base,
                    },
                    pool,
                )
            }))
            .unwrap_or_else(|p| {
                Err(StageFailure::Job(JobError::WorkerPanic {
                    phase: "stage",
                    message: panic_message(p),
                }))
            });
            let ok = match result {
                Ok(r) => {
                    slot.set(Ok(r.stats));
                    true
                }
                Err(StageFailure::Job(e)) => {
                    slot.set(Err(e));
                    false
                }
                // Upstream failed: its slot carries the error; this stage
                // reports nothing and just propagates the failure mark.
                Err(StageFailure::Upstream) => false,
            };
            out.close_producer(ok);
        }));
    }
}

/// The automatic skew response ([`Cluster::with_auto_repartition`] /
/// `TSJ_AUTO_REPARTITION`): when the child feeding a freshly recorded
/// stage is a *materialized* boundary whose partition sizes cross the
/// configured `max/mean` ratio, insert the existing repartition stage
/// behind the scenes so the fat partition is spread before the consumer's
/// map wave. Only materialized boundaries qualify — a still-lazy upstream
/// stage's partition sizes are unknown at plan time (under
/// [`DatasetMode::Eager`] every boundary is materialized, so the response
/// engages after any skewed stage).
///
/// Works without `T: Clone` (which [`Dataset::repartition`] requires) by
/// round-tripping each record through its [`Spill`] wire encoding: the
/// shuffle key is the same `fingerprint64(bytes)` the manual stage uses,
/// so the auto-inserted stage routes — and therefore orders — records
/// exactly like `repartition(cluster.partitions())` would.
fn maybe_auto_repartition<'a, T: Send + Sync + Spill + 'a>(
    cluster: &'a Cluster,
    plan: Plan<'a, T>,
) -> Plan<'a, T> {
    let Some(ratio) = cluster.auto_repartition() else {
        return plan;
    };
    let skew = match &plan {
        Plan::Materialized { parts, .. } => {
            let mut sizes: Vec<u64> = parts.iter().map(DataPartition::records).collect();
            // Empty partitions never materialize (their reduce tasks are
            // skipped outright), so a stage that hashed everything into
            // one partition surfaces here as a single part. Pad to the
            // cluster's parallelism: output concentrated in fewer
            // partitions than the cluster would use *is* the imbalance
            // being measured.
            if sizes.len() < cluster.partitions() {
                sizes.resize(cluster.partitions(), 0);
            }
            partition_skew(&sizes)
        }
        _ => return plan,
    };
    if skew <= ratio {
        return plan;
    }
    let partitions = cluster.partitions().max(1);
    let spec: StageSpec<'a, T, u64, Vec<u8>, T> = StageSpec {
        name: format!("repartition({partitions}).auto"),
        group_overhead_secs: cluster.config().cost.reduce_group_overhead_secs,
        partitions,
        is_repartition: true,
        map: Box::new(|record: &T, e: &mut Emitter<u64, Vec<u8>>| {
            let mut bytes = Vec::new();
            record.spill(&mut bytes);
            e.emit(fingerprint64(&bytes), bytes);
        }),
        combine: None,
        reduce: Box::new(|_h: &u64, blobs: Vec<Vec<u8>>, out: &mut OutputSink<T>| {
            for blob in blobs {
                let mut buf = blob.as_slice();
                // tsjlint:allow(no-panic-in-data-plane) decoding bytes this stage's own map encoded
                let record = T::restore(&mut buf).expect("auto-repartition wire round-trip");
                out.emit(record);
            }
        }),
    };
    Plan::Stage(Box::new(StagePlan { child: plan, spec }))
}

/// Lowers a plan tree into the builder, delivering its output into `out`.
fn build_plan<'a, T: Send + Sync + Spill + 'a>(
    plan: Plan<'a, T>,
    cluster: &'a Cluster,
    b: &mut Builder<'a>,
    out: Feed<'a, T>,
    consumer: Option<usize>,
) {
    match plan {
        Plan::Input(records) => {
            let base = b.next_base();
            out.register_producer();
            out.add_driver_in(records.len() as u64);
            // Chunk exactly like the classic driver-slice path, so a
            // lifted input sees the same map-task layout either way.
            let (tasks, chunk) = cluster.slice_chunking(records.len());
            b.add_node(
                NodeKind::Input {
                    records: records.len() as u64,
                    tasks,
                },
                consumer,
            );
            let mut records = records;
            let mut idx = 0u64;
            while !records.is_empty() {
                let tail = records.split_off(chunk.min(records.len()));
                let head = std::mem::replace(&mut records, tail);
                out.push(base | idx, MapSource::Part(DataPartition::Mem(head)));
                idx += 1;
            }
            out.close_producer(true);
        }
        Plan::Materialized {
            parts,
            guards,
            driver_pending,
        } => {
            let base = b.next_base();
            out.register_producer();
            out.add_driver_in(driver_pending);
            b.add_node(
                NodeKind::Materialized {
                    partitions: parts.iter().filter(|p| p.records() > 0).count(),
                    records: parts.iter().map(DataPartition::records).sum(),
                },
                consumer,
            );
            for guard in guards {
                out.add_guard(guard);
            }
            for (idx, part) in parts.into_iter().enumerate() {
                if part.records() > 0 {
                    out.push(base | idx as u64, MapSource::Part(part));
                }
            }
            out.close_producer(true);
        }
        Plan::Stage(node) => node.build(cluster, b, out, consumer),
        // tsjlint:allow(no-panic-in-data-plane) force() returns Failed errors before building
        Plan::Failed(_) => unreachable!(
            "failed handles never reach the builder: force() returns their error first"
        ),
        Plan::Union(left, right) => {
            // Left registers (and gets its ordinal base) first, so the
            // consumer's ordinal sort reproduces left-then-right — the
            // same concatenation order stage-at-a-time union used. Both
            // sides share the consumer: a union is feed plumbing, not a
            // plan node of its own.
            build_plan(*left, cluster, b, out.clone(), consumer);
            build_plan(*right, cluster, b, out, consumer);
        }
    }
}

/// What executing a plan yields: its output partitions (ordinal-sorted),
/// the guards keeping spilled ones alive, the pending driver-crossing
/// count, and the executed stages' report in topological order.
type Executed<T> = (
    Vec<DataPartition<T>>,
    Vec<Arc<SpillDirGuard>>,
    u64,
    SimReport,
);

/// Builds and runs a plan's pending stages on a shared pool (one worker
/// per configured thread), with cross-stage overlap.
fn execute_plan<'a, T: Send + Sync + Spill + 'a>(
    cluster: &'a Cluster,
    plan: Plan<'a, T>,
) -> Result<Executed<T>, JobError> {
    let mut b = Builder::new();
    let out: Feed<'a, T> = Feed::new();
    build_plan(plan, cluster, &mut b, out.clone(), None);
    // Analyze the lowered graph before anything runs: in deny mode a
    // diagnosed plan fails here (no driver threads have started, so
    // dropping the unrun thunks is safe); in warn mode the diagnostics
    // ride the terminal's report.
    let diagnostics = analyze_plan(&b.plan_info(), cluster.shuffle_config());
    if cluster.plan_check() == PlanCheck::Deny && !diagnostics.is_empty() {
        let rendered: Vec<String> = diagnostics.iter().map(|d| d.to_string()).collect();
        return Err(JobError::Plan {
            message: rendered.join("; "),
        });
    }
    let slots = b.slots.clone();
    dag::execute(cluster.threads(), cluster.scheduler().clone(), b.thunks);
    let mut report = dag::gather(&slots)?;
    report.add_plan_diagnostics(diagnostics);
    let (mut items, guards, driver_pending) = out.drain_terminal();
    items.sort_unstable_by_key(|(ordinal, _)| *ordinal);
    let parts = items
        .into_iter()
        .map(|(_, source)| match source {
            MapSource::Part(part) => part,
            // Chunk sources exist only on the classic `run*` path, which
            // never flows through a plan.
            // tsjlint:allow(no-panic-in-data-plane) plan feeds never carry Chunk sources
            MapSource::Chunk(_) => unreachable!("plan feeds carry partitions"),
        })
        .collect();
    Ok((parts, guards, driver_pending, report))
}

impl<'a, T: Send + Sync + Spill + 'a> Dataset<'a, T> {
    /// Records one MapReduce stage over this dataset; the stage executes
    /// at the next terminal, and its output stays partitioned in the
    /// runtime (see the [module docs](self)).
    ///
    /// Under [`DatasetMode::Lazy`] (the default) this cannot fail — the
    /// `Result` carries execution errors only in eager mode, where the
    /// stage runs immediately. Terminal calls surface lazy-mode errors.
    pub fn map_reduce<K, V, O, M, R>(
        self,
        name: &str,
        map: M,
        reduce: R,
    ) -> Result<Dataset<'a, O>, JobError>
    where
        K: Hash + Eq + Send + Spill + 'a,
        V: Send + Spill + 'a,
        O: Send + Sync + Spill + 'a,
        M: Fn(&T, &mut Emitter<K, V>) + Send + Sync + 'a,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Send + Sync + 'a,
    {
        let overhead = self.cluster.config().cost.reduce_group_overhead_secs;
        self.stage(
            name,
            overhead,
            None,
            false,
            Box::new(map),
            None,
            Box::new(reduce),
        )
    }

    /// [`Dataset::map_reduce`] with a map-side [`Combiner`] (same contract
    /// as [`Cluster::run_combined`](crate::cluster::Cluster::run_combined);
    /// the combiner is cloned into the recorded stage).
    pub fn map_reduce_combined<K, V, O, M, C, R>(
        self,
        name: &str,
        map: M,
        combiner: &C,
        reduce: R,
    ) -> Result<Dataset<'a, O>, JobError>
    where
        K: Hash + Eq + Clone + Send + Spill + 'a,
        V: Send + Spill + 'a,
        O: Send + Sync + Spill + 'a,
        M: Fn(&T, &mut Emitter<K, V>) + Send + Sync + 'a,
        C: Combiner<K, V> + Clone + Send + 'a,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Send + Sync + 'a,
    {
        let overhead = self.cluster.config().cost.reduce_group_overhead_secs;
        let combiner = combiner.clone();
        let combine: CombineFn<'a, K, V> = Box::new(move |buffer| buffer.combine(&combiner));
        self.stage(
            name,
            overhead,
            None,
            false,
            Box::new(map),
            Some(combine),
            Box::new(reduce),
        )
    }

    /// [`Dataset::map_reduce`] with an explicit per-reduce-group worker
    /// overhead (verification stages; see
    /// [`Cluster::run_with_group_overhead`](crate::cluster::Cluster::run_with_group_overhead)).
    pub fn map_reduce_with_group_overhead<K, V, O, M, R>(
        self,
        name: &str,
        group_overhead_secs: f64,
        map: M,
        reduce: R,
    ) -> Result<Dataset<'a, O>, JobError>
    where
        K: Hash + Eq + Send + Spill + 'a,
        V: Send + Spill + 'a,
        O: Send + Sync + Spill + 'a,
        M: Fn(&T, &mut Emitter<K, V>) + Send + Sync + 'a,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Send + Sync + 'a,
    {
        self.stage(
            name,
            group_overhead_secs,
            None,
            false,
            Box::new(map),
            None,
            Box::new(reduce),
        )
    }

    /// [`Dataset::map_reduce_combined`] with an explicit per-reduce-group
    /// worker overhead.
    pub fn map_reduce_combined_with_group_overhead<K, V, O, M, C, R>(
        self,
        name: &str,
        group_overhead_secs: f64,
        map: M,
        combiner: &C,
        reduce: R,
    ) -> Result<Dataset<'a, O>, JobError>
    where
        K: Hash + Eq + Clone + Send + Spill + 'a,
        V: Send + Spill + 'a,
        O: Send + Sync + Spill + 'a,
        M: Fn(&T, &mut Emitter<K, V>) + Send + Sync + 'a,
        C: Combiner<K, V> + Clone + Send + 'a,
        R: Fn(&K, Vec<V>, &mut OutputSink<O>) + Send + Sync + 'a,
    {
        let combiner = combiner.clone();
        let combine: CombineFn<'a, K, V> = Box::new(move |buffer| buffer.combine(&combiner));
        self.stage(
            name,
            group_overhead_secs,
            None,
            false,
            Box::new(map),
            Some(combine),
            Box::new(reduce),
        )
    }

    /// Records a repartitioning stage: re-routes this dataset's records
    /// into `partitions` shuffle partitions by record hash (the
    /// fingerprint of each record's [`Spill`] encoding) through the
    /// ordinary exchange machinery — the remedy for skewed stage outputs,
    /// where one fat partition would serialize the next stage's map wave.
    /// Record multiset is unchanged; partition *placement* (and hence
    /// concatenation order at `collect`) follows the hash routing, which
    /// is a pure function of the data.
    pub fn repartition(self, partitions: usize) -> Result<Dataset<'a, T>, JobError>
    where
        T: Clone + 'a,
    {
        let overhead = self.cluster.config().cost.reduce_group_overhead_secs;
        let name = format!("repartition({partitions})");
        self.stage(
            &name,
            overhead,
            Some(partitions.max(1)),
            true,
            Box::new(|record: &T, e: &mut Emitter<u64, T>| {
                let mut bytes = Vec::new();
                record.spill(&mut bytes);
                e.emit(fingerprint64(&bytes), record.clone());
            }),
            None,
            Box::new(|_h: &u64, records: Vec<T>, out: &mut OutputSink<T>| {
                for record in records {
                    out.emit(record);
                }
            }),
        )
    }

    /// The shared stage recorder behind the `map_reduce*` variants: wraps
    /// this plan in a [`StagePlan`] node (and, in eager mode, executes it
    /// immediately).
    #[allow(clippy::too_many_arguments)]
    fn stage<K, V, O>(
        self,
        name: &str,
        group_overhead_secs: f64,
        partitions_override: Option<usize>,
        is_repartition: bool,
        map: MapFn<'a, T, K, V>,
        combine: Option<CombineFn<'a, K, V>>,
        reduce: ReduceFn<'a, K, V, O>,
    ) -> Result<Dataset<'a, O>, JobError>
    where
        K: Hash + Eq + Send + Spill + 'a,
        V: Send + Spill + 'a,
        O: Send + Sync + Spill + 'a,
    {
        let Dataset {
            cluster,
            plan,
            report,
            ..
        } = self;
        let plan = if is_repartition {
            // Never auto-repartition under an explicit repartition stage.
            plan
        } else {
            maybe_auto_repartition(cluster, plan)
        };
        let spec = StageSpec {
            name: name.to_owned(),
            group_overhead_secs,
            partitions: partitions_override.unwrap_or_else(|| cluster.partitions()),
            is_repartition,
            map,
            combine,
            reduce,
        };
        let mut next = Dataset {
            cluster,
            plan: Plan::Stage(Box::new(StagePlan { child: plan, spec })),
            report,
            producer_is_last_job: false,
        };
        if cluster.dataset_mode() == DatasetMode::Eager {
            next.force()?;
        }
        Ok(next)
    }

    /// Concatenates two datasets' output partitions (candidate streams
    /// merging into one downstream stage) — pure graph plumbing, fused
    /// into the producers' waves at execution time. Already-executed
    /// reports are concatenated too, `self`'s jobs first. Both handles
    /// must come from the same [`Cluster`].
    ///
    /// Driver-boundary accounting stays exact for every shape: a fresh
    /// input folded in by the union books its records as
    /// `driver_in_records` on the next stage. A union has no single
    /// producing job, though, so *collecting* it directly books the
    /// outbound crossing on no job; route unions into a stage (the normal
    /// case) for exact outbound accounting.
    pub fn union(self, other: Dataset<'a, T>) -> Dataset<'a, T> {
        assert!(
            std::ptr::eq(self.cluster, other.cluster),
            "union requires datasets of the same cluster"
        );
        let mut report = self.report;
        report.extend(other.report);
        Dataset {
            cluster: self.cluster,
            plan: Plan::Union(Box::new(self.plan), Box::new(other.plan)),
            report,
            producer_is_last_job: false,
        }
    }

    /// Executes every pending stage behind this handle (the terminals call
    /// this; so do [`Dataset::records`] and [`DatasetMode::Eager`]) and
    /// flattens unions, leaving the handle materialized. Idempotent; a
    /// failure poisons the handle so later terminals re-surface the same
    /// error instead of silently yielding an empty result.
    fn force(&mut self) -> Result<(), JobError> {
        match &self.plan {
            Plan::Input(_) | Plan::Materialized { .. } => return Ok(()),
            Plan::Failed(e) => return Err(e.clone()),
            Plan::Stage(_) | Plan::Union(..) => {}
        }
        let plan = std::mem::replace(&mut self.plan, Plan::Input(Vec::new()));
        let terminal_is_stage = matches!(plan, Plan::Stage(_));
        // Unions go through the same build path even when no stage is
        // pending: the feed preload flattens Materialized/Input sides in
        // left-then-right ordinal order with zero thunks to run.
        match execute_plan(self.cluster, plan) {
            Ok((parts, guards, driver_pending, run_report)) => {
                self.plan = Plan::Materialized {
                    parts,
                    guards,
                    driver_pending,
                };
                self.report.extend(run_report);
                self.producer_is_last_job = terminal_is_stage;
                Ok(())
            }
            Err(e) => {
                self.plan = Plan::Failed(e.clone());
                Err(e)
            }
        }
    }

    /// Brings every record back into driver memory (concatenated in
    /// partition order) together with the accumulated report — the job
    /// graph's terminal: all pending stages execute here, with
    /// cross-stage overlap. The crossing is booked onto the producing
    /// job's
    /// [`driver_out_records`](crate::job::JobStats::driver_out_records).
    pub fn collect(self) -> Result<(Vec<T>, SimReport), JobError> {
        let mut out = Vec::new();
        let report = self.drain_into(&mut |record| out.push(record))?;
        Ok((out, report))
    }

    /// Streams every record to `f` in partition order without building a
    /// driver-side `Vec` (spilled partitions decode one record at a time).
    /// Returns the accumulated report; the crossing is booked like
    /// [`Dataset::collect`].
    pub fn for_each_output(self, mut f: impl FnMut(T)) -> Result<SimReport, JobError> {
        self.drain_into(&mut f)
    }

    fn drain_into(mut self, f: &mut impl FnMut(T)) -> Result<SimReport, JobError> {
        self.force()?;
        let books_on_producer = self.producer_is_last_job;
        let mut report = self.report;
        let (parts, guards) = match self.plan {
            Plan::Input(records) => {
                // Never ran anything: hand the records straight back, no
                // crossing to book (they never left the driver).
                records.into_iter().for_each(&mut *f);
                return Ok(report);
            }
            Plan::Materialized { parts, guards, .. } => (parts, guards),
            // tsjlint:allow(no-panic-in-data-plane) force() above leaves only Input/Materialized
            Plan::Stage(_) | Plan::Union(..) | Plan::Failed(_) => unreachable!("forced above"),
        };
        let mut crossed = 0u64;
        for part in parts {
            part.drain(&mut |record| {
                crossed += 1;
                f(record);
            })?;
        }
        drop(guards);
        if books_on_producer {
            if let Some(last) = report.jobs_mut().last_mut() {
                last.driver_out_records += crossed;
            }
        }
        Ok(report)
    }

    /// Total records currently held across all partitions; executes any
    /// pending stages first.
    pub fn records(&mut self) -> Result<u64, JobError> {
        self.force()?;
        Ok(match &self.plan {
            Plan::Input(records) => records.len() as u64,
            Plan::Materialized { parts, .. } => parts.iter().map(DataPartition::records).sum(),
            // tsjlint:allow(no-panic-in-data-plane) force() above leaves only Input/Materialized
            Plan::Stage(_) | Plan::Union(..) | Plan::Failed(_) => unreachable!("forced above"),
        })
    }

    /// Partition count (0 for a collected-empty stage output; driver
    /// inputs report the chunk count their first stage will use).
    /// Executes any pending stages first.
    pub fn num_partitions(&mut self) -> Result<usize, JobError> {
        self.force()?;
        Ok(match &self.plan {
            Plan::Input(records) => self.cluster.slice_chunking(records.len()).0,
            Plan::Materialized { parts, .. } => parts.len(),
            // tsjlint:allow(no-panic-in-data-plane) force() above leaves only Input/Materialized
            Plan::Stage(_) | Plan::Union(..) | Plan::Failed(_) => unreachable!("forced above"),
        })
    }

    /// The simulation report accumulated over the stages *executed so
    /// far* behind this handle — pending stages appear only after a
    /// terminal (or [`Dataset::take_report`]) runs them.
    pub fn report(&self) -> &SimReport {
        &self.report
    }

    /// Executes any pending stages, then moves the accumulated report out
    /// of the handle (leaving it empty), so a pipeline interleaving
    /// several handles can assemble one report in true execution order. A
    /// later `collect` of this handle can no longer book its driver
    /// crossing on the producing job (the stats left with the report).
    pub fn take_report(&mut self) -> Result<SimReport, JobError> {
        self.force()?;
        self.producer_is_last_job = false;
        Ok(std::mem::take(&mut self.report))
    }
}
