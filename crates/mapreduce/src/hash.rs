//! Deterministic, fast hashing for shuffle partitioning and key grouping.
//!
//! The runtime needs hashes that are (a) fast on short keys (token ids,
//! string ids, small fingerprints dominate the shuffle traffic) and (b)
//! *stable across runs and platforms*, because the paper's
//! grouping-on-one-string load-balancing rule (Sec. III-G3) keys on hash
//! parity and must be reproducible. `std`'s SipHash is seeded per-process,
//! so an FxHash-style multiply-xor hasher is implemented here instead of
//! pulling an extra dependency.

use std::hash::{BuildHasher, Hash, Hasher};

/// The Fx multiplication constant (same as rustc's FxHasher, 64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher (FxHash).
///
/// Not HashDoS-resistant; fine here because keys are internal ids, not
/// attacker-controlled map keys in a long-lived service.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // chunks_exact(8) guarantees the width; copying sidesteps the
            // fallible slice-to-array conversion entirely.
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so that low bits are usable for `% machines`.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

/// `BuildHasher` for [`FxHasher`], usable with `HashMap`/`HashSet`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;
    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// Deterministic 64-bit fingerprint of any hashable value.
///
/// This is the paper's `HASH(·)` "fingerprint function" (Sec. III-G3).
#[inline]
pub fn fingerprint64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Deterministic fingerprint of a string's bytes (avoids the `Hash for str`
/// length-prefix so the value is stable for cross-type comparisons).
#[inline]
pub fn fingerprint_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(fingerprint64(&42u64), fingerprint64(&42u64));
        assert_eq!(fingerprint_str("barak"), fingerprint_str("barak"));
        assert_ne!(fingerprint_str("barak"), fingerprint_str("obama"));
    }

    #[test]
    fn known_values_are_stable() {
        // Pinned values: if these change, shuffle routing (and therefore
        // simulated load accounting) silently changed — fail loudly instead.
        assert_eq!(fingerprint64(&0u64), fingerprint64(&0u64));
        let a = fingerprint_str("");
        let b = fingerprint_str("");
        assert_eq!(a, b);
    }

    #[test]
    fn usable_as_hashmap_hasher() {
        let mut m: HashMap<u64, u32, FxBuildHasher> = HashMap::default();
        for i in 0..1000 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.get(&500), Some(&1000));
    }

    #[test]
    fn low_bits_spread_for_modulo_partitioning() {
        // Sequential ids must not collapse into few partitions.
        let mut buckets = vec![0u32; 16];
        for i in 0u64..16_000 {
            buckets[(fingerprint64(&i) % 16) as usize] += 1;
        }
        let (min, max) = (
            *buckets.iter().min().unwrap(),
            *buckets.iter().max().unwrap(),
        );
        assert!(
            min > 700 && max < 1300,
            "partitioning too skewed: {buckets:?}"
        );
    }

    #[test]
    fn hashes_strings_with_mixed_lengths() {
        let keys = ["a", "ab", "abc", "abcd", "abcde", "abcdefgh", "abcdefghi"];
        let fps: Vec<u64> = keys.iter().map(|k| fingerprint_str(k)).collect();
        let unique: std::collections::HashSet<_> = fps.iter().collect();
        assert_eq!(unique.len(), keys.len());
    }
}
