//! Job-facing types: emitters, statistics, and errors.

use std::collections::HashMap;
use std::hash::Hash;

use crate::shuffle::PartitionedBuffer;
use crate::spill::Spill;

/// Collects the `[⟨key2, value2⟩]` output of a map invocation, plus
/// user-defined counters (candidate counts, filter survival rates, …).
///
/// Emitted pairs are routed to their shuffle partition
/// (`HASH(key) % partitions`) immediately — the emitter *is* the map side
/// of the shuffle (see [`crate::shuffle`]). Under a memory-bounded
/// [`ShuffleConfig`](crate::shuffle::ShuffleConfig) the emitter also
/// enforces the spill threshold at every emit, so a mapper's in-memory
/// record count never exceeds it — even when a single input record emits a
/// burst of pairs.
#[derive(Debug)]
pub struct Emitter<K, V> {
    pub(crate) buffer: PartitionedBuffer<K, V>,
    pub(crate) counters: HashMap<&'static str, u64>,
    pub(crate) work_units: u64,
    /// Pairs emitted so far (survives periodic combines and spills, unlike
    /// `buffer.len()`).
    pub(crate) emitted: u64,
}

impl<K, V> Emitter<K, V> {
    pub(crate) fn with_partitions(partitions: usize) -> Self {
        Self::with_buffer(PartitionedBuffer::new(partitions))
    }

    pub(crate) fn with_buffer(buffer: PartitionedBuffer<K, V>) -> Self {
        Self {
            buffer,
            counters: HashMap::new(),
            work_units: 0,
            emitted: 0,
        }
    }

    /// Declares extra simulated work units for the current record, on top
    /// of the default one-unit-per-record/emission (see the cost model
    /// notes in `cluster`). Use when a record's CPU cost is far from
    /// uniform (e.g. a metric-space mapper computing many distances).
    #[inline]
    pub fn add_work(&mut self, units: u64) {
        self.work_units += units;
    }

    /// Increments a named job counter (aggregated across all workers into
    /// [`JobStats::counters`]).
    #[inline]
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }
}

impl<K: Hash + Spill, V: Spill> Emitter<K, V> {
    /// Emits one intermediate key/value pair, routing it to its shuffle
    /// partition at once (and spilling the buffer if this emit reached the
    /// configured spill threshold).
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.buffer.emit(key, value);
        self.emitted += 1;
        self.buffer.maybe_spill();
    }
}

/// Collects the `[value3]` output of a reduce invocation.
///
/// Under a dataset-producing stage with a bounded
/// [`ShuffleConfig`](crate::shuffle::ShuffleConfig) the runtime drains the
/// sink into a stage-output run file after every reduce group, so the
/// buffered output never exceeds one group's emissions; `emitted` keeps
/// the true output count across those drains.
#[derive(Debug)]
pub struct OutputSink<O> {
    pub(crate) out: Vec<O>,
    pub(crate) counters: HashMap<&'static str, u64>,
    pub(crate) work_units: u64,
    /// Records emitted so far (survives runtime drains, unlike
    /// `out.len()`).
    pub(crate) emitted: u64,
}

impl<O> OutputSink<O> {
    /// Creates a standalone sink (public so that algorithms can nest
    /// reducer-style logic, e.g. HMJ's recursive repartitioning).
    pub fn new() -> Self {
        Self {
            out: Vec::new(),
            counters: HashMap::new(),
            work_units: 0,
            emitted: 0,
        }
    }

    /// Consumes the sink, returning its outputs and counters.
    pub fn into_parts(self) -> (Vec<O>, HashMap<&'static str, u64>) {
        (self.out, self.counters)
    }

    /// Declares extra simulated work units for the current group, on top
    /// of the default one-unit-per-value/emission. Reducers whose cost is
    /// super-linear in the group size (all-pairs verification, recursive
    /// repartitioning) should declare their comparisons here so simulated
    /// skew tracks real skew.
    #[inline]
    pub fn add_work(&mut self, units: u64) {
        self.work_units += units;
    }

    /// Total declared extra work units so far.
    #[inline]
    pub fn work_units(&self) -> u64 {
        self.work_units
    }

    /// Emits one job output record.
    #[inline]
    pub fn emit(&mut self, value: O) {
        self.out.push(value);
        self.emitted += 1;
    }

    /// Increments a named job counter.
    #[inline]
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }
}

impl<O> Default for OutputSink<O> {
    fn default() -> Self {
        Self::new()
    }
}

/// Errors surfaced by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// A map or reduce worker panicked; carries the phase and the panic
    /// message. Mirrors a task failing permanently on a real cluster.
    WorkerPanic {
        phase: &'static str,
        message: String,
    },
    /// The shuffle transport failed to move map output to the reduce side
    /// (an I/O error writing or finalizing the exchange files). Mirrors a
    /// shuffle-fetch failure on a real cluster.
    Transport { message: String },
    /// A spill-format file failed under a job: an I/O error or corruption
    /// reading a run back ([`SpillError`](crate::spill::SpillError)), or
    /// an I/O error creating/writing/finalizing a stage-output or merge
    /// scratch run. Mirrors a worker losing its local disk mid-job; the
    /// job fails, the process survives.
    Spill { message: String },
    /// Plan analysis diagnosed the lowered job graph and the cluster runs
    /// with [`PlanCheck::Deny`](crate::dag::analyze::PlanCheck): the
    /// terminal fails *before* any stage executes. Carries every rendered
    /// [`PlanDiagnostic`](crate::dag::analyze::PlanDiagnostic).
    Plan { message: String },
}

impl From<crate::spill::SpillError> for JobError {
    fn from(e: crate::spill::SpillError) -> Self {
        JobError::Spill {
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::WorkerPanic { phase, message } => {
                write!(f, "{phase} worker panicked: {message}")
            }
            JobError::Transport { message } => {
                write!(f, "shuffle transport failed: {message}")
            }
            JobError::Spill { message } => {
                write!(f, "spill I/O failed: {message}")
            }
            JobError::Plan { message } => {
                write!(f, "plan analysis failed: {message}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Simulated timing of one phase (map or reduce).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSim {
    /// Makespan: the busiest simulated machine's load, in simulated seconds
    /// (including per-worker instantiation overheads).
    pub makespan_secs: f64,
    /// Sum of all machines' loads (the phase's total compute).
    pub total_cpu_secs: f64,
    /// `makespan / (total / machines)` — 1.0 is perfectly balanced. The
    /// paper's Fig. 1 discussion (one-string vs both-strings balancing) and
    /// Fig. 7 (HMJ's dense-cluster imbalance) are about exactly this ratio.
    pub skew: f64,
}

/// Everything measured about one executed job.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Job name (for reports).
    pub name: String,
    /// Simulated machine count the job was charged against.
    pub machines: usize,
    /// Input records fed to mappers.
    pub input_records: u64,
    /// Intermediate pairs emitted by mappers (pre-combine).
    pub map_output_records: u64,
    /// Records actually shuffled (post-combine). Equal to
    /// `map_output_records` for jobs without a combiner; the gap between
    /// the two is the map-side-aggregation saving the [`CostModel`] charges
    /// shuffle cost on.
    ///
    /// [`CostModel`]: crate::cluster::CostModel
    pub shuffle_records: u64,
    /// Records spilled to disk by memory-bounded mappers (0 without a
    /// [`ShuffleConfig`](crate::shuffle::ShuffleConfig) spill threshold).
    /// Spilled records are part of `shuffle_records`: they were still
    /// shuffled, they just travelled via a disk segment.
    pub spilled_records: u64,
    /// Bytes written to spill segments (read back once by the reduce
    /// phase; the [`CostModel`] charges both directions).
    ///
    /// [`CostModel`]: crate::cluster::CostModel
    pub spill_bytes: u64,
    /// Sorted runs written by memory-bounded mappers across all spill
    /// files (what the reduce-side merge fan-in is up against).
    pub spill_runs: u64,
    /// Name of the shuffle transport the job ran over
    /// ([`Transport::name`](crate::transport::Transport)).
    pub transport: &'static str,
    /// Bytes serialized through the shuffle transport (0 for the
    /// in-process handoff; the full post-combine exchange volume for the
    /// multi-process transport). Charged by
    /// [`CostModel::transport_secs_per_byte`](crate::cluster::CostModel).
    pub transport_bytes: u64,
    /// Hierarchical pre-merge passes reduce tasks ran to honour
    /// [`ShuffleConfig::merge_fan_in`](crate::shuffle::ShuffleConfig)
    /// (0 when every partition's segment count fit the cap).
    pub merge_passes: u64,
    /// Bytes written to hierarchical-merge scratch runs (each also read
    /// back by a later pass or the final merge); charged into
    /// `spill_secs` at the spill I/O rate, since scratch runs are the
    /// same local-disk resource.
    pub merge_scratch_bytes: u64,
    /// Largest in-memory record count any map task's shuffle buffer
    /// reached. With a spill threshold configured this never exceeds it —
    /// the memory bound the spill path exists to enforce.
    pub peak_buffered_records: u64,
    /// Distinct reduce keys (= instantiated reduce workers).
    pub reduce_groups: u64,
    /// Largest reduce group (hot-key diagnosis).
    pub max_group_size: u64,
    /// Records emitted by reducers.
    pub output_records: u64,
    /// Records that crossed from driver memory into the runtime to feed
    /// this job's map wave: the input length for jobs fed a driver slice
    /// ([`Cluster::run*`](crate::cluster::Cluster::run) and the first
    /// stage after [`Cluster::input`](crate::cluster::Cluster::input)),
    /// zero for fused interior stages of a
    /// [`Dataset`](crate::dataset::Dataset) graph, whose map tasks stream
    /// the previous stage's partition segments runtime-side.
    pub driver_in_records: u64,
    /// Records this job's reduce wave handed back to driver memory: the
    /// output length for `Cluster::run*` jobs, zero for dataset stages
    /// (whose output stays partitioned in the runtime until
    /// [`Dataset::collect`](crate::dataset::Dataset::collect) — which
    /// books the crossing onto its producing job when it happens).
    pub driver_out_records: u64,
    /// Map-phase simulated timing.
    pub map: PhaseSim,
    /// Simulated shuffle time (volume / machines).
    pub shuffle_secs: f64,
    /// Simulated spill I/O time (write + read-back of `spill_bytes` and
    /// `merge_scratch_bytes`, spread across machines).
    pub spill_secs: f64,
    /// Simulated transport time (`transport_bytes` over the exchange,
    /// spread across machines; 0 in-process).
    pub transport_secs: f64,
    /// Reduce-phase simulated timing.
    pub reduce: PhaseSim,
    /// End-to-end simulated job time (startup + map + shuffle + reduce).
    pub sim_total_secs: f64,
    /// Real wall-clock the local execution took.
    pub wall_secs: f64,
    /// Tasks of this job a pool worker stole from a peer's deque.
    /// Real-scheduler observability (like `wall_secs`): depends on timing,
    /// thread count, and scheduler mode — never feeds simulated stats.
    pub steals: u64,
    /// Speculative re-executions launched for this job's straggling tasks
    /// (scheduler observability, nondeterministic; 0 outside
    /// [`SchedulerMode::Speculative`](crate::pool::SchedulerMode)).
    pub speculative_launched: u64,
    /// Speculative attempts that finished *before* their primary and won
    /// the first-result-wins race (the primary's output was dropped).
    pub speculative_won: u64,
    /// Total microseconds this job's tasks spent queued before a worker
    /// picked them up (scheduler observability, nondeterministic).
    pub queue_wait_us: u64,
    /// Logical fetch requests the remote transport's exchange issued
    /// (directory lookups + ranged reads; 0 for the other transports).
    /// Real-network observability (like `wall_secs`): never feeds
    /// simulated stats — `transport_bytes` carries the deterministic
    /// exchanged volume.
    pub fetch_requests: u64,
    /// Extra fetch attempts beyond each request's first (dropped
    /// connections, timeouts — including injected faults). Retries are
    /// idempotent ranged reads, so this counter moves without the job
    /// output ever changing. Nondeterministic, never fed into simulated
    /// stats.
    pub fetch_retries: u64,
    /// Payload bytes the fetch client actually received (successful
    /// ranged reads only; equals `transport_bytes` when nothing is
    /// dropped mid-run). Nondeterministic under faults, never fed into
    /// simulated stats.
    pub fetch_bytes: u64,
    /// Aggregated user counters.
    pub counters: HashMap<&'static str, u64>,
}

impl JobStats {
    /// Convenience accessor for a counter, defaulting to zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// A completed job: its output records plus measured statistics.
#[derive(Debug)]
pub struct JobResult<O> {
    /// All reducer outputs, concatenated in partition order.
    pub output: Vec<O>,
    /// Measured statistics.
    pub stats: JobStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_collects_pairs_and_counters() {
        let mut e: Emitter<u32, String> = Emitter::with_partitions(4);
        e.emit(1, "a".to_owned());
        e.emit(2, "b".to_owned());
        e.add_counter("seen", 2);
        e.add_counter("seen", 1);
        assert_eq!(e.buffer.len(), 2);
        assert_eq!(e.emitted, 2);
        assert_eq!(e.counters["seen"], 3);
    }

    #[test]
    fn sink_collects_outputs() {
        let mut s: OutputSink<u64> = OutputSink::new();
        s.emit(10);
        s.add_counter("out", 1);
        assert_eq!(s.out, vec![10]);
        assert_eq!(s.counters["out"], 1);
    }

    #[test]
    fn job_error_displays() {
        let e = JobError::WorkerPanic {
            phase: "map",
            message: "oops".into(),
        };
        assert_eq!(e.to_string(), "map worker panicked: oops");
    }

    #[test]
    fn stats_counter_defaults_to_zero() {
        let s = JobStats::default();
        assert_eq!(s.counter("missing"), 0);
    }
}
