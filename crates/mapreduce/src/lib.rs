//! An in-process MapReduce runtime with a simulated shared-nothing cluster.
//!
//! The paper's TSJ framework (Sec. III) is "parallelized using MapReduce"
//! and its evaluation (Sec. V) reports runtimes as a function of the number
//! of machines (100–1000). This crate substitutes Google's production
//! MapReduce with:
//!
//! * **Real execution** — `map`, shuffle, and `reduce` run on a local thread
//!   pool (all cores), so joins over hundreds of thousands of strings finish
//!   in seconds. Mappers partition their output by key hash *at emit time*
//!   and can fold it through a map-side [`Combiner`] before the shuffle
//!   (see [`shuffle`]). With a [`ShuffleConfig`] the whole data plane is
//!   *memory-bounded*: mappers periodically combine and spill sorted runs
//!   to disk ([`spill`]) and reducers consume their partitions through a
//!   streaming k-way sort-merge ([`merge`]), modelling genuinely
//!   out-of-core workloads. The [`transport`] layer decides how map
//!   output reaches reducers: an in-process segment handoff (default), a
//!   multi-process file exchange over the spill-run wire format, or a
//!   network exchange ([`Transport::Remote`]) where map tasks publish
//!   runs to a per-stage run server and reducers fetch them over a
//!   socket with ranged reads, retries, and deadlines
//!   ([`tsj_netshuffle`]), and
//! * **A simulated cluster clock** — every map task and every reduce group
//!   is individually timed, charged to one of `machines` *simulated*
//!   machines (map tasks round-robin, reduce groups by key hash — exactly
//!   how a real shuffler routes keys to reducers), and the job's simulated
//!   runtime is the *makespan*: startup overheads plus the busiest machine's
//!   load per phase. Load imbalance from skewed keys therefore shows up in
//!   the simulated runtime exactly as it does in the paper's Figures 1–3
//!   and 7.
//!
//! The semantics follow Sec. III-A:
//!
//! ```text
//! map:    ⟨key1, value1⟩        → [⟨key2, value2⟩]
//! reduce: ⟨key2, [value2]⟩      → [value3]
//! ```
//!
//! See [`Cluster::run`] for the single-job entry point, [`JobStats`] for
//! what gets measured, and [`SimReport`] for aggregating a multi-job
//! pipeline. Multi-stage pipelines should chain through the [`dataset`]
//! layer ([`Cluster::input`] → [`Dataset::map_reduce`] → … →
//! [`Dataset::collect`]), which records a *lazy job DAG*: interior stage
//! output stays partitioned inside the runtime instead of materializing
//! in driver memory, and the terminal executes the whole graph with
//! partition-level cross-stage overlap on one shared worker pool (an
//! upstream reduce task finishing a partition immediately readies the
//! downstream map task for it). The `run*` entry points are the one-stage
//! special case of the same streaming engine.
//!
//! Every lowered dataset graph is structurally analyzed before execution
//! ([`analyze_plan`]): unreachable stages, statically empty inputs,
//! union partition mismatches, combiner opportunities, and merge fan-in
//! hazards surface as [`PlanDiagnostic`]s on the terminal's [`SimReport`]
//! — or, under [`PlanCheck::Deny`] (`TSJ_PLAN_CHECK=deny`), fail the
//! terminal before any stage runs.

pub mod cluster;
mod dag;
pub mod dataset;
pub mod hash;
pub mod job;
pub mod merge;
pub mod pool;
pub mod report;
pub mod shuffle;
pub mod spill;
pub mod transport;

pub use cluster::{Cluster, ClusterConfig, CostModel};
pub use dag::analyze::{
    analyze_plan, critical_path_depth, partition_skew, NodeKind, PlanCheck, PlanDiagnostic,
    PlanInfo, PlanNodeInfo, StageInfo, MERGE_FAN_IN_BUDGET,
};
pub use dataset::{DataPartition, Dataset, DatasetMode};
pub use hash::{fingerprint64, fingerprint_str, FxBuildHasher, FxHasher};
pub use job::{Emitter, JobError, JobResult, JobStats, OutputSink, PhaseSim};
pub use pool::{SchedulerConfig, SchedulerMode, StraggleInjection};
pub use report::SimReport;
pub use shuffle::{
    combine_records, Combiner, Count, Dedup, Min, PartitionedBuffer, ShuffleConfig, Sum,
};
pub use spill::{read_varint, write_varint, RunMeta, RunReader, Spill, SpillError, SpillWriter};
pub use transport::{InProcess, MultiProcess, Remote, ShuffleTransport, Transport};
// The network-shuffle knobs callers configure through [`ShuffleConfig`].
pub use tsj_netshuffle::{FaultConfig, FetchStats};
