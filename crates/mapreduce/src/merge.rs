//! The reduce side of the memory-bounded shuffle: a streaming k-way
//! sort-merge over a partition's segments.
//!
//! A reduce partition's input arrives as *segments*: the in-memory buffers
//! of map tasks that never spilled, plus zero or more sorted runs in the
//! tasks' spill files or — under the `MultiProcess` transport
//! ([`crate::transport`]) — in per-partition exchange files (see
//! [`crate::spill`]). When any segment is spilled, the partition is
//! reduced by merging all segments in key-fingerprint order — the
//! external-sort discipline real MapReduce reducers use — so the partition
//! is never materialized: at any moment the reducer holds one read buffer
//! per spilled run plus the value run of the single key being reduced.
//!
//! # Bounded fan-in
//!
//! With an unbounded merge, pathologically tiny spill thresholds mean one
//! open run (file-handle + read buffer) per spilled run. A
//! [`ShuffleConfig::merge_fan_in`](crate::shuffle::ShuffleConfig) caps
//! that: when a partition has more segments than the cap,
//! `merge_segments_capped` first runs *pre-merge passes* that fold
//! consecutive chunks of at most `fan_in` segments into single sorted runs
//! in a per-reduce-task scratch file, then k-way-merges the survivors.
//! Chunks are consecutive in segment order and the pre-merge preserves
//! `(fingerprint, within-chunk segment index)` order, so the final merge
//! sees records in exactly the order the flat merge would — the grouping,
//! group order, and therefore job output are *identical* with and without
//! the cap.
//!
//! Group order under the merge is ascending key fingerprint (ties between
//! distinct keys sharing a fingerprint resolve to first-occurrence order
//! within the merged run) — different from the first-occurrence order of
//! the purely in-memory path, but equally deterministic given the input
//! and the partition count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::Arc;

use crate::shuffle::{for_each_key_group, ShuffleRecord};
use crate::spill::{RunMeta, RunReader, Spill, SpillError, SpillWriter};

/// One input segment of a reduce partition.
#[derive(Debug)]
pub(crate) enum Segment<K, V> {
    /// A map task's in-memory records for this partition (any order; the
    /// merge sorts them stably by fingerprint first).
    Mem(Vec<ShuffleRecord<K, V>>),
    /// One sorted run inside a map task's spill file.
    Spilled { file: Arc<File>, meta: RunMeta },
}

impl<K, V> Segment<K, V> {
    pub(crate) fn is_spilled(&self) -> bool {
        matches!(self, Segment::Spilled { .. })
    }
}

/// A sorted record source being merged: an in-memory segment or a
/// streaming spill-run reader.
enum Stream<K, V> {
    Mem(std::vec::IntoIter<ShuffleRecord<K, V>>),
    Run(RunReader),
}

impl<K: Spill + Hash, V: Spill> Stream<K, V> {
    fn next(&mut self) -> Result<Option<ShuffleRecord<K, V>>, SpillError> {
        match self {
            Stream::Mem(it) => Ok(it.next()),
            Stream::Run(r) => r.next(),
        }
    }
}

/// Turns segments into sorted record streams (in-memory segments are
/// sorted stably here; spilled runs were sorted at write time).
fn make_streams<K: Spill + Hash, V: Spill>(segments: Vec<Segment<K, V>>) -> Vec<Stream<K, V>> {
    segments
        .into_iter()
        .map(|seg| match seg {
            Segment::Mem(mut records) => {
                // Stable: a key's values keep their within-segment order.
                records.sort_by_key(|(h, _, _)| *h);
                Stream::Mem(records.into_iter())
            }
            Segment::Spilled { file, meta } => Stream::Run(RunReader::new(file, meta)),
        })
        .collect()
}

/// The raw k-way merge: drains `streams` in `(fingerprint, stream index)`
/// order, handing every record to `on_record`. Shared by the grouping
/// merge below and the hierarchical pre-merge passes (which write the
/// records back out as one longer sorted run). Short-circuits on the
/// first read or callback failure.
fn merge_streams<K, V, F>(
    mut streams: Vec<Stream<K, V>>,
    mut on_record: F,
) -> Result<(), SpillError>
where
    K: Spill + Hash,
    V: Spill,
    F: FnMut(ShuffleRecord<K, V>) -> Result<(), SpillError>,
{
    // One lookahead record per stream; the heap orders stream heads by
    // (fingerprint, stream index) so equal-fingerprint records drain
    // stream-by-stream in segment order.
    let mut heads: Vec<Option<ShuffleRecord<K, V>>> = streams
        .iter_mut()
        .map(Stream::next)
        .collect::<Result<_, _>>()?;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = heads
        .iter()
        .enumerate()
        .filter_map(|(i, head)| head.as_ref().map(|(h, _, _)| Reverse((*h, i))))
        .collect();

    while let Some(Reverse((h, i))) = heap.pop() {
        // tsjlint:allow(no-panic-in-data-plane) a heap entry is pushed only
        // when stream i has a head; skipping silently would hide corruption
        let (head_h, key, value) = heads[i].take().expect("heap entry implies a head");
        debug_assert_eq!(head_h, h);
        heads[i] = streams[i].next()?;
        if let Some((next_h, _, _)) = &heads[i] {
            debug_assert!(*next_h >= h, "segment not sorted by fingerprint");
            heap.push(Reverse((*next_h, i)));
        }
        on_record((h, key, value))?;
    }
    Ok(())
}

/// Merges `segments` in `(fingerprint, segment index)` order and invokes
/// `each_group` exactly once per distinct key with that key's full value
/// run. Keys sharing a fingerprint (collisions) are separated by full key
/// equality, first-occurrence order within the merged fingerprint run.
///
/// Segment order is the caller's (map-task order, spill runs before the
/// task's in-memory leftover), so the grouping — and therefore job output
/// — is a pure function of the data and the partition count, independent
/// of thread scheduling.
///
/// (The runtime always goes through [`merge_segments_capped`]; this flat
/// entry point remains as the reference the capped merge is tested
/// against.)
#[cfg(test)]
pub(crate) fn merge_segments<K, V, F>(
    segments: Vec<Segment<K, V>>,
    mut each_group: F,
) -> Result<(), SpillError>
where
    K: Spill + Eq + Hash,
    V: Spill,
    F: FnMut(K, Vec<V>),
{
    merge_segments_capped(segments, None, None, |k, vs| {
        each_group(k, vs);
        Ok(())
    })
    .map(|_| ())
}

/// What a capped merge did beyond the flat path: pre-merge passes run and
/// scratch bytes written (each scratch byte is also read back by the next
/// pass or the final merge, so the cost model charges both directions,
/// like mapper spill I/O).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct MergeEffort {
    pub(crate) passes: u64,
    pub(crate) scratch_bytes: u64,
}

/// [`merge_segments`] with a fan-in cap: when `fan_in` is set and
/// `segments` exceeds it, consecutive chunks of at most `fan_in` segments
/// are pre-merged into single sorted runs in `scratch_file` (hierarchical
/// external merge) until at most `fan_in` runs remain, then the survivors
/// are merged with full grouping. Grouping and group order are identical
/// to the flat merge (see the module docs). Returns the pre-merge effort
/// ([`MergeEffort::default`] = the flat path).
///
/// A `fan_in` below 2 is treated as 2 (a 1-way "merge" would never shrink
/// the run count). Without a `scratch_file` the cap is ignored.
///
/// Short-circuits with a [`SpillError`] when a run read, a scratch-file
/// write, or `each_group` itself fails — the job path converts that into
/// [`JobError::Spill`](crate::job::JobError) instead of panicking.
pub(crate) fn merge_segments_capped<K, V, F>(
    segments: Vec<Segment<K, V>>,
    fan_in: Option<usize>,
    scratch_file: Option<PathBuf>,
    mut each_group: F,
) -> Result<MergeEffort, SpillError>
where
    K: Spill + Eq + Hash,
    V: Spill,
    F: FnMut(K, Vec<V>) -> Result<(), SpillError>,
{
    let mut segments = segments;
    let mut effort = MergeEffort::default();
    if let (Some(cap), Some(scratch)) = (fan_in, scratch_file) {
        let cap = cap.max(2);
        while segments.len() > cap {
            effort.passes += 1;
            // Each pass gets its own scratch file: the previous pass's
            // runs are still being read while the next pass writes.
            let path = scratch.with_extension(format!("pass{}", effort.passes));
            let mut writer = SpillWriter::create(path)?;
            let mut metas: Vec<RunMeta> = Vec::new();
            let mut chunks = segments.into_iter().peekable();
            while chunks.peek().is_some() {
                let chunk: Vec<Segment<K, V>> = chunks.by_ref().take(cap).collect();
                let offset = writer.offset();
                let mut records = 0u64;
                merge_streams(make_streams(chunk), |(h, k, v)| {
                    writer.write_record(h, &k, &v)?;
                    records += 1;
                    Ok(())
                })?;
                metas.push(RunMeta {
                    offset,
                    bytes: writer.offset() - offset,
                    records,
                });
            }
            effort.scratch_bytes += writer.bytes();
            let (file, _path) = writer.into_reader()?;
            segments = metas
                .into_iter()
                .map(|meta| Segment::Spilled {
                    file: Arc::clone(&file),
                    meta,
                })
                .collect();
        }
    }

    let mut run: Vec<(K, V)> = Vec::new(); // records of the current fingerprint
    let mut run_h = 0u64;
    merge_streams(make_streams(segments), |(h, key, value)| {
        if h != run_h && !run.is_empty() {
            // The shared helper applies the same collision-grouping
            // discipline as the map-side combine (full key equality,
            // first-occurrence order within the fingerprint run).
            for_each_key_group(&mut run, &mut each_group)?;
        }
        run_h = h;
        run.push((key, value));
        Ok(())
    })?;
    for_each_key_group(&mut run, &mut each_group)?;
    Ok(effort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::{create_job_spill_dir, SpillDirGuard, SpillWriter};

    /// Runs the merge and collects `(key, values)` groups in call order.
    fn collect<K: Spill + Eq + Hash, V: Spill>(segments: Vec<Segment<K, V>>) -> Vec<(K, Vec<V>)> {
        let mut got = Vec::new();
        merge_segments(segments, |k, vs| got.push((k, vs))).unwrap();
        got
    }

    #[test]
    fn merges_mem_segments_in_fingerprint_order() {
        let a: Vec<ShuffleRecord<u32, u32>> = vec![(5, 50, 1), (2, 20, 1), (9, 90, 1)];
        let b: Vec<ShuffleRecord<u32, u32>> = vec![(2, 20, 2), (7, 70, 2)];
        let got = collect(vec![Segment::Mem(a), Segment::Mem(b)]);
        assert_eq!(
            got,
            vec![
                (20, vec![1, 2]), // segment order: a's value before b's
                (50, vec![1]),
                (70, vec![2]),
                (90, vec![1]),
            ]
        );
    }

    #[test]
    fn collisions_group_by_full_key_in_first_occurrence_order() {
        // Three distinct keys share fingerprint 4 across two segments.
        let a: Vec<ShuffleRecord<u32, u32>> = vec![(4, 1, 10), (4, 2, 20), (4, 1, 11)];
        let b: Vec<ShuffleRecord<u32, u32>> = vec![(4, 3, 30), (4, 2, 21)];
        let got = collect(vec![Segment::Mem(a), Segment::Mem(b)]);
        assert_eq!(
            got,
            vec![(1, vec![10, 11]), (2, vec![20, 21]), (3, vec![30]),]
        );
    }

    #[test]
    fn merges_spilled_runs_with_mem_segments() {
        let dir = create_job_spill_dir(&std::env::temp_dir()).unwrap();
        let _guard = SpillDirGuard(dir.clone());
        let mut w = SpillWriter::create(dir.join("task0.spill")).unwrap();
        let run1: Vec<ShuffleRecord<u64, u64>> = vec![(1, 100, 1), (3, 300, 1), (3, 300, 2)];
        let run2: Vec<ShuffleRecord<u64, u64>> = vec![(2, 200, 1), (3, 300, 3)];
        let m1 = w.write_run(&run1).unwrap();
        let m2 = w.write_run(&run2).unwrap();
        let (file, _) = w.into_reader().unwrap();

        let mem: Vec<ShuffleRecord<u64, u64>> = vec![(4, 400, 9), (1, 100, 7)];
        let got = collect(vec![
            Segment::Spilled {
                file: Arc::clone(&file),
                meta: m1,
            },
            Segment::Spilled { file, meta: m2 },
            Segment::Mem(mem),
        ]);
        assert_eq!(
            got,
            vec![
                (100, vec![1, 7]), // spilled run first (lower segment index)
                (200, vec![1]),
                (300, vec![1, 2, 3]),
                (400, vec![9]),
            ]
        );
    }

    #[test]
    fn empty_and_single_segment_edge_cases() {
        assert!(collect(Vec::<Segment<u32, u32>>::new()).is_empty());
        assert!(collect(vec![Segment::Mem(Vec::<ShuffleRecord<u32, u32>>::new())]).is_empty());
        let got = collect(vec![Segment::Mem(vec![(1u64, 1u32, 2u32)])]);
        assert_eq!(got, vec![(1, vec![2])]);
    }

    /// Builds `n` single-record spilled runs plus two mem segments, so a
    /// capped merge has plenty of fan-in pressure.
    fn many_run_segments(n: u64) -> (Vec<Segment<u64, u64>>, SpillDirGuard) {
        let dir = create_job_spill_dir(&std::env::temp_dir()).unwrap();
        let guard = SpillDirGuard(dir.clone());
        let mut w = SpillWriter::create(dir.join("task0.spill")).unwrap();
        let mut metas = Vec::new();
        for i in 0..n {
            // Deliberately overlapping fingerprints across runs.
            let run: Vec<ShuffleRecord<u64, u64>> = vec![(i % 7, i % 7, i)];
            metas.push(w.write_run(&run).unwrap());
        }
        let (file, _) = w.into_reader().unwrap();
        let mut segments: Vec<Segment<u64, u64>> = metas
            .into_iter()
            .map(|meta| Segment::Spilled {
                file: Arc::clone(&file),
                meta,
            })
            .collect();
        segments.push(Segment::Mem(vec![(3, 3, 900), (11, 11, 901)]));
        segments.push(Segment::Mem(vec![(0, 0, 902)]));
        (segments, guard)
    }

    #[test]
    fn capped_merge_is_identical_to_flat_merge() {
        let (flat_segments, _g1) = many_run_segments(23);
        let flat = collect(flat_segments);
        for cap in [2usize, 3, 5, 24] {
            let (segments, guard) = many_run_segments(23);
            let mut got = Vec::new();
            let effort = merge_segments_capped(
                segments,
                Some(cap),
                Some(guard.0.join("reduce0.merge")),
                |k, vs| {
                    got.push((k, vs));
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(got, flat, "cap {cap}");
            if cap < 25 {
                assert!(effort.passes > 0, "cap {cap} must trigger pre-merge passes");
                assert!(
                    effort.scratch_bytes > 0,
                    "pre-merge passes must report scratch I/O"
                );
            }
        }
    }

    #[test]
    fn cap_larger_than_segment_count_takes_the_flat_path() {
        let (segments, guard) = many_run_segments(4);
        let mut got = Vec::new();
        let effort = merge_segments_capped(
            segments,
            Some(64),
            Some(guard.0.join("reduce0.merge")),
            |k, vs| {
                got.push((k, vs));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(effort, MergeEffort::default());
        assert!(!got.is_empty());
        // No scratch file materialized on the flat path.
        assert!(!guard.0.join("reduce0.pass1").exists());
    }

    #[test]
    fn degenerate_fan_in_of_one_is_clamped_and_terminates() {
        let (flat_segments, _g1) = many_run_segments(9);
        let flat = collect(flat_segments);
        let (segments, guard) = many_run_segments(9);
        let mut got = Vec::new();
        let effort = merge_segments_capped(
            segments,
            Some(1),
            Some(guard.0.join("reduce0.merge")),
            |k, vs| {
                got.push((k, vs));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(got, flat);
        assert!(
            effort.passes >= 2,
            "11 segments at fan-in 2 need multiple passes"
        );
    }

    #[test]
    fn cap_without_scratch_file_falls_back_to_flat_merge() {
        let (flat_segments, _g1) = many_run_segments(6);
        let flat = collect(flat_segments);
        let (segments, _g2) = many_run_segments(6);
        let mut got = Vec::new();
        let effort = merge_segments_capped(segments, Some(2), None, |k, vs| {
            got.push((k, vs));
            Ok(())
        })
        .unwrap();
        assert_eq!(got, flat);
        assert_eq!(effort, MergeEffort::default());
    }

    #[test]
    fn group_multiset_matches_naive_grouping_on_many_segments() {
        // 8 segments × 200 records over 40 keys; merge must produce exactly
        // one group per key with all its values.
        let mut segments = Vec::new();
        let mut expect: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        let mut x = 7u64;
        for s in 0..8u64 {
            let mut seg: Vec<ShuffleRecord<u64, u64>> = Vec::new();
            for i in 0..200u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let key = x % 40;
                let h = crate::hash::fingerprint64(&key);
                seg.push((h, key, s * 1000 + i));
            }
            segments.push(Segment::Mem(seg));
        }
        for seg in &segments {
            if let Segment::Mem(v) = seg {
                for (_, k, val) in v {
                    expect.entry(*k).or_default().push(*val);
                }
            }
        }
        let got = collect(segments);
        assert_eq!(got.len(), expect.len(), "one group per distinct key");
        for (k, mut vs) in got {
            let mut want = expect.remove(&k).expect("key exists");
            vs.sort_unstable();
            want.sort_unstable();
            assert_eq!(vs, want, "key {k}");
        }
    }
}
