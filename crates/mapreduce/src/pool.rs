//! A minimal scoped thread pool for executing indexed task sets.
//!
//! The runtime's map tasks and reduce partitions are both "N independent
//! tasks, run them on all cores" workloads; this module provides exactly
//! that with work stealing via an atomic cursor, panic capture (so a
//! panicking worker surfaces as a job error instead of poisoning the
//! process), and deterministic result placement by task index.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Locks `m`, shrugging off poisoning: the pool's own state is only ever
/// written under `catch_unwind`, so a poisoned lock just means another
/// worker's task panicked — the data is still consistent.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f(0..n_tasks)` on up to `threads` worker threads and returns the
/// results in task order.
///
/// If any task panics, the panic message of the first observed panic is
/// returned as `Err` after all in-flight tasks finish; remaining queued
/// tasks are abandoned.
pub fn run_indexed<R, F>(n_tasks: usize, threads: usize, f: F) -> Result<Vec<R>, String>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n_tasks == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(n_tasks);
    if threads == 1 {
        // Fast path, also keeps single-threaded debugging simple.
        let mut out = Vec::with_capacity(n_tasks);
        for i in 0..n_tasks {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(r) => out.push(r),
                Err(p) => return Err(panic_message(p)),
            }
        }
        return Ok(out);
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<String>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if lock(&failure).is_some() {
                    return; // abandon queued work after a failure
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    return;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(r) => *lock(&slots[i]) = Some(r),
                    Err(p) => {
                        let mut guard = lock(&failure);
                        if guard.is_none() {
                            *guard = Some(panic_message(p));
                        }
                        return;
                    }
                }
            });
        }
    });

    if let Some(msg) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(msg);
    }
    Ok(slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("all tasks completed")
        })
        .collect())
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_task_order() {
        let out = run_indexed(100, 8, |i| i * i).unwrap();
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn zero_tasks() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = run_indexed(10, 1, |i| i + 1).unwrap();
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_tasks() {
        let out = run_indexed(3, 64, |i| i).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn panic_is_captured_as_error() {
        let res: Result<Vec<()>, String> = run_indexed(16, 4, |i| {
            if i == 7 {
                panic!("task 7 exploded");
            }
        });
        assert_eq!(res.unwrap_err(), "task 7 exploded");
    }

    #[test]
    fn panic_with_string_payload() {
        let res: Result<Vec<()>, String> = run_indexed(4, 2, |i| panic!("boom {i}"));
        assert!(res.unwrap_err().starts_with("boom"));
    }

    #[test]
    fn actually_runs_concurrently() {
        // All tasks must be observed in flight before any completes when
        // threads ≥ tasks — proves tasks are not serialized.
        use std::sync::atomic::AtomicUsize;
        static STARTED: AtomicUsize = AtomicUsize::new(0);
        let n = 4;
        let out = run_indexed(n, n, |i| {
            STARTED.fetch_add(1, Ordering::SeqCst);
            // Wait (bounded) for all peers to start.
            for _ in 0..10_000 {
                if STARTED.load(Ordering::SeqCst) >= n {
                    return i;
                }
                std::thread::yield_now();
            }
            i
        })
        .unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }
}
