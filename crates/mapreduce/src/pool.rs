//! Worker pools for the runtime's task execution.
//!
//! Two shapes live here:
//!
//! * [`run_indexed`] — the original "N independent tasks, run them on all
//!   cores" helper with work stealing via an atomic cursor, panic capture,
//!   and deterministic result placement by task index. Still the simplest
//!   tool for standalone waves.
//! * `Pool` (crate-internal) — a shared *ready-queue* pool for the lazy
//!   [`dataset`](crate::dataset) executor: tasks are submitted dynamically
//!   (a downstream stage's map task becomes ready the moment an upstream
//!   reduce task finishes its partition) and any number of concurrently
//!   executing stages share one fixed set of worker threads, so
//!   cross-stage overlap never oversubscribes the machine. Submitters are
//!   responsible for capturing panics inside their tasks and for their own
//!   completion signalling (the pool itself only moves closures to
//!   workers).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Locks `m`, shrugging off poisoning: the pool's own state is only ever
/// written under `catch_unwind`, so a poisoned lock just means another
/// worker's task panicked — the data is still consistent.
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A unit of work on the shared pool. `'t` is the execution lifetime: task
/// closures may borrow anything that outlives the executor run (stage
/// closures, the corpus behind them, the cluster).
pub(crate) type PoolTask<'t> = Box<dyn FnOnce() + Send + 't>;

/// The shared ready-queue worker pool behind the lazy dataset executor
/// (see the module docs). Workers run [`Pool::run_worker`] on scoped
/// threads; stage drivers feed it with [`Pool::submit`] as partitions
/// become ready and are woken by their own per-wave completion latches.
pub(crate) struct Pool<'t> {
    state: Mutex<PoolState<'t>>,
    ready: Condvar,
}

struct PoolState<'t> {
    queue: VecDeque<PoolTask<'t>>,
    shutdown: bool,
}

impl<'t> Pool<'t> {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues one task; any idle worker picks it up.
    pub(crate) fn submit(&self, task: PoolTask<'t>) {
        lock(&self.state).queue.push_back(task);
        self.ready.notify_one();
    }

    /// A worker loop: runs queued tasks until [`Pool::shutdown`] *and* the
    /// queue is drained. Tasks are expected to capture their own panics;
    /// as a last line of defence a panic that escapes a task is swallowed
    /// here rather than poisoning the whole pool. (The engine's task
    /// wrappers hold a Drop-armed `WaveTicket`, so even an escaped panic
    /// records a failure and the submitting wave still terminates —
    /// new task shapes must keep an equivalent Drop-based latch.)
    pub(crate) fn run_worker(&self) {
        loop {
            let task = {
                let mut st = lock(&self.state);
                loop {
                    if let Some(task) = st.queue.pop_front() {
                        break task;
                    }
                    if st.shutdown {
                        return;
                    }
                    st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            let _ = catch_unwind(AssertUnwindSafe(task));
        }
    }

    /// Tells workers to exit once the queue is empty.
    pub(crate) fn shutdown(&self) {
        lock(&self.state).shutdown = true;
        self.ready.notify_all();
    }
}

/// Runs `f(0..n_tasks)` on up to `threads` worker threads and returns the
/// results in task order.
///
/// If any task panics, the panic message of the first observed panic is
/// returned as `Err` after all in-flight tasks finish; remaining queued
/// tasks are abandoned.
pub fn run_indexed<R, F>(n_tasks: usize, threads: usize, f: F) -> Result<Vec<R>, String>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n_tasks == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(n_tasks);
    if threads == 1 {
        // Fast path, also keeps single-threaded debugging simple.
        let mut out = Vec::with_capacity(n_tasks);
        for i in 0..n_tasks {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(r) => out.push(r),
                Err(p) => return Err(panic_message(p)),
            }
        }
        return Ok(out);
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<String>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if lock(&failure).is_some() {
                    return; // abandon queued work after a failure
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    return;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(r) => *lock(&slots[i]) = Some(r),
                    Err(p) => {
                        let mut guard = lock(&failure);
                        if guard.is_none() {
                            *guard = Some(panic_message(p));
                        }
                        return;
                    }
                }
            });
        }
    });

    if let Some(msg) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(msg);
    }
    let mut out = Vec::with_capacity(n_tasks);
    for s in slots {
        match s.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(r) => out.push(r),
            // Every slot is filled unless a worker failed, and failures
            // returned above; surface the impossible gap as an error
            // instead of killing the process.
            None => return Err("a task slot was left unfilled without a failure".to_owned()),
        }
    }
    Ok(out)
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_task_order() {
        let out = run_indexed(100, 8, |i| i * i).unwrap();
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn zero_tasks() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = run_indexed(10, 1, |i| i + 1).unwrap();
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_tasks() {
        let out = run_indexed(3, 64, |i| i).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn panic_is_captured_as_error() {
        let res: Result<Vec<()>, String> = run_indexed(16, 4, |i| {
            if i == 7 {
                panic!("task 7 exploded");
            }
        });
        assert_eq!(res.unwrap_err(), "task 7 exploded");
    }

    #[test]
    fn panic_with_string_payload() {
        let res: Result<Vec<()>, String> = run_indexed(4, 2, |i| panic!("boom {i}"));
        assert!(res.unwrap_err().starts_with("boom"));
    }

    #[test]
    fn shared_pool_runs_dynamically_submitted_tasks() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        let pool = Pool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| pool.run_worker());
            }
            // Submit in two waves, the second only after workers started —
            // the ready queue accepts work at any time.
            for i in 0..50u64 {
                let sum = &sum;
                pool.submit(Box::new(move || {
                    sum.fetch_add(i, Ordering::SeqCst);
                }));
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
            for i in 50..100u64 {
                let sum = &sum;
                pool.submit(Box::new(move || {
                    sum.fetch_add(i, Ordering::SeqCst);
                }));
            }
            pool.shutdown();
        });
        assert_eq!(sum.load(Ordering::SeqCst), (0..100).sum::<u64>());
    }

    #[test]
    fn shared_pool_survives_a_panicking_task() {
        use std::sync::atomic::AtomicU64;
        let ran = AtomicU64::new(0);
        let pool = Pool::new();
        std::thread::scope(|s| {
            s.spawn(|| pool.run_worker());
            pool.submit(Box::new(|| panic!("escaped panic")));
            let ran = &ran;
            pool.submit(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
            pool.shutdown();
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1, "worker survived the panic");
    }

    #[test]
    fn actually_runs_concurrently() {
        // All tasks must be observed in flight before any completes when
        // threads ≥ tasks — proves tasks are not serialized.
        use std::sync::atomic::AtomicUsize;
        static STARTED: AtomicUsize = AtomicUsize::new(0);
        let n = 4;
        let out = run_indexed(n, n, |i| {
            STARTED.fetch_add(1, Ordering::SeqCst);
            // Wait (bounded) for all peers to start.
            for _ in 0..10_000 {
                if STARTED.load(Ordering::SeqCst) >= n {
                    return i;
                }
                std::thread::yield_now();
            }
            i
        })
        .unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }
}
