//! Worker pools for the runtime's task execution.
//!
//! Two shapes live here:
//!
//! * [`run_indexed`] — the original "N independent tasks, run them on all
//!   cores" helper with work stealing via an atomic cursor, panic capture,
//!   and deterministic result placement by task index. Still the simplest
//!   tool for standalone waves.
//! * `Pool` (crate-internal) — the shared scheduler behind the lazy
//!   [`dataset`](crate::dataset) executor: tasks are submitted dynamically
//!   (a downstream stage's map task becomes ready the moment an upstream
//!   reduce task finishes its partition) and any number of concurrently
//!   executing stages share one fixed set of worker threads, so
//!   cross-stage overlap never oversubscribes the machine.
//!
//! # The shared scheduler
//!
//! Under [`SchedulerMode::Stealing`] (the default) each worker owns a
//! deque; submissions are distributed round-robin and every task carries a
//! priority (the submitting stage's critical-path depth in the lowered
//! plan, so upstream stages outrank downstream ones). A worker pops its
//! *own newest* highest-priority task first (LIFO-local: hot caches, and a
//! stage's freshly readied partitions keep flowing) and, when its deque is
//! empty, steals the *globally oldest* highest-priority task from a peer
//! (FIFO-steal: stragglers' oldest obligations drain first).
//! [`SchedulerMode::Fifo`] is the pre-scheduler behaviour — one shared
//! FIFO queue — kept as the differential baseline, and
//! [`SchedulerMode::Speculative`] adds straggler mitigation: an idle
//! worker re-executes the oldest primary attempt that has been running
//! longer than [`SchedulerConfig::speculate_after`]. Tasks eligible for
//! speculation are submitted as `TaskBody::Replayable` (deterministic,
//! re-runnable closures); the engine's task wrappers keep a first-result-
//! wins cell so exactly one attempt reports, and scheduling mode can never
//! change output bytes — only wall-clock time.
//!
//! Submitters are responsible for capturing panics inside their tasks and
//! for their own completion signalling (the pool itself only moves
//! closures to workers). Timing here (`Instant`) drives *scheduling*
//! decisions only — never simulated stats — so the deterministic-sim
//! discipline of the data plane is untouched.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Locks `m`, shrugging off poisoning: the pool's own state is only ever
/// written under `catch_unwind`, so a poisoned lock just means another
/// worker's task panicked — the data is still consistent.
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// How the shared worker pool schedules tasks (`TSJ_SCHEDULER`, or
/// [`Cluster::with_scheduler`](crate::cluster::Cluster::with_scheduler)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulerMode {
    /// One shared FIFO queue, submission order — the pre-scheduler
    /// behaviour, kept as the differential baseline the work-stealing
    /// modes are property-tested against.
    Fifo,
    /// Per-worker deques with LIFO-local pop and FIFO-steal, ordered by
    /// critical-path priority (the default).
    #[default]
    Stealing,
    /// [`SchedulerMode::Stealing`] plus speculative re-execution of
    /// straggling tasks: an idle worker re-runs the oldest primary attempt
    /// older than [`SchedulerConfig::speculate_after`]; the first finished
    /// attempt wins and the loser's output is dropped at the engine's
    /// first-result-wins cell.
    Speculative,
}

impl SchedulerMode {
    /// Stable lowercase name (what `TSJ_SCHEDULER` accepts).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerMode::Fifo => "fifo",
            SchedulerMode::Stealing => "stealing",
            SchedulerMode::Speculative => "speculative",
        }
    }

    /// Parses a `TSJ_SCHEDULER` value (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fifo" => Some(SchedulerMode::Fifo),
            "stealing" => Some(SchedulerMode::Stealing),
            "speculative" => Some(SchedulerMode::Speculative),
            _ => None,
        }
    }
}

/// A seeded straggler: the named stage's map task 0 sleeps `micros` on its
/// *primary* attempt only (`TSJ_STRAGGLE_STAGE` / `TSJ_STRAGGLE_US`).
///
/// This models an environmentally slow node, which is the only slowness
/// speculation can beat: the engine's tasks are deterministic, so a
/// re-execution of a task that is slow *because of its data* is exactly as
/// slow. The speculative attempt therefore skips the injected sleep —
/// it runs "on a healthy node" — and wins. Used by the scheduler tests and
/// the `figoverlap` straggler series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StraggleInjection {
    /// Stage name whose map task 0 straggles.
    pub stage: String,
    /// Injected sleep, in microseconds.
    pub micros: u64,
}

/// Scheduler configuration of a [`Cluster`](crate::cluster::Cluster):
/// mode, speculation threshold, and an optional seeded straggler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// The scheduling policy.
    pub mode: SchedulerMode,
    /// How long a primary attempt must have been running before an idle
    /// worker launches a speculative copy ([`SchedulerMode::Speculative`]
    /// only).
    pub speculate_after: Duration,
    /// Optional seeded straggler for tests and benchmarks.
    pub straggle: Option<StraggleInjection>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            mode: SchedulerMode::default(),
            speculate_after: Duration::from_millis(20),
            straggle: None,
        }
    }
}

impl SchedulerConfig {
    /// The default with the `TSJ_SCHEDULER` / `TSJ_SPECULATE_AFTER_US` /
    /// `TSJ_STRAGGLE_STAGE` + `TSJ_STRAGGLE_US` environment overrides
    /// applied; invalid values fall back loudly (one stderr line), like
    /// [`ShuffleConfig::from_env`](crate::shuffle::ShuffleConfig::from_env).
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var_os(name))
    }

    pub(crate) fn from_lookup(lookup: impl Fn(&str) -> Option<std::ffi::OsString>) -> Self {
        let mut cfg = Self::default();
        if let Some(raw) = lookup("TSJ_SCHEDULER") {
            match raw.to_str().and_then(SchedulerMode::parse) {
                Some(mode) => cfg.mode = mode,
                None => eprintln!(
                    "tsj-mapreduce: ignoring invalid TSJ_SCHEDULER={raw:?} (expected \
                     \"fifo\", \"stealing\" or \"speculative\"); using {}",
                    cfg.mode.name()
                ),
            }
        }
        if let Some(raw) = lookup("TSJ_SPECULATE_AFTER_US") {
            match raw.to_str().and_then(|s| s.trim().parse::<u64>().ok()) {
                Some(us) => cfg.speculate_after = Duration::from_micros(us),
                None => eprintln!(
                    "tsj-mapreduce: ignoring invalid TSJ_SPECULATE_AFTER_US={raw:?} \
                     (expected microseconds); using {}µs",
                    cfg.speculate_after.as_micros()
                ),
            }
        }
        if let Some(stage_raw) = lookup("TSJ_STRAGGLE_STAGE") {
            let micros = lookup("TSJ_STRAGGLE_US")
                .and_then(|r| r.to_str().and_then(|s| s.trim().parse::<u64>().ok()));
            match (stage_raw.to_str(), micros) {
                (Some(stage), Some(micros)) if !stage.trim().is_empty() => {
                    cfg.straggle = Some(StraggleInjection {
                        stage: stage.trim().to_owned(),
                        micros,
                    });
                }
                _ => eprintln!(
                    "tsj-mapreduce: ignoring TSJ_STRAGGLE_STAGE={stage_raw:?} (needs a \
                     non-empty stage name and a valid TSJ_STRAGGLE_US in microseconds)"
                ),
            }
        }
        cfg
    }
}

/// Per-stage scheduler observability, shared between a stage's submitted
/// tasks and its driver (which folds the counters into
/// [`JobStats`](crate::job::JobStats) at the end of the stage).
#[derive(Debug, Default)]
pub(crate) struct SchedStats {
    /// Tasks a worker took from another worker's deque.
    pub(crate) steals: AtomicU64,
    /// Speculative attempts launched for this stage's tasks.
    pub(crate) speculative_launched: AtomicU64,
    /// Speculative attempts that finished before their primary.
    pub(crate) speculative_won: AtomicU64,
    /// Total microseconds tasks spent queued before a worker picked them
    /// up.
    pub(crate) queue_wait_us: AtomicU64,
}

/// A unit of work on the shared pool. `'t` is the execution lifetime: task
/// closures may borrow anything that outlives the executor run (stage
/// closures, the corpus behind them, the cluster).
pub(crate) enum TaskBody<'t> {
    /// Run-exactly-once closure (the classic task shape; also everything
    /// that cannot be safely re-executed, e.g. reduce tasks over in-memory
    /// segments, which would have to be consumed twice).
    Once(Box<dyn FnOnce() + Send + 't>),
    /// A deterministic, re-runnable task: `job(attempt)` may be executed
    /// concurrently for `attempt = 0` (primary) and `attempt = 1`
    /// (speculative copy). The closure must keep concurrent attempts from
    /// colliding (attempt-distinct scratch paths) and must deliver at most
    /// one result (first-wins cell). Only [`SchedulerMode::Speculative`]
    /// ever runs attempt 1.
    Replayable(Arc<dyn Fn(usize) + Send + Sync + 't>),
}

/// One queued task with its scheduling metadata.
struct QueuedTask<'t> {
    body: TaskBody<'t>,
    /// Critical-path depth of the submitting stage: higher = more
    /// upstream = scheduled first.
    priority: u32,
    /// Global submission sequence number (FIFO-steal tiebreak).
    seq: u64,
    queued_at: Instant,
    sched: Option<Arc<SchedStats>>,
}

/// A primary attempt currently executing on some worker — what idle
/// workers scan for speculation candidates.
struct RunningEntry<'t> {
    id: u64,
    job: Arc<dyn Fn(usize) + Send + Sync + 't>,
    sched: Option<Arc<SchedStats>>,
    started: Instant,
    /// A speculative copy has been launched; never launch a second.
    speculated: bool,
}

/// Shared scheduler coordination: every queue/running mutation happens
/// under this lock, so `queued` is always the exact total deque length and
/// the submit/exit race has no window.
struct Coord<'t> {
    /// Total tasks across all deques.
    queued: usize,
    shutdown: bool,
    /// Workers currently inside [`Pool::run_worker`].
    live_workers: usize,
    /// Round-robin submission target.
    next_worker: usize,
    next_seq: u64,
    next_run_id: u64,
    /// Primary attempts currently executing ([`SchedulerMode::Speculative`]
    /// only).
    running: Vec<RunningEntry<'t>>,
}

/// What a worker decided to do after inspecting the coordinator state.
/// `Run` carries the dequeued task and whether it was stolen from a peer.
enum Decision<'t> {
    Run(QueuedTask<'t>, bool),
    Speculate(Arc<dyn Fn(usize) + Send + Sync + 't>),
    Exit,
}

/// The shared scheduler behind the lazy dataset executor (see the module
/// docs). Workers run [`Pool::run_worker`] on scoped threads; stage
/// drivers feed it with [`Pool::submit`] as partitions become ready and
/// are woken by their own per-wave completion latches.
pub(crate) struct Pool<'t> {
    deques: Vec<Mutex<VecDeque<QueuedTask<'t>>>>,
    coord: Mutex<Coord<'t>>,
    ready: Condvar,
    sched: SchedulerConfig,
}

impl<'t> Pool<'t> {
    pub(crate) fn new(workers: usize, sched: SchedulerConfig) -> Self {
        let workers = workers.max(1);
        Self {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            coord: Mutex::new(Coord {
                queued: 0,
                shutdown: false,
                live_workers: 0,
                next_worker: 0,
                next_seq: 0,
                next_run_id: 0,
                running: Vec::new(),
            }),
            ready: Condvar::new(),
            sched,
        }
    }

    /// The scheduler configuration this pool runs with.
    pub(crate) fn scheduler(&self) -> &SchedulerConfig {
        &self.sched
    }

    /// Enqueues one task; an idle worker picks it up.
    ///
    /// Wake-and-run guarantee: a task submitted here always executes, even
    /// after [`Pool::shutdown`]. Workers only exit when `shutdown` is set
    /// *and* the queues are empty — both checked under the coordinator
    /// lock — so as long as any worker is live the task will be drained;
    /// when the last worker has already exited, the task runs inline on
    /// the submitting thread instead of silently rotting in the queue
    /// (which would stall the submitting wave forever on its Drop-armed
    /// completion ticket).
    pub(crate) fn submit(&self, body: TaskBody<'t>, priority: u32, sched: Option<Arc<SchedStats>>) {
        let mut coord = lock(&self.coord);
        if coord.shutdown && coord.live_workers == 0 {
            drop(coord);
            run_primary(body);
            return;
        }
        let seq = coord.next_seq;
        coord.next_seq += 1;
        let target = match self.sched.mode {
            SchedulerMode::Fifo => 0,
            _ => {
                let t = coord.next_worker % self.deques.len();
                coord.next_worker = coord.next_worker.wrapping_add(1);
                t
            }
        };
        coord.queued += 1;
        lock(&self.deques[target]).push_back(QueuedTask {
            body,
            priority,
            seq,
            queued_at: Instant::now(),
            sched,
        });
        drop(coord);
        self.ready.notify_one();
    }

    /// A worker loop: runs queued tasks until [`Pool::shutdown`] *and* the
    /// queues are drained; under [`SchedulerMode::Speculative`] an
    /// otherwise-idle worker launches speculative copies of straggling
    /// primaries. Tasks are expected to capture their own panics; as a
    /// last line of defence a panic that escapes a task is swallowed here
    /// rather than poisoning the whole pool. (The engine's task wrappers
    /// hold a Drop-armed `WaveTicket`, so even an escaped panic records a
    /// failure and the submitting wave still terminates — new task shapes
    /// must keep an equivalent Drop-based latch.)
    pub(crate) fn run_worker(&self, me: usize) {
        let me = me.min(self.deques.len().saturating_sub(1));
        lock(&self.coord).live_workers += 1;
        loop {
            let decision = {
                let mut coord = lock(&self.coord);
                loop {
                    if coord.queued > 0 {
                        if let Some((task, stolen)) = self.dequeue(me) {
                            coord.queued -= 1;
                            break Decision::Run(task, stolen);
                        }
                    }
                    if coord.shutdown && coord.queued == 0 {
                        coord.live_workers -= 1;
                        break Decision::Exit;
                    }
                    if self.sched.mode == SchedulerMode::Speculative {
                        match self.pick_straggler(&mut coord) {
                            Straggler::Ripe(job) => break Decision::Speculate(job),
                            Straggler::Pending(remaining) => {
                                let (g, _) = self
                                    .ready
                                    .wait_timeout(coord, remaining)
                                    .unwrap_or_else(|e| e.into_inner());
                                coord = g;
                                continue;
                            }
                            Straggler::None => {}
                        }
                    }
                    coord = self.ready.wait(coord).unwrap_or_else(|e| e.into_inner());
                }
            };
            match decision {
                Decision::Run(task, stolen) => self.run_task(task, stolen),
                Decision::Speculate(job) => {
                    // Speculative attempts are never registered as running
                    // (no speculation of speculation) and report through
                    // the task's own first-wins cell.
                    let _ = catch_unwind(AssertUnwindSafe(|| job(1)));
                }
                Decision::Exit => return,
            }
        }
    }

    /// Tells workers to exit once the queues are empty.
    pub(crate) fn shutdown(&self) {
        lock(&self.coord).shutdown = true;
        self.ready.notify_all();
    }

    /// Picks the next task for worker `me`. Caller holds the coordinator
    /// lock (every deque mutation happens under it, so a `queued > 0`
    /// observation guarantees the scan finds a task).
    fn dequeue(&self, me: usize) -> Option<(QueuedTask<'t>, bool)> {
        if self.sched.mode == SchedulerMode::Fifo {
            return lock(&self.deques[0]).pop_front().map(|t| (t, false));
        }
        // LIFO-local: the newest of this worker's highest-priority tasks
        // (hot caches; a stage's freshly readied partitions keep flowing).
        {
            let mut own = lock(&self.deques[me]);
            if let Some(max) = own.iter().map(|t| t.priority).max() {
                if let Some(idx) = own.iter().rposition(|t| t.priority == max) {
                    return own.remove(idx).map(|t| (t, false));
                }
            }
        }
        // FIFO-steal: the globally oldest of the highest-priority tasks on
        // any peer deque (stragglers' oldest obligations drain first).
        let mut choice: Option<(usize, usize)> = None;
        let mut best_prio = 0u32;
        let mut best_seq = u64::MAX;
        for (d, deque) in self.deques.iter().enumerate() {
            if d == me {
                continue;
            }
            let q = lock(deque);
            for (i, t) in q.iter().enumerate() {
                if choice.is_none()
                    || t.priority > best_prio
                    || (t.priority == best_prio && t.seq < best_seq)
                {
                    choice = Some((d, i));
                    best_prio = t.priority;
                    best_seq = t.seq;
                }
            }
        }
        let (d, i) = choice?;
        lock(&self.deques[d]).remove(i).map(|t| (t, true))
    }

    /// Scans the running primaries for a speculation candidate: the oldest
    /// unspeculated attempt past the threshold, or how long until the
    /// earliest one ripens. Marks the chosen entry and books the launch.
    fn pick_straggler(&self, coord: &mut Coord<'t>) -> Straggler<'t> {
        let now = Instant::now();
        let mut ripe: Option<usize> = None;
        let mut next_ripen: Option<Duration> = None;
        for (i, e) in coord.running.iter().enumerate() {
            if e.speculated {
                continue;
            }
            let elapsed = now.saturating_duration_since(e.started);
            if elapsed >= self.sched.speculate_after {
                let older = match ripe {
                    Some(j) => e.started < coord.running[j].started,
                    None => true,
                };
                if older {
                    ripe = Some(i);
                }
            } else {
                let rem = self.sched.speculate_after - elapsed;
                next_ripen = Some(next_ripen.map_or(rem, |b: Duration| b.min(rem)));
            }
        }
        if let Some(i) = ripe {
            let e = &mut coord.running[i];
            e.speculated = true;
            if let Some(s) = &e.sched {
                s.speculative_launched.fetch_add(1, Ordering::Relaxed);
            }
            return Straggler::Ripe(Arc::clone(&e.job));
        }
        match next_ripen {
            Some(rem) => Straggler::Pending(rem),
            None => Straggler::None,
        }
    }

    /// Runs one dequeued task, booking its steal/queue-wait observability
    /// first.
    fn run_task(&self, task: QueuedTask<'t>, stolen: bool) {
        if let Some(s) = &task.sched {
            if stolen {
                s.steals.fetch_add(1, Ordering::Relaxed);
            }
            s.queue_wait_us.fetch_add(
                u64::try_from(task.queued_at.elapsed().as_micros()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
        }
        match task.body {
            TaskBody::Once(f) => {
                let _ = catch_unwind(AssertUnwindSafe(f));
            }
            TaskBody::Replayable(job) => {
                if self.sched.mode == SchedulerMode::Speculative {
                    let id = {
                        let mut coord = lock(&self.coord);
                        let id = coord.next_run_id;
                        coord.next_run_id += 1;
                        coord.running.push(RunningEntry {
                            id,
                            job: Arc::clone(&job),
                            sched: task.sched.clone(),
                            started: Instant::now(),
                            speculated: false,
                        });
                        id
                    };
                    // Idle workers may be parked in a plain wait; wake them
                    // so they switch to the speculation timeout.
                    self.ready.notify_all();
                    let _ = catch_unwind(AssertUnwindSafe(|| job(0)));
                    lock(&self.coord).running.retain(|e| e.id != id);
                } else {
                    let _ = catch_unwind(AssertUnwindSafe(|| job(0)));
                }
            }
        }
    }
}

/// What an idle worker's straggler scan yielded.
enum Straggler<'t> {
    /// A speculative copy to run now.
    Ripe(Arc<dyn Fn(usize) + Send + Sync + 't>),
    /// Nothing ripe yet; the earliest candidate ripens in this long.
    Pending(Duration),
    /// No unspeculated primaries are running.
    None,
}

/// Runs a task body's primary attempt inline (the submit-after-shutdown
/// fallback), swallowing escaped panics exactly like a worker would.
fn run_primary(body: TaskBody<'_>) {
    match body {
        TaskBody::Once(f) => {
            let _ = catch_unwind(AssertUnwindSafe(f));
        }
        TaskBody::Replayable(job) => {
            let _ = catch_unwind(AssertUnwindSafe(|| job(0)));
        }
    }
}

/// Runs `f(0..n_tasks)` on up to `threads` worker threads and returns the
/// results in task order.
///
/// If any task panics, the panic message of the first observed panic is
/// returned as `Err` after all in-flight tasks finish; remaining queued
/// tasks are abandoned (workers re-check the failure flag *after*
/// claiming an index, so a claim that raced the panic report is abandoned
/// too, not silently executed).
pub fn run_indexed<R, F>(n_tasks: usize, threads: usize, f: F) -> Result<Vec<R>, String>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n_tasks == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(n_tasks);
    if threads == 1 {
        // Fast path, also keeps single-threaded debugging simple.
        let mut out = Vec::with_capacity(n_tasks);
        for i in 0..n_tasks {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(r) => out.push(r),
                Err(p) => return Err(panic_message(p)),
            }
        }
        return Ok(out);
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<String>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if lock(&failure).is_some() {
                    return; // abandon queued work after a failure
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    return;
                }
                // Re-check after the claim: a panic may have been recorded
                // between the check above and the fetch_add, and "remaining
                // queued tasks are abandoned" must hold for the claimed
                // index too (its slot stays empty; the failure return path
                // never reads the slots).
                if lock(&failure).is_some() {
                    return;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(r) => *lock(&slots[i]) = Some(r),
                    Err(p) => {
                        let mut guard = lock(&failure);
                        if guard.is_none() {
                            *guard = Some(panic_message(p));
                        }
                        return;
                    }
                }
            });
        }
    });

    if let Some(msg) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(msg);
    }
    let mut out = Vec::with_capacity(n_tasks);
    for s in slots {
        match s.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(r) => out.push(r),
            // Every slot is filled unless a worker failed, and failures
            // returned above; surface the impossible gap as an error
            // instead of killing the process.
            None => return Err("a task slot was left unfilled without a failure".to_owned()),
        }
    }
    Ok(out)
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize};
    use std::sync::Barrier;

    fn once<'t>(f: impl FnOnce() + Send + 't) -> TaskBody<'t> {
        TaskBody::Once(Box::new(f))
    }

    #[test]
    fn preserves_task_order() {
        let out = run_indexed(100, 8, |i| i * i).unwrap();
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn zero_tasks() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = run_indexed(10, 1, |i| i + 1).unwrap();
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_tasks() {
        let out = run_indexed(3, 64, |i| i).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn panic_is_captured_as_error() {
        let res: Result<Vec<()>, String> = run_indexed(16, 4, |i| {
            if i == 7 {
                panic!("task 7 exploded");
            }
        });
        assert_eq!(res.unwrap_err(), "task 7 exploded");
    }

    #[test]
    fn panic_with_string_payload() {
        let res: Result<Vec<()>, String> = run_indexed(4, 2, |i| panic!("boom {i}"));
        assert!(res.unwrap_err().starts_with("boom"));
    }

    #[test]
    fn panic_abandons_remaining_tasks() {
        // Task 0 (claimed first) panics immediately; once the failure is
        // recorded, every later claim must be abandoned. Surviving tasks
        // sleep 1 ms each, so draining all 1000 would take ~250 ms on 4
        // workers — recording one panic is orders of magnitude faster,
        // leaving the executed count far below the task count.
        let executed = AtomicU64::new(0);
        let n = 1000;
        let res: Result<Vec<()>, String> = run_indexed(n, 4, |i| {
            if i == 0 {
                panic!("first task fails fast");
            }
            std::thread::sleep(Duration::from_millis(1));
            executed.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(res.unwrap_err(), "first task fails fast");
        assert!(
            (executed.load(Ordering::SeqCst) as usize) < n - 1,
            "a recorded failure must abandon queued tasks"
        );
    }

    fn all_modes() -> [SchedulerConfig; 3] {
        [
            SchedulerConfig {
                mode: SchedulerMode::Fifo,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                mode: SchedulerMode::Stealing,
                ..SchedulerConfig::default()
            },
            SchedulerConfig {
                mode: SchedulerMode::Speculative,
                speculate_after: Duration::from_millis(1),
                ..SchedulerConfig::default()
            },
        ]
    }

    #[test]
    fn shared_pool_runs_dynamically_submitted_tasks() {
        for sched in all_modes() {
            let sum = AtomicU64::new(0);
            let rendezvous = Barrier::new(2);
            let pool = Pool::new(4, sched);
            std::thread::scope(|s| {
                for w in 0..4 {
                    let pool = &pool;
                    s.spawn(move || pool.run_worker(w));
                }
                // Submit in two waves; a barrier task proves workers are
                // live and draining the queue before wave two (no sleep
                // race: the ready queue must accept work at any time).
                for i in 0..50u64 {
                    let sum = &sum;
                    pool.submit(
                        once(move || {
                            sum.fetch_add(i, Ordering::SeqCst);
                        }),
                        0,
                        None,
                    );
                }
                let b = &rendezvous;
                pool.submit(
                    once(move || {
                        b.wait();
                    }),
                    0,
                    None,
                );
                rendezvous.wait();
                for i in 50..100u64 {
                    let sum = &sum;
                    pool.submit(
                        once(move || {
                            sum.fetch_add(i, Ordering::SeqCst);
                        }),
                        0,
                        None,
                    );
                }
                pool.shutdown();
            });
            assert_eq!(sum.load(Ordering::SeqCst), (0..100).sum::<u64>());
        }
    }

    #[test]
    fn shared_pool_survives_a_panicking_task() {
        for sched in all_modes() {
            let ran = AtomicU64::new(0);
            let pool = Pool::new(1, sched);
            std::thread::scope(|s| {
                let pool = &pool;
                s.spawn(move || pool.run_worker(0));
                pool.submit(once(|| panic!("escaped panic")), 0, None);
                let ran = &ran;
                pool.submit(
                    once(move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    }),
                    0,
                    None,
                );
                pool.shutdown();
            });
            assert_eq!(ran.load(Ordering::SeqCst), 1, "worker survived the panic");
        }
    }

    #[test]
    fn submit_after_all_workers_exited_still_runs_the_task() {
        // The shutdown/submit race regression: before the wake-and-run
        // guarantee, a task submitted after the last worker exited sat in
        // the queue forever, stalling its wave on the Drop-armed ticket.
        for sched in all_modes() {
            let ran = AtomicU64::new(0);
            let pool = Pool::new(2, sched);
            std::thread::scope(|s| {
                let pool = &pool;
                let workers: Vec<_> = (0..2)
                    .map(|w| s.spawn(move || pool.run_worker(w)))
                    .collect();
                pool.shutdown();
                for w in workers {
                    let _ = w.join();
                }
                // Every worker has exited; the submit must run inline.
                let ran = &ran;
                pool.submit(
                    once(move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    }),
                    0,
                    None,
                );
                assert_eq!(
                    ran.load(Ordering::SeqCst),
                    1,
                    "submit after shutdown ran inline"
                );
            });
        }
    }

    #[test]
    fn submit_after_shutdown_with_live_worker_is_drained() {
        // The other half of the wake-and-run guarantee: while any worker
        // is still live, a post-shutdown submit is drained by it (workers
        // only exit when shutdown AND empty, decided under one lock).
        let ran = AtomicU64::new(0);
        let gate = Barrier::new(2);
        let pool = Pool::new(1, SchedulerConfig::default());
        std::thread::scope(|s| {
            let pool = &pool;
            s.spawn(move || pool.run_worker(0));
            let g = &gate;
            pool.submit(
                once(move || {
                    g.wait();
                }),
                0,
                None,
            );
            gate.wait(); // the worker is provably live
            pool.shutdown();
            let ran = &ran;
            pool.submit(
                once(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                }),
                0,
                None,
            );
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn higher_priority_tasks_run_first() {
        // One worker, tasks queued before it starts: the depth-3 task must
        // run before depth-0 ones despite being submitted last.
        let order = Mutex::new(Vec::new());
        let pool = Pool::new(1, SchedulerConfig::default());
        for (label, priority) in [("low-a", 0u32), ("low-b", 0), ("high", 3)] {
            let order = &order;
            pool.submit(
                once(move || {
                    lock(order).push(label);
                }),
                priority,
                None,
            );
        }
        pool.shutdown();
        std::thread::scope(|s| {
            let pool = &pool;
            s.spawn(move || pool.run_worker(0));
        });
        assert_eq!(lock(&order)[0], "high");
    }

    #[test]
    fn stealing_drains_a_peer_deque() {
        // Two workers, but only worker 1 runs; everything lands on both
        // deques round-robin and worker 1 must steal worker 0's share.
        let sum = AtomicU64::new(0);
        let stats = Arc::new(SchedStats::default());
        let pool = Pool::new(
            2,
            SchedulerConfig {
                mode: SchedulerMode::Stealing,
                ..SchedulerConfig::default()
            },
        );
        for i in 0..10u64 {
            let sum = &sum;
            pool.submit(
                once(move || {
                    sum.fetch_add(i, Ordering::SeqCst);
                }),
                0,
                Some(Arc::clone(&stats)),
            );
        }
        pool.shutdown();
        std::thread::scope(|s| {
            let pool = &pool;
            s.spawn(move || pool.run_worker(1));
        });
        assert_eq!(sum.load(Ordering::SeqCst), (0..10).sum::<u64>());
        assert!(
            stats.steals.load(Ordering::Relaxed) >= 1,
            "worker 1 must have stolen worker 0's tasks"
        );
    }

    #[test]
    fn idle_worker_speculates_a_straggler_and_first_result_wins() {
        // A replayable primary stalls; the idle second worker launches the
        // speculative copy, which reports first. The loser finds the
        // first-wins cell empty and drops its result.
        let winner: Mutex<Option<usize>> = Mutex::new(None);
        let stats = Arc::new(SchedStats::default());
        let pool = Pool::new(
            2,
            SchedulerConfig {
                mode: SchedulerMode::Speculative,
                speculate_after: Duration::from_millis(1),
                straggle: None,
            },
        );
        std::thread::scope(|s| {
            let pool = &pool;
            for w in 0..2 {
                s.spawn(move || pool.run_worker(w));
            }
            let winner = &winner;
            pool.submit(
                TaskBody::Replayable(Arc::new(move |attempt| {
                    if attempt == 0 {
                        // The straggling primary: slow for environmental
                        // reasons (the case speculation exists for).
                        std::thread::sleep(Duration::from_millis(200));
                    }
                    let mut cell = lock(winner);
                    if cell.is_none() {
                        *cell = Some(attempt);
                    }
                })),
                0,
                Some(Arc::clone(&stats)),
            );
            // Let the speculation land before shutting down.
            while lock(winner).is_none() {
                std::thread::sleep(Duration::from_millis(1));
            }
            pool.shutdown();
        });
        assert_eq!(
            lock(&winner).take(),
            Some(1),
            "the speculative attempt must win against a 200ms straggler"
        );
        assert!(stats.speculative_launched.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn scheduler_config_parses_and_defaults() {
        assert_eq!(SchedulerMode::parse("fifo"), Some(SchedulerMode::Fifo));
        assert_eq!(
            SchedulerMode::parse(" STEALING "),
            Some(SchedulerMode::Stealing)
        );
        assert_eq!(
            SchedulerMode::parse("speculative"),
            Some(SchedulerMode::Speculative)
        );
        assert_eq!(SchedulerMode::parse("nope"), None);
        assert_eq!(SchedulerMode::Speculative.name(), "speculative");

        let defaults = SchedulerConfig::from_lookup(|_| None);
        assert_eq!(defaults, SchedulerConfig::default());
        assert_eq!(defaults.mode, SchedulerMode::Stealing);

        let cfg = SchedulerConfig::from_lookup(|k| match k {
            "TSJ_SCHEDULER" => Some("speculative".into()),
            "TSJ_SPECULATE_AFTER_US" => Some("500".into()),
            "TSJ_STRAGGLE_STAGE" => Some("slow.stage".into()),
            "TSJ_STRAGGLE_US" => Some("2500".into()),
            _ => None,
        });
        assert_eq!(cfg.mode, SchedulerMode::Speculative);
        assert_eq!(cfg.speculate_after, Duration::from_micros(500));
        assert_eq!(
            cfg.straggle,
            Some(StraggleInjection {
                stage: "slow.stage".to_owned(),
                micros: 2500,
            })
        );

        // Invalid values fall back loudly to the defaults.
        let bad = SchedulerConfig::from_lookup(|k| match k {
            "TSJ_SCHEDULER" => Some("garbage".into()),
            "TSJ_SPECULATE_AFTER_US" => Some("not-a-number".into()),
            "TSJ_STRAGGLE_STAGE" => Some("lonely".into()), // no TSJ_STRAGGLE_US
            _ => None,
        });
        assert_eq!(bad, SchedulerConfig::default());
    }

    #[test]
    fn actually_runs_concurrently() {
        // All tasks must be observed in flight before any completes when
        // threads ≥ tasks — proves tasks are not serialized.
        static STARTED: AtomicUsize = AtomicUsize::new(0);
        let n = 4;
        let out = run_indexed(n, n, |i| {
            STARTED.fetch_add(1, Ordering::SeqCst);
            // Wait (bounded) for all peers to start.
            for _ in 0..10_000 {
                if STARTED.load(Ordering::SeqCst) >= n {
                    return i;
                }
                std::thread::yield_now();
            }
            i
        })
        .unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }
}
