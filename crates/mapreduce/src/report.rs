//! Pipeline-level aggregation of job statistics.

use crate::dag::analyze::PlanDiagnostic;
use crate::job::JobStats;

/// A report over a multi-job pipeline (TSJ runs 3–6 MapReduce jobs per
/// join; the paper's reported runtime is the whole pipeline's).
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    jobs: Vec<JobStats>,
    /// Plan-analysis findings from the lowered graphs behind these jobs
    /// (warn mode only: deny mode fails the terminal instead).
    plan_diagnostics: Vec<PlanDiagnostic>,
}

impl SimReport {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one executed job's stats.
    pub fn push(&mut self, stats: JobStats) {
        self.jobs.push(stats);
    }

    /// All recorded jobs, in execution order.
    pub fn jobs(&self) -> &[JobStats] {
        &self.jobs
    }

    /// Mutable access to the recorded jobs — for driver-side annotations
    /// that only exist after a job ran (e.g. booking a
    /// [`Dataset::collect`](crate::dataset::Dataset::collect) crossing on
    /// its producing job, or attaching a post-hoc counter).
    pub fn jobs_mut(&mut self) -> &mut [JobStats] {
        &mut self.jobs
    }

    /// End-to-end simulated pipeline time (jobs run sequentially, as the
    /// stages of TSJ depend on each other).
    pub fn total_sim_secs(&self) -> f64 {
        self.jobs.iter().map(|j| j.sim_total_secs).sum()
    }

    /// Total real wall-clock spent executing locally.
    pub fn total_wall_secs(&self) -> f64 {
        self.jobs.iter().map(|j| j.wall_secs).sum()
    }

    /// Sum of a counter across all jobs.
    pub fn counter(&self, name: &str) -> u64 {
        self.jobs.iter().map(|j| j.counter(name)).sum()
    }

    /// Merges another report's jobs (pipelines composed of sub-pipelines)
    /// and its plan diagnostics.
    pub fn extend(&mut self, other: SimReport) {
        self.jobs.extend(other.jobs);
        self.plan_diagnostics.extend(other.plan_diagnostics);
    }

    /// Plan-analysis findings accumulated over the lowered graphs behind
    /// these jobs (see [`analyze_plan`](crate::dag::analyze::analyze_plan);
    /// empty under [`PlanCheck::Deny`](crate::dag::analyze::PlanCheck),
    /// which fails the terminal instead of reporting).
    pub fn plan_diagnostics(&self) -> &[PlanDiagnostic] {
        &self.plan_diagnostics
    }

    /// Attaches one lowered graph's analysis findings (the dataset
    /// terminal, after a warn-mode run).
    pub(crate) fn add_plan_diagnostics(&mut self, diagnostics: Vec<PlanDiagnostic>) {
        self.plan_diagnostics.extend(diagnostics);
    }

    /// Total intermediate pairs emitted by mappers across all jobs
    /// (pre-combine).
    pub fn total_map_output_records(&self) -> u64 {
        self.jobs.iter().map(|j| j.map_output_records).sum()
    }

    /// Total records actually shuffled across all jobs (post-combine) —
    /// the volume the paper's cost analysis is about.
    pub fn total_shuffle_records(&self) -> u64 {
        self.jobs.iter().map(|j| j.shuffle_records).sum()
    }

    /// Total records spilled to disk by memory-bounded mappers across all
    /// jobs (zero when the shuffle runs unbounded).
    pub fn total_spilled_records(&self) -> u64 {
        self.jobs.iter().map(|j| j.spilled_records).sum()
    }

    /// Total bytes written to spill segments across all jobs.
    pub fn total_spill_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.spill_bytes).sum()
    }

    /// Total bytes serialized through the shuffle transport across all
    /// jobs (zero under the in-process handoff; the full post-combine
    /// exchange volume under the multi-process transport).
    pub fn total_transport_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.transport_bytes).sum()
    }

    /// Total records that crossed from driver memory into map waves.
    pub fn total_driver_in_records(&self) -> u64 {
        self.jobs.iter().map(|j| j.driver_in_records).sum()
    }

    /// Total records reduce waves handed back to driver memory. For a
    /// dataset-chained pipeline this counts only the collected terminal
    /// stages — the driver-materialization saving the dataset layer
    /// exists to deliver.
    pub fn total_driver_out_records(&self) -> u64 {
        self.jobs.iter().map(|j| j.driver_out_records).sum()
    }

    /// Total records that crossed the driver boundary in either direction
    /// (the `driver(rec)` column's TOTAL).
    pub fn total_driver_records(&self) -> u64 {
        self.total_driver_in_records() + self.total_driver_out_records()
    }

    /// Total tasks workers stole from a peer's deque across all jobs
    /// (real-scheduler observability — nondeterministic, like wall-clock).
    pub fn total_steals(&self) -> u64 {
        self.jobs.iter().map(|j| j.steals).sum()
    }

    /// Total speculative re-executions launched across all jobs.
    pub fn total_speculative_launched(&self) -> u64 {
        self.jobs.iter().map(|j| j.speculative_launched).sum()
    }

    /// Total speculative attempts that beat their primary across all jobs.
    pub fn total_speculative_won(&self) -> u64 {
        self.jobs.iter().map(|j| j.speculative_won).sum()
    }

    /// Total microseconds tasks spent queued before a worker picked them
    /// up, across all jobs.
    pub fn total_queue_wait_us(&self) -> u64 {
        self.jobs.iter().map(|j| j.queue_wait_us).sum()
    }

    /// Total logical fetch requests the remote transport issued across
    /// all jobs (real-network observability — nondeterministic, like
    /// wall-clock; zero for the other transports).
    pub fn total_fetch_requests(&self) -> u64 {
        self.jobs.iter().map(|j| j.fetch_requests).sum()
    }

    /// Total fetch retries (extra attempts after drops/timeouts,
    /// injected faults included) across all jobs.
    pub fn total_fetch_retries(&self) -> u64 {
        self.jobs.iter().map(|j| j.fetch_retries).sum()
    }

    /// Total payload bytes the remote transport's fetch clients received
    /// across all jobs.
    pub fn total_fetch_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.fetch_bytes).sum()
    }

    /// Average framed bytes per shuffled record across the jobs that
    /// actually moved bytes through a transport (the `xport(B/rec)`
    /// column's TOTAL) — the wire format's per-record cost, directly
    /// comparable across framing versions. `None` when no job exchanged
    /// bytes (e.g. the in-process handoff).
    pub fn transport_bytes_per_record(&self) -> Option<f64> {
        let (bytes, records) = self
            .jobs
            .iter()
            .filter(|j| j.transport_bytes > 0 && j.shuffle_records > 0)
            .fold((0u64, 0u64), |(b, r), j| {
                (b + j.transport_bytes, r + j.shuffle_records)
            });
        (records > 0).then(|| bytes as f64 / records as f64)
    }
}

/// Renders one `xport(B/rec)` cell: blank for jobs that moved no bytes.
fn bytes_per_record_cell(transport_bytes: u64, shuffle_records: u64) -> String {
    if transport_bytes == 0 || shuffle_records == 0 {
        String::new()
    } else {
        format!("{:.1}", transport_bytes as f64 / shuffle_records as f64)
    }
}

/// Renders one `spec(l/w)` cell: speculative attempts launched/won, blank
/// when speculation never engaged.
fn speculation_cell(launched: u64, won: u64) -> String {
    if launched == 0 {
        String::new()
    } else {
        format!("{launched}/{won}")
    }
}

/// Renders one `fetch(rpc/retry)` cell: remote-transport fetch requests
/// and retries, blank for jobs that never fetched over the network.
fn fetch_cell(requests: u64, retries: u64) -> String {
    if requests == 0 {
        String::new()
    } else {
        format!("{requests}/{retries}")
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<28} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>11} {:>10} {:>10} {:>10} {:>8} {:>7} {:>9} {:>9} {:>16}",
            "job",
            "input",
            "emitted",
            "shuffled",
            "spilled",
            "xport(B)",
            "xport(B/rec)",
            "driver(rec)",
            "groups",
            "output",
            "sim(s)",
            "skew",
            "steals",
            "spec(l/w)",
            "qwait(ms)",
            "fetch(rpc/retry)"
        )?;
        for j in &self.jobs {
            writeln!(
                f,
                "{:<28} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>11} {:>10} {:>10} {:>10.2} {:>8.2} {:>7} {:>9} {:>9.1} {:>16}",
                j.name,
                j.input_records,
                j.map_output_records,
                j.shuffle_records,
                j.spilled_records,
                j.transport_bytes,
                bytes_per_record_cell(j.transport_bytes, j.shuffle_records),
                j.driver_in_records + j.driver_out_records,
                j.reduce_groups,
                j.output_records,
                j.sim_total_secs,
                j.reduce.skew,
                j.steals,
                speculation_cell(j.speculative_launched, j.speculative_won),
                j.queue_wait_us as f64 / 1e3,
                fetch_cell(j.fetch_requests, j.fetch_retries),
            )?;
        }
        write!(
            f,
            "{:<28} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>11} {:>10} {:>10} {:>10.2} {:>8} {:>7} {:>9} {:>9.1} {:>16}",
            "TOTAL",
            "",
            self.total_map_output_records(),
            self.total_shuffle_records(),
            self.total_spilled_records(),
            self.total_transport_bytes(),
            self.transport_bytes_per_record()
                .map(|b| format!("{b:.1}"))
                .unwrap_or_default(),
            self.total_driver_records(),
            "",
            "",
            self.total_sim_secs(),
            "",
            self.total_steals(),
            speculation_cell(self.total_speculative_launched(), self.total_speculative_won()),
            self.total_queue_wait_us() as f64 / 1e3,
            fetch_cell(self.total_fetch_requests(), self.total_fetch_retries()),
        )?;
        for d in &self.plan_diagnostics {
            write!(f, "\nplan diagnostic: {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &str, sim: f64, wall: f64) -> JobStats {
        JobStats {
            name: name.into(),
            sim_total_secs: sim,
            wall_secs: wall,
            ..JobStats::default()
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut r = SimReport::new();
        r.push(stats("a", 10.0, 0.1));
        r.push(stats("b", 5.5, 0.2));
        assert_eq!(r.jobs().len(), 2);
        assert!((r.total_sim_secs() - 15.5).abs() < 1e-12);
        assert!((r.total_wall_secs() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn counters_sum_across_jobs() {
        let mut a = stats("a", 1.0, 0.0);
        a.counters.insert("pairs", 3);
        let mut b = stats("b", 1.0, 0.0);
        b.counters.insert("pairs", 4);
        let mut r = SimReport::new();
        r.push(a);
        r.push(b);
        assert_eq!(r.counter("pairs"), 7);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn display_renders_table() {
        let mut r = SimReport::new();
        r.push(stats("tsj.shared_token", 12.0, 0.5));
        let rendered = format!("{r}");
        assert!(rendered.contains("tsj.shared_token"));
        assert!(rendered.contains("TOTAL"));
        assert!(rendered.contains("xport(B)"));
    }

    #[test]
    fn transport_bytes_total_across_jobs() {
        let mut a = stats("a", 1.0, 0.0);
        a.transport_bytes = 100;
        let mut b = stats("b", 1.0, 0.0);
        b.transport_bytes = 23;
        let mut r = SimReport::new();
        r.push(a);
        r.push(b);
        assert_eq!(r.total_transport_bytes(), 123);
    }

    #[test]
    fn transport_bytes_per_record_averages_transported_jobs_only() {
        let mut a = stats("a", 1.0, 0.0);
        a.transport_bytes = 210;
        a.shuffle_records = 10;
        // An in-process job shuffles records but moves no transport bytes;
        // it must not dilute the per-record figure.
        let mut b = stats("b", 1.0, 0.0);
        b.transport_bytes = 0;
        b.shuffle_records = 1000;
        let mut c = stats("c", 1.0, 0.0);
        c.transport_bytes = 90;
        c.shuffle_records = 10;
        let mut r = SimReport::new();
        r.push(a);
        r.push(b);
        r.push(c);
        let per_rec = r.transport_bytes_per_record().unwrap();
        assert!((per_rec - 15.0).abs() < 1e-12, "got {per_rec}");
        // Rendered table: per-job cells plus the aggregated TOTAL cell,
        // blank for the transportless job.
        let rendered = format!("{r}");
        assert!(rendered.contains("xport(B/rec)"));
        assert!(rendered.contains("21.0"), "{rendered}");
        assert!(rendered.contains("9.0"), "{rendered}");
        assert!(rendered.contains("15.0"), "{rendered}");
    }

    #[test]
    fn transport_bytes_per_record_is_none_without_transport() {
        let mut r = SimReport::new();
        r.push(stats("a", 1.0, 0.0));
        assert_eq!(r.transport_bytes_per_record(), None);
    }

    #[test]
    fn display_renders_scheduler_columns() {
        let mut a = stats("a", 1.0, 0.0);
        a.steals = 3;
        a.speculative_launched = 2;
        a.speculative_won = 1;
        a.queue_wait_us = 1500;
        // A job the scheduler never speculated renders a blank spec cell.
        let b = stats("b", 1.0, 0.0);
        let mut r = SimReport::new();
        r.push(a);
        r.push(b);
        let rendered = format!("{r}");
        assert!(rendered.contains("steals"));
        assert!(rendered.contains("spec(l/w)"));
        assert!(rendered.contains("qwait(ms)"));
        assert!(rendered.contains("2/1"), "{rendered}");
        assert_eq!(r.total_steals(), 3);
        assert_eq!(r.total_speculative_launched(), 2);
        assert_eq!(r.total_speculative_won(), 1);
        assert_eq!(r.total_queue_wait_us(), 1500);
    }

    #[test]
    fn display_renders_fetch_column() {
        let mut a = stats("a", 1.0, 0.0);
        a.fetch_requests = 12;
        a.fetch_retries = 3;
        a.fetch_bytes = 4096;
        // A non-remote job renders a blank fetch cell.
        let b = stats("b", 1.0, 0.0);
        let mut r = SimReport::new();
        r.push(a);
        r.push(b);
        let rendered = format!("{r}");
        assert!(rendered.contains("fetch(rpc/retry)"));
        assert!(rendered.contains("12/3"), "{rendered}");
        assert_eq!(r.total_fetch_requests(), 12);
        assert_eq!(r.total_fetch_retries(), 3);
        assert_eq!(r.total_fetch_bytes(), 4096);
    }

    #[test]
    fn extend_merges_pipelines() {
        let mut a = SimReport::new();
        a.push(stats("x", 1.0, 0.0));
        let mut b = SimReport::new();
        b.push(stats("y", 2.0, 0.0));
        a.extend(b);
        assert_eq!(a.jobs().len(), 2);
        assert!((a.total_sim_secs() - 3.0).abs() < 1e-12);
    }
}
