//! The shuffle: hash partitioning at emit time and map-side combining.
//!
//! # Mapping to the paper (Sec. III-A)
//!
//! The paper describes TSJ's jobs in classic MapReduce terms:
//!
//! ```text
//! map:    ⟨key1, value1⟩        → [⟨key2, value2⟩]
//! reduce: ⟨key2, [value2]⟩      → [value3]
//! ```
//!
//! Between `map` and `reduce` sits the *shuffle*, which this module
//! implements in the form real shared-nothing MapReduce systems use:
//!
//! * **Partitioning at emit time** ([`PartitionedBuffer`]) — every
//!   `⟨key2, value2⟩` pair a mapper emits is routed immediately to the
//!   output buffer of partition `HASH(key2) % partitions` (the paper's
//!   fingerprint function `HASH(·)`, Sec. III-G3, is
//!   [`fingerprint64`]). Reducer `p` then
//!   consumes exactly the partition-`p` buffers of all map tasks; no
//!   global collect-then-partition pass exists, so the shuffle is a
//!   constant-per-partition buffer handoff instead of a serial
//!   per-record scan.
//! * **Map-side combining** ([`Combiner`]) — before a map task's buffers
//!   are handed to the shuffle, values sharing a key *within that task*
//!   are folded by an associative combiner. This is the standard
//!   MapReduce optimization the paper's cost analysis motivates: the
//!   framework's runtime is dominated by shuffle volume and per-group
//!   overheads (Sec. III-A, III-G, Fig. 1), so shrinking the shuffled
//!   record count directly shrinks the simulated (and real) cost. For
//!   example, `tsj.token_stats` (Sec. III-G2's document-frequency job)
//!   combines per-task partial counts instead of shuffling one record per
//!   token *occurrence*, and the candidate-pair jobs (Sec. III-C/III-D)
//!   deduplicate candidate pairs map-side before the shuffle — the same
//!   volume the MassJoin-style analyses count as the dominant cost.
//!
//! The simulated cluster charges shuffle cost on the *post-combine*
//! record count ([`JobStats::shuffle_records`](crate::job::JobStats)), so
//! combiner savings show up in the simulated runtimes exactly as they
//! would on the paper's production cluster.
//!
//! # Memory-bounded mappers ([`ShuffleConfig`])
//!
//! By default a map task buffers its whole output in memory — fine for the
//! in-process simulation, but not a model of the paper's 1 GB-RAM workers
//! (Sec. V). A [`ShuffleConfig`] bounds the buffer:
//!
//! * `combine_threshold` — once the task has this many records buffered,
//!   the job's combiner runs over them *mid-task* (a periodic, spill-style
//!   combine instead of one pass at task end), shrinking the buffer
//!   whenever keys repeat.
//! * `spill_threshold` — a hard cap, enforced at every emit: when the
//!   buffer reaches it (e.g. keys do not repeat, or a single input record
//!   emits a burst), each partition's records are stable-sorted by key
//!   fingerprint and appended to the task's spill file as a sorted run
//!   (see [`crate::spill`]). The reduce phase then k-way-merges the
//!   spilled runs with the in-memory segments ([`crate::merge`]), so no
//!   worker ever holds an unbounded partition.
//!
//! Both thresholds default to `None` (unbounded, the original behaviour).
//! Reduce group order is first-occurrence for purely in-memory partitions
//! and key-fingerprint order for partitions with spilled runs — both
//! deterministic functions of the data and configuration.
//!
//! # Combiner contract
//!
//! A combiner must be *semantics-preserving* for its reducer: the reducer
//! must produce the same output whether it sees the raw emitted values or
//! any partition of them with `combine` applied per part (combiners run
//! once per map task, so different subsets of a key's values are combined
//! independently). The stock combiners uphold this for the usual reducer
//! shapes: [`Sum`]/[`Count`] for reducers that fold with `+`, [`Min`] for
//! reducers that take a minimum, and [`Dedup`] for reducers that are
//! insensitive to duplicate values (e.g. TSJ's candidate-pair dedup
//! jobs, Sec. III-E/III-G3).

use std::fs::File;
use std::hash::Hash;
use std::ops::Add;
use std::path::PathBuf;
use std::sync::Arc;

use crate::hash::{fingerprint64, FxBuildHasher};
use crate::spill::{RunMeta, Spill, SpillWriter};
use crate::transport::Transport;
use tsj_netshuffle::FaultConfig;

/// One shuffled record: the key's stable 64-bit fingerprint (computed once
/// at emit time and reused for partition routing and machine assignment),
/// the key, and one value.
pub type ShuffleRecord<K, V> = (u64, K, V);

/// Map-side value folding (the MapReduce "combiner").
///
/// `combine` is handed all values observed for `key` *within one map
/// task* and shrinks the list in place to the records to shuffle in their
/// stead. Leaving a single element is the common case (`Sum`, `Min`);
/// leaving several is allowed (`Dedup` keeps every distinct value).
/// Clearing the list drops the key entirely — legal, but rarely what a
/// reducer expects. In-place (rather than returning a fresh `Vec`) so the
/// hot path — one call per distinct key per map task — performs no
/// allocation.
///
/// Implementations must be associative and insensitive to value order,
/// because the runtime combines each map task's output independently and
/// the reducer sees the concatenation in unspecified interleaving.
pub trait Combiner<K, V>: Sync {
    fn combine(&self, key: &K, values: &mut Vec<V>);
}

/// Folds values with `+` (combiner form of a summing reducer).
///
/// The canonical port: a job that emitted `⟨key, ()⟩` per occurrence and
/// counted in the reducer instead emits `⟨key, 1⟩` and sums — identical
/// totals, one shuffled record per *distinct* key per map task.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum;

impl<K, V> Combiner<K, V> for Sum
where
    V: Add<Output = V> + Send,
{
    fn combine(&self, _key: &K, values: &mut Vec<V>) {
        if let Some(folded) = values.drain(..).reduce(|a, b| a + b) {
            values.push(folded);
        }
    }
}

/// Sums `u64` partial counts (a named special case of [`Sum`] for the
/// pervasive counting idiom: mappers emit `1` per occurrence).
#[derive(Debug, Clone, Copy, Default)]
pub struct Count;

impl<K> Combiner<K, u64> for Count {
    fn combine(&self, _key: &K, values: &mut Vec<u64>) {
        let total: u64 = values.iter().sum();
        values.clear();
        values.push(total);
    }
}

/// Keeps the minimum value (combiner form of a min-taking reducer).
#[derive(Debug, Clone, Copy, Default)]
pub struct Min;

impl<K, V> Combiner<K, V> for Min
where
    V: Ord + Send,
{
    fn combine(&self, _key: &K, values: &mut Vec<V>) {
        if let Some(min) = values.drain(..).min() {
            values.push(min);
        }
    }
}

/// Keeps one copy of each distinct value, preserving first-occurrence
/// order. The combiner form of reducers that deduplicate their value list
/// (TSJ's grouping-on-one-string dedup, Sec. III-G3) or ignore values
/// entirely (candidate-pair jobs keyed on the pair itself, where every
/// value is `()` and one survivor per key is enough).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dedup;

/// Below this group size, quadratic scanning beats building a hash set
/// (and allocates nothing) — and most reduce keys have few values.
const DEDUP_SCAN_LIMIT: usize = 24;

impl<K, V> Combiner<K, V> for Dedup
where
    V: Eq + Hash + Clone + Send,
{
    fn combine(&self, _key: &K, values: &mut Vec<V>) {
        if values.len() <= DEDUP_SCAN_LIMIT {
            let mut kept = 0;
            for i in 0..values.len() {
                if !values[..kept].contains(&values[i]) {
                    values.swap(kept, i);
                    kept += 1;
                }
            }
            values.truncate(kept);
        } else {
            let mut seen: std::collections::HashSet<V, FxBuildHasher> =
                std::collections::HashSet::with_capacity_and_hasher(values.len(), FxBuildHasher);
            values.retain(|v| seen.insert(v.clone()));
        }
    }
}

/// Memory and transport knobs of the shuffle (see the module docs and
/// [`crate::transport`]).
///
/// The default is fully unbounded, in-process — existing callers are
/// untouched. The environment variables `TSJ_COMBINE_THRESHOLD`,
/// `TSJ_SPILL_THRESHOLD`, `TSJ_SPILL_DIR`, `TSJ_SHUFFLE_TRANSPORT` and
/// `TSJ_MERGE_FAN_IN` override the *default* configuration (applied by
/// [`Cluster::new`](crate::cluster::Cluster); an explicit
/// [`with_shuffle_config`](crate::cluster::Cluster::with_shuffle_config)
/// always wins), so a whole test or bench run can be pushed through the
/// spill path — or the multi-process exchange — without touching code.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShuffleConfig {
    /// Buffered-record count at which a map task runs the job's combiner
    /// over its buffer mid-task (checked between input records). `None`
    /// (default) combines once at task end, as before. Ignored by jobs
    /// without a combiner.
    pub combine_threshold: Option<usize>,
    /// Hard per-mapper buffer cap, enforced at every emit: reaching it
    /// sorts and spills the buffer to disk. `None` (default) never spills.
    pub spill_threshold: Option<usize>,
    /// Directory for per-job spill *and exchange* subdirectories; `None`
    /// uses the system temp dir. Both are deleted when their job
    /// completes.
    pub spill_dir: Option<PathBuf>,
    /// How map output physically reaches reduce tasks: the in-process
    /// segment handoff (default) or the multi-process file exchange over
    /// the spill-run wire format (see [`crate::transport`]).
    pub transport: Transport,
    /// Cap on the reduce-side merge's open runs: a partition with more
    /// segments than this is merged hierarchically (consecutive chunks
    /// pre-merged into scratch runs; see [`crate::merge`]). `None`
    /// (default) merges all runs in one pass. Values below 2 behave as 2.
    pub merge_fan_in: Option<usize>,
    /// Deterministic server-side fault injection for the remote transport
    /// (drop every n-th fetch request / stall each one; see
    /// [`tsj_netshuffle::FaultConfig`]). The default injects nothing;
    /// ignored by the other transports. Faults change fetch timing and
    /// retry counters, never job output — every fetch is an idempotent
    /// ranged read.
    pub net_fault: FaultConfig,
}

impl ShuffleConfig {
    /// The default: no periodic combine, no spilling, in-process
    /// transport, unbounded merge fan-in.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Bounds both the combine and spill thresholds (spill in the system
    /// temp dir).
    pub fn bounded(combine_threshold: usize, spill_threshold: usize) -> Self {
        Self {
            combine_threshold: Some(combine_threshold),
            spill_threshold: Some(spill_threshold),
            ..Self::default()
        }
    }

    /// Replaces the transport (builder style).
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Caps the reduce-side merge fan-in (builder style).
    pub fn with_merge_fan_in(mut self, fan_in: usize) -> Self {
        self.merge_fan_in = Some(fan_in);
        self
    }

    /// Injects deterministic network faults into the remote transport's
    /// run servers (builder style).
    pub fn with_net_fault(mut self, net_fault: FaultConfig) -> Self {
        self.net_fault = net_fault;
        self
    }

    /// True when neither threshold is set (the buffer never spills and the
    /// combiner runs only at task end).
    pub fn is_unbounded(&self) -> bool {
        self.combine_threshold.is_none() && self.spill_threshold.is_none()
    }

    /// The defaults with `TSJ_COMBINE_THRESHOLD` / `TSJ_SPILL_THRESHOLD` /
    /// `TSJ_SPILL_DIR` / `TSJ_SHUFFLE_TRANSPORT` / `TSJ_MERGE_FAN_IN`
    /// environment overrides applied.
    ///
    /// Invalid values fall back to the default *loudly* (one warning line
    /// on stderr) instead of panicking or being silently swallowed — a
    /// typo in a CI matrix must not quietly run the wrong configuration.
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var_os(name))
    }

    /// [`ShuffleConfig::from_env`] against an arbitrary variable lookup —
    /// the testable core (tests pass a map instead of mutating the
    /// process environment, which is racy under the threaded test
    /// runner).
    pub(crate) fn from_lookup(lookup: impl Fn(&str) -> Option<std::ffi::OsString>) -> Self {
        let parse_count = |name: &str| -> Option<usize> {
            let raw = lookup(name)?;
            match raw.to_str().and_then(|v| v.trim().parse::<usize>().ok()) {
                Some(v) => Some(v.max(1)),
                None => {
                    eprintln!(
                        "tsj-mapreduce: ignoring invalid {name}={raw:?} \
                         (expected a positive record count); using the default"
                    );
                    None
                }
            }
        };
        let transport = match lookup("TSJ_SHUFFLE_TRANSPORT") {
            None => Transport::default(),
            Some(raw) => match raw.to_str().and_then(|v| Transport::parse(v.trim())) {
                Some(t) => t,
                None => {
                    eprintln!(
                        "tsj-mapreduce: ignoring invalid TSJ_SHUFFLE_TRANSPORT={raw:?} \
                         (expected \"inprocess\", \"multiprocess\" or \"remote\"); using \
                         the default in-process transport"
                    );
                    Transport::default()
                }
            },
        };
        // Fault knobs accept 0 explicitly ("off"), unlike the record-count
        // knobs above whose minimum useful value is 1.
        let parse_fault = |name: &str| -> Option<u64> {
            let raw = lookup(name)?;
            match raw.to_str().and_then(|v| v.trim().parse::<u64>().ok()) {
                Some(v) => Some(v),
                None => {
                    eprintln!(
                        "tsj-mapreduce: ignoring invalid {name}={raw:?} \
                         (expected a non-negative integer); using the default 0 (off)"
                    );
                    None
                }
            }
        };
        let net_fault = FaultConfig {
            drop_nth: parse_fault("TSJ_NET_FAULT_DROP_NTH").unwrap_or(0),
            stall_us: parse_fault("TSJ_NET_FAULT_STALL_US").unwrap_or(0),
            seed: parse_fault("TSJ_NET_FAULT_SEED").unwrap_or(0),
        };
        Self {
            combine_threshold: parse_count("TSJ_COMBINE_THRESHOLD"),
            spill_threshold: parse_count("TSJ_SPILL_THRESHOLD"),
            spill_dir: lookup("TSJ_SPILL_DIR").map(PathBuf::from),
            transport,
            merge_fan_in: parse_count("TSJ_MERGE_FAN_IN"),
            net_fault,
        }
    }

    /// The base directory for job spill / exchange / stage-output
    /// subdirectories: the configured
    /// [`spill_dir`](ShuffleConfig::spill_dir), or the system temp dir.
    ///
    /// This is the one place the runtime consults ambient process state
    /// for a filesystem location — every job path goes through here, so
    /// the fallback stays a documented config-layer concern rather than a
    /// scattering of `std::env::temp_dir()` calls in the data plane.
    pub fn spill_base(&self) -> PathBuf {
        // tsjlint:allow(no-ambient-env) the config layer owns the temp-dir fallback
        self.spill_dir.clone().unwrap_or_else(std::env::temp_dir)
    }
}

/// A map task's spill output: the read-only file handle, every partition's
/// sorted runs, and the spilled volume (for [`JobStats`] accounting).
///
/// [`JobStats`]: crate::job::JobStats
#[derive(Debug)]
pub(crate) struct TaskSpill {
    pub(crate) file: Arc<File>,
    /// Partition-indexed run locations, in spill order.
    pub(crate) runs: Vec<Vec<RunMeta>>,
    pub(crate) records: u64,
    pub(crate) bytes: u64,
}

/// Spill machinery of one map task's buffer (present only when a
/// [`ShuffleConfig`] sets `spill_threshold`).
#[derive(Debug)]
struct BufferSpill {
    threshold: usize,
    /// Job spill dir; the task's file is created lazily on first spill.
    dir: PathBuf,
    task: usize,
    writer: Option<SpillWriter>,
    runs: Vec<Vec<RunMeta>>,
}

/// Per-partition output buffers: the emit-time half of the shuffle.
///
/// `push` routes a record to partition `hash % partitions`; the runtime
/// later hands each partition's buffers (one per map task) to the reduce
/// task that owns the partition. Buffers start empty and unallocated, so
/// sparse partition use costs nothing beyond the spine. With a spill
/// threshold (`PartitionedBuffer::with_spill`) the buffered record count
/// is capped: reaching the cap sorts each partition and appends it to the
/// task's spill file as a run (see the module docs).
#[derive(Debug)]
pub struct PartitionedBuffer<K, V> {
    parts: Vec<Vec<ShuffleRecord<K, V>>>,
    /// Records currently buffered (all partitions).
    len: usize,
    /// High-water mark of `len` — what a memory-bounded mapper peaks at.
    peak: usize,
    spill: Option<BufferSpill>,
}

impl<K, V> PartitionedBuffer<K, V> {
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "shuffle needs at least one partition");
        Self {
            parts: (0..partitions).map(|_| Vec::new()).collect(),
            len: 0,
            peak: 0,
            spill: None,
        }
    }

    /// A buffer that spills to `<dir>/task<task>.spill` whenever `len()`
    /// reaches `threshold` (the directory must exist; clean-up is the
    /// job's responsibility).
    pub(crate) fn with_spill(
        partitions: usize,
        threshold: usize,
        dir: PathBuf,
        task: usize,
    ) -> Self {
        let mut buf = Self::new(partitions);
        buf.spill = Some(BufferSpill {
            threshold: threshold.max(1),
            dir,
            task,
            writer: None,
            runs: (0..partitions).map(|_| Vec::new()).collect(),
        });
        buf
    }

    #[inline]
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Records currently buffered in memory across all partitions
    /// (excludes anything already spilled).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of in-memory buffered records over the buffer's
    /// lifetime. With a spill threshold this never exceeds the threshold.
    #[inline]
    pub fn peak_buffered(&self) -> usize {
        self.peak
    }

    /// Routes one record by its precomputed key fingerprint.
    #[inline]
    pub fn push(&mut self, hash: u64, key: K, value: V) {
        let p = (hash % self.parts.len() as u64) as usize;
        self.parts[p].push((hash, key, value));
        self.len += 1;
        self.peak = self.peak.max(self.len);
    }

    /// Consumes the buffer, yielding the partition-indexed record vectors.
    pub fn into_parts(self) -> Vec<Vec<ShuffleRecord<K, V>>> {
        self.parts
    }
}

impl<K: Spill + Hash, V: Spill> PartitionedBuffer<K, V> {
    /// Spills the whole buffer if it has reached the spill threshold.
    /// Called on every emit, so in-memory records never exceed the
    /// threshold. Panics on I/O failure (surfaced by the runtime as a map
    /// worker panic).
    #[inline]
    pub(crate) fn maybe_spill(&mut self) {
        if let Some(spill) = &self.spill {
            if self.len >= spill.threshold {
                self.spill_now();
            }
        }
    }

    /// Stable-sorts each non-empty partition by fingerprint and appends it
    /// to the task's spill file as one sorted run, emptying the buffer.
    fn spill_now(&mut self) {
        let Some(spill) = self.spill.as_mut() else {
            return;
        };
        if self.len == 0 {
            return;
        }
        let writer = match spill.writer.take() {
            Some(w) => spill.writer.insert(w),
            None => {
                let path = spill.dir.join(format!("task{}.spill", spill.task));
                // tsjlint:allow(no-panic-in-data-plane) emit() is infallible by
                // signature; the wave's catch_unwind converts this into a
                // structured JobError::WorkerPanic that fails only the job
                let created = SpillWriter::create(path)
                    .unwrap_or_else(|e| panic!("shuffle spill file creation failed: {e}"));
                spill.writer.insert(created)
            }
        };
        for (p, part) in self.parts.iter_mut().enumerate() {
            if part.is_empty() {
                continue;
            }
            // Stable: equal-fingerprint records keep emit order within the run.
            part.sort_by_key(|(h, _, _)| *h);
            // tsjlint:allow(no-panic-in-data-plane) emit() is infallible by
            // signature; the wave's catch_unwind converts this into a
            // structured JobError::WorkerPanic that fails only the job
            let meta = writer
                .write_run(part)
                .unwrap_or_else(|e| panic!("shuffle spill write failed: {e}"));
            spill.runs[p].push(meta);
            part.clear();
        }
        self.len = 0;
    }

    /// Finishes spilling: flushes the task's spill file and returns its
    /// read-only handle plus run directory, or `None` if nothing spilled.
    /// The remaining in-memory records stay in the buffer.
    pub(crate) fn take_spill(&mut self) -> Option<TaskSpill> {
        let spill = self.spill.take()?;
        let writer = spill.writer?;
        let (records, bytes) = (writer.records, writer.bytes);
        // tsjlint:allow(no-panic-in-data-plane) finalize runs inside the map
        // task's catch_unwind; the panic becomes a structured
        // JobError::WorkerPanic that fails only the job
        let (file, _path) = writer
            .into_reader()
            .unwrap_or_else(|e| panic!("shuffle spill finalize failed: {e}"));
        Some(TaskSpill {
            file,
            runs: spill.runs,
            records,
            bytes,
        })
    }
}

impl<K: Hash, V> PartitionedBuffer<K, V> {
    /// Fingerprints `key` and routes the record (emit-time path).
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        let h = fingerprint64(&key);
        self.push(h, key, value);
    }
}

impl<K: Hash + Eq + Clone, V> PartitionedBuffer<K, V> {
    /// Applies `combiner` to every partition in place (see
    /// [`combine_records`]); returns the post-combine record count.
    pub fn combine(&mut self, combiner: &dyn Combiner<K, V>) -> usize {
        let mut total = 0;
        for part in &mut self.parts {
            let records = std::mem::take(part);
            *part = combine_records(records, combiner);
            total += part.len();
        }
        self.len = total; // combining only ever shrinks; peak is unchanged
        total
    }
}

/// Groups `records` by key and replaces each key's values with the
/// combiner's output.
///
/// Grouping is by stable sort on the precomputed key fingerprint — equal
/// keys become adjacent runs, so the whole pass needs one reused scratch
/// buffer instead of a hash table with a `Vec` per key. The resulting
/// record order is fingerprint order: different from the emit order, but a
/// pure function of the data, so job output stays deterministic across
/// thread and partition counts. On a fingerprint collision between
/// distinct keys, the colliding run is re-grouped by full key equality
/// (first-occurrence order within the run), so every key's values reach
/// the combiner in exactly one call — an interleaved collision cannot
/// split a key into two combined records and leak duplicates past a
/// [`Dedup`] combine into the charged shuffle volume.
pub fn combine_records<K: Hash + Eq + Clone, V>(
    records: Vec<ShuffleRecord<K, V>>,
    combiner: &dyn Combiner<K, V>,
) -> Vec<ShuffleRecord<K, V>> {
    if records.len() <= 1 {
        return records;
    }
    let mut records = records;
    records.sort_by_key(|(h, _, _)| *h); // stable: value order per key kept

    let mut out = Vec::with_capacity(records.len() / 2 + 1);
    let mut it = records.into_iter().peekable();
    let mut values: Vec<V> = Vec::new(); // scratch, reused across runs
    let mut extras: Vec<(K, V)> = Vec::new(); // fingerprint-collision overflow
    while let Some((h, key, v)) = it.next() {
        values.push(v);
        while let Some((h2, _, _)) = it.peek() {
            if *h2 != h {
                break;
            }
            // Guarded by the successful peek; break is the only sound
            // fallback and cannot occur.
            let Some((_, k2, v2)) = it.next() else { break };
            if k2 == key {
                values.push(v2);
            } else {
                extras.push((k2, v2));
            }
        }
        flush_run(combiner, h, key, &mut values, &mut out);
        // Rare: other keys shared this fingerprint. The shared helper
        // applies the same grouping discipline as the reduce-side merge.
        for_each_key_group(&mut extras, |k, mut vs| {
            values.append(&mut vs);
            flush_run(combiner, h, k, &mut values, &mut out);
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap_or_else(|e| match e {});
    }
    out
}

/// Splits one fingerprint run's records into per-key groups (full key
/// equality, first-occurrence order) and hands each to `f`,
/// short-circuiting on the first `Err` (map-side callers are infallible
/// and pass an `Infallible` error type).
///
/// This is the single source of truth for fingerprint-collision grouping:
/// both the map-side combine ([`combine_records`]) and the reduce-side
/// sort-merge ([`crate::merge`]) go through it, so the two sides cannot
/// silently diverge on ordering or key-splitting semantics.
pub(crate) fn for_each_key_group<K: Eq, V, E, F: FnMut(K, Vec<V>) -> Result<(), E>>(
    run: &mut Vec<(K, V)>,
    mut f: F,
) -> Result<(), E> {
    while !run.is_empty() {
        // Almost always the whole run is one key; collisions refill `run`
        // with the leftovers for the next round (no O(n) front-shift).
        let mut it = std::mem::take(run).into_iter();
        // Guarded by the loop's !run.is_empty(); break cannot occur.
        let Some((key, first)) = it.next() else { break };
        let mut values = vec![first];
        for (k, v) in it {
            if k == key {
                values.push(v);
            } else {
                run.push((k, v));
            }
        }
        f(key, values)?;
    }
    Ok(())
}

/// Combines one key's buffered values and appends the surviving records;
/// `values` is drained but keeps its capacity for the next run.
fn flush_run<K: Clone, V>(
    combiner: &dyn Combiner<K, V>,
    h: u64,
    key: K,
    values: &mut Vec<V>,
    out: &mut Vec<ShuffleRecord<K, V>>,
) {
    combiner.combine(&key, values);
    let mut vs = values.drain(..);
    if let Some(first) = vs.next() {
        match vs.next() {
            // Single combined value (the overwhelmingly common case):
            // move the key, no clone.
            None => out.push((h, key, first)),
            Some(second) => {
                out.push((h, key.clone(), first));
                out.push((h, key.clone(), second));
                out.extend(vs.map(|v| (h, key.clone(), v)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_routes_by_hash_modulo() {
        let mut buf: PartitionedBuffer<u64, u32> = PartitionedBuffer::new(4);
        for k in 0u64..100 {
            buf.emit(k, 1);
        }
        assert_eq!(buf.len(), 100);
        let parts = buf.into_parts();
        assert_eq!(parts.len(), 4);
        for (p, records) in parts.iter().enumerate() {
            for (h, _, _) in records {
                assert_eq!((*h % 4) as usize, p);
            }
        }
        // A sane hash spreads 100 sequential keys over all 4 partitions.
        assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn sum_combiner_folds_to_one_record() {
        let recs: Vec<ShuffleRecord<u32, u64>> = vec![(7, 1, 10), (7, 1, 20), (9, 2, 5)];
        let out = combine_records(recs, &Sum);
        assert_eq!(out, vec![(7, 1, 30), (9, 2, 5)]);
    }

    #[test]
    fn count_combiner_sums_partial_counts() {
        let recs: Vec<ShuffleRecord<u32, u64>> = vec![(1, 4, 1), (1, 4, 1), (1, 4, 3)];
        assert_eq!(combine_records(recs, &Count), vec![(1, 4, 5)]);
    }

    #[test]
    fn min_combiner_keeps_minimum() {
        let recs: Vec<ShuffleRecord<u32, u64>> = vec![(1, 1, 9), (1, 1, 3), (1, 1, 7)];
        assert_eq!(combine_records(recs, &Min), vec![(1, 1, 3)]);
    }

    #[test]
    fn dedup_combiner_keeps_distinct_values_in_first_occurrence_order() {
        let recs: Vec<ShuffleRecord<u32, u32>> =
            vec![(1, 1, 5), (1, 1, 6), (1, 1, 5), (1, 1, 6), (1, 1, 4)];
        assert_eq!(
            combine_records(recs, &Dedup),
            vec![(1, 1, 5), (1, 1, 6), (1, 1, 4)]
        );
    }

    #[test]
    fn combine_orders_by_fingerprint_and_totals_are_exact() {
        let recs: Vec<ShuffleRecord<u32, u64>> = vec![(4, 9, 1), (2, 3, 1), (4, 9, 1), (1, 7, 1)];
        let out = combine_records(recs, &Count);
        // Runs are merged per key; records come out in fingerprint order —
        // deterministic regardless of emit order.
        assert_eq!(out, vec![(1, 7, 1), (2, 3, 1), (4, 9, 2)]);
    }

    #[test]
    fn combine_groups_colliding_keys_by_full_equality() {
        // Two distinct keys sharing a fingerprint, interleaved: values must
        // not be merged across keys, none may be lost, and each key must be
        // combined exactly once (no split runs).
        let recs: Vec<ShuffleRecord<u32, u64>> = vec![(5, 1, 10), (5, 2, 1), (5, 1, 20), (5, 2, 2)];
        let out = combine_records(recs, &Sum);
        assert_eq!(out, vec![(5, 1, 30), (5, 2, 3)]);
    }

    #[test]
    fn dedup_combine_fully_deduplicates_across_a_collision() {
        // Regression: the pre-fix grouping split a key's run at every
        // key alternation inside a colliding fingerprint run, so Dedup let
        // duplicate values through map-side and inflated shuffle_records
        // (and the charged shuffle cost). Now each key's values are
        // deduplicated in one pass.
        let recs: Vec<ShuffleRecord<u32, u32>> = vec![
            (9, 1, 100),
            (9, 2, 100),
            (9, 1, 100), // duplicate of (1, 100) across the interleaving
            (9, 2, 100), // duplicate of (2, 100) across the interleaving
            (9, 1, 200),
        ];
        let out = combine_records(recs, &Dedup);
        assert_eq!(
            out,
            vec![(9, 1, 100), (9, 1, 200), (9, 2, 100)],
            "one record per distinct (key, value), first-occurrence order per key"
        );
    }

    #[test]
    fn three_way_collision_groups_each_key_once() {
        let recs: Vec<ShuffleRecord<u32, u64>> =
            vec![(3, 7, 1), (3, 8, 10), (3, 9, 100), (3, 8, 10), (3, 7, 2)];
        let out = combine_records(recs, &Sum);
        assert_eq!(out, vec![(3, 7, 3), (3, 8, 20), (3, 9, 100)]);
    }

    #[test]
    fn buffer_combine_counts_post_combine_records() {
        let mut buf: PartitionedBuffer<u64, u64> = PartitionedBuffer::new(8);
        for k in 0u64..50 {
            for _ in 0..4 {
                buf.emit(k, 1);
            }
        }
        assert_eq!(buf.len(), 200);
        let shuffled = buf.combine(&Count);
        assert_eq!(shuffled, 50, "one record per distinct key");
        assert_eq!(buf.len(), 50);
        let total: u64 = buf
            .into_parts()
            .into_iter()
            .flatten()
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(total, 200, "counts preserved");
    }

    #[test]
    fn empty_combine_is_noop() {
        let out = combine_records(Vec::<ShuffleRecord<u32, u64>>::new(), &Sum);
        assert!(out.is_empty());
    }

    #[test]
    fn spilling_buffer_caps_in_memory_records() {
        let dir = crate::spill::create_job_spill_dir(&std::env::temp_dir()).unwrap();
        let _guard = crate::spill::SpillDirGuard(dir.clone());
        let mut buf: PartitionedBuffer<u64, u64> =
            PartitionedBuffer::with_spill(4, 16, dir.clone(), 0);
        for k in 0u64..1000 {
            buf.emit(k, k * 2);
            buf.maybe_spill();
        }
        assert!(buf.peak_buffered() <= 16, "peak {}", buf.peak_buffered());
        let spill = buf.take_spill().expect("must have spilled");
        let leftover: usize = buf.len();
        assert_eq!(spill.records as usize + leftover, 1000);
        assert!(spill.bytes > 0);
        // Runs are sorted by fingerprint and partition-consistent, and
        // streaming them back yields exactly the spilled records.
        let mut restored = 0usize;
        for (p, runs) in spill.runs.iter().enumerate() {
            for meta in runs {
                let mut r = crate::spill::RunReader::new(Arc::clone(&spill.file), *meta);
                let mut last_h = 0u64;
                while let Some((h, k, v)) = r.next::<u64, u64>().unwrap() {
                    assert!(h >= last_h, "run not sorted");
                    assert_eq!((h % 4) as usize, p, "record in wrong partition run");
                    assert_eq!(v, k * 2);
                    last_h = h;
                    restored += 1;
                }
            }
        }
        assert_eq!(restored, spill.records as usize);
    }

    /// An env lookup backed by a slice (no process-global mutation).
    fn lookup<'a>(
        vars: &'a [(&'a str, &'a str)],
    ) -> impl Fn(&str) -> Option<std::ffi::OsString> + 'a {
        move |name| {
            vars.iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| std::ffi::OsString::from(v))
        }
    }

    #[test]
    fn from_lookup_with_nothing_set_is_the_default() {
        assert_eq!(
            ShuffleConfig::from_lookup(lookup(&[])),
            ShuffleConfig::default()
        );
    }

    #[test]
    fn from_lookup_parses_valid_overrides() {
        let cfg = ShuffleConfig::from_lookup(lookup(&[
            ("TSJ_COMBINE_THRESHOLD", "32"),
            ("TSJ_SPILL_THRESHOLD", "64"),
            ("TSJ_SPILL_DIR", "/tmp/tsj-test-spill"),
            ("TSJ_SHUFFLE_TRANSPORT", "multiprocess"),
            ("TSJ_MERGE_FAN_IN", "8"),
        ]));
        assert_eq!(cfg.combine_threshold, Some(32));
        assert_eq!(cfg.spill_threshold, Some(64));
        assert_eq!(cfg.spill_dir, Some(PathBuf::from("/tmp/tsj-test-spill")));
        assert_eq!(cfg.transport, Transport::MultiProcess);
        assert_eq!(cfg.merge_fan_in, Some(8));
    }

    #[test]
    fn from_lookup_accepts_transport_spelling_variants_and_whitespace() {
        for (raw, want) in [
            ("in-process", Transport::InProcess),
            ("IN_PROCESS", Transport::InProcess),
            (" multiprocess ", Transport::MultiProcess),
            ("Multi-Process", Transport::MultiProcess),
        ] {
            let cfg = ShuffleConfig::from_lookup(lookup(&[("TSJ_SHUFFLE_TRANSPORT", raw)]));
            assert_eq!(cfg.transport, want, "{raw:?}");
        }
    }

    #[test]
    fn from_lookup_zero_threshold_clamps_to_one() {
        // "0" is a plausible attempt at "disable"; a 0-record cap would
        // spill forever, so it clamps to the minimum meaningful value.
        let cfg = ShuffleConfig::from_lookup(lookup(&[("TSJ_SPILL_THRESHOLD", "0")]));
        assert_eq!(cfg.spill_threshold, Some(1));
    }

    #[test]
    fn from_lookup_invalid_values_fall_back_without_panicking() {
        // Every malformed value must yield the default for that knob —
        // never a panic, never a half-applied configuration.
        let cfg = ShuffleConfig::from_lookup(lookup(&[
            ("TSJ_COMBINE_THRESHOLD", "lots"),
            ("TSJ_SPILL_THRESHOLD", "-5"),
            ("TSJ_SHUFFLE_TRANSPORT", "carrier-pigeon"),
            ("TSJ_MERGE_FAN_IN", "3.5"),
        ]));
        assert_eq!(cfg.combine_threshold, None);
        assert_eq!(cfg.spill_threshold, None);
        assert_eq!(cfg.transport, Transport::InProcess);
        assert_eq!(cfg.merge_fan_in, None);
        // A valid knob next to an invalid one still applies.
        let cfg = ShuffleConfig::from_lookup(lookup(&[
            ("TSJ_COMBINE_THRESHOLD", ""),
            ("TSJ_SPILL_THRESHOLD", "48"),
        ]));
        assert_eq!(cfg.combine_threshold, None);
        assert_eq!(cfg.spill_threshold, Some(48));
    }

    #[test]
    fn unbounded_buffer_never_spills() {
        let mut buf: PartitionedBuffer<u64, u64> = PartitionedBuffer::new(4);
        for k in 0u64..100 {
            buf.emit(k, 1);
            buf.maybe_spill();
        }
        assert_eq!(buf.len(), 100);
        assert_eq!(buf.peak_buffered(), 100);
        assert!(buf.take_spill().is_none());
    }
}
