//! The shuffle: hash partitioning at emit time and map-side combining.
//!
//! # Mapping to the paper (Sec. III-A)
//!
//! The paper describes TSJ's jobs in classic MapReduce terms:
//!
//! ```text
//! map:    ⟨key1, value1⟩        → [⟨key2, value2⟩]
//! reduce: ⟨key2, [value2]⟩      → [value3]
//! ```
//!
//! Between `map` and `reduce` sits the *shuffle*, which this module
//! implements in the form real shared-nothing MapReduce systems use:
//!
//! * **Partitioning at emit time** ([`PartitionedBuffer`]) — every
//!   `⟨key2, value2⟩` pair a mapper emits is routed immediately to the
//!   output buffer of partition `HASH(key2) % partitions` (the paper's
//!   fingerprint function `HASH(·)`, Sec. III-G3, is
//!   [`fingerprint64`](crate::hash::fingerprint64)). Reducer `p` then
//!   consumes exactly the partition-`p` buffers of all map tasks; no
//!   global collect-then-partition pass exists, so the shuffle is a
//!   constant-per-partition buffer handoff instead of a serial
//!   per-record scan.
//! * **Map-side combining** ([`Combiner`]) — before a map task's buffers
//!   are handed to the shuffle, values sharing a key *within that task*
//!   are folded by an associative combiner. This is the standard
//!   MapReduce optimization the paper's cost analysis motivates: the
//!   framework's runtime is dominated by shuffle volume and per-group
//!   overheads (Sec. III-A, III-G, Fig. 1), so shrinking the shuffled
//!   record count directly shrinks the simulated (and real) cost. For
//!   example, `tsj.token_stats` (Sec. III-G2's document-frequency job)
//!   combines per-task partial counts instead of shuffling one record per
//!   token *occurrence*, and the candidate-pair jobs (Sec. III-C/III-D)
//!   deduplicate candidate pairs map-side before the shuffle — the same
//!   volume the MassJoin-style analyses count as the dominant cost.
//!
//! The simulated cluster charges shuffle cost on the *post-combine*
//! record count ([`JobStats::shuffle_records`](crate::job::JobStats)), so
//! combiner savings show up in the simulated runtimes exactly as they
//! would on the paper's production cluster.
//!
//! # Combiner contract
//!
//! A combiner must be *semantics-preserving* for its reducer: the reducer
//! must produce the same output whether it sees the raw emitted values or
//! any partition of them with `combine` applied per part (combiners run
//! once per map task, so different subsets of a key's values are combined
//! independently). The stock combiners uphold this for the usual reducer
//! shapes: [`Sum`]/[`Count`] for reducers that fold with `+`, [`Min`] for
//! reducers that take a minimum, and [`Dedup`] for reducers that are
//! insensitive to duplicate values (e.g. TSJ's candidate-pair dedup
//! jobs, Sec. III-E/III-G3).

use std::hash::Hash;
use std::ops::Add;

use crate::hash::{fingerprint64, FxBuildHasher};

/// One shuffled record: the key's stable 64-bit fingerprint (computed once
/// at emit time and reused for partition routing and machine assignment),
/// the key, and one value.
pub type ShuffleRecord<K, V> = (u64, K, V);

/// Map-side value folding (the MapReduce "combiner").
///
/// `combine` is handed all values observed for `key` *within one map
/// task* and shrinks the list in place to the records to shuffle in their
/// stead. Leaving a single element is the common case (`Sum`, `Min`);
/// leaving several is allowed (`Dedup` keeps every distinct value).
/// Clearing the list drops the key entirely — legal, but rarely what a
/// reducer expects. In-place (rather than returning a fresh `Vec`) so the
/// hot path — one call per distinct key per map task — performs no
/// allocation.
///
/// Implementations must be associative and insensitive to value order,
/// because the runtime combines each map task's output independently and
/// the reducer sees the concatenation in unspecified interleaving.
pub trait Combiner<K, V>: Sync {
    fn combine(&self, key: &K, values: &mut Vec<V>);
}

/// Folds values with `+` (combiner form of a summing reducer).
///
/// The canonical port: a job that emitted `⟨key, ()⟩` per occurrence and
/// counted in the reducer instead emits `⟨key, 1⟩` and sums — identical
/// totals, one shuffled record per *distinct* key per map task.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum;

impl<K, V> Combiner<K, V> for Sum
where
    V: Add<Output = V> + Send,
{
    fn combine(&self, _key: &K, values: &mut Vec<V>) {
        if let Some(folded) = values.drain(..).reduce(|a, b| a + b) {
            values.push(folded);
        }
    }
}

/// Sums `u64` partial counts (a named special case of [`Sum`] for the
/// pervasive counting idiom: mappers emit `1` per occurrence).
#[derive(Debug, Clone, Copy, Default)]
pub struct Count;

impl<K> Combiner<K, u64> for Count {
    fn combine(&self, _key: &K, values: &mut Vec<u64>) {
        let total: u64 = values.iter().sum();
        values.clear();
        values.push(total);
    }
}

/// Keeps the minimum value (combiner form of a min-taking reducer).
#[derive(Debug, Clone, Copy, Default)]
pub struct Min;

impl<K, V> Combiner<K, V> for Min
where
    V: Ord + Send,
{
    fn combine(&self, _key: &K, values: &mut Vec<V>) {
        if let Some(min) = values.drain(..).min() {
            values.push(min);
        }
    }
}

/// Keeps one copy of each distinct value, preserving first-occurrence
/// order. The combiner form of reducers that deduplicate their value list
/// (TSJ's grouping-on-one-string dedup, Sec. III-G3) or ignore values
/// entirely (candidate-pair jobs keyed on the pair itself, where every
/// value is `()` and one survivor per key is enough).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dedup;

/// Below this group size, quadratic scanning beats building a hash set
/// (and allocates nothing) — and most reduce keys have few values.
const DEDUP_SCAN_LIMIT: usize = 24;

impl<K, V> Combiner<K, V> for Dedup
where
    V: Eq + Hash + Clone + Send,
{
    fn combine(&self, _key: &K, values: &mut Vec<V>) {
        if values.len() <= DEDUP_SCAN_LIMIT {
            let mut kept = 0;
            for i in 0..values.len() {
                if !values[..kept].contains(&values[i]) {
                    values.swap(kept, i);
                    kept += 1;
                }
            }
            values.truncate(kept);
        } else {
            let mut seen: std::collections::HashSet<V, FxBuildHasher> =
                std::collections::HashSet::with_capacity_and_hasher(values.len(), FxBuildHasher);
            values.retain(|v| seen.insert(v.clone()));
        }
    }
}

/// Per-partition output buffers: the emit-time half of the shuffle.
///
/// `push` routes a record to partition `hash % partitions`; the runtime
/// later hands each partition's buffers (one per map task) to the reduce
/// task that owns the partition. Buffers start empty and unallocated, so
/// sparse partition use costs nothing beyond the spine.
#[derive(Debug)]
pub struct PartitionedBuffer<K, V> {
    parts: Vec<Vec<ShuffleRecord<K, V>>>,
}

impl<K, V> PartitionedBuffer<K, V> {
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "shuffle needs at least one partition");
        Self {
            parts: (0..partitions).map(|_| Vec::new()).collect(),
        }
    }

    #[inline]
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Total records currently buffered across all partitions.
    pub fn len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(Vec::is_empty)
    }

    /// Routes one record by its precomputed key fingerprint.
    #[inline]
    pub fn push(&mut self, hash: u64, key: K, value: V) {
        let p = (hash % self.parts.len() as u64) as usize;
        self.parts[p].push((hash, key, value));
    }

    /// Consumes the buffer, yielding the partition-indexed record vectors.
    pub fn into_parts(self) -> Vec<Vec<ShuffleRecord<K, V>>> {
        self.parts
    }
}

impl<K: Hash, V> PartitionedBuffer<K, V> {
    /// Fingerprints `key` and routes the record (emit-time path).
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        let h = fingerprint64(&key);
        self.push(h, key, value);
    }
}

impl<K: Hash + Eq + Clone, V> PartitionedBuffer<K, V> {
    /// Applies `combiner` to every partition in place (see
    /// [`combine_records`]); returns the post-combine record count.
    pub fn combine(&mut self, combiner: &dyn Combiner<K, V>) -> usize {
        let mut total = 0;
        for part in &mut self.parts {
            let records = std::mem::take(part);
            *part = combine_records(records, combiner);
            total += part.len();
        }
        total
    }
}

/// Groups `records` by key and replaces each key's values with the
/// combiner's output.
///
/// Grouping is by stable sort on the precomputed key fingerprint — equal
/// keys become adjacent runs, so the whole pass needs one reused scratch
/// buffer instead of a hash table with a `Vec` per key. The resulting
/// record order is fingerprint order: different from the emit order, but a
/// pure function of the data, so job output stays deterministic across
/// thread and partition counts. (On a fingerprint collision between
/// distinct keys, an interleaved run may split a key's values into two
/// combined records — harmless, since combiners are associative and the
/// reducer re-groups by the full key.)
pub fn combine_records<K: Hash + Eq + Clone, V>(
    records: Vec<ShuffleRecord<K, V>>,
    combiner: &dyn Combiner<K, V>,
) -> Vec<ShuffleRecord<K, V>> {
    if records.len() <= 1 {
        return records;
    }
    let mut records = records;
    records.sort_by_key(|(h, _, _)| *h); // stable: value order per key kept

    let mut out = Vec::with_capacity(records.len() / 2 + 1);
    let mut it = records.into_iter();
    let (mut run_h, mut run_key, first_v) = it.next().expect("len > 1");
    let mut values: Vec<V> = Vec::new(); // scratch, reused across runs
    values.push(first_v);
    for (h, k, v) in it {
        if h == run_h && k == run_key {
            values.push(v);
        } else {
            flush_run(
                combiner,
                run_h,
                std::mem::replace(&mut run_key, k),
                &mut values,
                &mut out,
            );
            run_h = h;
            values.push(v);
        }
    }
    flush_run(combiner, run_h, run_key, &mut values, &mut out);
    out
}

/// Combines one key's buffered values and appends the surviving records;
/// `values` is drained but keeps its capacity for the next run.
fn flush_run<K: Clone, V>(
    combiner: &dyn Combiner<K, V>,
    h: u64,
    key: K,
    values: &mut Vec<V>,
    out: &mut Vec<ShuffleRecord<K, V>>,
) {
    combiner.combine(&key, values);
    let mut vs = values.drain(..);
    if let Some(first) = vs.next() {
        match vs.next() {
            // Single combined value (the overwhelmingly common case):
            // move the key, no clone.
            None => out.push((h, key, first)),
            Some(second) => {
                out.push((h, key.clone(), first));
                out.push((h, key.clone(), second));
                out.extend(vs.map(|v| (h, key.clone(), v)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_routes_by_hash_modulo() {
        let mut buf: PartitionedBuffer<u64, u32> = PartitionedBuffer::new(4);
        for k in 0u64..100 {
            buf.emit(k, 1);
        }
        assert_eq!(buf.len(), 100);
        let parts = buf.into_parts();
        assert_eq!(parts.len(), 4);
        for (p, records) in parts.iter().enumerate() {
            for (h, _, _) in records {
                assert_eq!((*h % 4) as usize, p);
            }
        }
        // A sane hash spreads 100 sequential keys over all 4 partitions.
        assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn sum_combiner_folds_to_one_record() {
        let recs: Vec<ShuffleRecord<u32, u64>> = vec![(7, 1, 10), (7, 1, 20), (9, 2, 5)];
        let out = combine_records(recs, &Sum);
        assert_eq!(out, vec![(7, 1, 30), (9, 2, 5)]);
    }

    #[test]
    fn count_combiner_sums_partial_counts() {
        let recs: Vec<ShuffleRecord<u32, u64>> = vec![(1, 4, 1), (1, 4, 1), (1, 4, 3)];
        assert_eq!(combine_records(recs, &Count), vec![(1, 4, 5)]);
    }

    #[test]
    fn min_combiner_keeps_minimum() {
        let recs: Vec<ShuffleRecord<u32, u64>> = vec![(1, 1, 9), (1, 1, 3), (1, 1, 7)];
        assert_eq!(combine_records(recs, &Min), vec![(1, 1, 3)]);
    }

    #[test]
    fn dedup_combiner_keeps_distinct_values_in_first_occurrence_order() {
        let recs: Vec<ShuffleRecord<u32, u32>> =
            vec![(1, 1, 5), (1, 1, 6), (1, 1, 5), (1, 1, 6), (1, 1, 4)];
        assert_eq!(
            combine_records(recs, &Dedup),
            vec![(1, 1, 5), (1, 1, 6), (1, 1, 4)]
        );
    }

    #[test]
    fn combine_orders_by_fingerprint_and_totals_are_exact() {
        let recs: Vec<ShuffleRecord<u32, u64>> = vec![(4, 9, 1), (2, 3, 1), (4, 9, 1), (1, 7, 1)];
        let out = combine_records(recs, &Count);
        // Runs are merged per key; records come out in fingerprint order —
        // deterministic regardless of emit order.
        assert_eq!(out, vec![(1, 7, 1), (2, 3, 1), (4, 9, 2)]);
    }

    #[test]
    fn combine_splits_runs_on_fingerprint_collision() {
        // Two distinct keys sharing a fingerprint: values must not be
        // merged across keys, and none may be lost.
        let recs: Vec<ShuffleRecord<u32, u64>> = vec![(5, 1, 10), (5, 2, 1), (5, 1, 20), (5, 2, 2)];
        let out = combine_records(recs, &Sum);
        let total_by_key = |key: u32| -> u64 {
            out.iter()
                .filter(|(_, k, _)| *k == key)
                .map(|(_, _, v)| v)
                .sum()
        };
        assert_eq!(total_by_key(1), 30);
        assert_eq!(total_by_key(2), 3);
    }

    #[test]
    fn buffer_combine_counts_post_combine_records() {
        let mut buf: PartitionedBuffer<u64, u64> = PartitionedBuffer::new(8);
        for k in 0u64..50 {
            for _ in 0..4 {
                buf.emit(k, 1);
            }
        }
        assert_eq!(buf.len(), 200);
        let shuffled = buf.combine(&Count);
        assert_eq!(shuffled, 50, "one record per distinct key");
        assert_eq!(buf.len(), 50);
        let total: u64 = buf
            .into_parts()
            .into_iter()
            .flatten()
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(total, 200, "counts preserved");
    }

    #[test]
    fn empty_combine_is_noop() {
        let out = combine_records(Vec::<ShuffleRecord<u32, u64>>::new(), &Sum);
        assert!(out.is_empty());
    }
}
