//! On-disk spill segments: the serialization and file format behind the
//! memory-bounded shuffle — and, since the transport layer
//! ([`crate::transport`]), the runtime's *wire format*.
//!
//! When a map task's buffered output crosses its
//! [`ShuffleConfig::spill_threshold`](crate::shuffle::ShuffleConfig), the
//! task sorts each partition's buffer by key fingerprint and appends it to
//! the task's spill file as one *run* — a sorted, self-delimiting sequence
//! of records. The reduce phase later streams every run back through a
//! [`RunReader`] and k-way-merges them (see [`crate::merge`]), so neither
//! side ever materializes a full partition in memory. The `MultiProcess`
//! shuffle transport ships every map task's post-combine output between
//! workers as exactly these sorted runs, written to per-partition exchange
//! files; [`SpillWriter`] and [`RunReader`] are public so external tools
//! (and future remote workers) can produce and consume the exchange
//! format.
//!
//! # File format (v2)
//!
//! One spill file per map task holds the runs of all partitions,
//! back-to-back; a run is located by the `(offset, bytes)` recorded in its
//! [`RunMeta`] at write time (there is no in-file directory). Each record
//! is framed as
//!
//! ```text
//! [varint payload_len] [varint fp_delta] [K bytes] [V bytes]
//! ```
//!
//! where both varints are LEB128 (7 data bits per byte, high bit =
//! continuation, at most 10 bytes for a `u64`) and `payload_len` counts
//! the bytes after it (`fp_delta` + `K` + `V`). The frame length lets
//! [`RunReader`] refill its fixed-size read buffer on whole-record
//! boundaries, keeping reduce-side memory at one buffer per open run
//! regardless of run size; a record must decode to *exactly*
//! `payload_len` bytes or the reader reports corruption.
//!
//! `fp_delta` is the record's shuffle fingerprint XOR
//! [`fingerprint64`] of its restored key. Every
//! record the runtime itself produces has `fp == fingerprint64(key)` (the
//! emitter computes one from the other), so the delta is `0` and the
//! fingerprint costs **one byte** on the wire instead of the fixed eight
//! of the v1 frame — while arbitrary fingerprints (tests, external
//! producers) still round-trip exactly, just at up to 10 bytes. Note the
//! delta is taken against the *key*, not the previous record's
//! fingerprint: runs are sorted by fingerprint, but fingerprints are
//! full-entropy 64-bit hashes, so sequential deltas measure ~`64 −
//! log2(run_len)` bits and varint-encode *larger* than the raw field;
//! the key-derived delta is what actually shrinks the frame. Altogether
//! the fixed 12 B/record framing of v1 (`[u32 len][u64 fp]`) drops to
//! 2 B/record in the common case. Run files are per-job temp artifacts,
//! so no cross-version compatibility is kept.
//!
//! # Serialization
//!
//! Key and value bytes are produced by the [`Spill`] trait — a minimal,
//! dependency-free binary codec implemented for the primitive types,
//! tuples, `String`, `Vec<T>` and `Option<T>`. Job-specific key or value
//! types implement it in a few lines (see `ChunkRole` in `tsj-passjoin`
//! for an example). Read-side failures — an I/O error or a
//! truncated/undecodable frame — surface as a structured [`SpillError`]
//! from [`RunReader::next`]; inside a job the runtime converts that into
//! [`JobError::Spill`](crate::job::JobError), so a lost or corrupt local
//! disk fails the *job*, never the process.

use std::fs::File;
use std::hash::Hash;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::hash::fingerprint64;
use crate::shuffle::ShuffleRecord;

/// Appends `v` to `out` as an LEB128 varint (7 data bits per byte, high
/// bit set on all but the last byte; 1 byte for values < 128, at most 10
/// bytes for a `u64`). The v2 wire format's integer encoding.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, v: u64) {
    let (buf, len) = varint_bytes(v);
    out.extend_from_slice(&buf[..len]);
}

/// LEB128-encodes `v` into a stack buffer; returns the buffer and the
/// encoded length.
#[inline]
fn varint_bytes(mut v: u64) -> ([u8; 10], usize) {
    let mut buf = [0u8; 10];
    let mut i = 0;
    while v >= 0x80 {
        buf[i] = (v & 0x7f) as u8 | 0x80;
        v >>= 7;
        i += 1;
    }
    buf[i] = (v & 0x7f) as u8;
    (buf, i + 1)
}

/// Decodes one LEB128 varint off the front of `buf`, advancing it.
/// `None` on truncation (every strict prefix of an encoding is rejected)
/// or on an encoding that does not fit a `u64`.
#[inline]
pub fn read_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v: u64 = 0;
    for (i, &byte) in buf.iter().take(10).enumerate() {
        v |= u64::from(byte & 0x7f) << (7 * i);
        if byte & 0x80 == 0 {
            // The 10th byte contributes bits 63.. : anything beyond the
            // single remaining bit overflows a u64.
            if i == 9 && byte > 1 {
                return None;
            }
            *buf = &buf[i + 1..];
            return Some(v);
        }
    }
    None
}

/// Why reading a spill-format run back failed: the disk, or the bytes.
///
/// Produced by [`RunReader`]; the runtime wraps it into
/// [`JobError::Spill`](crate::job::JobError) on the job path, so spill,
/// exchange, and stage-output files that go bad fail the job with a
/// structured error instead of panicking the process.
#[derive(Debug)]
pub enum SpillError {
    /// The underlying positioned read (or scratch write) failed.
    Io(std::io::Error),
    /// The file's bytes do not parse as the wire format: a frame truncated
    /// mid-run, or a payload the [`Spill`] codec rejects.
    Corrupt(&'static str),
}

impl From<std::io::Error> for SpillError {
    fn from(e: std::io::Error) -> Self {
        SpillError::Io(e)
    }
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill file I/O error: {e}"),
            SpillError::Corrupt(what) => write!(f, "spill file corrupt: {what}"),
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::Io(e) => Some(e),
            SpillError::Corrupt(_) => None,
        }
    }
}

/// Binary serialization for shuffle keys and values that may spill to disk.
///
/// Implementations must round-trip: `restore` applied to the bytes written
/// by `spill` yields an equal value and consumes exactly the bytes written.
/// `restore` returns `None` on truncated or malformed input (the runtime
/// treats that as file corruption and fails the job with
/// [`SpillError::Corrupt`]).
pub trait Spill: Sized {
    /// Appends this value's encoding to `out`.
    fn spill(&self, out: &mut Vec<u8>);
    /// Decodes one value from the front of `buf`, advancing it.
    fn restore(buf: &mut &[u8]) -> Option<Self>;
}

/// Reads `N` bytes off the front of `buf`.
#[inline]
fn take_bytes<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Some(head)
}

macro_rules! spill_le_int {
    ($($t:ty),*) => {$(
        impl Spill for $t {
            #[inline]
            fn spill(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn restore(buf: &mut &[u8]) -> Option<Self> {
                let b = take_bytes(buf, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(b.try_into().ok()?))
            }
        }
    )*};
}

spill_le_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

/// `usize` spills as `u64` so segments are portable across word sizes.
impl Spill for usize {
    #[inline]
    fn spill(&self, out: &mut Vec<u8>) {
        (*self as u64).spill(out);
    }
    #[inline]
    fn restore(buf: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::restore(buf)?).ok()
    }
}

impl Spill for bool {
    #[inline]
    fn spill(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    #[inline]
    fn restore(buf: &mut &[u8]) -> Option<Self> {
        match take_bytes(buf, 1)?[0] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Spill for char {
    #[inline]
    fn spill(&self, out: &mut Vec<u8>) {
        (*self as u32).spill(out);
    }
    #[inline]
    fn restore(buf: &mut &[u8]) -> Option<Self> {
        char::from_u32(u32::restore(buf)?)
    }
}

impl Spill for () {
    #[inline]
    fn spill(&self, _out: &mut Vec<u8>) {}
    #[inline]
    fn restore(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl Spill for String {
    #[inline]
    fn spill(&self, out: &mut Vec<u8>) {
        // Varint length: short strings (the common case — names, tokens)
        // pay 1 byte of framing instead of the old fixed 4.
        write_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    #[inline]
    fn restore(buf: &mut &[u8]) -> Option<Self> {
        let n = usize::try_from(read_varint(buf)?).ok()?;
        let b = take_bytes(buf, n)?;
        String::from_utf8(b.to_vec()).ok()
    }
}

impl<T: Spill> Spill for Vec<T> {
    fn spill(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.spill(out);
        }
    }
    fn restore(buf: &mut &[u8]) -> Option<Self> {
        let n = usize::try_from(read_varint(buf)?).ok()?;
        let mut v = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            v.push(T::restore(buf)?);
        }
        Some(v)
    }
}

impl<T: Spill> Spill for Option<T> {
    fn spill(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.spill(out);
            }
        }
    }
    fn restore(buf: &mut &[u8]) -> Option<Self> {
        match take_bytes(buf, 1)?[0] {
            0 => Some(None),
            1 => Some(Some(T::restore(buf)?)),
            _ => None,
        }
    }
}

macro_rules! spill_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Spill),+> Spill for ($($t,)+) {
            fn spill(&self, out: &mut Vec<u8>) {
                $(self.$n.spill(out);)+
            }
            fn restore(buf: &mut &[u8]) -> Option<Self> {
                Some(($($t::restore(buf)?,)+))
            }
        }
    )*};
}

spill_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Location of one sorted run inside a task's spill file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMeta {
    /// Byte offset of the run's first record frame.
    pub offset: u64,
    /// Total framed bytes of the run.
    pub bytes: u64,
    /// Records in the run.
    pub records: u64,
}

/// Append-only writer of sorted-run files in the spill/exchange wire
/// format: one length-prefixed frame per record (see the module docs).
///
/// Used by memory-bounded mappers for task spill files, by the
/// `MultiProcess` shuffle transport for per-partition exchange files, and
/// by the reduce-side hierarchical merge for intermediate runs. Public so
/// external processes can produce wire-compatible run files.
#[derive(Debug)]
pub struct SpillWriter {
    path: PathBuf,
    file: BufWriter<File>,
    offset: u64,
    scratch: Vec<u8>,
    /// Total records written across all runs.
    pub(crate) records: u64,
    /// Total bytes written across all runs.
    pub(crate) bytes: u64,
}

impl SpillWriter {
    /// Creates (truncating) the run file at `path`, materializing its
    /// parent directory if needed.
    pub fn create(path: PathBuf) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            // Lazily materializes the job's spill dir on first spill;
            // concurrent map tasks race here safely (create_dir_all is
            // idempotent).
            std::fs::create_dir_all(parent)?;
        }
        let file = BufWriter::new(File::create(&path)?);
        Ok(Self {
            path,
            file,
            offset: 0,
            scratch: Vec::new(),
            records: 0,
            bytes: 0,
        })
    }

    /// The file offset the next frame will be written at. Streaming
    /// callers bracket a run with `offset()` before and after to build its
    /// [`RunMeta`] (or use [`SpillWriter::write_run`] for a buffered run).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Total records written so far (all runs).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total bytes written so far (all runs).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends one framed record. The caller is responsible for feeding
    /// records in fingerprint order within a run.
    pub fn write_record<K: Spill + Hash, V: Spill>(
        &mut self,
        h: u64,
        key: &K,
        value: &V,
    ) -> std::io::Result<()> {
        self.scratch.clear();
        // Key-derived fingerprint delta: 0 (one wire byte) whenever the
        // fingerprint is the emitter's `fingerprint64(key)` — i.e. every
        // record the runtime produces (see the module docs).
        write_varint(&mut self.scratch, h ^ fingerprint64(key));
        key.spill(&mut self.scratch);
        value.spill(&mut self.scratch);
        // Fail at the write site rather than corrupting every frame
        // after this one with an implausible length prefix.
        assert!(
            self.scratch.len() <= u32::MAX as usize,
            "shuffle record encoding exceeds the 4 GiB frame limit"
        );
        let (len_buf, len_len) = varint_bytes(self.scratch.len() as u64);
        self.file.write_all(&len_buf[..len_len])?;
        self.file.write_all(&self.scratch)?;
        let framed = (len_len + self.scratch.len()) as u64;
        self.offset += framed;
        self.records += 1;
        self.bytes += framed;
        Ok(())
    }

    /// Appends an already-encoded sorted run, copied byte-for-byte from
    /// `src` at `meta`'s location — the frames are the wire format on
    /// both sides, so re-shipping a spilled run (e.g. through a transport
    /// exchange file) needs no decode/re-encode. Returns the run's
    /// location in *this* file.
    pub fn copy_raw_run(&mut self, src: &File, meta: RunMeta) -> std::io::Result<RunMeta> {
        let offset = self.offset;
        // Reuse the frame-encoding scratch as the copy buffer: one
        // allocation per writer, not one per copied run.
        const COPY_CHUNK: usize = 64 * 1024;
        if self.scratch.len() < COPY_CHUNK {
            self.scratch.resize(COPY_CHUNK, 0);
        }
        let mut pos = meta.offset;
        let end = meta.offset + meta.bytes;
        while pos < end {
            let want = self.scratch.len().min((end - pos) as usize);
            let got = read_at(src, &mut self.scratch[..want], pos)?;
            if got == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "spill file truncated while copying a run",
                ));
            }
            self.file.write_all(&self.scratch[..got])?;
            pos += got as u64;
        }
        self.offset += meta.bytes;
        self.records += meta.records;
        self.bytes += meta.bytes;
        Ok(RunMeta {
            offset,
            bytes: meta.bytes,
            records: meta.records,
        })
    }

    /// Appends raw, already-framed wire-format bytes — e.g. a range of a
    /// remote run fetched over the network shuffle. The caller brackets a
    /// run with [`SpillWriter::offset`] before the first chunk and
    /// [`SpillWriter::seal_raw_run`] after the last.
    pub fn append_raw(&mut self, chunk: &[u8]) -> std::io::Result<()> {
        self.file.write_all(chunk)?;
        self.offset += chunk.len() as u64;
        self.bytes += chunk.len() as u64;
        Ok(())
    }

    /// Seals everything [`append_raw`](SpillWriter::append_raw)ed since
    /// `offset` into one run of `records` records, returning its location
    /// in this file.
    pub fn seal_raw_run(&mut self, offset: u64, records: u64) -> RunMeta {
        self.records += records;
        RunMeta {
            offset,
            bytes: self.offset - offset,
            records,
        }
    }

    /// Appends `records` (already sorted by fingerprint) as one run.
    pub fn write_run<K: Spill + Hash, V: Spill>(
        &mut self,
        records: &[ShuffleRecord<K, V>],
    ) -> std::io::Result<RunMeta> {
        let offset = self.offset;
        for (h, k, v) in records {
            self.write_record(*h, k, v)?;
        }
        Ok(RunMeta {
            offset,
            bytes: self.offset - offset,
            records: records.len() as u64,
        })
    }

    /// Flushes and reopens the file read-only for the reduce phase.
    pub fn into_reader(mut self) -> std::io::Result<(Arc<File>, PathBuf)> {
        self.file.flush()?;
        drop(self.file);
        Ok((Arc::new(File::open(&self.path)?), self.path))
    }
}

/// Positioned read that never moves a shared cursor, so any number of
/// [`RunReader`]s can stream from one open [`File`].
#[cfg(unix)]
fn read_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
    std::os::unix::fs::FileExt::read_at(file, buf, offset)
}

#[cfg(windows)]
fn read_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
    std::os::windows::fs::FileExt::seek_read(file, buf, offset)
}

/// Streams one sorted run back from a spill or exchange file, one record
/// at a time, holding only a fixed-size read buffer (no per-run memory
/// proportional to the run length). Public counterpart of [`SpillWriter`]
/// for consuming the wire format.
#[derive(Debug)]
pub struct RunReader {
    file: Arc<File>,
    /// Next file offset to refill from.
    offset: u64,
    /// One past the run's last byte.
    end: u64,
    buf: Vec<u8>,
    pos: usize,
}

/// Read-buffer refill size. Small runs read in one shot; large runs
/// stream through at most this much memory per open run.
const READ_CHUNK: usize = 32 * 1024;

impl RunReader {
    /// A reader over the run located by `meta` inside `file`. Any number
    /// of readers can stream concurrently from one shared handle
    /// (positioned reads; no shared cursor).
    pub fn new(file: Arc<File>, meta: RunMeta) -> Self {
        Self {
            file,
            offset: meta.offset,
            end: meta.offset + meta.bytes,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Ensures ≥ `n` unread bytes are buffered; `Ok(false)` at clean end
    /// of run, `Err` on an I/O failure or a frame truncated mid-run.
    fn ensure(&mut self, n: usize) -> Result<bool, SpillError> {
        if self.buf.len() - self.pos >= n {
            return Ok(true);
        }
        // Compact, then refill from the shared file with positioned reads.
        self.buf.drain(..self.pos);
        self.pos = 0;
        while self.buf.len() < n {
            let remaining = (self.end - self.offset) as usize;
            if remaining == 0 {
                break;
            }
            let want = remaining.min(READ_CHUNK.max(n - self.buf.len()));
            let start = self.buf.len();
            self.buf.resize(start + want, 0);
            let got = read_at(&self.file, &mut self.buf[start..], self.offset)?;
            if got == 0 {
                return Err(SpillError::Corrupt("file truncated mid-run"));
            }
            self.buf.truncate(start + got);
            self.offset += got as u64;
        }
        if self.buf.len() >= n {
            return Ok(true);
        }
        if self.buf.is_empty() {
            Ok(false)
        } else {
            Err(SpillError::Corrupt("partial record frame at end of run"))
        }
    }

    /// Reads the frame-length varint that starts the next record.
    /// `Ok(None)` only at the clean end of the run (no bytes left); any
    /// partial or overlong encoding is corruption.
    fn next_frame_len(&mut self) -> Result<Option<usize>, SpillError> {
        if !self.ensure(1)? {
            return Ok(None);
        }
        let mut v: u64 = 0;
        for i in 0..10 {
            if !self.ensure(i + 1)? {
                return Err(SpillError::Corrupt("truncated frame-length varint"));
            }
            let byte = self.buf[self.pos + i];
            v |= u64::from(byte & 0x7f) << (7 * i);
            if byte & 0x80 == 0 {
                if i == 9 && byte > 1 {
                    return Err(SpillError::Corrupt("overlong frame-length varint"));
                }
                self.pos += i + 1;
                let frame = usize::try_from(v)
                    .map_err(|_| SpillError::Corrupt("frame length exceeds address space"))?;
                return Ok(Some(frame));
            }
        }
        Err(SpillError::Corrupt("overlong frame-length varint"))
    }

    /// Next record of the run, `Ok(None)` when cleanly exhausted, or a
    /// [`SpillError`] on an I/O failure, a truncated frame, or an
    /// undecodable payload (spill/exchange file corruption); inside a job,
    /// the runtime surfaces that as
    /// [`JobError::Spill`](crate::job::JobError).
    // Not `Iterator`: the record type is chosen per *call*, and one frame
    // format serves any (K, V) the caller restores it as.
    #[allow(clippy::should_implement_trait)]
    pub fn next<K: Spill + Hash, V: Spill>(
        &mut self,
    ) -> Result<Option<ShuffleRecord<K, V>>, SpillError> {
        let Some(frame) = self.next_frame_len()? else {
            return Ok(None);
        };
        if !self.ensure(frame)? {
            return Err(SpillError::Corrupt("truncated record payload"));
        }
        let mut payload = &self.buf[self.pos..self.pos + frame];
        let decoded = (|| {
            Some((
                read_varint(&mut payload)?,
                K::restore(&mut payload)?,
                V::restore(&mut payload)?,
            ))
        })();
        let Some((fp_delta, key, value)) = decoded else {
            return Err(SpillError::Corrupt("undecodable record payload"));
        };
        // Every byte the frame length promised must have been consumed;
        // leftovers mean the length and the payload disagree.
        if !payload.is_empty() {
            return Err(SpillError::Corrupt("record payload has trailing bytes"));
        }
        let h = fp_delta ^ fingerprint64(&key);
        self.pos += frame;
        Ok(Some((h, key, value)))
    }
}

/// Reserves a uniquely named (prefix + process id + sequence number)
/// directory path under `base` for one job — spill dirs and transport
/// exchange dirs share the sequence. No I/O happens here — the directory
/// is materialized lazily by the first writer that needs it.
pub(crate) fn reserve_job_dir(base: &Path, prefix: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    base.join(format!(
        "{prefix}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Reserves a spill directory for one job (see [`reserve_job_dir`]).
pub(crate) fn reserve_job_spill_dir(base: &Path) -> PathBuf {
    reserve_job_dir(base, "tsj-spill")
}

/// [`reserve_job_spill_dir`] plus eager creation (test helper).
#[cfg(test)]
pub(crate) fn create_job_spill_dir(base: &Path) -> std::io::Result<PathBuf> {
    let dir = reserve_job_spill_dir(base);
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Best-effort recursive removal of a job's spill directory when the job
/// finishes (or fails) — spill segments never outlive their job.
#[derive(Debug)]
pub(crate) struct SpillDirGuard(pub(crate) PathBuf);

impl Drop for SpillDirGuard {
    fn drop(&mut self) {
        if let Err(e) = std::fs::remove_dir_all(&self.0) {
            // A leaked spill directory is disk the operator has to find;
            // say where it is. An already-gone directory is the goal
            // state, not an error.
            if e.kind() != std::io::ErrorKind::NotFound {
                eprintln!(
                    "tsj-mapreduce: failed to remove spill dir {}: {e}",
                    self.0.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Spill + PartialEq + std::fmt::Debug>(v: T) {
        let mut bytes = Vec::new();
        v.spill(&mut bytes);
        let mut slice = bytes.as_slice();
        assert_eq!(T::restore(&mut slice), Some(v));
        assert!(
            slice.is_empty(),
            "restore must consume exactly what spill wrote"
        );
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(123_456u32);
        roundtrip(u64::MAX - 1);
        roundtrip(-42i64);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip('é');
        roundtrip(());
        roundtrip(usize::MAX / 2);
    }

    #[test]
    fn compounds_roundtrip() {
        roundtrip(String::from("tokenized strings"));
        roundtrip(String::new());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u32, 2u64));
        roundtrip((1u8, String::from("x"), vec![9u16]));
        roundtrip((1u32, 2u32, 3u32, 4u32));
    }

    #[test]
    fn restore_rejects_truncated_input() {
        let mut bytes = Vec::new();
        123_456u64.spill(&mut bytes);
        let mut slice = &bytes[..4];
        assert_eq!(u64::restore(&mut slice), None);
        let mut bytes = Vec::new();
        String::from("hello").spill(&mut bytes);
        let mut slice = &bytes[..bytes.len() - 1];
        assert_eq!(String::restore(&mut slice), None);
    }

    #[test]
    fn writer_and_reader_roundtrip_runs() {
        let dir = create_job_spill_dir(&std::env::temp_dir()).unwrap();
        let _guard = SpillDirGuard(dir.clone());
        let mut w = SpillWriter::create(dir.join("t0.spill")).unwrap();

        let run1: Vec<ShuffleRecord<u32, String>> = vec![
            (1, 10, "a".into()),
            (1, 10, "b".into()),
            (5, 11, "c".into()),
        ];
        let run2: Vec<ShuffleRecord<u32, String>> = vec![(2, 20, "d".into())];
        let m1 = w.write_run(&run1).unwrap();
        let m2 = w.write_run(&run2).unwrap();
        assert_eq!(m1.records, 3);
        assert_eq!(m2.records, 1);
        assert_eq!(m2.offset, m1.offset + m1.bytes);
        assert_eq!(w.records, 4);
        assert_eq!(w.bytes, m1.bytes + m2.bytes);

        let (file, _path) = w.into_reader().unwrap();
        // Readers stream independently over one shared file handle.
        let mut r2 = RunReader::new(Arc::clone(&file), m2);
        let mut r1 = RunReader::new(file, m1);
        let mut got1: Vec<ShuffleRecord<u32, String>> = Vec::new();
        while let Some(rec) = r1.next().unwrap() {
            got1.push(rec);
        }
        assert_eq!(got1, run1);
        assert_eq!(r2.next::<u32, String>().unwrap(), Some((2, 20, "d".into())));
        assert_eq!(r2.next::<u32, String>().unwrap(), None);
    }

    #[test]
    fn reader_streams_large_runs_through_small_buffer() {
        let dir = create_job_spill_dir(&std::env::temp_dir()).unwrap();
        let _guard = SpillDirGuard(dir.clone());
        let mut w = SpillWriter::create(dir.join("big.spill")).unwrap();
        // Values large enough that the run is many read-chunks long.
        let big = "x".repeat(1000);
        let run: Vec<ShuffleRecord<u64, String>> = (0..500).map(|i| (i, i, big.clone())).collect();
        let meta = w.write_run(&run).unwrap();
        assert!(meta.bytes as usize > 4 * READ_CHUNK);
        let (file, _) = w.into_reader().unwrap();
        let mut r = RunReader::new(file, meta);
        let mut n = 0u64;
        while let Some((h, k, v)) = r.next::<u64, String>().unwrap() {
            assert_eq!(h, n);
            assert_eq!(k, n);
            assert_eq!(v.len(), 1000);
            assert!(r.buf.capacity() <= 2 * READ_CHUNK + 2048);
            n += 1;
        }
        assert_eq!(n, 500);
    }

    #[test]
    fn reader_surfaces_truncation_as_spill_error() {
        let dir = create_job_spill_dir(&std::env::temp_dir()).unwrap();
        let _guard = SpillDirGuard(dir.clone());
        let mut w = SpillWriter::create(dir.join("trunc.spill")).unwrap();
        let run: Vec<ShuffleRecord<u64, String>> = vec![(1, 1, "payload".into())];
        let meta = w.write_run(&run).unwrap();
        let (file, path) = w.into_reader().unwrap();
        drop(file);
        // Chop the file mid-frame: the reader must report corruption, not
        // panic and not fabricate a record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let file = Arc::new(File::open(&path).unwrap());
        let mut r = RunReader::new(file, meta);
        let err = r.next::<u64, String>().unwrap_err();
        assert!(matches!(err, SpillError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("corrupt"), "{err}");
    }

    #[test]
    fn spill_dir_guard_removes_directory() {
        let dir = create_job_spill_dir(&std::env::temp_dir()).unwrap();
        std::fs::write(dir.join("t1.spill"), b"junk").unwrap();
        assert!(dir.exists());
        drop(SpillDirGuard(dir.clone()));
        assert!(!dir.exists());
    }
}
