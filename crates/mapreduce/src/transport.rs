//! The shuffle transport: how map output physically reaches reduce tasks.
//!
//! The runtime always *routes* records to partitions at emit time
//! ([`crate::shuffle`]); the transport decides how a partition's segments
//! travel from the map side to the reduce side:
//!
//! * [`InProcess`] (the default) — the original segment handoff: each map
//!   task's in-memory partition buffers and spill-run locations are moved
//!   to the reduce tasks by reference, within one address space. Nothing
//!   is serialized beyond what the mapper itself spilled; `bytes_moved`
//!   is 0.
//! * [`MultiProcess`] — a real exchange over the spill-run wire format
//!   (see [`crate::spill`]): every map task's post-combine output — the
//!   in-memory leftover *and* any runs the task spilled — is serialized
//!   through the [`Spill`] codec into **per-partition sorted-run files**
//!   under a shared exchange directory, exactly as a cluster of separate
//!   worker processes would publish map output for reducers to fetch.
//!   Reduce tasks then consume the exchange runs through the ordinary
//!   k-way sort-merge ([`crate::merge`]) — reduce never special-cases the
//!   transport, because an exchange run is indistinguishable from a spill
//!   run. `bytes_moved` is the full serialized exchange volume, charged by
//!   [`CostModel::transport_secs_per_byte`](crate::cluster::CostModel).
//!
//! # Determinism and equivalence
//!
//! For each partition, `MultiProcess` writes runs in map-task order, a
//! task's spilled runs before its in-memory leftover — the same segment
//! order `InProcess` hands to the merge. Since the merge resolves
//! equal-fingerprint ties by segment index, the merged record order (and
//! therefore grouping and job output) is identical across transports
//! whenever the reduce side merges. The remaining difference — purely
//! in-memory partitions reduce in first-occurrence order under
//! `InProcess` but in fingerprint order under `MultiProcess` (everything
//! is a sorted run there) — is the same deterministic reordering the
//! spill path already introduces, and the pipeline output is
//! property-tested byte-identical across transports in
//! `crates/core/tests/transport_equivalence.rs`.
//!
//! # Wire format
//!
//! One exchange file per non-empty partition, named `part<p>.runs`,
//! holding that partition's runs back-to-back in the [`SpillWriter`]
//! v2 frame format (see [`crate::spill`]): per record, a LEB128 varint
//! payload length, a varint fingerprint delta (`fp XOR
//! fingerprint64(key)` — one zero byte for every runtime-emitted
//! record), then the `Spill`-encoded key and value. For the dominant
//! small-payload stages this is ≈2 B of framing per record where the v1
//! fixed `[u32 len][u64 fp]` frame spent 12. A future genuinely-remote
//! worker needs only the `(offset, bytes, records)` run directory — the
//! same [`RunMeta`] the in-process reduce uses — to stream its
//! partition over any byte transport.
//!
//! [`RunMeta`]: crate::spill::RunMeta

use std::hash::Hash;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use tsj_netshuffle::{
    FaultConfig, FetchClient, FetchConfig, FetchError, FetchStats, PublishedTask, Registry, RunKey,
    RunServer, RunSpec, ServerAddr,
};

use crate::merge::Segment;
use crate::shuffle::{ShuffleRecord, TaskSpill};
use crate::spill::{RunMeta, Spill, SpillDirGuard, SpillWriter};

#[cfg(test)]
use crate::spill::RunReader;

/// Which transport a job's shuffle uses (the configuration-level knob;
/// see [`ShuffleConfig`](crate::shuffle::ShuffleConfig)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Transport {
    /// In-process segment handoff (the default).
    #[default]
    InProcess,
    /// File exchange over the spill-run wire format.
    MultiProcess,
    /// Network exchange: map tasks publish their runs to a per-stage run
    /// server ([`tsj_netshuffle`]) and the reduce side fetches them over
    /// a socket with ranged reads, retries, and deadlines.
    Remote,
}

impl Transport {
    /// Every variant (for exhaustive config sweeps and round-trip tests).
    pub const ALL: [Transport; 3] = [
        Transport::InProcess,
        Transport::MultiProcess,
        Transport::Remote,
    ];

    /// Stable lowercase name (what `TSJ_SHUFFLE_TRANSPORT` accepts and
    /// [`JobStats::transport`](crate::job::JobStats) reports).
    pub fn name(&self) -> &'static str {
        match self {
            Transport::InProcess => "in-process",
            Transport::MultiProcess => "multi-process",
            Transport::Remote => "remote",
        }
    }

    /// Parses a `TSJ_SHUFFLE_TRANSPORT` value (ASCII case-insensitive;
    /// hyphens and underscores optional). Accepts every
    /// [`Transport::name`] spelling: `parse(t.name())` round-trips.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "inprocess" => Some(Transport::InProcess),
            "multiprocess" => Some(Transport::MultiProcess),
            "remote" => Some(Transport::Remote),
            _ => None,
        }
    }
}

/// One map task's complete post-combine output, as handed to the
/// transport: partition-indexed in-memory buffers plus the task's spill
/// file (if it spilled). Constructed by the runtime only.
#[derive(Debug)]
pub struct MapOutput<K, V> {
    pub(crate) parts: Vec<Vec<ShuffleRecord<K, V>>>,
    pub(crate) spill: Option<TaskSpill>,
    /// The run-server task key this output was published under (set by
    /// the map task itself, remote transport only): parts and spill were
    /// already serialized into the task's exchange file, and the remote
    /// exchange fetches by this key instead of touching them.
    pub(crate) published: Option<u64>,
}

impl<K, V> MapOutput<K, V> {
    pub(crate) fn new(parts: Vec<Vec<ShuffleRecord<K, V>>>, spill: Option<TaskSpill>) -> Self {
        Self {
            parts,
            spill,
            published: None,
        }
    }

    /// Tags the output with its run-server key (builder style).
    pub(crate) fn with_published(mut self, published: Option<u64>) -> Self {
        self.published = published;
        self
    }
}

/// The transport's result: every partition's reduce-input segments, plus
/// what moving them cost.
#[derive(Debug)]
pub struct Exchange<K, V> {
    pub(crate) partition_segments: Vec<Vec<Segment<K, V>>>,
    /// Bytes serialized through the transport (0 for [`InProcess`]).
    pub bytes_moved: u64,
    /// Keeps the exchange directory alive until the reduce phase has
    /// drained it; dropping the last reference removes the directory
    /// (shared because [`Remote`] holds it too, transitively keeping it
    /// alive for any still-running speculative map attempt).
    pub(crate) guard: Option<Arc<SpillDirGuard>>,
    /// What the fetch client observed ([`Remote`] only; zero elsewhere).
    /// Wall-clock-class observability — retries depend on timing and
    /// injected faults, never on job content.
    pub fetch: FetchStats,
}

/// A shuffle transport: turns the map phase's per-task outputs into
/// per-partition segment lists for the reduce phase.
///
/// Implementations must preserve the segment discipline the merge relies
/// on: partition `p`'s segments appear in map-task order, a task's
/// spilled runs (in spill order) before its in-memory leftover.
pub trait ShuffleTransport {
    /// The transport's stable name (reported in job stats).
    fn name(&self) -> &'static str;

    /// Moves `tasks`' outputs into per-partition reduce inputs.
    fn exchange<K: Spill + Hash, V: Spill>(
        &self,
        tasks: Vec<MapOutput<K, V>>,
        partitions: usize,
    ) -> std::io::Result<Exchange<K, V>>;
}

/// The in-process segment handoff: buffers and spill-run handles move by
/// reference. Zero serialization, zero bytes moved.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcess;

impl ShuffleTransport for InProcess {
    fn name(&self) -> &'static str {
        Transport::InProcess.name()
    }

    fn exchange<K: Spill + Hash, V: Spill>(
        &self,
        tasks: Vec<MapOutput<K, V>>,
        partitions: usize,
    ) -> std::io::Result<Exchange<K, V>> {
        let mut partition_segments: Vec<Vec<Segment<K, V>>> =
            (0..partitions).map(|_| Vec::new()).collect();
        for task in tasks {
            if let Some(spill) = task.spill {
                for (p, runs) in spill.runs.into_iter().enumerate() {
                    for meta in runs {
                        partition_segments[p].push(Segment::Spilled {
                            file: Arc::clone(&spill.file),
                            meta,
                        });
                    }
                }
            }
            for (p, segment) in task.parts.into_iter().enumerate() {
                if !segment.is_empty() {
                    partition_segments[p].push(Segment::Mem(segment));
                }
            }
        }
        Ok(Exchange {
            partition_segments,
            bytes_moved: 0,
            guard: None,
            fetch: FetchStats::default(),
        })
    }
}

/// The file-exchange transport: serializes every map task's output into
/// per-partition sorted-run files under `exchange_dir` (see the module
/// docs) and hands reducers only `Segment::Spilled` entries backed by
/// those files.
#[derive(Debug, Clone)]
pub struct MultiProcess {
    /// The job's shared exchange directory (reserved by the runtime,
    /// materialized lazily by the first written partition, removed when
    /// the returned [`Exchange`]'s guard drops).
    pub exchange_dir: PathBuf,
}

impl MultiProcess {
    pub fn new(exchange_dir: PathBuf) -> Self {
        Self { exchange_dir }
    }
}

/// One partition's exchange file while it is being written.
struct PartitionFile {
    writer: SpillWriter,
    metas: Vec<RunMeta>,
}

impl PartitionFile {
    /// The partition's exchange file, opened on first use.
    fn open<'a>(
        files: &'a mut [Option<PartitionFile>],
        dir: &std::path::Path,
        p: usize,
    ) -> std::io::Result<&'a mut PartitionFile> {
        let slot = &mut files[p];
        match slot.take() {
            Some(f) => Ok(slot.insert(f)),
            None => Ok(slot.insert(PartitionFile {
                writer: SpillWriter::create(dir.join(format!("part{p}.runs")))?,
                metas: Vec::new(),
            })),
        }
    }
}

impl ShuffleTransport for MultiProcess {
    fn name(&self) -> &'static str {
        Transport::MultiProcess.name()
    }

    fn exchange<K: Spill + Hash, V: Spill>(
        &self,
        tasks: Vec<MapOutput<K, V>>,
        partitions: usize,
    ) -> std::io::Result<Exchange<K, V>> {
        let guard = Arc::new(SpillDirGuard(self.exchange_dir.clone()));
        // One exchange file per partition, created lazily so sparse
        // partitions (common with partitions ≈ machines ≫ keys) cost
        // nothing.
        let mut files: Vec<Option<PartitionFile>> = (0..partitions).map(|_| None).collect();

        for task in tasks {
            // The task's spilled runs first, then its in-memory leftover —
            // the same segment order InProcess produces, so the reduce
            // merge's tie-breaking (and thus job output) is unchanged.
            if let Some(spill) = &task.spill {
                for (p, runs) in spill.runs.iter().enumerate() {
                    for meta in runs {
                        let slot = PartitionFile::open(&mut files, &self.exchange_dir, p)?;
                        // Re-ship the mapper-local run over the "wire": a
                        // raw byte copy — spill runs are already in the
                        // exchange frame format, so no decode/re-encode.
                        let copied = slot.writer.copy_raw_run(&spill.file, *meta)?;
                        slot.metas.push(copied);
                    }
                }
            }
            for (p, mut segment) in task.parts.into_iter().enumerate() {
                if segment.is_empty() {
                    continue;
                }
                // Stable sort: equal-fingerprint records keep emit order,
                // mirroring the mapper's own spill discipline.
                segment.sort_by_key(|(h, _, _)| *h);
                let slot = PartitionFile::open(&mut files, &self.exchange_dir, p)?;
                slot.metas.push(slot.writer.write_run(&segment)?);
            }
        }

        let mut bytes_moved = 0u64;
        let mut partition_segments: Vec<Vec<Segment<K, V>>> =
            (0..partitions).map(|_| Vec::new()).collect();
        for (p, file) in files.into_iter().enumerate() {
            let Some(PartitionFile { writer, metas }) = file else {
                continue;
            };
            bytes_moved += writer.bytes();
            let (file, _path) = writer.into_reader()?;
            partition_segments[p].extend(metas.into_iter().map(|meta| Segment::Spilled {
                file: Arc::clone(&file),
                meta,
            }));
        }
        Ok(Exchange {
            partition_segments,
            bytes_moved,
            guard: Some(guard),
            fetch: FetchStats::default(),
        })
    }
}

/// The network transport: map tasks publish their output as per-task
/// exchange files (`Remote::publish_task`, called *inside* the timed
/// map task, overlapping the map wave) and register them with a per-stage
/// [`RunServer`]; after the map barrier, [`Remote::exchange`] fetches
/// every partition's runs back over a socket — directory lookups plus
/// chunked ranged reads with retries — and assembles them into local
/// per-partition run files for the ordinary sort-merge reduce.
///
/// The server listens on a loopback TCP port, so every fetched byte
/// genuinely crosses the host boundary machinery (sockets, framing,
/// deadlines) even though the simulation runs in one process.
///
/// # Determinism
///
/// Per partition, runs are fetched in map-task order, each task's runs in
/// its published directory order (spilled runs before the in-memory
/// leftover) — the same segment discipline the other transports produce,
/// so job output is byte-identical. Retries cannot perturb this: every
/// fetch is an idempotent ranged read, so a retried request yields the
/// same bytes and only the wall-clock-class [`FetchStats`] differ.
#[derive(Debug)]
pub struct Remote {
    /// Exchange directory (task files + fetched partition files), shared
    /// with the [`Exchange`] guard and any speculative map attempt still
    /// holding the transport.
    guard: Arc<SpillDirGuard>,
    /// This stage's job id in the run-server keyspace (process-unique).
    job: u64,
    registry: Arc<Registry>,
    /// The stage's run server; taken out (and shut down) by
    /// [`Remote::stop`] once the exchange has fetched everything.
    server: Mutex<Option<RunServer>>,
    addr: ServerAddr,
    fetch_config: FetchConfig,
}

/// Process-wide job-id allocator for the run-server keyspace: stages
/// never collide even when many clusters run concurrently (tests).
static NEXT_JOB: AtomicU64 = AtomicU64::new(0);

impl Remote {
    /// Reserves `exchange_dir`, starts this stage's run server (loopback
    /// TCP, ephemeral port) with `fault` injection, and allocates a fresh
    /// job id.
    pub(crate) fn start(exchange_dir: PathBuf, fault: FaultConfig) -> std::io::Result<Self> {
        let registry = Arc::new(Registry::new());
        let server = RunServer::bind_tcp(Arc::clone(&registry), fault)?;
        let addr = server.addr().clone();
        Ok(Self {
            guard: Arc::new(SpillDirGuard(exchange_dir)),
            job: NEXT_JOB.fetch_add(1, Ordering::Relaxed),
            registry,
            server: Mutex::new(Some(server)),
            addr,
            fetch_config: FetchConfig::default(),
        })
    }

    /// Serializes one map task's output — spilled runs (raw byte copy)
    /// then the sorted in-memory leftover, per partition — into the
    /// task's own exchange file and registers it with the run server:
    /// servable the moment the task finishes, while the map wave is still
    /// running. Called from inside the map task; `task` is already
    /// attempt-distinct under speculation, so concurrent attempts never
    /// collide on a file or registry key.
    ///
    /// A task that produced nothing still registers (an empty directory
    /// is a valid answer; an unknown task is an error).
    pub(crate) fn publish_task<K: Spill + Hash, V: Spill>(
        &self,
        task: u64,
        mut parts: Vec<Vec<ShuffleRecord<K, V>>>,
        spill: Option<&TaskSpill>,
    ) -> std::io::Result<()> {
        let dir = &self.guard.0;
        // The task's exchange file, opened on first written run.
        fn open<'a>(
            writer: &'a mut Option<SpillWriter>,
            dir: &std::path::Path,
            task: u64,
        ) -> std::io::Result<&'a mut SpillWriter> {
            match writer.take() {
                Some(w) => Ok(writer.insert(w)),
                None => {
                    Ok(writer.insert(SpillWriter::create(dir.join(format!("task{task}.xruns")))?))
                }
            }
        }
        let mut writer: Option<SpillWriter> = None;
        let mut dirs: Vec<Vec<RunSpec>> = Vec::with_capacity(parts.len());
        for (p, segment) in parts.iter_mut().enumerate() {
            let mut specs = Vec::new();
            if let Some(spill) = spill {
                for meta in &spill.runs[p] {
                    let copied = open(&mut writer, dir, task)?.copy_raw_run(&spill.file, *meta)?;
                    specs.push(run_spec(copied));
                }
            }
            if !segment.is_empty() {
                // Stable sort: equal-fingerprint records keep emit order,
                // the same discipline as the other transports.
                segment.sort_by_key(|(h, _, _)| *h);
                specs.push(run_spec(open(&mut writer, dir, task)?.write_run(segment)?));
            }
            dirs.push(specs);
        }
        let file = match writer {
            Some(w) => Some(w.into_reader()?.0),
            None => None,
        };
        self.registry
            .publish(self.job, task, PublishedTask { file, parts: dirs });
        Ok(())
    }

    /// Shuts the run server down (idempotent). Called once the exchange
    /// has fetched every partition — nothing fetches after that.
    pub(crate) fn stop(&self) {
        let server = self
            .server
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        drop(server);
    }
}

/// [`RunMeta`] → wire [`RunSpec`] (same fields, decoupled types: the
/// netshuffle crate stays independent of the spill layer).
fn run_spec(meta: RunMeta) -> RunSpec {
    RunSpec {
        offset: meta.offset,
        bytes: meta.bytes,
        records: meta.records,
    }
}

fn fetch_io(err: FetchError) -> std::io::Error {
    std::io::Error::other(format!("run fetch failed: {err}"))
}

impl ShuffleTransport for Remote {
    fn name(&self) -> &'static str {
        Transport::Remote.name()
    }

    fn exchange<K: Spill + Hash, V: Spill>(
        &self,
        tasks: Vec<MapOutput<K, V>>,
        partitions: usize,
    ) -> std::io::Result<Exchange<K, V>> {
        // Map tasks already published everything; all the exchange needs
        // is each winner's run-server key, in task order.
        let mut keys = Vec::with_capacity(tasks.len());
        for task in &tasks {
            let Some(key) = task.published else {
                return Err(std::io::Error::other(
                    "remote exchange received a map output that was never published \
                     to the run server",
                ));
            };
            keys.push(key);
        }
        drop(tasks);

        let mut client = FetchClient::new(self.addr.clone(), self.fetch_config);
        let chunk = self
            .fetch_config
            .chunk
            .clamp(1, tsj_netshuffle::protocol::MAX_FETCH_BYTES);
        let mut bytes_moved = 0u64;
        let mut partition_segments: Vec<Vec<Segment<K, V>>> =
            (0..partitions).map(|_| Vec::new()).collect();
        for (p, segments) in partition_segments.iter_mut().enumerate() {
            // This partition's local reduce input, assembled run by run
            // from the fetched byte ranges (created lazily: sparse
            // partitions fetch nothing and cost nothing).
            let mut writer: Option<SpillWriter> = None;
            let mut metas: Vec<RunMeta> = Vec::new();
            let partition = u32::try_from(p).map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("partition index {p} exceeds the u32 run-key field"),
                )
            })?;
            for &task in &keys {
                let key = RunKey {
                    job: self.job,
                    partition,
                    task,
                };
                let specs = client.dir(key).map_err(fetch_io)?;
                for spec in specs {
                    let writer = match writer.take() {
                        Some(w) => writer.insert(w),
                        None => writer.insert(SpillWriter::create(
                            self.guard.0.join(format!("part{p}.fetch")),
                        )?),
                    };
                    let start = writer.offset();
                    let mut done = 0u64;
                    while done < spec.bytes {
                        let len = chunk.min(spec.bytes - done);
                        let bytes = client
                            .fetch(key, spec.offset + done, len)
                            .map_err(fetch_io)?;
                        writer.append_raw(&bytes)?;
                        done += len;
                    }
                    metas.push(writer.seal_raw_run(start, spec.records));
                    bytes_moved += spec.bytes;
                }
            }
            if let Some(writer) = writer {
                let (file, _path) = writer.into_reader()?;
                segments.extend(metas.into_iter().map(|meta| Segment::Spilled {
                    file: Arc::clone(&file),
                    meta,
                }));
            }
        }
        Ok(Exchange {
            partition_segments,
            bytes_moved,
            guard: Some(Arc::clone(&self.guard)),
            fetch: client.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fingerprint64;
    use crate::spill::reserve_job_dir;

    fn rec(key: u64, value: u64, partitions: usize) -> (usize, ShuffleRecord<u64, u64>) {
        let h = fingerprint64(&key);
        ((h % partitions as u64) as usize, (h, key, value))
    }

    fn mem_task(keys: &[(u64, u64)], partitions: usize) -> MapOutput<u64, u64> {
        let mut parts: Vec<Vec<ShuffleRecord<u64, u64>>> =
            (0..partitions).map(|_| Vec::new()).collect();
        for &(k, v) in keys {
            let (p, r) = rec(k, v, partitions);
            parts[p].push(r);
        }
        MapOutput {
            parts,
            spill: None,
            published: None,
        }
    }

    /// Drains every segment of an exchange into (partition, record) order.
    fn drain(exchange: Exchange<u64, u64>) -> Vec<(usize, ShuffleRecord<u64, u64>)> {
        let mut out = Vec::new();
        for (p, segments) in exchange.partition_segments.into_iter().enumerate() {
            for seg in segments {
                match seg {
                    Segment::Mem(records) => {
                        let mut records = records;
                        records.sort_by_key(|(h, _, _)| *h);
                        out.extend(records.into_iter().map(|r| (p, r)));
                    }
                    Segment::Spilled { file, meta } => {
                        let mut r = RunReader::new(file, meta);
                        while let Some(record) = r.next::<u64, u64>().unwrap() {
                            out.push((p, record));
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn transport_parse_accepts_spelling_variants() {
        for s in ["inprocess", "in-process", "IN_PROCESS", "InProcess"] {
            assert_eq!(Transport::parse(s), Some(Transport::InProcess), "{s}");
        }
        for s in ["multiprocess", "multi-process", "MULTI_PROCESS"] {
            assert_eq!(Transport::parse(s), Some(Transport::MultiProcess), "{s}");
        }
        for s in ["remote", "REMOTE", "Re-mote"] {
            assert_eq!(Transport::parse(s), Some(Transport::Remote), "{s}");
        }
        assert_eq!(Transport::parse("network"), None);
        assert_eq!(Transport::parse(""), None);
    }

    #[test]
    fn transport_name_round_trips_through_parse_for_every_variant() {
        for t in Transport::ALL {
            assert_eq!(Transport::parse(t.name()), Some(t), "{}", t.name());
        }
    }

    #[test]
    fn remote_ships_the_same_records_as_inprocess() {
        let partitions = 4;
        let data_a: Vec<(u64, u64)> = (0..40).map(|i| (i % 11, i)).collect();
        let data_b: Vec<(u64, u64)> = (0..25).map(|i| (i % 7, 100 + i)).collect();

        let in_proc = InProcess
            .exchange(
                vec![mem_task(&data_a, partitions), mem_task(&data_b, partitions)],
                partitions,
            )
            .unwrap();

        let dir = reserve_job_dir(&std::env::temp_dir(), "tsj-remote-test");
        let remote = Remote::start(dir.clone(), tsj_netshuffle::FaultConfig::default()).unwrap();
        // Publish exactly as the map tasks would, then exchange over the
        // socket.
        let mut outputs = Vec::new();
        for (task, data) in [(0u64, &data_a), (1, &data_b)] {
            let out = mem_task(data, partitions);
            remote.publish_task(task, out.parts, None).unwrap();
            outputs.push(
                MapOutput::new((0..partitions).map(|_| Vec::new()).collect(), None)
                    .with_published(Some(task)),
            );
        }
        let exchange = remote.exchange(outputs, partitions).unwrap();
        remote.stop();
        assert!(exchange.bytes_moved > 0);
        assert!(exchange.fetch.requests > 0);
        assert_eq!(exchange.fetch.bytes, exchange.bytes_moved);

        assert_eq!(drain(exchange), drain(in_proc));
        drop(remote);
        assert!(!dir.exists(), "guard removes the exchange dir on drop");
    }

    #[test]
    fn remote_exchange_matches_multiprocess_volume() {
        let partitions = 3;
        let data: Vec<(u64, u64)> = (0..60).map(|i| (i % 13, i)).collect();

        let dir = reserve_job_dir(&std::env::temp_dir(), "tsj-exchange-test");
        let multi = MultiProcess::new(dir)
            .exchange(vec![mem_task(&data, partitions)], partitions)
            .unwrap();

        let dir = reserve_job_dir(&std::env::temp_dir(), "tsj-remote-test");
        let remote = Remote::start(dir, tsj_netshuffle::FaultConfig::default()).unwrap();
        let out = mem_task(&data, partitions);
        remote.publish_task(0, out.parts, None).unwrap();
        let exchange = remote
            .exchange(
                vec![
                    MapOutput::new((0..partitions).map(|_| Vec::new()).collect(), None)
                        .with_published(Some(0)),
                ],
                partitions,
            )
            .unwrap();
        remote.stop();
        // Same runs, same frames: the serialized exchange volume is
        // byte-for-byte the multi-process one.
        assert_eq!(exchange.bytes_moved, multi.bytes_moved);
        assert_eq!(drain(exchange), drain(multi));
    }

    #[test]
    fn remote_exchange_rejects_unpublished_outputs() {
        let dir = reserve_job_dir(&std::env::temp_dir(), "tsj-remote-test");
        let remote = Remote::start(dir, tsj_netshuffle::FaultConfig::default()).unwrap();
        let err = remote
            .exchange(vec![mem_task(&[(1, 1)], 2)], 2)
            .expect_err("unpublished output must be a structured error");
        assert!(err.to_string().contains("never published"));
        remote.stop();
    }

    #[test]
    fn multiprocess_ships_the_same_records_as_inprocess() {
        let partitions = 4;
        let data_a: Vec<(u64, u64)> = (0..40).map(|i| (i % 11, i)).collect();
        let data_b: Vec<(u64, u64)> = (0..25).map(|i| (i % 7, 100 + i)).collect();

        let in_proc = InProcess
            .exchange(
                vec![mem_task(&data_a, partitions), mem_task(&data_b, partitions)],
                partitions,
            )
            .unwrap();
        assert_eq!(in_proc.bytes_moved, 0);

        let dir = reserve_job_dir(&std::env::temp_dir(), "tsj-exchange-test");
        let multi = MultiProcess::new(dir.clone())
            .exchange(
                vec![mem_task(&data_a, partitions), mem_task(&data_b, partitions)],
                partitions,
            )
            .unwrap();
        assert!(multi.bytes_moved > 0);
        assert!(dir.exists(), "exchange dir materialized");

        // Same records per partition, in the same merged order (mem
        // segments compared post-sort, the order the merge consumes).
        assert_eq!(drain(multi), drain(in_proc));
        assert!(!dir.exists(), "guard removes the exchange dir on drop");
    }

    #[test]
    fn exchange_files_are_per_partition_and_runs_are_sorted() {
        let partitions = 3;
        let data: Vec<(u64, u64)> = (0..60).map(|i| (i, i * 2)).collect();
        let dir = reserve_job_dir(&std::env::temp_dir(), "tsj-exchange-test");
        let exchange = MultiProcess::new(dir.clone())
            .exchange(vec![mem_task(&data, partitions)], partitions)
            .unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        for name in &names {
            assert!(
                name.starts_with("part") && name.ends_with(".runs"),
                "{name}"
            );
        }
        for (p, segments) in exchange.partition_segments.iter().enumerate() {
            for seg in segments {
                let Segment::Spilled { file, meta } = seg else {
                    panic!("multi-process exchange must hand out spilled segments only");
                };
                let mut r = RunReader::new(Arc::clone(file), *meta);
                let mut last = 0u64;
                while let Some((h, _, _)) = r.next::<u64, u64>().unwrap() {
                    assert!(h >= last, "exchange run not sorted");
                    assert_eq!((h % partitions as u64) as usize, p);
                    last = h;
                }
            }
        }
    }

    #[test]
    fn empty_partitions_create_no_exchange_files() {
        let partitions = 64;
        let data: Vec<(u64, u64)> = vec![(1, 1)];
        let dir = reserve_job_dir(&std::env::temp_dir(), "tsj-exchange-test");
        let exchange = MultiProcess::new(dir.clone())
            .exchange(vec![mem_task(&data, partitions)], partitions)
            .unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        assert_eq!(
            exchange
                .partition_segments
                .iter()
                .filter(|s| !s.is_empty())
                .count(),
            1
        );
    }
}
