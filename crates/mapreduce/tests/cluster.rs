//! End-to-end tests of the MapReduce runtime: correctness of the
//! map/shuffle/reduce semantics, the simulated clock's qualitative
//! behaviour (scaling, skew), and failure injection.

use tsj_mapreduce::{Cluster, ClusterConfig, CostModel, Emitter, JobError, OutputSink};

fn test_cluster(machines: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        machines,
        threads: 4,
        partitions: 0,
        cost: CostModel {
            job_startup_secs: 0.0,
            map_worker_startup_secs: 0.0,
            reduce_group_overhead_secs: 0.0,
            verify_group_overhead_secs: 0.0,
            shuffle_secs_per_record: 0.0,
            spill_secs_per_byte: 0.0,
            transport_secs_per_byte: 0.0,
            cpu_scale: 1.0,
            work_unit_secs: 0.0, // measured rates: these tests time real work
        },
    })
}

#[test]
fn word_count() {
    let docs = vec![
        "the quick brown fox".to_owned(),
        "the lazy dog".to_owned(),
        "the quick dog".to_owned(),
    ];
    let result = test_cluster(8)
        .run(
            "wordcount",
            &docs,
            |doc: &String, e: &mut Emitter<String, u64>| {
                for w in doc.split_whitespace() {
                    e.emit(w.to_owned(), 1);
                }
            },
            |word: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
                out.emit((word.clone(), counts.iter().sum()));
            },
        )
        .unwrap();

    let mut counts = result.output;
    counts.sort();
    assert_eq!(
        counts,
        vec![
            ("brown".into(), 1),
            ("dog".into(), 2),
            ("fox".into(), 1),
            ("lazy".into(), 1),
            ("quick".into(), 2),
            ("the".into(), 3),
        ]
    );
    assert_eq!(result.stats.input_records, 3);
    assert_eq!(result.stats.map_output_records, 10);
    assert_eq!(result.stats.reduce_groups, 6);
    assert_eq!(result.stats.max_group_size, 3); // "the"
    assert_eq!(result.stats.output_records, 6);
}

#[test]
fn empty_input_runs_cleanly() {
    let input: Vec<u32> = vec![];
    let r = test_cluster(4)
        .run(
            "empty",
            &input,
            |_: &u32, _: &mut Emitter<u32, u32>| {},
            |_: &u32, _: Vec<u32>, _: &mut OutputSink<u32>| {},
        )
        .unwrap();
    assert!(r.output.is_empty());
    assert_eq!(r.stats.reduce_groups, 0);
}

#[test]
fn values_reach_reducer_grouped_by_key() {
    let input: Vec<u64> = (0..1000).collect();
    let r = test_cluster(16)
        .run(
            "group",
            &input,
            |n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 7, *n),
            |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, usize, u64)>| {
                out.emit((*k, vs.len(), vs.iter().sum()));
            },
        )
        .unwrap();
    assert_eq!(r.output.len(), 7);
    let mut out = r.output;
    out.sort();
    for (k, n, sum) in out {
        let expect: Vec<u64> = (0..1000).filter(|v| v % 7 == k).collect();
        assert_eq!(n, expect.len());
        assert_eq!(sum, expect.iter().sum::<u64>());
    }
}

#[test]
fn counters_aggregate_across_phases() {
    let input: Vec<u32> = (0..100).collect();
    let r = test_cluster(4)
        .run(
            "counters",
            &input,
            |n: &u32, e: &mut Emitter<u32, u32>| {
                e.add_counter("mapped", 1);
                if n.is_multiple_of(2) {
                    e.emit(*n, *n);
                }
            },
            |_: &u32, vs: Vec<u32>, out: &mut OutputSink<u32>| {
                out.add_counter("reduced_values", vs.len() as u64);
                out.emit(vs[0]);
            },
        )
        .unwrap();
    assert_eq!(r.stats.counter("mapped"), 100);
    assert_eq!(r.stats.counter("reduced_values"), 50);
}

#[test]
fn map_panic_surfaces_as_job_error() {
    let input: Vec<u32> = (0..64).collect();
    let err = test_cluster(4)
        .run(
            "bad-map",
            &input,
            |n: &u32, _: &mut Emitter<u32, u32>| {
                if *n == 33 {
                    panic!("poison record {n}");
                }
            },
            |_: &u32, _: Vec<u32>, _: &mut OutputSink<u32>| {},
        )
        .unwrap_err();
    match err {
        JobError::WorkerPanic { phase, message } => {
            assert_eq!(phase, "map");
            assert!(message.contains("poison record"));
        }
        other => panic!("expected a map worker panic, got {other:?}"),
    }
}

#[test]
fn reduce_panic_surfaces_as_job_error() {
    let input: Vec<u32> = (0..64).collect();
    let err = test_cluster(4)
        .run(
            "bad-reduce",
            &input,
            |n: &u32, e: &mut Emitter<u32, u32>| e.emit(*n, *n),
            |k: &u32, _: Vec<u32>, _: &mut OutputSink<u32>| {
                if *k == 7 {
                    panic!("bad group");
                }
            },
        )
        .unwrap_err();
    match err {
        JobError::WorkerPanic { phase, .. } => assert_eq!(phase, "reduce"),
        other => panic!("expected a reduce worker panic, got {other:?}"),
    }
}

#[test]
fn simulated_time_scales_down_with_machines() {
    // A CPU-bound job: simulated makespan should shrink as machines grow
    // (sub-linearly, because of per-job fixed costs — the Fig. 1 shape).
    let input: Vec<u64> = (0..4000).collect();
    let run = |machines: usize| {
        let cluster = Cluster::new(ClusterConfig {
            machines,
            threads: 4,
            partitions: 0,
            cost: CostModel {
                job_startup_secs: 1.0,
                map_worker_startup_secs: 0.0,
                reduce_group_overhead_secs: 1e-5,
                verify_group_overhead_secs: 1e-5,
                shuffle_secs_per_record: 1e-6,
                spill_secs_per_byte: 0.0,
                transport_secs_per_byte: 0.0,
                cpu_scale: 1.0,
                work_unit_secs: 0.0,
            },
        });
        cluster
            .run(
                "scale",
                &input,
                |n: &u64, e: &mut Emitter<u64, u64>| {
                    // Busy work so the measured CPU time is non-trivial.
                    let mut acc = *n;
                    for i in 0..2_000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    e.emit(n % 512, acc);
                },
                |_: &u64, vs: Vec<u64>, out: &mut OutputSink<u64>| {
                    out.emit(vs.iter().copied().fold(0, u64::wrapping_add));
                },
            )
            .unwrap()
            .stats
    };
    let s100 = run(100);
    let s1000 = run(1000);
    assert!(
        s1000.sim_total_secs < s100.sim_total_secs,
        "1000 machines ({:.4}s) should beat 100 machines ({:.4}s)",
        s1000.sim_total_secs,
        s100.sim_total_secs
    );
    // Speedup is sub-linear: fixed startup dominates eventually.
    let speedup = s100.sim_total_secs / s1000.sim_total_secs;
    assert!(
        speedup < 10.0,
        "speedup {speedup} cannot exceed the machine ratio"
    );
}

#[test]
fn hot_key_shows_up_as_reduce_skew() {
    let input: Vec<u64> = (0..2000).collect();
    let run_with_keys = |hot: bool| {
        test_cluster(64)
            .run(
                "skew",
                &input,
                move |n: &u64, e: &mut Emitter<u64, u64>| {
                    // hot: 50% of records share one key; uniform otherwise.
                    let key = if hot && n.is_multiple_of(2) {
                        0
                    } else {
                        n % 256
                    };
                    e.emit(key, *n);
                },
                |_: &u64, vs: Vec<u64>, out: &mut OutputSink<u64>| {
                    // Work proportional to group size (like verification).
                    let mut acc = 0u64;
                    for v in &vs {
                        for i in 0..200u64 {
                            acc = acc.wrapping_mul(31).wrapping_add(v + i);
                        }
                    }
                    out.emit(acc);
                },
            )
            .unwrap()
            .stats
    };
    let uniform = run_with_keys(false);
    let skewed = run_with_keys(true);
    assert!(
        skewed.reduce.skew > uniform.reduce.skew,
        "hot key must raise skew: {} vs {}",
        skewed.reduce.skew,
        uniform.reduce.skew
    );
    assert!(skewed.max_group_size >= 1000);
}

#[test]
fn group_overhead_charges_per_group() {
    // Same data, two cost models: per-group overhead must raise simulated
    // time by (groups / machines)·overhead on the busiest machine.
    let input: Vec<u64> = (0..512).collect();
    let run = |overhead: f64| {
        Cluster::new(ClusterConfig {
            machines: 1, // all groups on one machine → clean arithmetic
            threads: 2,
            partitions: 0,
            cost: CostModel {
                job_startup_secs: 0.0,
                map_worker_startup_secs: 0.0,
                reduce_group_overhead_secs: overhead,
                verify_group_overhead_secs: overhead,
                shuffle_secs_per_record: 0.0,
                spill_secs_per_byte: 0.0,
                transport_secs_per_byte: 0.0,
                cpu_scale: 1.0,
                work_unit_secs: 0.0,
            },
        })
        .run(
            "overhead",
            &input,
            |n: &u64, e: &mut Emitter<u64, ()>| e.emit(*n, ()),
            |_: &u64, _: Vec<()>, out: &mut OutputSink<()>| out.emit(()),
        )
        .unwrap()
        .stats
    };
    let cheap = run(0.0);
    let costly = run(0.01);
    let delta = costly.sim_total_secs - cheap.sim_total_secs;
    // 512 groups × 0.01s = 5.12 simulated seconds (CPU noise is ≪ 1s).
    assert!(
        (delta - 5.12).abs() < 0.5,
        "expected ≈5.12s of group overhead, got {delta}"
    );
}

#[test]
fn deterministic_output_multiset_across_runs() {
    let input: Vec<u64> = (0..3000).collect();
    let run = || {
        let mut out = test_cluster(32)
            .run(
                "det",
                &input,
                |n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 97, n * 3),
                |k: &u64, mut vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                    vs.sort_unstable();
                    out.emit((*k, vs.iter().fold(0, |a, b| a ^ b)));
                },
            )
            .unwrap()
            .output;
        out.sort_unstable();
        out
    };
    assert_eq!(run(), run());
}

// ---- Partitioned shuffle + combiner -----------------------------------

#[test]
fn combined_wordcount_matches_plain_and_shrinks_shuffle() {
    use tsj_mapreduce::Count;
    let docs: Vec<String> = (0..500)
        .map(|i| format!("the quick token{} the the", i % 37))
        .collect();
    let map = |doc: &String, e: &mut Emitter<String, u64>| {
        for w in doc.split_whitespace() {
            e.emit(w.to_owned(), 1);
        }
    };
    let reduce = |word: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
        out.emit((word.clone(), counts.iter().sum()));
    };
    let cluster = test_cluster(8);
    let plain = cluster.run("wc.plain", &docs, map, reduce).unwrap();
    let combined = cluster
        .run_combined("wc.combined", &docs, map, &Count, reduce)
        .unwrap();

    let sort = |mut v: Vec<(String, u64)>| {
        v.sort();
        v
    };
    assert_eq!(sort(plain.output), sort(combined.output));
    // No combiner: every emitted pair is shuffled.
    assert_eq!(plain.stats.shuffle_records, plain.stats.map_output_records);
    // Combiner: strictly fewer records shuffled ("the" repeats per task).
    assert_eq!(
        combined.stats.map_output_records,
        plain.stats.map_output_records
    );
    assert!(
        combined.stats.shuffle_records < combined.stats.map_output_records,
        "combiner did not shrink the shuffle: {} vs {}",
        combined.stats.shuffle_records,
        combined.stats.map_output_records
    );
    // Reduce groups are unchanged — combining folds values, not keys.
    assert_eq!(plain.stats.reduce_groups, combined.stats.reduce_groups);
}

#[test]
fn shuffle_cost_charged_on_post_combine_records() {
    use tsj_mapreduce::Count;
    // Zero out everything except the shuffle so the simulated time is
    // exactly shuffle_secs_per_record × shuffled / machines.
    let cluster = Cluster::new(ClusterConfig {
        machines: 4,
        threads: 2,
        partitions: 0,
        cost: CostModel {
            job_startup_secs: 0.0,
            map_worker_startup_secs: 0.0,
            reduce_group_overhead_secs: 0.0,
            verify_group_overhead_secs: 0.0,
            shuffle_secs_per_record: 1.0,
            spill_secs_per_byte: 0.0,
            transport_secs_per_byte: 0.0,
            cpu_scale: 0.0,
            work_unit_secs: 1e-9,
        },
    });
    let input: Vec<u64> = (0..1000).collect();
    let map = |n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 10, 1);
    let reduce = |_: &u64, vs: Vec<u64>, out: &mut OutputSink<u64>| {
        out.emit(vs.iter().sum());
    };
    let plain = cluster.run("cost.plain", &input, map, reduce).unwrap();
    let combined = cluster
        .run_combined("cost.combined", &input, map, &Count, reduce)
        .unwrap();
    assert!((plain.stats.shuffle_secs - 1000.0 / 4.0).abs() < 1e-9);
    let expected = combined.stats.shuffle_records as f64 / 4.0;
    assert!((combined.stats.shuffle_secs - expected).abs() < 1e-9);
    assert!(
        combined.stats.sim_total_secs < plain.stats.sim_total_secs,
        "post-combine charging must lower the simulated cost: {} vs {}",
        combined.stats.sim_total_secs,
        plain.stats.sim_total_secs
    );
}

#[test]
fn dedup_combiner_preserves_distinct_values() {
    use tsj_mapreduce::Dedup;
    // Each key sees duplicated values; the reducer collects the distinct
    // set, so map-side dedup must not change its output.
    let input: Vec<u64> = (0..2000).collect();
    let map = |n: &u64, e: &mut Emitter<u64, u64>| {
        e.emit(n % 50, n % 7);
        e.emit(n % 50, n % 7); // duplicate on purpose
    };
    let reduce = |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, Vec<u64>)>| {
        let mut distinct = vs;
        distinct.sort_unstable();
        distinct.dedup();
        out.emit((*k, distinct));
    };
    let cluster = test_cluster(16);
    let plain = cluster.run("dedup.plain", &input, map, reduce).unwrap();
    let combined = cluster
        .run_combined("dedup.combined", &input, map, &Dedup, reduce)
        .unwrap();
    let sort = |mut v: Vec<(u64, Vec<u64>)>| {
        v.sort();
        v
    };
    assert_eq!(sort(plain.output), sort(combined.output));
    assert!(combined.stats.shuffle_records < plain.stats.shuffle_records);
}

#[test]
fn min_combiner_matches_uncombined_min() {
    use tsj_mapreduce::Min;
    let input: Vec<u64> = (0..3000).collect();
    let map = |n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 13, n.wrapping_mul(2654435761) % 997);
    let reduce = |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
        out.emit((*k, vs.into_iter().min().unwrap()));
    };
    let cluster = test_cluster(8);
    let plain = cluster.run("min.plain", &input, map, reduce).unwrap();
    let combined = cluster
        .run_combined("min.combined", &input, map, &Min, reduce)
        .unwrap();
    let sort = |mut v: Vec<(u64, u64)>| {
        v.sort_unstable();
        v
    };
    assert_eq!(sort(plain.output), sort(combined.output));
}

#[test]
fn output_identical_across_threads_and_partitions() {
    use tsj_mapreduce::Count;
    let input: Vec<u64> = (0..5000).collect();
    let run_with = |threads: usize, partitions: usize| {
        let cluster = Cluster::new(ClusterConfig {
            machines: 32,
            threads,
            partitions,
            cost: CostModel::default(),
        });
        let mut out = cluster
            .run_combined(
                "invariance",
                &input,
                |n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 211, 1),
                &Count,
                |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                    out.emit((*k, vs.iter().sum()));
                },
            )
            .unwrap()
            .output;
        out.sort_unstable();
        out
    };
    let reference = run_with(1, 0);
    for threads in [2, 8] {
        assert_eq!(run_with(threads, 0), reference, "threads = {threads}");
    }
    for partitions in [1, 7, 32, 100] {
        assert_eq!(
            run_with(4, partitions),
            reference,
            "partitions = {partitions}"
        );
    }
}

#[test]
fn thread_count_does_not_change_output_order_either() {
    // Stronger than multiset equality: the concatenated reducer output is
    // deterministic (partition order × first-occurrence group order), so
    // even the unsorted output must match across thread counts.
    let input: Vec<u64> = (0..4000).collect();
    let run_with = |threads: usize| {
        Cluster::new(ClusterConfig {
            machines: 16,
            threads,
            partitions: 0,
            cost: CostModel::default(),
        })
        .run(
            "order",
            &input,
            |n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 97, *n),
            |k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((*k, vs.iter().copied().fold(0, u64::wrapping_add)));
            },
        )
        .unwrap()
        .output
    };
    let reference = run_with(1);
    assert_eq!(run_with(2), reference);
    assert_eq!(run_with(8), reference);
}
