//! Property tests of the `Spill` wire codec — the format every shuffle
//! byte travels in, whether through mapper spill files or the
//! multi-process exchange. Three families:
//!
//! 1. **Roundtrip**: for every codec impl (primitives, tuples, `String`,
//!    `Vec`, `Option`, nested compounds, and the job-specific exemplars
//!    `ChunkRole` / `Replica`), `restore ∘ spill` is the identity and
//!    consumes *exactly* the bytes written — a codec that under- or
//!    over-reads corrupts every frame that follows it in a run.
//! 2. **Truncation**: `restore` on any strict prefix of an encoding
//!    returns `None` (never panics, never fabricates a value).
//! 3. **Frame corruption**: a `RunReader` over a truncated or
//!    length-corrupted run file surfaces a structured
//!    [`SpillError::Corrupt`](tsj_mapreduce::SpillError) (the runtime
//!    converts that into `JobError::Spill`, failing the job while the
//!    process survives) instead of panicking, silently dropping, or
//!    inventing records.

mod helpers;

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::string::string_regex;

use tsj_mapreduce::{
    fingerprint64, read_varint, write_varint, RunReader, Spill, SpillError, SpillWriter,
};
use tsj_metricjoin::Replica;
use tsj_passjoin::ChunkRole;

/// Encodes `v`, checks exact-consumption roundtrip, and returns the bytes.
fn roundtrip<T: Spill + PartialEq + std::fmt::Debug>(v: &T) -> Vec<u8> {
    let mut bytes = Vec::new();
    v.spill(&mut bytes);
    let mut slice = bytes.as_slice();
    let restored = T::restore(&mut slice);
    assert!(
        restored.as_ref() == Some(v),
        "roundtrip mismatch: {v:?} -> {restored:?}"
    );
    assert!(
        slice.is_empty(),
        "restore of {v:?} left {} unconsumed bytes",
        slice.len()
    );
    bytes
}

/// Every strict prefix of a value's encoding must fail to decode.
fn rejects_all_strict_prefixes<T: Spill + PartialEq + std::fmt::Debug>(v: &T, bytes: &[u8]) {
    for cut in 0..bytes.len() {
        let mut slice = &bytes[..cut];
        assert!(
            T::restore(&mut slice).is_none(),
            "{v:?}: prefix of {cut}/{} bytes decoded to something",
            bytes.len()
        );
    }
}

fn check<T: Spill + PartialEq + std::fmt::Debug>(v: T) {
    let bytes = roundtrip(&v);
    rejects_all_strict_prefixes(&v, &bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn integers_roundtrip(a in 0u64..=u64::MAX, bits in 0u64..=u64::MAX) {
        // (Signed values derive from raw bits: the shim's inclusive-range
        // strategy cannot span all of i64.)
        let b = bits as i64;
        check(a);
        check(b);
        check(a as u8);
        check(a as u16);
        check(a as u32);
        check(a as usize);
        check((a as u128) << 64 | b as u128);
        check(b as i8);
        check(b as i16);
        check(b as i32);
        check(b as i128);
    }

    #[test]
    fn floats_roundtrip_bit_exactly(bits32 in 0u32..=u32::MAX, bits64 in 0u64..=u64::MAX) {
        // Compare bit patterns, not values: NaN payloads must survive the
        // wire too (a reducer must see exactly what the mapper emitted).
        let f = f32::from_bits(bits32);
        let mut bytes = Vec::new();
        f.spill(&mut bytes);
        let mut slice = bytes.as_slice();
        prop_assert_eq!(f32::restore(&mut slice).map(f32::to_bits), Some(bits32));
        prop_assert!(slice.is_empty());

        let d = f64::from_bits(bits64);
        let mut bytes = Vec::new();
        d.spill(&mut bytes);
        let mut slice = bytes.as_slice();
        prop_assert_eq!(f64::restore(&mut slice).map(f64::to_bits), Some(bits64));
        prop_assert!(slice.is_empty());
    }

    #[test]
    fn chars_and_bools_roundtrip(c in 0u32..=0x10FFFF, b in 0u8..=1) {
        if let Some(c) = char::from_u32(c) {
            check(c);
        }
        check(b == 1);
        check(());
    }

    #[test]
    fn strings_roundtrip(s in string_regex("[a-zéß 0-9]{0,40}").unwrap()) {
        check(s);
    }

    #[test]
    fn vecs_and_options_roundtrip(
        v in vec(0u32..1000, 0..20),
        s in string_regex("[a-z]{0,12}").unwrap(),
        some in 0u8..=1,
    ) {
        check(v.clone());
        check(Vec::<u64>::new());
        check(if some == 1 { Some(s.clone()) } else { None });
        check(Option::<u32>::None);
        // Nested compounds: the codecs must compose.
        check(vec![Some((s.clone(), v.clone())), None]);
        check(vec![v.clone(), Vec::new()]);
    }

    #[test]
    fn tuples_roundtrip(
        a in 0u32..=u32::MAX,
        b in 0u64..=u64::MAX,
        s in string_regex("[a-z]{0,9}").unwrap(),
    ) {
        check((a,));
        check((a, b));
        check((a, s.clone(), vec![b]));
        check((a, b, a, b));
    }

    #[test]
    fn varint_roundtrips_and_rejects_prefixes(v in 0u64..=u64::MAX, shift in 0u32..64) {
        // Cover every encoded length: a full-range value plus one shifted
        // down so small (1–2 byte) encodings appear constantly.
        for v in [v, v >> shift] {
            let mut bytes = Vec::new();
            write_varint(&mut bytes, v);
            prop_assert!(bytes.len() <= 10);
            let mut slice = bytes.as_slice();
            prop_assert_eq!(read_varint(&mut slice), Some(v));
            prop_assert!(slice.is_empty(), "varint must consume exactly its encoding");
            // LEB128 self-delimits: every strict prefix still carries a
            // continuation bit and must be rejected, not misread.
            for cut in 0..bytes.len() {
                let mut slice = &bytes[..cut];
                prop_assert_eq!(read_varint(&mut slice), None, "prefix {cut} decoded");
            }
        }
    }

    #[test]
    fn chunk_role_roundtrips(id in 0u32..=u32::MAX, seg in 0u8..=1) {
        let role = if seg == 1 { ChunkRole::Seg(id) } else { ChunkRole::Sub(id) };
        check(role);
    }

    #[test]
    fn replica_roundtrips(sid in 0u32..=u32::MAX, home in 0u32..=u32::MAX, bits in 0u64..=u64::MAX) {
        // Finite distances compare by value (PartialEq), so `check` works
        // whenever the payload is not NaN.
        let dist = f64::from_bits(bits);
        if !dist.is_nan() {
            check(Replica { sid, home, dist_to_centroid: dist });
        } else {
            let r = Replica { sid, home, dist_to_centroid: dist };
            let mut bytes = Vec::new();
            r.spill(&mut bytes);
            let mut slice = bytes.as_slice();
            let back = Replica::restore(&mut slice).expect("NaN distance must still decode");
            prop_assert!(slice.is_empty());
            prop_assert_eq!(back.sid, sid);
            prop_assert_eq!(back.home, home);
            prop_assert_eq!(back.dist_to_centroid.to_bits(), bits);
        }
    }
}

#[test]
fn varint_boundary_values_encode_minimally() {
    for (v, len) in [
        (0u64, 1usize),
        (1, 1),
        (127, 1),
        (128, 2),
        (16_383, 2),
        (16_384, 3),
        (u64::from(u32::MAX), 5),
        (u64::MAX, 10),
    ] {
        let mut bytes = Vec::new();
        write_varint(&mut bytes, v);
        assert_eq!(bytes.len(), len, "encoding length of {v}");
        let mut slice = bytes.as_slice();
        assert_eq!(read_varint(&mut slice), Some(v));
        assert!(slice.is_empty());
    }
}

#[test]
fn varint_rejects_unterminated_and_overflowing_encodings() {
    // Ten continuation bytes: no terminator within the u64 limit.
    let mut slice: &[u8] = &[0x80; 10];
    assert_eq!(read_varint(&mut slice), None);
    // Terminated on the 10th byte but carrying bits beyond 2^64.
    let mut bytes = vec![0xFF; 9];
    bytes.push(0x02);
    let mut slice = bytes.as_slice();
    assert_eq!(read_varint(&mut slice), None);
    // The same 10-byte shape with a valid final bit is the u64::MAX
    // encoding and must decode.
    let mut bytes = vec![0xFF; 9];
    bytes.push(0x01);
    let mut slice = bytes.as_slice();
    assert_eq!(read_varint(&mut slice), Some(u64::MAX));
}

#[test]
fn corrupt_tag_bytes_are_rejected() {
    // bool: only 0 and 1 decode.
    for b in 2u8..=255 {
        let mut slice: &[u8] = &[b];
        assert_eq!(bool::restore(&mut slice), None, "bool tag {b}");
    }
    // Option: only tags 0 and 1.
    let mut slice: &[u8] = &[7, 42, 0, 0, 0];
    assert_eq!(Option::<u32>::restore(&mut slice), None);
    // ChunkRole: only tags 0 and 1.
    let mut slice: &[u8] = &[2, 1, 0, 0, 0];
    assert_eq!(ChunkRole::restore(&mut slice), None);
    // char: surrogates and beyond-max scalar values are invalid.
    for bad in [0xD800u32, 0xDFFF, 0x110000, u32::MAX] {
        let mut bytes = Vec::new();
        bad.spill(&mut bytes);
        let mut slice = bytes.as_slice();
        assert_eq!(char::restore(&mut slice), None, "char {bad:#x}");
    }
    // String: invalid UTF-8 payload behind a valid varint length.
    let mut bytes = Vec::new();
    write_varint(&mut bytes, 2);
    bytes.extend_from_slice(&[0xFF, 0xFE]);
    let mut slice = bytes.as_slice();
    assert_eq!(String::restore(&mut slice), None);
}

#[test]
fn corrupt_length_prefixes_are_rejected_without_overallocation() {
    // A length prefix pointing far past the buffer must fail cleanly —
    // and for Vec, without attempting a u64::MAX-element allocation.
    let mut bytes = Vec::new();
    write_varint(&mut bytes, u64::MAX);
    bytes.extend_from_slice(b"tiny");
    let mut slice = bytes.as_slice();
    assert_eq!(String::restore(&mut slice), None);
    let mut slice = bytes.as_slice();
    assert_eq!(Vec::<u8>::restore(&mut slice), None);
    let mut slice = bytes.as_slice();
    assert_eq!(Vec::<u64>::restore(&mut slice), None);
}

/// Writes one run of `(h, u64, String)` records and returns the raw file
/// contents plus a scratch dir to rewrite corrupted variants into.
fn sample_run_file() -> (helpers::Dir, Vec<u8>, tsj_mapreduce::RunMeta) {
    let dir = helpers::Dir::new("tsj-codec-test");
    let path = dir.path().join("run.spill");
    let mut w = SpillWriter::create(path.clone()).unwrap();
    let records: Vec<(u64, u64, String)> = (0..50u64)
        .map(|i| (i, i * 3, format!("value-{i}")))
        .collect();
    let meta = w.write_run(&records).unwrap();
    let (_file, path) = w.into_reader().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (dir, bytes, meta)
}

/// Reads a whole run out of `bytes` written to a fresh file; any record
/// failing to decode surfaces as the run's `Err`.
fn read_run(
    dir: &helpers::Dir,
    name: &str,
    bytes: &[u8],
    meta: tsj_mapreduce::RunMeta,
) -> Result<Vec<(u64, u64, String)>, SpillError> {
    let path = dir.path().join(name);
    std::fs::write(&path, bytes).unwrap();
    let file = std::sync::Arc::new(std::fs::File::open(&path).unwrap());
    let mut reader = RunReader::new(file, meta);
    let mut out = Vec::new();
    while let Some(rec) = reader.next::<u64, String>()? {
        out.push(rec);
    }
    Ok(out)
}

/// The structured rejection every corruption case must produce: a
/// `SpillError::Corrupt` whose message blames the bytes — never a panic,
/// never fabricated records.
fn assert_corrupt(result: Result<Vec<(u64, u64, String)>, SpillError>, what: &str) {
    let err = result.expect_err(&format!("{what} must not read cleanly"));
    assert!(
        matches!(err, SpillError::Corrupt(_)),
        "{what}: expected corruption, got {err}"
    );
    assert!(err.to_string().contains("corrupt"), "{what}: {err}");
}

#[test]
fn run_reader_roundtrips_an_intact_file() {
    let (dir, bytes, meta) = sample_run_file();
    let got = read_run(&dir, "intact.spill", &bytes, meta).unwrap();
    assert_eq!(got.len(), 50);
    assert_eq!(got[7], (7, 21, "value-7".to_owned()));
}

#[test]
fn run_reader_rejects_truncated_frame() {
    let (dir, bytes, meta) = sample_run_file();
    // Chop the file mid-record: the final frame's payload is incomplete.
    let cut = bytes.len() - 5;
    assert_corrupt(
        read_run(&dir, "truncated.spill", &bytes[..cut], meta),
        "truncated run",
    );
}

#[test]
fn run_reader_rejects_every_strict_prefix_of_a_run() {
    // Varint framing self-delimits at every level: however the file is
    // chopped — inside a length varint, a fingerprint delta, a key, or a
    // value — the reader must surface structured corruption, never panic
    // and never fabricate a record.
    let (dir, bytes, meta) = sample_run_file();
    for cut in 0..bytes.len() {
        assert_corrupt(
            read_run(&dir, "prefix.spill", &bytes[..cut], meta),
            &format!("prefix of {cut}/{} bytes", bytes.len()),
        );
    }
}

#[test]
fn run_reader_rejects_corrupt_length_prefix() {
    let (dir, mut bytes, meta) = sample_run_file();
    // Rewrite the first frame's length varint to reach far past the run
    // (a 5-byte encoding of ~2^32; the original frame is < 128 bytes, so
    // the overwritten payload bytes merely shift the corruption point).
    bytes[..5].copy_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]);
    assert_corrupt(
        read_run(&dir, "badlen.spill", &bytes, meta),
        "corrupt length prefix",
    );
}

#[test]
fn run_reader_rejects_overlong_length_varint() {
    let (dir, mut bytes, meta) = sample_run_file();
    // Ten continuation bytes followed by a terminator: syntactically an
    // 11-byte varint, which no u64 frame length produces.
    bytes[..10].copy_from_slice(&[0x80; 10]);
    assert_corrupt(
        read_run(&dir, "overlong.spill", &bytes, meta),
        "overlong length varint",
    );
}

/// Like [`sample_run_file`] but with runtime-consistent fingerprints
/// (`h == fingerprint64(key)`), making every frame's layout deterministic:
/// `[len: 1 byte][fp_delta: 1 byte = 0][key: 8 bytes][str_len: 1 byte][str]`.
fn sample_run_file_zero_delta() -> (helpers::Dir, Vec<u8>, tsj_mapreduce::RunMeta) {
    let dir = helpers::Dir::new("tsj-codec-test");
    let path = dir.path().join("run.spill");
    let mut w = SpillWriter::create(path.clone()).unwrap();
    let mut records: Vec<(u64, u64, String)> = (0..50u64)
        .map(|i| (fingerprint64(&(i * 3)), i * 3, format!("value-{i}")))
        .collect();
    records.sort_by_key(|&(h, _, _)| h);
    let meta = w.write_run(&records).unwrap();
    let (_file, path) = w.into_reader().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (dir, bytes, meta)
}

#[test]
fn run_reader_rejects_undecodable_payload() {
    let (dir, mut bytes, meta) = sample_run_file_zero_delta();
    // Keep framing intact but scribble over the first record's String
    // length so the payload no longer decodes as (u64 key, String value):
    // setting str_len to 0x7F starves the String of bytes *within* the
    // frame.
    let str_len_at = 1 + 1 + 8;
    assert!(
        bytes[str_len_at] < 0x10,
        "layout drifted: not a small str_len"
    );
    bytes[str_len_at] = 0x7F;
    let err = read_run(&dir, "badpayload.spill", &bytes, meta)
        .expect_err("undecodable payload must not read cleanly");
    assert!(err.to_string().contains("undecodable"), "{err}");
}

#[test]
fn run_reader_rejects_frame_with_trailing_bytes() {
    let (dir, mut bytes, meta) = sample_run_file_zero_delta();
    // Shrink the first record's String length by one: the payload then
    // decodes but leaves a byte unconsumed inside the frame — the length
    // and the payload disagree, which must read as corruption rather
    // than silently resynchronizing.
    let str_len_at = 1 + 1 + 8;
    bytes[str_len_at] -= 1;
    let err = read_run(&dir, "trailing.spill", &bytes, meta)
        .expect_err("frame with trailing bytes must not read cleanly");
    assert!(err.to_string().contains("trailing"), "{err}");
}

#[test]
fn fingerprint_delta_roundtrips_arbitrary_fingerprints() {
    // The wire fingerprint is keyed to `fingerprint64(key)` (delta 0 for
    // everything the runtime emits), but arbitrary fingerprints must
    // still round-trip exactly — the delta is lossless, not a checksum.
    let dir = helpers::Dir::new("tsj-codec-test");
    let mut w = SpillWriter::create(dir.path().join("fps.spill")).unwrap();
    let records: Vec<(u64, u32, String)> = vec![
        (0, 7, "zero".into()),
        (u64::MAX, 7, "max".into()),
        (fingerprint64(&7u32), 7, "native".into()),
        (0x0123_4567_89AB_CDEF, 9, "arbitrary".into()),
    ];
    let meta = w.write_run(&records).unwrap();
    let (file, _path) = w.into_reader().unwrap();
    let mut r = RunReader::new(file, meta);
    let mut got = Vec::new();
    while let Some(rec) = r.next::<u32, String>().unwrap() {
        got.push(rec);
    }
    assert_eq!(got, records);
}

#[test]
fn native_fingerprints_cost_one_wire_byte() {
    // Two identical runs, one with emitter-style fingerprints and one
    // with arbitrary ones: the native run must frame each fingerprint in
    // a single byte (delta 0), the arbitrary run pays the full varint.
    let dir = helpers::Dir::new("tsj-codec-test");
    let native: Vec<(u64, u64, String)> = (0..100u64)
        .map(|i| (fingerprint64(&i), i, "v".into()))
        .collect();
    let arbitrary: Vec<(u64, u64, String)> =
        (0..100u64).map(|i| (u64::MAX - i, i, "v".into())).collect();
    let mut wn = SpillWriter::create(dir.path().join("native.spill")).unwrap();
    let mn = wn.write_run(&native).unwrap();
    let mut wa = SpillWriter::create(dir.path().join("arbitrary.spill")).unwrap();
    let ma = wa.write_run(&arbitrary).unwrap();
    // Native: 1 (len) + 1 (delta) + 8 (key) + 2 (string) = 12 B/record.
    assert_eq!(mn.bytes, 12 * 100, "native-fingerprint framing");
    // Arbitrary deltas are full-entropy 64-bit values: 9–10 byte varints.
    assert!(
        ma.bytes > mn.bytes + 7 * 100,
        "arbitrary fps must cost more"
    );
}
