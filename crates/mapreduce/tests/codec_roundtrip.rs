//! Property tests of the `Spill` wire codec — the format every shuffle
//! byte travels in, whether through mapper spill files or the
//! multi-process exchange. Three families:
//!
//! 1. **Roundtrip**: for every codec impl (primitives, tuples, `String`,
//!    `Vec`, `Option`, nested compounds, and the job-specific exemplars
//!    `ChunkRole` / `Replica`), `restore ∘ spill` is the identity and
//!    consumes *exactly* the bytes written — a codec that under- or
//!    over-reads corrupts every frame that follows it in a run.
//! 2. **Truncation**: `restore` on any strict prefix of an encoding
//!    returns `None` (never panics, never fabricates a value).
//! 3. **Frame corruption**: a `RunReader` over a truncated or
//!    length-corrupted run file surfaces a structured
//!    [`SpillError::Corrupt`](tsj_mapreduce::SpillError) (the runtime
//!    converts that into `JobError::Spill`, failing the job while the
//!    process survives) instead of panicking, silently dropping, or
//!    inventing records.

mod helpers;

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::string::string_regex;

use tsj_mapreduce::{RunReader, Spill, SpillError, SpillWriter};
use tsj_metricjoin::Replica;
use tsj_passjoin::ChunkRole;

/// Encodes `v`, checks exact-consumption roundtrip, and returns the bytes.
fn roundtrip<T: Spill + PartialEq + std::fmt::Debug>(v: &T) -> Vec<u8> {
    let mut bytes = Vec::new();
    v.spill(&mut bytes);
    let mut slice = bytes.as_slice();
    let restored = T::restore(&mut slice);
    assert!(
        restored.as_ref() == Some(v),
        "roundtrip mismatch: {v:?} -> {restored:?}"
    );
    assert!(
        slice.is_empty(),
        "restore of {v:?} left {} unconsumed bytes",
        slice.len()
    );
    bytes
}

/// Every strict prefix of a value's encoding must fail to decode.
fn rejects_all_strict_prefixes<T: Spill + PartialEq + std::fmt::Debug>(v: &T, bytes: &[u8]) {
    for cut in 0..bytes.len() {
        let mut slice = &bytes[..cut];
        assert!(
            T::restore(&mut slice).is_none(),
            "{v:?}: prefix of {cut}/{} bytes decoded to something",
            bytes.len()
        );
    }
}

fn check<T: Spill + PartialEq + std::fmt::Debug>(v: T) {
    let bytes = roundtrip(&v);
    rejects_all_strict_prefixes(&v, &bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn integers_roundtrip(a in 0u64..=u64::MAX, bits in 0u64..=u64::MAX) {
        // (Signed values derive from raw bits: the shim's inclusive-range
        // strategy cannot span all of i64.)
        let b = bits as i64;
        check(a);
        check(b);
        check(a as u8);
        check(a as u16);
        check(a as u32);
        check(a as usize);
        check((a as u128) << 64 | b as u128);
        check(b as i8);
        check(b as i16);
        check(b as i32);
        check(b as i128);
    }

    #[test]
    fn floats_roundtrip_bit_exactly(bits32 in 0u32..=u32::MAX, bits64 in 0u64..=u64::MAX) {
        // Compare bit patterns, not values: NaN payloads must survive the
        // wire too (a reducer must see exactly what the mapper emitted).
        let f = f32::from_bits(bits32);
        let mut bytes = Vec::new();
        f.spill(&mut bytes);
        let mut slice = bytes.as_slice();
        prop_assert_eq!(f32::restore(&mut slice).map(f32::to_bits), Some(bits32));
        prop_assert!(slice.is_empty());

        let d = f64::from_bits(bits64);
        let mut bytes = Vec::new();
        d.spill(&mut bytes);
        let mut slice = bytes.as_slice();
        prop_assert_eq!(f64::restore(&mut slice).map(f64::to_bits), Some(bits64));
        prop_assert!(slice.is_empty());
    }

    #[test]
    fn chars_and_bools_roundtrip(c in 0u32..=0x10FFFF, b in 0u8..=1) {
        if let Some(c) = char::from_u32(c) {
            check(c);
        }
        check(b == 1);
        check(());
    }

    #[test]
    fn strings_roundtrip(s in string_regex("[a-zéß 0-9]{0,40}").unwrap()) {
        check(s);
    }

    #[test]
    fn vecs_and_options_roundtrip(
        v in vec(0u32..1000, 0..20),
        s in string_regex("[a-z]{0,12}").unwrap(),
        some in 0u8..=1,
    ) {
        check(v.clone());
        check(Vec::<u64>::new());
        check(if some == 1 { Some(s.clone()) } else { None });
        check(Option::<u32>::None);
        // Nested compounds: the codecs must compose.
        check(vec![Some((s.clone(), v.clone())), None]);
        check(vec![v.clone(), Vec::new()]);
    }

    #[test]
    fn tuples_roundtrip(
        a in 0u32..=u32::MAX,
        b in 0u64..=u64::MAX,
        s in string_regex("[a-z]{0,9}").unwrap(),
    ) {
        check((a,));
        check((a, b));
        check((a, s.clone(), vec![b]));
        check((a, b, a, b));
    }

    #[test]
    fn chunk_role_roundtrips(id in 0u32..=u32::MAX, seg in 0u8..=1) {
        let role = if seg == 1 { ChunkRole::Seg(id) } else { ChunkRole::Sub(id) };
        check(role);
    }

    #[test]
    fn replica_roundtrips(sid in 0u32..=u32::MAX, home in 0u32..=u32::MAX, bits in 0u64..=u64::MAX) {
        // Finite distances compare by value (PartialEq), so `check` works
        // whenever the payload is not NaN.
        let dist = f64::from_bits(bits);
        if !dist.is_nan() {
            check(Replica { sid, home, dist_to_centroid: dist });
        } else {
            let r = Replica { sid, home, dist_to_centroid: dist };
            let mut bytes = Vec::new();
            r.spill(&mut bytes);
            let mut slice = bytes.as_slice();
            let back = Replica::restore(&mut slice).expect("NaN distance must still decode");
            prop_assert!(slice.is_empty());
            prop_assert_eq!(back.sid, sid);
            prop_assert_eq!(back.home, home);
            prop_assert_eq!(back.dist_to_centroid.to_bits(), bits);
        }
    }
}

#[test]
fn corrupt_tag_bytes_are_rejected() {
    // bool: only 0 and 1 decode.
    for b in 2u8..=255 {
        let mut slice: &[u8] = &[b];
        assert_eq!(bool::restore(&mut slice), None, "bool tag {b}");
    }
    // Option: only tags 0 and 1.
    let mut slice: &[u8] = &[7, 42, 0, 0, 0];
    assert_eq!(Option::<u32>::restore(&mut slice), None);
    // ChunkRole: only tags 0 and 1.
    let mut slice: &[u8] = &[2, 1, 0, 0, 0];
    assert_eq!(ChunkRole::restore(&mut slice), None);
    // char: surrogates and beyond-max scalar values are invalid.
    for bad in [0xD800u32, 0xDFFF, 0x110000, u32::MAX] {
        let mut bytes = Vec::new();
        bad.spill(&mut bytes);
        let mut slice = bytes.as_slice();
        assert_eq!(char::restore(&mut slice), None, "char {bad:#x}");
    }
    // String: invalid UTF-8 payload.
    let mut bytes = Vec::new();
    2u32.spill(&mut bytes);
    bytes.extend_from_slice(&[0xFF, 0xFE]);
    let mut slice = bytes.as_slice();
    assert_eq!(String::restore(&mut slice), None);
}

#[test]
fn corrupt_length_prefixes_are_rejected_without_overallocation() {
    // A length prefix pointing far past the buffer must fail cleanly —
    // and for Vec, without attempting a u32::MAX-element allocation.
    let mut bytes = Vec::new();
    u32::MAX.spill(&mut bytes);
    bytes.extend_from_slice(b"tiny");
    let mut slice = bytes.as_slice();
    assert_eq!(String::restore(&mut slice), None);
    let mut slice = bytes.as_slice();
    assert_eq!(Vec::<u8>::restore(&mut slice), None);
    let mut slice = bytes.as_slice();
    assert_eq!(Vec::<u64>::restore(&mut slice), None);
}

/// Writes one run of `(h, u64, String)` records and returns the raw file
/// contents plus a scratch dir to rewrite corrupted variants into.
fn sample_run_file() -> (helpers::Dir, Vec<u8>, tsj_mapreduce::RunMeta) {
    let dir = helpers::Dir::new("tsj-codec-test");
    let path = dir.path().join("run.spill");
    let mut w = SpillWriter::create(path.clone()).unwrap();
    let records: Vec<(u64, u64, String)> = (0..50u64)
        .map(|i| (i, i * 3, format!("value-{i}")))
        .collect();
    let meta = w.write_run(&records).unwrap();
    let (_file, path) = w.into_reader().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (dir, bytes, meta)
}

/// Reads a whole run out of `bytes` written to a fresh file; any record
/// failing to decode surfaces as the run's `Err`.
fn read_run(
    dir: &helpers::Dir,
    name: &str,
    bytes: &[u8],
    meta: tsj_mapreduce::RunMeta,
) -> Result<Vec<(u64, u64, String)>, SpillError> {
    let path = dir.path().join(name);
    std::fs::write(&path, bytes).unwrap();
    let file = std::sync::Arc::new(std::fs::File::open(&path).unwrap());
    let mut reader = RunReader::new(file, meta);
    let mut out = Vec::new();
    while let Some(rec) = reader.next::<u64, String>()? {
        out.push(rec);
    }
    Ok(out)
}

/// The structured rejection every corruption case must produce: a
/// `SpillError::Corrupt` whose message blames the bytes — never a panic,
/// never fabricated records.
fn assert_corrupt(result: Result<Vec<(u64, u64, String)>, SpillError>, what: &str) {
    let err = result.expect_err(&format!("{what} must not read cleanly"));
    assert!(
        matches!(err, SpillError::Corrupt(_)),
        "{what}: expected corruption, got {err}"
    );
    assert!(err.to_string().contains("corrupt"), "{what}: {err}");
}

#[test]
fn run_reader_roundtrips_an_intact_file() {
    let (dir, bytes, meta) = sample_run_file();
    let got = read_run(&dir, "intact.spill", &bytes, meta).unwrap();
    assert_eq!(got.len(), 50);
    assert_eq!(got[7], (7, 21, "value-7".to_owned()));
}

#[test]
fn run_reader_rejects_truncated_frame() {
    let (dir, bytes, meta) = sample_run_file();
    // Chop the file mid-record: the final frame's payload is incomplete.
    let cut = bytes.len() - 5;
    assert_corrupt(
        read_run(&dir, "truncated.spill", &bytes[..cut], meta),
        "truncated run",
    );
}

#[test]
fn run_reader_rejects_corrupt_length_prefix() {
    let (dir, mut bytes, meta) = sample_run_file();
    // Rewrite the first frame's length prefix to reach far past the run.
    bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_corrupt(
        read_run(&dir, "badlen.spill", &bytes, meta),
        "corrupt length prefix",
    );
}

#[test]
fn run_reader_rejects_undecodable_payload() {
    let (dir, mut bytes, meta) = sample_run_file();
    // Keep framing intact but scribble over the first record's String
    // length so the payload no longer decodes as (u64 key, String value):
    // frame = [len][h: 8][key: 8][str_len: 4][str bytes]. Setting str_len
    // to a huge value starves the String of bytes *within* the frame.
    let str_len_at = 4 + 8 + 8;
    bytes[str_len_at..str_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = read_run(&dir, "badpayload.spill", &bytes, meta)
        .expect_err("undecodable payload must not read cleanly");
    assert!(err.to_string().contains("undecodable"), "{err}");
}
