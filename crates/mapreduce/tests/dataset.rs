//! Integration tests of the dataset job-graph API: chained stages keep
//! records inside the runtime (driver counters prove it), spill their
//! output under a bounded shuffle, and produce output identical to the
//! same jobs chained through driver `Vec`s.

use tsj_mapreduce::{
    Cluster, ClusterConfig, Count, Dedup, Emitter, OutputSink, ShuffleConfig, Transport,
};

fn cluster(threads: usize, partitions: usize, shuffle: ShuffleConfig) -> Cluster {
    Cluster::new(ClusterConfig {
        machines: 8,
        threads,
        partitions,
        ..ClusterConfig::default()
    })
    .with_shuffle_config(shuffle)
}

/// The two-stage pipeline under test (word count → count histogram),
/// chained through the runtime.
fn chained(c: &Cluster, docs: &[String]) -> (Vec<(u64, u64)>, tsj_mapreduce::SimReport) {
    let (mut out, report) = c
        .input(docs)
        .map_reduce_combined(
            "wordcount",
            |doc: &String, e: &mut Emitter<String, u64>| {
                for w in doc.split_whitespace() {
                    e.emit(w.to_owned(), 1);
                }
            },
            &Count,
            |w: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
                out.emit((w.clone(), counts.iter().sum()));
            },
        )
        .unwrap()
        .map_reduce_combined(
            "histogram",
            |&(_, n): &(String, u64), e: &mut Emitter<u64, u64>| e.emit(n, 1),
            &Count,
            |&n: &u64, ones: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((n, ones.iter().sum()));
            },
        )
        .unwrap()
        .collect();
    out.sort_unstable();
    (out, report)
}

/// The same two jobs chained through a driver `Vec` (the classic `run*`
/// wrappers) — the reference the dataset graph must match.
fn collected(c: &Cluster, docs: &[String]) -> Vec<(u64, u64)> {
    let counts = c
        .run_combined(
            "wordcount",
            docs,
            |doc: &String, e: &mut Emitter<String, u64>| {
                for w in doc.split_whitespace() {
                    e.emit(w.to_owned(), 1);
                }
            },
            &Count,
            |w: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
                out.emit((w.clone(), counts.iter().sum()));
            },
        )
        .unwrap();
    let mut out = c
        .run_combined(
            "histogram",
            &counts.output,
            |&(_, n): &(String, u64), e: &mut Emitter<u64, u64>| e.emit(n, 1),
            &Count,
            |&n: &u64, ones: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((n, ones.iter().sum()));
            },
        )
        .unwrap()
        .output;
    out.sort_unstable();
    out
}

fn docs(n: usize) -> Vec<String> {
    // Deterministic word soup with repeated and unique words.
    (0..n)
        .map(|i| format!("w{} w{} w{} common shared{}", i % 7, i % 13, i, i % 3))
        .collect()
}

#[test]
fn chained_output_matches_collected_chaining() {
    let input = docs(200);
    for shuffle in [
        ShuffleConfig::unbounded(),
        ShuffleConfig::bounded(16, 24),
        ShuffleConfig::unbounded().with_transport(Transport::MultiProcess),
        ShuffleConfig::bounded(8, 8).with_transport(Transport::MultiProcess),
    ] {
        for threads in [1usize, 4] {
            for partitions in [0usize, 3, 64] {
                let c = cluster(threads, partitions, shuffle.clone());
                let (got, _) = chained(&c, &input);
                assert_eq!(
                    got,
                    collected(&c, &input),
                    "threads={threads} partitions={partitions} shuffle={shuffle:?}"
                );
            }
        }
    }
}

#[test]
fn interior_stage_crosses_no_driver_records() {
    let input = docs(100);
    for shuffle in [ShuffleConfig::unbounded(), ShuffleConfig::bounded(8, 8)] {
        let c = cluster(4, 0, shuffle);
        let (out, report) = chained(&c, &input);
        assert!(!out.is_empty());
        let jobs = report.jobs();
        assert_eq!(jobs.len(), 2);
        // Stage 1 reads the driver input, hands nothing back.
        assert_eq!(jobs[0].name, "wordcount");
        assert_eq!(jobs[0].driver_in_records, input.len() as u64);
        assert_eq!(jobs[0].driver_out_records, 0, "interior stage leaked");
        // Stage 2 reads runtime partitions, and only its collect crosses.
        assert_eq!(jobs[1].name, "histogram");
        assert_eq!(jobs[1].driver_in_records, 0);
        assert_eq!(jobs[1].driver_out_records, out.len() as u64);
        assert_eq!(jobs[1].input_records, jobs[0].output_records);
        assert_eq!(
            report.total_driver_records(),
            input.len() as u64 + out.len() as u64
        );
    }
}

#[test]
fn bounded_stage_output_is_spilled_not_buffered() {
    // Under a spill threshold the interior stage's output partitions are
    // sorted-run files; the chain still produces identical output and the
    // mapper peak stays under the cap on every job.
    let input = docs(300);
    let threshold = 16;
    let c = cluster(4, 5, ShuffleConfig::bounded(16, threshold));
    let (got, report) = chained(&c, &input);
    let reference = collected(&cluster(4, 5, ShuffleConfig::unbounded()), &input);
    assert_eq!(got, reference);
    for j in report.jobs() {
        assert!(
            j.peak_buffered_records <= threshold as u64,
            "{}: peak {} over threshold",
            j.name,
            j.peak_buffered_records
        );
        assert_eq!(
            j.driver_out_records,
            if j.name == "histogram" {
                j.output_records
            } else {
                0
            }
        );
    }
}

#[test]
fn union_concatenates_partitions_and_reports() {
    let c = cluster(4, 0, ShuffleConfig::unbounded());
    let stage = |name: &str, lo: u64, hi: u64| {
        let ids: Vec<u64> = (lo..hi).collect();
        c.input(&ids)
            .map_reduce(
                name,
                |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 10, n),
                |&k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                    out.emit((k, vs.iter().sum()));
                },
            )
            .unwrap()
    };
    let left = stage("left", 0, 100);
    let right = stage("right", 100, 200);
    assert_eq!(left.records(), 10);
    let unioned = left.union(right);
    assert_eq!(unioned.records(), 20);
    assert_eq!(unioned.report().jobs().len(), 2);

    // A stage over the union sees both sides' records.
    let (mut totals, report) = unioned
        .map_reduce(
            "sum",
            |&(k, v): &(u64, u64), e: &mut Emitter<u64, u64>| e.emit(k, v),
            |&k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((k, vs.iter().sum()));
            },
        )
        .unwrap()
        .collect();
    totals.sort_unstable();
    let expect: Vec<(u64, u64)> = (0..10u64)
        .map(|k| (k, (0..200u64).filter(|n| n % 10 == k).sum()))
        .collect();
    assert_eq!(totals, expect);
    assert_eq!(report.jobs().len(), 3);
    assert_eq!(report.jobs()[2].driver_in_records, 0);
    assert_eq!(report.jobs()[2].driver_out_records, 10);
}

#[test]
fn for_each_output_streams_the_same_records_as_collect() {
    let input = docs(120);
    let c = cluster(2, 7, ShuffleConfig::bounded(8, 8));
    let build = || {
        c.input(&input)
            .map_reduce(
                "tokens",
                |doc: &String, e: &mut Emitter<String, u64>| {
                    for w in doc.split_whitespace() {
                        e.emit(w.to_owned(), 1);
                    }
                },
                |w: &String, hits: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
                    out.emit((w.clone(), hits.len() as u64));
                },
            )
            .unwrap()
    };
    let (collected, r1) = build().collect();
    let mut streamed = Vec::new();
    let r2 = build().for_each_output(|rec| streamed.push(rec));
    assert_eq!(collected, streamed);
    assert_eq!(
        r1.jobs()[0].driver_out_records,
        r2.jobs()[0].driver_out_records
    );
    assert_eq!(r1.jobs()[0].driver_out_records, collected.len() as u64);
}

#[test]
fn collecting_a_fresh_input_roundtrips() {
    let c = cluster(2, 0, ShuffleConfig::unbounded());
    let ids: Vec<u32> = (0..50).collect();
    let ds = c.input(&ids);
    assert_eq!(ds.records(), 50);
    let (out, report) = ds.collect();
    assert_eq!(out, ids);
    assert!(report.jobs().is_empty());
}

#[test]
fn empty_input_chains_cleanly() {
    let c = cluster(4, 0, ShuffleConfig::bounded(4, 4));
    let empty: Vec<u64> = Vec::new();
    let (out, report) = c
        .input(&empty)
        .map_reduce(
            "a",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n, n),
            |&k: &u64, _vs: Vec<u64>, out: &mut OutputSink<u64>| out.emit(k),
        )
        .unwrap()
        .map_reduce(
            "b",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n, n),
            |&k: &u64, _vs: Vec<u64>, out: &mut OutputSink<u64>| out.emit(k),
        )
        .unwrap()
        .collect();
    assert!(out.is_empty());
    assert_eq!(report.jobs().len(), 2);
    assert_eq!(report.total_driver_records(), 0);
}

#[test]
fn dedup_combiner_composes_with_chaining() {
    // A Dedup-combined interior stage (the TSJ candidate shape): pairs
    // keyed on themselves, deduplicated map-side and reduce-side.
    let c = cluster(4, 3, ShuffleConfig::bounded(8, 8));
    let ids: Vec<u32> = (0..60).collect();
    let (mut out, report) = c
        .input(&ids)
        .map_reduce_combined(
            "pairs",
            |&n: &u32, e: &mut Emitter<(u32, u32), ()>| {
                // Every input emits the same few pairs — heavy duplication.
                e.emit((n % 5, n % 5 + 1), ());
                e.emit((n % 5, n % 5 + 1), ());
            },
            &Dedup,
            |&pair: &(u32, u32), _hits: Vec<()>, out: &mut OutputSink<(u32, u32)>| out.emit(pair),
        )
        .unwrap()
        .map_reduce(
            "fanless",
            |&(a, b): &(u32, u32), e: &mut Emitter<u32, u32>| e.emit(a, b),
            |&a: &u32, mut bs: Vec<u32>, out: &mut OutputSink<(u32, u32)>| {
                bs.sort_unstable();
                bs.dedup();
                for b in bs {
                    out.emit((a, b));
                }
            },
        )
        .unwrap()
        .collect();
    out.sort_unstable();
    assert_eq!(out, (0..5u32).map(|a| (a, a + 1)).collect::<Vec<_>>());
    assert_eq!(report.jobs()[0].driver_out_records, 0);
    assert_eq!(report.jobs()[0].output_records, 5);
}

#[test]
fn union_of_fresh_inputs_books_driver_in_on_next_stage() {
    // Regression: a union folding driver inputs into partitions must not
    // lose their inbound crossing — the next stage books them all.
    let c = cluster(2, 0, ShuffleConfig::unbounded());
    let a: Vec<u64> = (0..30).collect();
    let b: Vec<u64> = (30..75).collect();
    let (out, report) = c
        .input(&a)
        .union(c.input(&b))
        .map_reduce(
            "first",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 3, n),
            |&k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((k, vs.iter().sum()));
            },
        )
        .unwrap()
        .collect();
    assert_eq!(out.len(), 3);
    assert_eq!(report.jobs().len(), 1);
    assert_eq!(report.jobs()[0].driver_in_records, 75);
    assert_eq!(report.jobs()[0].input_records, 75);
    assert_eq!(report.jobs()[0].driver_out_records, 3);
}
