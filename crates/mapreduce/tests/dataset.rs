//! Integration tests of the lazy dataset job-graph API: recorded stages
//! execute at a terminal with cross-stage overlap, keep records inside
//! the runtime (driver counters prove it), spill their output under a
//! bounded shuffle, and produce output identical both to eager
//! stage-at-a-time execution and to the same jobs chained through driver
//! `Vec`s — while failures surface as structured `JobError`s and leave no
//! temp files behind.

use std::path::PathBuf;

mod helpers;

use tsj_mapreduce::{
    Cluster, ClusterConfig, Count, DatasetMode, Dedup, Emitter, JobError, OutputSink,
    ShuffleConfig, Transport,
};

fn cluster(threads: usize, partitions: usize, shuffle: ShuffleConfig) -> Cluster {
    Cluster::new(ClusterConfig {
        machines: 8,
        threads,
        partitions,
        ..ClusterConfig::default()
    })
    .with_shuffle_config(shuffle)
    .with_dataset_mode(DatasetMode::Lazy)
}

/// The two-stage pipeline under test (word count → count histogram),
/// chained through the runtime.
fn chained(c: &Cluster, docs: &[String]) -> (Vec<(u64, u64)>, tsj_mapreduce::SimReport) {
    let (mut out, report) = c
        .input(docs)
        .map_reduce_combined(
            "wordcount",
            |doc: &String, e: &mut Emitter<String, u64>| {
                for w in doc.split_whitespace() {
                    e.emit(w.to_owned(), 1);
                }
            },
            &Count,
            |w: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
                out.emit((w.clone(), counts.iter().sum()));
            },
        )
        .unwrap()
        .map_reduce_combined(
            "histogram",
            |&(_, n): &(String, u64), e: &mut Emitter<u64, u64>| e.emit(n, 1),
            &Count,
            |&n: &u64, ones: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((n, ones.iter().sum()));
            },
        )
        .unwrap()
        .collect()
        .unwrap();
    out.sort_unstable();
    (out, report)
}

/// The same two jobs chained through a driver `Vec` (the classic `run*`
/// wrappers) — the reference the dataset graph must match.
fn collected(c: &Cluster, docs: &[String]) -> Vec<(u64, u64)> {
    let counts = c
        .run_combined(
            "wordcount",
            docs,
            |doc: &String, e: &mut Emitter<String, u64>| {
                for w in doc.split_whitespace() {
                    e.emit(w.to_owned(), 1);
                }
            },
            &Count,
            |w: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
                out.emit((w.clone(), counts.iter().sum()));
            },
        )
        .unwrap();
    let mut out = c
        .run_combined(
            "histogram",
            &counts.output,
            |&(_, n): &(String, u64), e: &mut Emitter<u64, u64>| e.emit(n, 1),
            &Count,
            |&n: &u64, ones: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((n, ones.iter().sum()));
            },
        )
        .unwrap()
        .output;
    out.sort_unstable();
    out
}

fn docs(n: usize) -> Vec<String> {
    // Deterministic word soup with repeated and unique words.
    (0..n)
        .map(|i| format!("w{} w{} w{} common shared{}", i % 7, i % 13, i, i % 3))
        .collect()
}

#[test]
fn lazy_matches_eager_and_collected_chaining() {
    // The acceptance triangle at the runtime level: the lazy DAG
    // scheduler (cross-stage overlap), eager stage-at-a-time execution,
    // and driver-`Vec` chaining all produce byte-identical output across
    // the shuffle matrix.
    let input = docs(200);
    for shuffle in [
        ShuffleConfig::unbounded(),
        ShuffleConfig::bounded(16, 24),
        ShuffleConfig::unbounded().with_transport(Transport::MultiProcess),
        ShuffleConfig::bounded(8, 8).with_transport(Transport::MultiProcess),
    ] {
        for threads in [1usize, 4] {
            for partitions in [0usize, 3, 64] {
                let c = cluster(threads, partitions, shuffle.clone());
                let (lazy, _) = chained(&c, &input);
                let eager_cluster = c.clone().with_dataset_mode(DatasetMode::Eager);
                let (eager, _) = chained(&eager_cluster, &input);
                let reference = collected(&c, &input);
                assert_eq!(
                    lazy, reference,
                    "lazy vs collected: threads={threads} partitions={partitions} shuffle={shuffle:?}"
                );
                assert_eq!(
                    eager, reference,
                    "eager vs collected: threads={threads} partitions={partitions} shuffle={shuffle:?}"
                );
            }
        }
    }
}

#[test]
fn interior_stage_crosses_no_driver_records() {
    let input = docs(100);
    for shuffle in [ShuffleConfig::unbounded(), ShuffleConfig::bounded(8, 8)] {
        let c = cluster(4, 0, shuffle);
        let (out, report) = chained(&c, &input);
        assert!(!out.is_empty());
        let jobs = report.jobs();
        assert_eq!(jobs.len(), 2);
        // Stage 1 reads the driver input, hands nothing back.
        assert_eq!(jobs[0].name, "wordcount");
        assert_eq!(jobs[0].driver_in_records, input.len() as u64);
        assert_eq!(jobs[0].driver_out_records, 0, "interior stage leaked");
        // Stage 2 reads runtime partitions, and only its collect crosses.
        assert_eq!(jobs[1].name, "histogram");
        assert_eq!(jobs[1].driver_in_records, 0);
        assert_eq!(jobs[1].driver_out_records, out.len() as u64);
        assert_eq!(jobs[1].input_records, jobs[0].output_records);
        assert_eq!(
            report.total_driver_records(),
            input.len() as u64 + out.len() as u64
        );
    }
}

#[test]
fn bounded_stage_output_is_spilled_not_buffered() {
    // Under a spill threshold the interior stage's output partitions are
    // sorted-run files; the chain still produces identical output and the
    // mapper peak stays under the cap on every job.
    let input = docs(300);
    let threshold = 16;
    let c = cluster(4, 5, ShuffleConfig::bounded(16, threshold));
    let (got, report) = chained(&c, &input);
    let reference = collected(&cluster(4, 5, ShuffleConfig::unbounded()), &input);
    assert_eq!(got, reference);
    for j in report.jobs() {
        assert!(
            j.peak_buffered_records <= threshold as u64,
            "{}: peak {} over threshold",
            j.name,
            j.peak_buffered_records
        );
        assert_eq!(
            j.driver_out_records,
            if j.name == "histogram" {
                j.output_records
            } else {
                0
            }
        );
    }
}

#[test]
fn union_concatenates_partitions_and_reports() {
    let c = cluster(4, 0, ShuffleConfig::unbounded());
    let stage = |name: &str, lo: u64, hi: u64| {
        let ids: Vec<u64> = (lo..hi).collect();
        c.input(&ids)
            .map_reduce(
                name,
                |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 10, n),
                |&k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                    out.emit((k, vs.iter().sum()));
                },
            )
            .unwrap()
    };
    let mut left = stage("left", 0, 100);
    let right = stage("right", 100, 200);
    // records() forces the pending stage — the handle then reports it.
    assert_eq!(left.records().unwrap(), 10);
    assert_eq!(left.report().jobs().len(), 1);
    let mut unioned = left.union(right);
    assert_eq!(unioned.records().unwrap(), 20);
    assert_eq!(unioned.report().jobs().len(), 2);

    // A stage over the union sees both sides' records.
    let (mut totals, report) = unioned
        .map_reduce(
            "sum",
            |&(k, v): &(u64, u64), e: &mut Emitter<u64, u64>| e.emit(k, v),
            |&k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((k, vs.iter().sum()));
            },
        )
        .unwrap()
        .collect()
        .unwrap();
    totals.sort_unstable();
    let expect: Vec<(u64, u64)> = (0..10u64)
        .map(|k| (k, (0..200u64).filter(|n| n % 10 == k).sum()))
        .collect();
    assert_eq!(totals, expect);
    assert_eq!(report.jobs().len(), 3);
    assert_eq!(report.jobs()[2].driver_in_records, 0);
    assert_eq!(report.jobs()[2].driver_out_records, 10);
}

#[test]
fn fully_lazy_union_executes_at_the_terminal() {
    // Same graph as above but with *nothing* forced before collect: both
    // producers and the consumer stage run in one scheduled execution
    // (left's and right's reduce waves overlap sum's map wave).
    let c = cluster(4, 0, ShuffleConfig::unbounded());
    let ids_a: Vec<u64> = (0..100).collect();
    let ids_b: Vec<u64> = (100..200).collect();
    let stage = |ids: &[u64], name: &str| {
        c.input(ids)
            .map_reduce(
                name,
                |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 10, n),
                |&k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                    out.emit((k, vs.iter().sum()));
                },
            )
            .unwrap()
    };
    let (mut totals, report) = stage(&ids_a, "left")
        .union(stage(&ids_b, "right"))
        .map_reduce(
            "sum",
            |&(k, v): &(u64, u64), e: &mut Emitter<u64, u64>| e.emit(k, v),
            |&k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((k, vs.iter().sum()));
            },
        )
        .unwrap()
        .collect()
        .unwrap();
    totals.sort_unstable();
    let expect: Vec<(u64, u64)> = (0..10u64)
        .map(|k| (k, (0..200u64).filter(|n| n % 10 == k).sum()))
        .collect();
    assert_eq!(totals, expect);
    // Report order is execution (build) order: left, right, sum.
    let names: Vec<&str> = report.jobs().iter().map(|j| j.name.as_str()).collect();
    assert_eq!(names, vec!["left", "right", "sum"]);
    assert_eq!(report.jobs()[2].driver_in_records, 0);
}

#[test]
fn repartition_rebalances_without_changing_the_record_multiset() {
    let c = cluster(4, 0, ShuffleConfig::unbounded());
    let ids: Vec<u64> = (0..500).collect();
    let build = || {
        c.input(&ids)
            .map_reduce(
                "skewed",
                // Everything lands on one key → one fat output partition.
                |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(7, n),
                |_k: &u64, vs: Vec<u64>, out: &mut OutputSink<u64>| {
                    for v in vs {
                        out.emit(v);
                    }
                },
            )
            .unwrap()
    };
    let mut skewed = build();
    assert_eq!(skewed.num_partitions().unwrap(), 1, "skew: one partition");

    let mut repartitioned = build().repartition(6).unwrap();
    assert!(
        repartitioned.num_partitions().unwrap() > 1,
        "repartition must spread the fat partition"
    );
    assert_eq!(repartitioned.records().unwrap(), 500);

    // Record multiset is unchanged (placement is, so compare sorted).
    let (mut a, _) = skewed.collect().unwrap();
    let (mut b, report) = repartitioned.collect().unwrap();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    let repart_job = &report.jobs()[1];
    assert!(repart_job.name.starts_with("repartition"));
    assert_eq!(repart_job.input_records, 500);
    assert_eq!(repart_job.output_records, 500);
    assert_eq!(repart_job.driver_in_records, 0, "repartition is interior");
    assert_eq!(repart_job.driver_out_records, 500, "collected terminal");
}

#[test]
fn repartition_is_invariant_for_downstream_stages() {
    // Inserting a repartition between two stages must not change the
    // downstream stage's (sorted) output — across shuffle configs.
    let input = docs(150);
    for shuffle in [
        ShuffleConfig::unbounded(),
        ShuffleConfig::bounded(8, 8).with_transport(Transport::MultiProcess),
    ] {
        let c = cluster(4, 3, shuffle);
        let run = |repartition: Option<usize>| {
            let ds = c
                .input(&input)
                .map_reduce_combined(
                    "wordcount",
                    |doc: &String, e: &mut Emitter<String, u64>| {
                        for w in doc.split_whitespace() {
                            e.emit(w.to_owned(), 1);
                        }
                    },
                    &Count,
                    |w: &String, counts: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
                        out.emit((w.clone(), counts.iter().sum()));
                    },
                )
                .unwrap();
            let ds = match repartition {
                Some(n) => ds.repartition(n).unwrap(),
                None => ds,
            };
            let (mut out, _) = ds
                .map_reduce_combined(
                    "histogram",
                    |&(_, n): &(String, u64), e: &mut Emitter<u64, u64>| e.emit(n, 1),
                    &Count,
                    |&n: &u64, ones: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                        out.emit((n, ones.iter().sum()));
                    },
                )
                .unwrap()
                .collect()
                .unwrap();
            out.sort_unstable();
            out
        };
        let plain = run(None);
        for n in [1usize, 4, 32] {
            assert_eq!(run(Some(n)), plain, "repartition({n})");
        }
    }
}

#[test]
fn for_each_output_streams_the_same_records_as_collect() {
    let input = docs(120);
    let c = cluster(2, 7, ShuffleConfig::bounded(8, 8));
    let build = || {
        c.input(&input)
            .map_reduce(
                "tokens",
                |doc: &String, e: &mut Emitter<String, u64>| {
                    for w in doc.split_whitespace() {
                        e.emit(w.to_owned(), 1);
                    }
                },
                |w: &String, hits: Vec<u64>, out: &mut OutputSink<(String, u64)>| {
                    out.emit((w.clone(), hits.len() as u64));
                },
            )
            .unwrap()
    };
    let (collected, r1) = build().collect().unwrap();
    let mut streamed = Vec::new();
    let r2 = build().for_each_output(|rec| streamed.push(rec)).unwrap();
    assert_eq!(collected, streamed);
    assert_eq!(
        r1.jobs()[0].driver_out_records,
        r2.jobs()[0].driver_out_records
    );
    assert_eq!(r1.jobs()[0].driver_out_records, collected.len() as u64);
}

#[test]
fn collecting_a_fresh_input_roundtrips() {
    let c = cluster(2, 0, ShuffleConfig::unbounded());
    let ids: Vec<u32> = (0..50).collect();
    let mut ds = c.input(&ids);
    assert_eq!(ds.records().unwrap(), 50);
    let (out, report) = ds.collect().unwrap();
    assert_eq!(out, ids);
    assert!(report.jobs().is_empty());
}

#[test]
fn empty_input_chains_cleanly() {
    let c = cluster(4, 0, ShuffleConfig::bounded(4, 4));
    let empty: Vec<u64> = Vec::new();
    let (out, report) = c
        .input(&empty)
        .map_reduce(
            "a",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n, n),
            |&k: &u64, _vs: Vec<u64>, out: &mut OutputSink<u64>| out.emit(k),
        )
        .unwrap()
        .map_reduce(
            "b",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n, n),
            |&k: &u64, _vs: Vec<u64>, out: &mut OutputSink<u64>| out.emit(k),
        )
        .unwrap()
        .collect()
        .unwrap();
    assert!(out.is_empty());
    assert_eq!(report.jobs().len(), 2);
    assert_eq!(report.total_driver_records(), 0);
}

#[test]
fn dedup_combiner_composes_with_chaining() {
    // A Dedup-combined interior stage (the TSJ candidate shape): pairs
    // keyed on themselves, deduplicated map-side and reduce-side.
    let c = cluster(4, 3, ShuffleConfig::bounded(8, 8));
    let ids: Vec<u32> = (0..60).collect();
    let (mut out, report) = c
        .input(&ids)
        .map_reduce_combined(
            "pairs",
            |&n: &u32, e: &mut Emitter<(u32, u32), ()>| {
                // Every input emits the same few pairs — heavy duplication.
                e.emit((n % 5, n % 5 + 1), ());
                e.emit((n % 5, n % 5 + 1), ());
            },
            &Dedup,
            |&pair: &(u32, u32), _hits: Vec<()>, out: &mut OutputSink<(u32, u32)>| out.emit(pair),
        )
        .unwrap()
        .map_reduce(
            "fanless",
            |&(a, b): &(u32, u32), e: &mut Emitter<u32, u32>| e.emit(a, b),
            |&a: &u32, mut bs: Vec<u32>, out: &mut OutputSink<(u32, u32)>| {
                bs.sort_unstable();
                bs.dedup();
                for b in bs {
                    out.emit((a, b));
                }
            },
        )
        .unwrap()
        .collect()
        .unwrap();
    out.sort_unstable();
    assert_eq!(out, (0..5u32).map(|a| (a, a + 1)).collect::<Vec<_>>());
    assert_eq!(report.jobs()[0].driver_out_records, 0);
    assert_eq!(report.jobs()[0].output_records, 5);
}

#[test]
fn union_of_fresh_inputs_books_driver_in_on_next_stage() {
    // Regression: a union folding driver inputs into partitions must not
    // lose their inbound crossing — the next stage books them all.
    let c = cluster(2, 0, ShuffleConfig::unbounded());
    let a: Vec<u64> = (0..30).collect();
    let b: Vec<u64> = (30..75).collect();
    let (out, report) = c
        .input(&a)
        .union(c.input(&b))
        .map_reduce(
            "first",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 3, n),
            |&k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((k, vs.iter().sum()));
            },
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 3);
    assert_eq!(report.jobs().len(), 1);
    assert_eq!(report.jobs()[0].driver_in_records, 75);
    assert_eq!(report.jobs()[0].input_records, 75);
    assert_eq!(report.jobs()[0].driver_out_records, 3);
}

// ---- Failure paths ------------------------------------------------------

/// A spill/stage/exchange base directory that cannot be used: the path
/// runs *through a file*, so `create_dir_all` fails with a real I/O error
/// even when the test runs as root (read-only permission bits would not).
fn unusable_dir_base() -> (helpers::Dir, PathBuf) {
    let dir = helpers::Dir::new("tsj-dataset-errors");
    let blocker = dir.path().join("not-a-dir");
    std::fs::write(&blocker, b"file in the way").unwrap();
    (dir, blocker)
}

#[test]
fn stage_output_sink_failure_surfaces_as_spill_error() {
    // Thresholds high enough that mappers never spill, so the first I/O
    // against the unusable base is the *stage-output sink* creating its
    // run file — which must fail the job with JobError::Spill, not kill
    // the process with a panic.
    let (_guard, blocker) = unusable_dir_base();
    let shuffle = ShuffleConfig {
        combine_threshold: Some(1_000_000),
        spill_threshold: Some(1_000_000),
        spill_dir: Some(blocker),
        ..ShuffleConfig::default()
    };
    let c = cluster(4, 3, shuffle);
    let ids: Vec<u64> = (0..100).collect();
    let err = c
        .input(&ids)
        .map_reduce(
            "sink-fails",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 5, n),
            |&k: &u64, _vs: Vec<u64>, out: &mut OutputSink<u64>| out.emit(k),
        )
        .unwrap()
        .map_reduce(
            "never-runs",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n, n),
            |&k: &u64, _vs: Vec<u64>, out: &mut OutputSink<u64>| out.emit(k),
        )
        .unwrap()
        .collect()
        .expect_err("unwritable stage-output dir must fail the job");
    assert!(
        matches!(err, JobError::Spill { .. }),
        "expected JobError::Spill, got {err:?}"
    );
    assert!(err.to_string().contains("spill I/O failed"), "{err}");
}

#[test]
fn worker_panic_in_a_lazy_graph_surfaces_once_and_skips_downstream() {
    let c = cluster(4, 0, ShuffleConfig::unbounded());
    let ids: Vec<u64> = (0..50).collect();
    let err = c
        .input(&ids)
        .map_reduce(
            "poisoned",
            |&n: &u64, e: &mut Emitter<u64, u64>| {
                if n == 33 {
                    panic!("poison record {n}");
                }
                e.emit(n, n);
            },
            |&k: &u64, _vs: Vec<u64>, out: &mut OutputSink<u64>| out.emit(k),
        )
        .unwrap()
        .map_reduce(
            "downstream",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n, n),
            |&k: &u64, _vs: Vec<u64>, out: &mut OutputSink<u64>| out.emit(k),
        )
        .unwrap()
        .collect()
        .expect_err("upstream panic must fail the graph");
    match err {
        JobError::WorkerPanic { phase, message } => {
            assert_eq!(phase, "map");
            assert!(message.contains("poison record"), "{message}");
        }
        other => panic!("expected the upstream map panic, got {other:?}"),
    }
}

#[test]
fn failing_jobs_leave_the_spill_dir_empty() {
    // Regression for the temp-dir leak class: whatever wave a job dies in
    // — map panic, reduce panic, or a lazy graph failing mid-chain —
    // every per-job spill/exchange/stage-output directory is removed by
    // its RAII guard.
    let base = helpers::Dir::new("tsj-spill-cleanup");
    let shuffle = ShuffleConfig {
        combine_threshold: Some(4),
        spill_threshold: Some(4),
        spill_dir: Some(base.path().to_path_buf()),
        ..ShuffleConfig::default()
    }
    .with_transport(Transport::MultiProcess);
    let c = cluster(4, 3, shuffle);
    let ids: Vec<u64> = (0..200).collect();

    // Map-wave failure.
    let err = c
        .run(
            "map-dies",
            &ids,
            |&n: &u64, e: &mut Emitter<u64, u64>| {
                if n == 150 {
                    panic!("map poison");
                }
                e.emit(n % 7, n);
            },
            |&k: &u64, _vs: Vec<u64>, out: &mut OutputSink<u64>| out.emit(k),
        )
        .expect_err("map panic must fail the job");
    assert!(matches!(err, JobError::WorkerPanic { phase: "map", .. }));

    // Reduce-wave failure (spilled runs + exchange files exist by then).
    let err = c
        .run(
            "reduce-dies",
            &ids,
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 7, n),
            |&k: &u64, _vs: Vec<u64>, _out: &mut OutputSink<u64>| {
                if k == 3 {
                    panic!("reduce poison");
                }
            },
        )
        .expect_err("reduce panic must fail the job");
    assert!(matches!(
        err,
        JobError::WorkerPanic {
            phase: "reduce",
            ..
        }
    ));

    // Lazy chain failing in its second stage.
    let err = c
        .input(&ids)
        .map_reduce(
            "ok-stage",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 7, n),
            |&k: &u64, vs: Vec<u64>, out: &mut OutputSink<u64>| {
                out.emit(k + vs.len() as u64);
            },
        )
        .unwrap()
        .map_reduce(
            "chain-dies",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n, n),
            |_k: &u64, _vs: Vec<u64>, _out: &mut OutputSink<u64>| panic!("chain poison"),
        )
        .unwrap()
        .collect()
        .expect_err("chained reduce panic must fail the graph");
    assert!(matches!(err, JobError::WorkerPanic { .. }));

    let leftovers: Vec<_> = std::fs::read_dir(base.path())
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(
        leftovers.is_empty(),
        "failing jobs leaked temp dirs: {leftovers:?}"
    );
}

#[test]
fn take_report_forces_execution_and_empties_the_handle() {
    let c = cluster(2, 0, ShuffleConfig::unbounded());
    let ids: Vec<u64> = (0..40).collect();
    let mut ds = c
        .input(&ids)
        .map_reduce(
            "stage",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 4, n),
            |&k: &u64, vs: Vec<u64>, out: &mut OutputSink<(u64, u64)>| {
                out.emit((k, vs.iter().sum()));
            },
        )
        .unwrap();
    assert_eq!(ds.report().jobs().len(), 0, "nothing executed yet");
    let report = ds.take_report().unwrap();
    assert_eq!(report.jobs().len(), 1, "take_report executed the stage");
    assert_eq!(ds.report().jobs().len(), 0, "handle's report emptied");
    // Collecting afterwards still yields the records; the crossing has
    // nowhere to book (the stats left with the report) — documented.
    let (out, rest) = ds.collect().unwrap();
    assert_eq!(out.len(), 4);
    assert!(rest.jobs().is_empty());
}

#[test]
fn collecting_a_union_of_fresh_inputs_concatenates() {
    // Regression: a terminal on a union with no pending stages must
    // materialize it (left then right), not panic — in both modes.
    for mode in [DatasetMode::Lazy, DatasetMode::Eager] {
        let c = cluster(2, 0, ShuffleConfig::unbounded()).with_dataset_mode(mode);
        let a: Vec<u32> = (0..20).collect();
        let b: Vec<u32> = (20..30).collect();
        let (out, report) = c.input(&a).union(c.input(&b)).collect().unwrap();
        assert_eq!(out, (0..30).collect::<Vec<u32>>(), "{mode:?}");
        assert!(report.jobs().is_empty());
        // And with one executed side: still a clean concatenation.
        let mut left = c
            .input(&a)
            .map_reduce(
                "left",
                |&n: &u32, e: &mut Emitter<u32, u32>| e.emit(n % 3, n),
                |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
            )
            .unwrap();
        assert_eq!(left.records().unwrap(), 3);
        let mut unioned = left.union(c.input(&b));
        assert_eq!(unioned.records().unwrap(), 13, "{mode:?}");
        assert!(unioned.num_partitions().unwrap() > 0);
        let (out, _) = unioned.collect().unwrap();
        assert_eq!(out.len(), 13);
    }
}

#[test]
fn failed_handles_stay_failed_instead_of_turning_empty() {
    // Regression: after a terminal fails, the handle is poisoned — later
    // terminals re-surface the error rather than succeeding with an
    // empty result.
    let (_guard, blocker) = unusable_dir_base();
    let shuffle = ShuffleConfig {
        combine_threshold: Some(1_000_000),
        spill_threshold: Some(1_000_000),
        spill_dir: Some(blocker),
        ..ShuffleConfig::default()
    };
    let c = cluster(2, 3, shuffle);
    let ids: Vec<u64> = (0..50).collect();
    let mut ds = c
        .input(&ids)
        .map_reduce(
            "sink-fails",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n % 5, n),
            |&k: &u64, _vs: Vec<u64>, out: &mut OutputSink<u64>| out.emit(k),
        )
        .unwrap()
        .map_reduce(
            "downstream",
            |&n: &u64, e: &mut Emitter<u64, u64>| e.emit(n, n),
            |&k: &u64, _vs: Vec<u64>, out: &mut OutputSink<u64>| out.emit(k),
        )
        .unwrap();
    let first = ds.records().expect_err("unusable spill dir must fail");
    assert!(matches!(first, JobError::Spill { .. }), "{first:?}");
    let second = ds
        .collect()
        .expect_err("a failed handle must not silently yield empty output");
    assert_eq!(first, second, "the original error sticks to the handle");
}
