//! Shared integration-test helpers (not a test binary: only top-level
//! files under `tests/` are compiled as suites).

use std::path::{Path, PathBuf};

/// Minimal self-cleaning temp dir (no tempfile crate in this container).
pub struct Dir(PathBuf);

impl Dir {
    pub fn new(prefix: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Dir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
