//! Integration tests of the plan-time DAG analyzer: each diagnostic fires
//! on a minimal synthetic `Dataset` plan, warn mode executes and surfaces
//! the findings through `SimReport`, and deny mode fails the job *before*
//! execution with a structured [`JobError::Plan`].

use tsj_mapreduce::{
    Cluster, ClusterConfig, Dedup, Emitter, JobError, OutputSink, PlanCheck, PlanDiagnostic,
    ShuffleConfig, SimReport, MERGE_FAN_IN_BUDGET,
};

fn cluster() -> Cluster {
    // Pin warn mode so an ambient TSJ_PLAN_CHECK=deny cannot flip the
    // warn-path assertions; deny-mode tests opt in explicitly.
    Cluster::with_machines(4).with_plan_check(PlanCheck::Warn)
}

fn codes(report: &SimReport) -> Vec<&'static str> {
    report.plan_diagnostics().iter().map(|d| d.code()).collect()
}

/// Identity keyed pass-through stage, uncombined.
fn passthrough(
    c: &Cluster,
    input: Vec<u32>,
    name: &'static str,
) -> Result<(Vec<u32>, SimReport), JobError> {
    c.input_vec(input)
        .map_reduce(
            name,
            |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x, x),
            |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
        )?
        .collect()
}

#[test]
fn clean_plan_reports_no_diagnostics() {
    let c = cluster();
    let (mut out, report) = passthrough(&c, (0..100).collect(), "clean").unwrap();
    out.sort_unstable();
    assert_eq!(out, (0..100).collect::<Vec<u32>>());
    assert!(
        report.plan_diagnostics().is_empty(),
        "unexpected: {:?}",
        report.plan_diagnostics()
    );
}

#[test]
fn empty_input_warns_and_propagates() {
    let c = cluster();
    let (out, report) = c
        .input_vec(Vec::<u32>::new())
        .map_reduce(
            "first",
            |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x, x),
            |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
        )
        .unwrap()
        .map_reduce(
            "second",
            |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x, x),
            |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
        )
        .unwrap()
        .collect()
        .unwrap();
    assert!(out.is_empty());
    // Statically-empty input flags every downstream stage.
    assert_eq!(codes(&report), vec!["empty-input", "empty-input"]);
    let names: Vec<String> = report
        .plan_diagnostics()
        .iter()
        .map(|d| match d {
            PlanDiagnostic::EmptyInput { stage } => stage.clone(),
            other => panic!("unexpected diagnostic {other:?}"),
        })
        .collect();
    assert_eq!(names, vec!["first", "second"]);
}

#[test]
fn uncombined_dedup_foldable_stage_warns() {
    let c = cluster();
    // Unit values with no combiner: the map output is pure key presence,
    // exactly what a `Dedup` combiner would fold map-side.
    let (_, report) = c
        .input_vec((0..50u32).collect())
        .map_reduce(
            "presence",
            |&x: &u32, e: &mut Emitter<u32, ()>| e.emit(x % 5, ()),
            |&k: &u32, _vs: Vec<()>, out: &mut OutputSink<u32>| out.emit(k),
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(codes(&report), vec!["uncombined-dedup-foldable"]);

    // The same stage with the combiner attached is clean.
    let (_, report) = c
        .input_vec((0..50u32).collect())
        .map_reduce_combined(
            "presence",
            |&x: &u32, e: &mut Emitter<u32, ()>| e.emit(x % 5, ()),
            &Dedup,
            |&k: &u32, _vs: Vec<()>, out: &mut OutputSink<u32>| out.emit(k),
        )
        .unwrap()
        .collect()
        .unwrap();
    assert!(report.plan_diagnostics().is_empty());
}

#[test]
fn union_of_mismatched_partition_counts_warns() {
    let c = cluster();
    let left = c.input_vec((0..40u32).collect()).repartition(4).unwrap();
    let right = c.input_vec((40..80u32).collect()).repartition(8).unwrap();
    let (mut out, report) = left
        .union(right)
        .map_reduce(
            "downstream",
            |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x, x),
            |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
        )
        .unwrap()
        .collect()
        .unwrap();
    out.sort_unstable();
    assert_eq!(out, (0..80).collect::<Vec<u32>>());
    assert_eq!(codes(&report), vec!["union-partition-mismatch"]);
    match &report.plan_diagnostics()[0] {
        PlanDiagnostic::UnionPartitionMismatch { partitions, .. } => {
            let mut p = partitions.clone();
            p.sort_unstable();
            assert_eq!(p, vec![4, 8]);
        }
        other => panic!("unexpected diagnostic {other:?}"),
    }

    // Matching counts through the same shape: clean.
    let left = c.input_vec((0..40u32).collect()).repartition(4).unwrap();
    let right = c.input_vec((40..80u32).collect()).repartition(4).unwrap();
    let (_, report) = left
        .union(right)
        .map_reduce(
            "downstream",
            |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x, x),
            |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
        )
        .unwrap()
        .collect()
        .unwrap();
    assert!(report.plan_diagnostics().is_empty());
}

#[test]
fn terminal_repartition_warns() {
    let c = cluster();
    let (mut out, report) = c
        .input_vec((0..30u32).collect())
        .repartition(4)
        .unwrap()
        .collect()
        .unwrap();
    out.sort_unstable();
    assert_eq!(out, (0..30).collect::<Vec<u32>>());
    assert_eq!(codes(&report), vec!["terminal-repartition"]);
}

#[test]
fn chained_repartitions_warn_once_for_the_wasted_pass() {
    let c = cluster();
    let (mut out, report) = c
        .input_vec((0..30u32).collect())
        .repartition(4)
        .unwrap()
        .repartition(8)
        .unwrap()
        .map_reduce(
            "downstream",
            |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x, x),
            |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
        )
        .unwrap()
        .collect()
        .unwrap();
    out.sort_unstable();
    assert_eq!(out, (0..30).collect::<Vec<u32>>());
    assert_eq!(codes(&report), vec!["redundant-repartition"]);
    match &report.plan_diagnostics()[0] {
        PlanDiagnostic::RedundantRepartition {
            chained_into: Some(_),
            ..
        } => {}
        other => panic!("expected the chained form, got {other:?}"),
    }
}

#[test]
fn repartition_to_the_producers_count_warns() {
    let c = cluster(); // 4 machines → stages shuffle into 4 partitions
    let (mut out, report) = c
        .input_vec((0..30u32).collect())
        .map_reduce(
            "produce",
            |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x, x),
            |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
        )
        .unwrap()
        .repartition(4)
        .unwrap()
        .map_reduce(
            "downstream",
            |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x, x),
            |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
        )
        .unwrap()
        .collect()
        .unwrap();
    out.sort_unstable();
    assert_eq!(out, (0..30).collect::<Vec<u32>>());
    assert_eq!(codes(&report), vec!["redundant-repartition"]);
    match &report.plan_diagnostics()[0] {
        PlanDiagnostic::RedundantRepartition {
            chained_into: None,
            partitions: 4,
            ..
        } => {}
        other => panic!("expected the count-equal form, got {other:?}"),
    }

    // Reshaping to a different count through the same chain: clean.
    let (_, report) = c
        .input_vec((0..30u32).collect())
        .map_reduce(
            "produce",
            |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x, x),
            |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
        )
        .unwrap()
        .repartition(8)
        .unwrap()
        .map_reduce(
            "downstream",
            |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x, x),
            |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
        )
        .unwrap()
        .collect()
        .unwrap();
    assert!(
        report.plan_diagnostics().is_empty(),
        "unexpected: {:?}",
        report.plan_diagnostics()
    );
}

#[test]
fn merge_fan_in_hazard_needs_uncapped_spilling_config() {
    // 100 producer partitions feeding one stage under a spilling shuffle
    // with no merge fan-in cap: every partition's sorted runs meet in one
    // k-way merge, well past the budget.
    let hazard_cluster = |shuffle: ShuffleConfig| {
        Cluster::new(ClusterConfig {
            machines: 100,
            partitions: 100,
            ..ClusterConfig::default()
        })
        .with_shuffle_config(shuffle)
        .with_plan_check(PlanCheck::Warn)
    };
    // 50 input records → 50 map tasks (one per machine, capped by len),
    // under the budget; only the 100-partition wide→narrow edge exceeds it.
    let chain = |c: &Cluster| {
        c.input_vec((0..50u32).collect())
            .map_reduce(
                "wide",
                |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x, x),
                |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
            )?
            .map_reduce(
                "narrow",
                |&x: &u32, e: &mut Emitter<u32, u32>| e.emit(x % 3, x),
                |&k: &u32, _vs: Vec<u32>, out: &mut OutputSink<u32>| out.emit(k),
            )?
            .collect()
    };

    let c = hazard_cluster(ShuffleConfig::bounded(32, 48));
    let (_, report) = chain(&c).unwrap();
    assert_eq!(codes(&report), vec!["merge-fan-in-hazard"]);
    match &report.plan_diagnostics()[0] {
        PlanDiagnostic::MergeFanInHazard {
            stage,
            incoming,
            budget,
        } => {
            assert_eq!(stage, "narrow");
            assert_eq!(*incoming, 100);
            assert_eq!(*budget, MERGE_FAN_IN_BUDGET);
        }
        other => panic!("unexpected diagnostic {other:?}"),
    }

    // A fan-in cap bounds the merge; no hazard.
    let c = hazard_cluster(ShuffleConfig::bounded(32, 48).with_merge_fan_in(8));
    let (_, report) = chain(&c).unwrap();
    assert!(report.plan_diagnostics().is_empty());

    // No spilling at all: merges never happen, no hazard.
    let c = hazard_cluster(ShuffleConfig::unbounded());
    let (_, report) = chain(&c).unwrap();
    assert!(report.plan_diagnostics().is_empty());
}

#[test]
fn deny_mode_fails_before_execution() {
    let c = cluster().with_plan_check(PlanCheck::Deny);
    let err = passthrough(&c, Vec::new(), "denied").unwrap_err();
    match err {
        JobError::Plan { message } => {
            assert!(message.contains("empty-input"), "{message}");
            assert!(message.contains("denied"), "{message}");
        }
        other => panic!("expected JobError::Plan, got {other:?}"),
    }
}

#[test]
fn deny_mode_passes_clean_plans() {
    let c = cluster().with_plan_check(PlanCheck::Deny);
    let (mut out, report) = passthrough(&c, (0..20).collect(), "clean").unwrap();
    out.sort_unstable();
    assert_eq!(out, (0..20).collect::<Vec<u32>>());
    assert!(report.plan_diagnostics().is_empty());
}

#[test]
fn warn_mode_executes_and_renders_diagnostics() {
    let c = cluster();
    let (out, report) = passthrough(&c, Vec::new(), "warned").unwrap();
    assert!(out.is_empty());
    assert_eq!(codes(&report), vec!["empty-input"]);
    // Diagnostics surface in the human-readable report too.
    let rendered = report.to_string();
    assert!(
        rendered.contains("plan diagnostic: [empty-input]"),
        "{rendered}"
    );
    // Count is independently countable by the CI step summary.
    assert_eq!(report.plan_diagnostics().len(), 1);
}

#[test]
fn diagnostics_survive_report_extend() {
    let c = cluster();
    let (_, mut base) = passthrough(&c, (0..10).collect(), "clean").unwrap();
    let (_, warned) = passthrough(&c, Vec::new(), "warned").unwrap();
    base.extend(warned);
    assert_eq!(codes(&base), vec!["empty-input"]);
}
